"""Figure 13: COkNN on one unified R*-tree (1T) vs two trees (2T).

Paper's claim: 1T is more efficient than 2T in most settings because a
single traversal serves both the data scan and obstacle retrieval, and
nearby points/obstacles share leaf pages.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import PARAM_DEFAULTS, run_batch

from conftest import queries_for, record_metrics

QLS = (1.5, 4.5)
KS = (1, 5)


@pytest.mark.parametrize("mode", ["2T", "1T"])
@pytest.mark.parametrize("ql", QLS)
def test_layout_vs_query_length(benchmark, cl_dataset, mode, ql):
    points, obstacles = cl_dataset
    batch = queries_for(obstacles, ql)

    def run():
        return run_batch(points, obstacles, batch,
                         k=int(PARAM_DEFAULTS["k"]), mode=mode)

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    benchmark.extra_info["mode"] = mode
    assert agg.queries >= 1


@pytest.mark.parametrize("mode", ["2T", "1T"])
@pytest.mark.parametrize("k", KS)
def test_layout_vs_k(benchmark, ul_dataset, mode, k):
    points, obstacles = ul_dataset
    batch = queries_for(obstacles, PARAM_DEFAULTS["ql"])

    def run():
        return run_batch(points, obstacles, batch, k=k, mode=mode)

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    benchmark.extra_info["mode"] = mode
    assert agg.queries >= 1
