"""Machine-readable benchmark emission (the perf-trajectory artifact).

Every benchmark that participates in the performance trajectory merges one
section into a single JSON file, override with ``--emit`` (``--json`` is
kept as an alias) or the ``BENCH_JSON`` environment variable; the default
file name lives in :data:`DEFAULT_FILE` so a new PR bumps exactly one
constant instead of every benchmark patching its own.  CI uploads the file
as a build artifact, so speedups are diffable across PRs instead of living
in log scrollback.

Host metadata — including the git revision when one is resolvable — rides
along with every section; emission never fails because the benchmark ran
from an export, a tarball, or any other tree without a git worktree.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict

DEFAULT_FILE = "BENCH_PR10.json"
"""Current trajectory artifact name (bumped once per PR, here only)."""

DEFAULT_PATH = Path(__file__).resolve().parent.parent / DEFAULT_FILE


def add_emit_argument(parser) -> None:
    """Install the shared emission flag on a benchmark's argument parser.

    ``--emit`` names the benchmark JSON file; ``--json`` stays as a
    backwards-compatible alias.  Leaving it unset falls back to the
    ``BENCH_JSON`` environment variable and then :data:`DEFAULT_PATH`.
    """
    parser.add_argument(
        "--emit", "--json", dest="emit", default=None,
        help=f"benchmark JSON path (default $BENCH_JSON or {DEFAULT_FILE})")


def _git_rev() -> "str | None":
    """The current commit hash, or None when there is no usable worktree.

    Benchmarks run from source exports, CI caches, and containers where
    ``.git`` may be absent, git may be uninstalled, or the directory may be
    owned by another user (git's ``dubious ownership`` refusal) — all of
    those degrade to None instead of raising.
    """
    try:
        proc = subprocess.run(
            ["git", "-C", str(Path(__file__).resolve().parent.parent),
             "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def emit(section: str, payload: Dict[str, Any],
         path: "str | os.PathLike | None" = None) -> Path:
    """Merge ``payload`` under ``section`` into the benchmark JSON file.

    Existing sections from other benchmarks are preserved; re-running a
    benchmark overwrites only its own section.  Host metadata rides along
    so numbers are interpretable later.
    """
    target = Path(path or os.environ.get("BENCH_JSON") or DEFAULT_PATH)
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except (ValueError, OSError):
            data = {}
    payload = dict(payload)
    payload["host"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git": _git_rev(),
    }
    data[section] = payload
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target


def emit_scalar(key: str, value: Any,
                path: "str | os.PathLike | None" = None) -> Path:
    """Record a single top-level scalar in the benchmark JSON file.

    Headline numbers (a PR's corridor speedup, a gate's measured margin)
    live at the top level of the artifact so trajectory tooling can diff
    them across PRs with one key lookup instead of digging through each
    benchmark's section layout.  Sections and other scalars are preserved.
    """
    target = Path(path or os.environ.get("BENCH_JSON") or DEFAULT_PATH)
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = value
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target
