"""Machine-readable benchmark emission (the perf-trajectory artifact).

Every benchmark that participates in the performance trajectory merges one
section into a single JSON file (default ``BENCH_PR5.json`` at the
repository root, override with ``--json`` or the ``BENCH_JSON`` environment
variable).  CI uploads the file as a build artifact, so speedups are
diffable across PRs instead of living in log scrollback.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"


def emit(section: str, payload: Dict[str, Any],
         path: "str | os.PathLike | None" = None) -> Path:
    """Merge ``payload`` under ``section`` into the benchmark JSON file.

    Existing sections from other benchmarks are preserved; re-running a
    benchmark overwrites only its own section.  Host metadata rides along
    so numbers are interpretable later.
    """
    target = Path(path or os.environ.get("BENCH_JSON") or DEFAULT_PATH)
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except (ValueError, OSError):
            data = {}
    payload = dict(payload)
    payload["host"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    data[section] = payload
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target
