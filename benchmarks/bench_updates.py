#!/usr/bin/env python3
"""Incremental monitor maintenance vs recompute-per-update.

A fleet of continuous queries (CONN segments and ONN points spread over a
city) is kept fresh while a *clustered* update workload mutates one
neighborhood: sites appear and disappear, obstacles go up and come down,
all near one hot spot.  Two maintenance strategies answer the same
question — "what is every monitor's result after every update?":

* **recompute** — the pre-monitor regime: after each update every
  registered query re-runs from scratch (cold cache), paying the full
  obstacle-tree scan each time;
* **incremental** — the :mod:`repro.monitor` regime: each update flows
  through the affected-test, so monitors outside the hot neighborhood are
  dismissed without any index work, and affected segment monitors re-run
  the engine only on the affected split-point intervals, against a cache
  maintained surgically by the update path.

Both strategies must produce identical standing results; the benchmark
reports obstacle-tree page reads, maintenance actions, and wall time, and
exits non-zero if the incremental path fails to read measurably fewer
obstacle pages (the guard CI runs).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_updates.py
    PYTHONPATH=src python benchmarks/bench_updates.py --updates 40 --monitors 12
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Sequence, Tuple

import numpy as np

from repro import (
    ConnQuery,
    OnnQuery,
    RectObstacle,
    Segment,
    Workspace,
)
from repro.service.updates import (
    AddObstacle,
    AddSite,
    RemoveObstacle,
    RemoveSite,
    Update,
)


def build_scene(args) -> tuple:
    """A building lattice plus scattered reachable data points."""
    rng = random.Random(args.seed)
    side = args.obstacle_side
    step = (100.0 - 6.0) / side
    obstacles = [RectObstacle(3 + step * gx, 3 + step * gy,
                              3 + step * gx + 0.4 * step,
                              3 + step * gy + 0.3 * step)
                 for gx in range(side) for gy in range(side)]
    points = []
    while len(points) < args.points:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        if not any(o.contains_interior(x, y) for o in obstacles):
            points.append((len(points), (x, y)))
    return points, obstacles


def monitor_queries(args) -> List:
    """CONN segments and ONN points spread evenly over the city."""
    rng = random.Random(args.seed + 1)
    queries = []
    for i in range(args.monitors):
        ax, ay = rng.uniform(10, 90), rng.uniform(10, 90)
        if i % 2 == 0:
            bx = min(95.0, ax + rng.uniform(8, 15))
            by = min(95.0, ay + rng.uniform(-6, 6))
            queries.append(ConnQuery(Segment(ax, ay, bx, by),
                                     label=f"conn-{i}"))
        else:
            queries.append(OnnQuery((ax, ay), knn=args.k,
                                    label=f"onn-{i}"))
    return queries


def clustered_updates(args, points, obstacles) -> List[Update]:
    """Updates concentrated around one hot spot (a construction site)."""
    rng = random.Random(args.seed + 2)
    hx, hy = rng.uniform(25, 75), rng.uniform(25, 75)
    r = args.cluster_radius
    updates: List[Update] = []
    live_sites: List[Tuple[int, Tuple[float, float]]] = []
    live_obs: List[RectObstacle] = []
    next_id = len(points)
    for _ in range(args.updates):
        roll = rng.random()
        if roll < 0.4:
            x, y = hx + rng.uniform(-r, r), hy + rng.uniform(-r, r)
            if any(o.contains_interior(x, y) for o in obstacles):
                x = y = None
            if x is None:
                continue
            updates.append(AddSite(next_id, x, y))
            live_sites.append((next_id, (x, y)))
            next_id += 1
        elif roll < 0.55 and live_sites:
            pid, (x, y) = live_sites.pop(rng.randrange(len(live_sites)))
            updates.append(RemoveSite(pid, x, y))
        elif roll < 0.85:
            x, y = hx + rng.uniform(-r, r), hy + rng.uniform(-r, r)
            obs = RectObstacle(x, y, x + rng.uniform(0.5, 2.5),
                               y + rng.uniform(0.5, 2.0))
            updates.append(AddObstacle(obs))
            live_obs.append(obs)
        elif live_obs:
            updates.append(RemoveObstacle(
                live_obs.pop(rng.randrange(len(live_obs)))))
    return updates


def snapshot_results(results) -> list:
    """Comparable view of standing answers (owners + rounded geometry)."""
    out = []
    for res in results:
        rows = res.tuples()
        if rows and isinstance(rows[0][1], tuple):  # interval results
            out.append([(owner, round(lo, 6), round(hi, 6))
                        for owner, (lo, hi) in rows])
        else:  # (payload, distance) results
            out.append([(payload, round(dist, 6)) for payload, dist in rows])
    return out


def run_recompute(args, queries, updates) -> dict:
    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size)
    for q in queries:
        ws.execute(q)
    snap = ws.obstacle_tree.tracker.stats.snapshot()
    started = time.perf_counter()
    results = [ws.execute(q) for q in queries]
    for u in updates:
        ws.apply([u])
        # The pre-monitor regime: every standing query recomputed cold.
        ws.cache.invalidate()
        results = [ws.execute(q) for q in queries]
    wall = time.perf_counter() - started
    reads = ws.obstacle_tree.tracker.stats.delta(snap).logical_reads
    return {"label": "recompute", "reads": reads, "wall_s": wall,
            "answers": snapshot_results(results)}


def run_incremental(args, queries, updates) -> dict:
    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size)
    monitors = [ws.monitors.register(q) for q in queries]
    snap = ws.obstacle_tree.tracker.stats.snapshot()
    started = time.perf_counter()
    ws.apply(updates)
    wall = time.perf_counter() - started
    reads = ws.obstacle_tree.tracker.stats.delta(snap).logical_reads
    stats = ws.monitors.stats
    return {"label": "incremental", "reads": reads, "wall_s": wall,
            "answers": snapshot_results([m.result for m in monitors]),
            "noops": stats.noops, "repairs": stats.repairs,
            "reruns": stats.reruns, "noop_rate": stats.noop_rate}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Incremental monitor maintenance vs recompute-per-update.")
    parser.add_argument("--points", type=int, default=60)
    parser.add_argument("--obstacle-side", type=int, default=8,
                        help="buildings per axis (side^2 obstacles)")
    parser.add_argument("--monitors", type=int, default=6)
    parser.add_argument("--updates", type=int, default=12)
    parser.add_argument("--cluster-radius", type=float, default=6.0,
                        help="radius of the hot update neighborhood")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    points, obstacles = build_scene(args)
    queries = monitor_queries(args)
    updates = clustered_updates(args, points, obstacles)

    rec = run_recompute(args, queries, updates)
    inc = run_incremental(args, queries, updates)

    print(f"Update maintenance — {len(queries)} monitors, "
          f"{len(updates)} clustered updates "
          f"(radius {args.cluster_radius:g})")
    print(f"  {'strategy':>12}  {'obstacle reads':>14}  {'wall s':>8}")
    for run in (rec, inc):
        print(f"  {run['label']:>12}  {run['reads']:>14}  "
              f"{run['wall_s']:>8.3f}")
    print(f"\n  incremental actions: {inc['noops']} no-ops, "
          f"{inc['repairs']} span repairs, {inc['reruns']} reruns "
          f"({100.0 * inc['noop_rate']:.0f}% dismissed without index work)")

    def floats_differ(x: float, y: float, tol: float = 1e-5) -> bool:
        if np.isfinite(x) != np.isfinite(y):
            return True
        return bool(np.isfinite(x)) and abs(x - y) > tol

    mismatches = 0
    for a, b in zip(rec["answers"], inc["answers"]):
        if len(a) != len(b):
            mismatches += 1
            continue
        for ra, rb in zip(a, b):
            if ra[0] != rb[0] or any(floats_differ(x, y)
                                     for x, y in zip(ra[1:], rb[1:])):
                mismatches += 1
                break
    if mismatches:
        print(f"\nERROR: strategies disagree on {mismatches} monitor(s)")
        return 1
    saved = rec["reads"] - inc["reads"]
    if saved <= 0:
        print(f"\nERROR: incremental maintenance saved no obstacle reads "
              f"({inc['reads']} vs {rec['reads']})")
        return 1
    pct = 100.0 * saved / max(rec["reads"], 1)
    print(f"\n  identical standing results; incremental maintenance reads "
          f"{saved} fewer obstacle pages ({pct:.0f}% saved)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
