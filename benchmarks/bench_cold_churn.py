#!/usr/bin/env python3
"""Cold-start and churn cost of the shared visibility-graph backend.

Two matched A/B workloads where graph *lifecycle* — not traversal —
dominates the difference between the arms:

* **cold** — a 60-query corridor with the shared backend invalidated
  before every query, so each round pays a full build-to-ready.  The
  arms differ in exactly one thing, the materialization strategy:
  arm A cuts every adjacency row in one batched visibility pass
  (``bulk_build``), arm B walks the rows one kernel launch per node —
  the per-node path bulk materialization replaced.  The gated wall is
  the **time-to-ready** (``warm()``) per round; the corridor queries run
  in both arms so answers can be asserted byte-identical, and their
  (config-independent) traversal wall is reported separately.
* **churn** — an interleaved insert/query/remove/query storm against
  one long-lived shared workspace.  Arm A repairs each removal
  surgically (delete the obstacle's vertices, re-test only the absent
  sight-line pairs whose segments cross its padded bbox, keep every
  unaffected row and traversal memo); arm B is the drop-and-rebuild
  parity oracle (``removal_repair=False``): every removal evicts the
  graph and the next ``warm()`` pays a full rebuild.  Both arms use the
  same bulk build, so the gated **removal-to-ready** wall compares the
  surgical repair against the *fastest* rebuild the engine has.

Answers are asserted byte-identical between the arms of each workload —
exact float equality on every interval endpoint, no tolerance — before
any speedup is reported.  ``--require-speedup`` turns the two headline
ratios into CI gates.

The scene mixes all three obstacle kinds (rects, wall segments, convex
polygons): per-node materialization pays at least one kernel launch per
(row, kind) — and one per (row, polygon) — so mixed scenes are exactly
where the bulk pass's launch amortization matters most.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_cold_churn.py
    PYTHONPATH=src python benchmarks/bench_cold_churn.py --require-speedup
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Sequence, Tuple

from _emit import add_emit_argument, emit, emit_scalar

from repro import (
    ConnQuery,
    PlannerOptions,
    PolygonObstacle,
    RectObstacle,
    RoutingConfig,
    Segment,
    SegmentObstacle,
    Workspace,
)

#: Arm A everywhere: bulk build + frontier prefetch + surgical repair.
DEFAULT_ROUTING = RoutingConfig()

#: Cold arm B: rows cut one launch per node, traversal prefetch off —
#: the whole per-node materialization engine the bulk pass replaced.
PER_NODE_ROUTING = RoutingConfig(bulk_build=False, frontier_prefetch=0)

#: Churn arm B: identical config except removals drop the graph — the
#: drop-and-rebuild parity oracle the surgical repair is checked against.
REBUILD_ROUTING = RoutingConfig(removal_repair=False)


def build_scene(args) -> tuple:
    """A mixed-kind building lattice plus scattered reachable points."""
    rng = random.Random(args.seed)
    side = args.obstacle_side
    step = (100.0 - 6.0) / side
    f = args.obstacle_fill
    obstacles = []
    for gx in range(side):
        for gy in range(side):
            x, y = 3.0 + step * gx, 3.0 + step * gy
            w, h = f * step, 0.75 * f * step
            kind = (gx + gy) % 3
            if kind == 0:
                obstacles.append(SegmentObstacle(x, y, x + w, y + h))
            elif kind == 1:
                obstacles.append(RectObstacle(x, y, x + w, y + h))
            else:
                obstacles.append(PolygonObstacle(
                    [(x, y), (x + w, y), (x + 0.5 * w, y + h)]))
    points = []
    while len(points) < args.points:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        if not any(getattr(o, "contains_interior", lambda *_: False)(x, y)
                   for o in obstacles):
            points.append((len(points), (x, y)))
    return points, obstacles


def corridor_queries(args) -> List[ConnQuery]:
    """Repeated and nearby CONN segments along one corridor."""
    rng = random.Random(args.seed + 1)
    queries = []
    for i in range(args.queries):
        y = 50.0 + rng.uniform(-4.0, 4.0)
        ax = rng.uniform(5.0, 25.0)
        queries.append(ConnQuery(Segment(ax, y, ax + rng.uniform(25, 55), y),
                                 label=f"corridor-{i}"))
    return queries


def churn_script(args, points) -> List[Tuple]:
    """Deterministic (obstacle, query-after-insert, query-after-remove)
    rounds near the corridor, shared verbatim by both arms."""
    rng = random.Random(args.seed + 5)
    rounds = []
    for i in range(args.churn_rounds):
        while True:
            x = rng.uniform(15.0, 75.0)
            y = 50.0 + rng.uniform(-8.0, 6.0)
            obstacle = RectObstacle(x, y, x + rng.uniform(1.0, 3.0),
                                    y + rng.uniform(1.0, 3.0))
            if not any(obstacle.contains_interior(px, py)
                       for _, (px, py) in points):
                break
        queries = []
        for tag in ("in", "out"):
            qy = 50.0 + rng.uniform(-4.0, 4.0)
            qx = rng.uniform(5.0, 25.0)
            queries.append(ConnQuery(
                Segment(qx, qy, qx + rng.uniform(25, 55), qy),
                label=f"churn-{i}-{tag}"))
        rounds.append((obstacle, queries[0], queries[1]))
    return rounds


def exact_snapshot(results) -> list:
    """Byte-exact view of answers: owners and *unrounded* interval
    endpoints, so arm comparison is genuine float equality."""
    return [[(owner, lo, hi) for owner, (lo, hi) in res.tuples()]
            for res in results]


def arm_row(label: str, ws: Workspace, ready_wall: float,
            query_wall: float) -> dict:
    stats = ws.routing.stats
    return {
        "label": label,
        "builds": stats.graphs_built,
        "evicted": stats.evicted,
        "invalidations": stats.invalidations,
        "bulk_rows": stats.rows_bulk_materialized,
        "bulk_launches": stats.bulk_pair_launches,
        "repairs": stats.removal_repairs,
        "repair_retests": stats.repair_retested_pairs,
        "batch_calls": stats.batch_visibility_calls,
        "ready_wall_s": ready_wall,
        "query_wall_s": query_wall,
        "e2e_wall_s": ready_wall + query_wall,
    }


def make_workspace(args, routing: RoutingConfig) -> Workspace:
    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size,
                               planner=PlannerOptions(backend="shared"),
                               routing=routing)
    ws.prefetch_all()  # both arms measure graph work, never page I/O
    return ws


def run_cold(args, routing: RoutingConfig, label: str) -> dict:
    """Every round: invalidate, time warm-to-ready, then run the query.

    The gated wall is the materialization (``warm()``) time; the query
    wall is traversal on an already-ready backend, identical machinery
    in both arms, and is reported separately.
    """
    ws = make_workspace(args, routing)
    queries = corridor_queries(args)
    ws.routing.warm()
    ws.execute(queries[0])  # interpreter/cache warmup; not measured
    ready_wall = query_wall = 0.0
    answers = []
    for q in queries:
        ws.routing.invalidate()
        t0 = time.perf_counter()
        ws.routing.warm()
        ready_wall += time.perf_counter() - t0
        t0 = time.perf_counter()
        answers.append(ws.execute(q))
        query_wall += time.perf_counter() - t0
    row = arm_row(label, ws, ready_wall, query_wall)
    row["answers"] = exact_snapshot(answers)
    return row


def run_churn(args, routing: RoutingConfig, label: str) -> dict:
    """Interleaved insert/query/remove/query storm on one workspace.

    The gated wall is removal-to-ready: the removal itself plus the
    ``warm()`` that restores a fully materialized backend (a surgical
    repair leaves it ready; a drop forces a complete rebuild).  Each
    insert is followed by a ``warm()`` in *both* arms — identical
    machinery, reported as the insert wall — so the removal wall starts
    from a fully current graph and measures only removal work.
    """
    ws = make_workspace(args, routing)
    points, _ = build_scene(args)
    rounds = churn_script(args, points)
    ws.routing.warm()
    ws.execute(corridor_queries(args)[0])  # warmup; not measured
    ready_wall = query_wall = insert_wall = 0.0
    answers = []
    for obstacle, q_in, q_out in rounds:
        t0 = time.perf_counter()
        ws.add_obstacle(obstacle)
        ws.routing.warm()
        insert_wall += time.perf_counter() - t0
        t0 = time.perf_counter()
        answers.append(ws.execute(q_in))
        query_wall += time.perf_counter() - t0
        t0 = time.perf_counter()
        if not ws.remove_obstacle(obstacle):
            raise AssertionError("churn removal lost its obstacle")
        ws.routing.warm()
        ready_wall += time.perf_counter() - t0
        t0 = time.perf_counter()
        answers.append(ws.execute(q_out))
        query_wall += time.perf_counter() - t0
    row = arm_row(label, ws, ready_wall, query_wall)
    row["insert_wall_s"] = insert_wall
    row["answers"] = exact_snapshot(answers)
    return row


def first_mismatch(a: list, b: list) -> "int | None":
    """Index of the first non-identical answer, or None when byte-equal."""
    for i, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def best_of(args, runner, routing_a, routing_b, label_a, label_b):
    """Interleaved best-of-N for one workload; returns (arm_a, arm_b).

    Alternating the arms keeps a machine-load drift from landing
    entirely on one config and skewing the ratio.  Best is taken on the
    gated (ready) wall.
    """
    best_a = best_b = None
    for _ in range(max(1, args.repeats)):
        a = runner(args, routing_a, label_a)
        b = runner(args, routing_b, label_b)
        if best_a is None or a["ready_wall_s"] < best_a["ready_wall_s"]:
            best_a = a
        if best_b is None or b["ready_wall_s"] < best_b["ready_wall_s"]:
            best_b = b
    return best_a, best_b


def print_table(title: str, rows: Sequence[dict]) -> None:
    print(f"\n{title}")
    print(f"  {'arm':>10}  {'builds':>6}  {'bulk rows':>9}  "
          f"{'launches':>8}  {'repairs':>7}  {'retests':>7}  "
          f"{'ready s':>8}  {'query s':>8}")
    for r in rows:
        print(f"  {r['label']:>10}  {r['builds']:>6}  {r['bulk_rows']:>9}  "
              f"{r['bulk_launches']:>8}  {r['repairs']:>7}  "
              f"{r['repair_retests']:>7}  {r['ready_wall_s']:>8.3f}  "
              f"{r['query_wall_s']:>8.3f}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cold build-to-ready and removal-to-ready cost, "
                    "bulk/repair engine vs per-node / drop-and-rebuild.")
    parser.add_argument("--points", type=int, default=50)
    parser.add_argument("--obstacle-side", type=int, default=7,
                        help="buildings per axis (side^2 obstacles, "
                             "kinds cycling rect/segment/polygon)")
    parser.add_argument("--obstacle-fill", type=float, default=0.5,
                        help="obstacle footprint as a fraction of the "
                             "lattice step")
    parser.add_argument("--queries", type=int, default=60,
                        help="cold-arm corridor queries (one backend "
                             "build each)")
    parser.add_argument("--churn-rounds", type=int, default=20,
                        help="insert/query/remove/query rounds in the "
                             "churn arm")
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=1,
                        help="interleaved repetitions per workload; the "
                             "best ready-wall per arm is reported")
    parser.add_argument("--require-speedup", action="store_true",
                        help="fail unless cold >= --cold-target and "
                             "churn >= --churn-target (CI smoke guard)")
    parser.add_argument("--cold-target", type=float, default=2.0)
    parser.add_argument("--churn-target", type=float, default=3.0)
    add_emit_argument(parser)
    args = parser.parse_args(argv)

    failures = []

    cold_a, cold_b = best_of(args, run_cold, DEFAULT_ROUTING,
                             PER_NODE_ROUTING, "bulk", "per-node")
    print_table(f"Cold builds — {args.queries} corridor queries, backend "
                f"invalidated and re-warmed before each", (cold_a, cold_b))
    bad = first_mismatch(cold_a["answers"], cold_b["answers"])
    if bad is not None:
        failures.append(f"cold arms disagree at query {bad} "
                        f"(answers must be byte-identical)")
    if cold_a["builds"] <= args.queries:
        failures.append(f"cold arm reused a graph across invalidations "
                        f"({cold_a['builds']} builds <= {args.queries})")
    if cold_a["bulk_rows"] == 0:
        failures.append("bulk arm materialized no rows in bulk")
    if cold_b["bulk_rows"] != 0:
        failures.append("per-node arm used the bulk path")
    cold_speedup = (cold_b["ready_wall_s"] / cold_a["ready_wall_s"]
                    if cold_a["ready_wall_s"] > 0 else float("inf"))
    cold_e2e = (cold_b["e2e_wall_s"] / cold_a["e2e_wall_s"]
                if cold_a["e2e_wall_s"] > 0 else float("inf"))
    print(f"\n  bulk materialization build-to-ready speedup: "
          f"{cold_speedup:.2f}x ({cold_a['bulk_rows']} rows in "
          f"{cold_a['bulk_launches']} bulk launches vs "
          f"{cold_b['batch_calls']} per-node kernel calls; "
          f"end-to-end incl. identical traversal {cold_e2e:.2f}x)")

    churn_a, churn_b = best_of(args, run_churn, DEFAULT_ROUTING,
                               REBUILD_ROUTING, "repair", "rebuild")
    print_table(f"Removal churn — {args.churn_rounds} insert/query/remove/"
                f"query rounds, one shared workspace", (churn_a, churn_b))
    bad = first_mismatch(churn_a["answers"], churn_b["answers"])
    if bad is not None:
        failures.append(f"churn arms disagree at answer {bad} "
                        f"(answers must be byte-identical)")
    if churn_a["repairs"] < args.churn_rounds:
        failures.append(f"repair arm fell back to eviction "
                        f"({churn_a['repairs']} repairs < "
                        f"{args.churn_rounds} removals)")
    if churn_b["repairs"] != 0:
        failures.append("rebuild arm repaired instead of dropping")
    churn_speedup = (churn_b["ready_wall_s"] / churn_a["ready_wall_s"]
                     if churn_a["ready_wall_s"] > 0 else float("inf"))
    churn_e2e = (churn_b["e2e_wall_s"] / churn_a["e2e_wall_s"]
                 if churn_a["e2e_wall_s"] > 0 else float("inf"))
    print(f"\n  surgical repair removal-to-ready speedup: "
          f"{churn_speedup:.2f}x ({churn_a['repairs']} repairs retested "
          f"{churn_a['repair_retests']} pairs; rebuild arm built "
          f"{churn_b['builds']} graphs; end-to-end incl. identical "
          f"traversal {churn_e2e:.2f}x)")

    if args.require_speedup:
        if cold_speedup < args.cold_target:
            failures.append(f"cold speedup {cold_speedup:.2f}x below "
                            f"required {args.cold_target:.2f}x")
        if churn_speedup < args.churn_target:
            failures.append(f"churn speedup {churn_speedup:.2f}x below "
                            f"required {args.churn_target:.2f}x")

    def strip(row: dict) -> dict:
        return {k: v for k, v in row.items() if k != "answers"}

    emit("bench_cold_churn", {
        "workload": {"queries": args.queries,
                     "churn_rounds": args.churn_rounds,
                     "points": args.points,
                     "obstacles": args.obstacle_side ** 2,
                     "obstacle_fill": args.obstacle_fill,
                     "repeats": args.repeats,
                     "seed": args.seed},
        "cold": {"bulk": strip(cold_a), "per_node": strip(cold_b),
                 "ready_speedup": round(cold_speedup, 3),
                 "e2e_speedup": round(cold_e2e, 3)},
        "churn": {"repair": strip(churn_a), "rebuild": strip(churn_b),
                  "ready_speedup": round(churn_speedup, 3),
                  "e2e_speedup": round(churn_e2e, 3)},
    }, path=args.emit)
    emit_scalar("cold_build_speedup", round(cold_speedup, 3),
                path=args.emit)
    emit_scalar("churn_repair_speedup", round(churn_speedup, 3),
                path=args.emit)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: all arms agree byte-identically; lifecycle gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
