"""Shared fixtures for the benchmark suite.

Benchmarks run the same figure drivers as ``repro.bench.experiments`` at
``tiny`` scale (about 0.5 % of the paper's cardinalities) with one query per
configuration, so ``pytest benchmarks/ --benchmark-only`` completes in
minutes while preserving every qualitative trend.  For fuller sweeps use the
CLI: ``python -m repro.bench.experiments --all --scale small``.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.experiments import make_dataset
from repro.bench.workloads import query_workload

BENCH_SCALE = "tiny"
QUERIES = 2


@pytest.fixture(scope="session")
def cl_dataset():
    return make_dataset("CL", BENCH_SCALE)


@pytest.fixture(scope="session")
def ul_dataset():
    return make_dataset("UL", BENCH_SCALE)


def queries_for(obstacles, ql: float, count: int = QUERIES, seed: int = 1):
    return query_workload(random.Random(20_000 + seed), count, ql, obstacles)


def record_metrics(benchmark, agg) -> None:
    """Attach the paper's metrics to the benchmark record."""
    benchmark.extra_info.update({
        "npe": round(agg.npe, 2),
        "noe": round(agg.noe, 2),
        "svg_size": round(agg.svg_size, 2),
        "page_faults": round(agg.page_faults, 2),
        "io_time_ms": round(agg.io_time_ms, 2),
        "cpu_time_ms": round(agg.cpu_time_ms, 2),
        "total_time_ms": round(agg.total_time_ms, 2),
    })
