"""Micro-benchmarks of the substrates the CONN engine stands on.

Not a paper figure — these isolate the building blocks (R*-tree build and
queries, visibility graph growth, Dijkstra, shadow computation, the
quadratic split solver, envelope merges) so performance regressions can be
attributed to a layer.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import PiecewiseDistance, crossing_params
from repro.geometry import IntervalSet, Rect, Segment
from repro.index import RStarTree, knn
from repro.obstacles import LocalVisibilityGraph, visible_region
from repro.datasets import la_street_obstacles, uniform_points
from repro.service import Workspace


@pytest.fixture(scope="module")
def points_1k():
    return uniform_points(1000, random.Random(3))


@pytest.fixture(scope="module")
def streets_500():
    return la_street_obstacles(500, random.Random(4))


class TestRTreeBenches:
    def test_insert_build(self, benchmark, points_1k):
        def build():
            t = RStarTree(page_size=1024)
            for i, (x, y) in enumerate(points_1k):
                t.insert_point(i, x, y)
            return t

        tree = benchmark.pedantic(build, rounds=1, iterations=1)
        assert tree.size == 1000

    def test_bulk_load(self, benchmark, points_1k):
        items = [(i, Rect.point(x, y)) for i, (x, y) in enumerate(points_1k)]
        tree = benchmark(RStarTree.bulk_load, items)
        assert tree.size == 1000

    def test_knn_query(self, benchmark, points_1k):
        tree = RStarTree.bulk_load(
            (i, Rect.point(x, y)) for i, (x, y) in enumerate(points_1k))
        result = benchmark(knn, tree, 5000.0, 5000.0, 10)
        assert len(result) == 10

    def test_range_query(self, benchmark, points_1k):
        tree = RStarTree.bulk_load(
            (i, Rect.point(x, y)) for i, (x, y) in enumerate(points_1k))
        probe = Rect(2000, 2000, 4000, 4000)
        result = benchmark(tree.range_search, probe)
        assert isinstance(result, list)


class TestVisibilityBenches:
    def test_graph_growth(self, benchmark, streets_500):
        q = Segment(1000, 5000, 9000, 5200)

        def grow():
            vg = LocalVisibilityGraph(q)
            vg.add_obstacles(streets_500[:200])
            # Force some adjacency rows like a traversal would.
            for node in range(0, 40):
                vg.neighbors(node)
            return vg

        vg = benchmark.pedantic(grow, rounds=1, iterations=1)
        assert vg.svg_size == 2 + 4 * 200

    def test_dijkstra(self, benchmark, streets_500):
        q = Segment(1000, 5000, 9000, 5200)
        vg = LocalVisibilityGraph(q)
        vg.add_obstacles(streets_500[:150])

        def sssp():
            return vg.shortest_distances(vg.S, [vg.E])

        out = benchmark(sssp)
        assert vg.E in out

    def test_visible_region(self, benchmark, streets_500):
        from repro.obstacles import ObstacleSet

        q = Segment(1000, 5000, 9000, 5200)
        oset = ObstacleSet(streets_500)
        vr = benchmark(visible_region, 5000.0, 6000.0, q, oset)
        assert vr.measure() <= q.length


class TestSolverBenches:
    def test_crossing_params(self, benchmark):
        q = Segment(0, 0, 10000, 0)

        def solve():
            out = []
            for i in range(100):
                out.append(crossing_params(
                    q, (3000 + i, 800), 50.0, (7000 - i, 300), 250.0,
                    0.0, 10000.0))
            return out

        roots = benchmark.pedantic(solve, rounds=1, iterations=3)
        assert len(roots) == 100

    def test_envelope_merge(self, benchmark):
        q = Segment(0, 0, 10000, 0)
        rng = random.Random(9)
        full = IntervalSet.full(0, q.length)
        fns = [PiecewiseDistance.from_region(
            q, full, (rng.uniform(0, 10000), rng.uniform(50, 2000)),
            rng.uniform(0, 500), i) for i in range(40)]

        def merge_all():
            env = PiecewiseDistance.unknown(q)
            for f in fns:
                env, _, _ = env.merge_min(f)
            return env

        env = benchmark.pedantic(merge_all, rounds=1, iterations=1)
        assert env.covered()

    def test_interval_algebra(self, benchmark):
        rng = random.Random(11)
        sets = [IntervalSet([(a, a + rng.uniform(1, 50))
                             for a in rng.sample(range(10000), 40)])
                for _ in range(20)]

        def churn():
            acc = IntervalSet.full(0, 10000)
            for s in sets:
                acc = acc.subtract(s).union(s.intersect(acc))
            return acc

        out = benchmark(churn)
        assert out.measure() <= 10000.0


class TestWorkspaceCacheBenches:
    """Service layer: warm queries over a shared obstacle cache."""

    def _workspace(self, points_1k, streets_500):
        points = list(enumerate(points_1k))
        return Workspace.from_points(points, streets_500[:150],
                                     overfetch=2.0)

    def test_cold_then_warm_query(self, benchmark, points_1k, streets_500):
        ws = self._workspace(points_1k, streets_500)
        q = Segment(3000, 5000, 4000, 5050)
        cold = ws.conn(q)  # first query fills the cache

        warm = benchmark(ws.conn, q)
        assert warm.tuples() == cold.tuples()
        assert warm.stats.obstacle_reads == 0
        counters = {
            "cold_obstacle_reads": cold.stats.obstacle_reads,
            "warm_obstacle_reads": warm.stats.obstacle_reads,
            "warm_cache_hits": warm.stats.cache_hits,
            "warm_cache_served": warm.stats.cache_served,
            "cache_hit_rate": round(ws.cache_stats.hit_rate, 3),
            "cache_inserted": ws.cache_stats.inserted,
            "cache_prefetched": ws.cache_stats.prefetched,
        }
        benchmark.extra_info.update(counters)
        print(f"\nworkspace cache counters: {counters}")

    def test_prefetched_batch(self, benchmark, points_1k, streets_500):
        queries = [Segment(3000 + 40 * i, 5000, 4000 + 40 * i, 5050)
                   for i in range(5)]

        def prefetched_batch():
            ws = self._workspace(points_1k, streets_500)
            ws.prefetch(Rect(2900, 4900, 4300, 5200), margin=2000.0)
            return ws, ws.batch(queries)

        ws, results = benchmark.pedantic(prefetched_batch, rounds=1,
                                         iterations=1)
        assert len(results) == len(queries)
        stats = ws.cache_stats
        counters = {
            "prefetch_calls": stats.prefetch_calls,
            "prefetched": stats.prefetched,
            "hits": stats.hits,
            "misses": stats.misses,
            "served": stats.served,
            "hit_rate": round(stats.hit_rate, 3),
        }
        benchmark.extra_info.update(counters)
        print(f"\nprefetch counters: {counters}")
