#!/usr/bin/env python3
"""Aggregate throughput vs shard count (the PR 7 tentpole bench).

One warm mixed CONN/COkNN/ONN/range workload is executed over the same
scene partitioned into 1, 2, 4, ... shards
(:class:`~repro.shard.ShardedWorkspace`).  Each arm schedules the
shard-local batches across a fork-mode worker pool
(``execute_many(..., mode="fork")``), so shard count translates into
process-level parallelism over mostly-disjoint working sets.

Two guards:

* ``--require-identical`` — every arm's result tuples must be
  byte-identical to the unsharded workspace's serial execution (the
  border-expansion protocol's core promise);
* ``--require-scaling`` — aggregate QPS at the widest shard count must
  reach the given multiple of the single-shard arm (skipped with a
  warning when the host lacks the cores for headroom).

Results — QPS per shard count plus the router's :class:`ShardStats`
(cross-shard fan-out ratio, border expansions, replicated obstacles)
and a per-arm time breakdown (first-execution routing vs
border-expansion re-execution vs merged-environment building) — are
emitted to the shared benchmark JSON (see :mod:`_emit`).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_shards.py
    PYTHONPATH=src python benchmarks/bench_shards.py \
        --shards 1,2,4,9 --workers 4 --require-identical
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from typing import List, Sequence

from _emit import add_emit_argument, emit

from repro import (
    CoknnQuery,
    ConnQuery,
    OnnQuery,
    RangeQuery,
    RectObstacle,
    Segment,
    Workspace,
)
from repro.query.parallel import effective_workers
from repro.shard import ShardedWorkspace


def build_scene(args):
    """A building lattice plus scattered reachable data points."""
    rng = random.Random(args.seed)
    side = args.obstacle_side
    step = (100.0 - 6.0) / side
    obstacles = [RectObstacle(3 + step * gx, 3 + step * gy,
                              3 + step * gx + 0.4 * step,
                              3 + step * gy + 0.3 * step)
                 for gx in range(side) for gy in range(side)]
    points = []
    while len(points) < args.points:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        if not any(o.contains_interior(x, y) for o in obstacles):
            points.append((len(points), (x, y)))
    return points, obstacles


def mixed_workload(args) -> List:
    """Short local queries scattered over the scene (shard-friendly)."""
    rng = random.Random(args.seed + 1)
    queries = []
    for i in range(args.queries):
        x, y = rng.uniform(5, 80), rng.uniform(5, 85)
        roll = i % 4
        if roll == 0:
            queries.append(ConnQuery(
                Segment(x, y, x + rng.uniform(4, 12), y),
                label=f"conn-{i}"))
        elif roll == 1:
            queries.append(CoknnQuery(
                Segment(x, y, x, y + rng.uniform(4, 12)),
                rng.randrange(2, 4), label=f"coknn-{i}"))
        elif roll == 2:
            queries.append(OnnQuery((x, y), rng.randrange(1, 4),
                                    label=f"onn-{i}"))
        else:
            queries.append(RangeQuery((x, y), rng.uniform(5, 12),
                                      label=f"range-{i}"))
    return queries


def result_rows(results) -> list:
    """Exact comparable view: full tuples, no rounding."""
    return [res.tuples() for res in results]


def run_arm(sws: ShardedWorkspace, queries, workers: int, mode: str):
    started = time.perf_counter()
    results = sws.execute_many(queries, workers=workers, mode=mode)
    wall = time.perf_counter() - started
    # Per-query ShardStats blocks ride back on the results even in fork
    # mode, so the breakdown survives worker-process boundaries.
    breakdown = {
        "route_s": sum(r.stats.shard.route_time_s for r in results),
        "reexec_s": sum(r.stats.shard.reexec_time_s for r in results),
        "merge_build_s": sum(r.stats.shard.merge_build_time_s
                             for r in results),
    }
    return wall, result_rows(results), breakdown


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate throughput vs shard count.")
    parser.add_argument("--points", type=int, default=60)
    parser.add_argument("--obstacle-side", type=int, default=7,
                        help="buildings per axis (side^2 obstacles)")
    parser.add_argument("--queries", type=int, default=120,
                        help="warm mixed workload size")
    parser.add_argument("--shards", default="1,2,4",
                        help="comma-separated shard counts to sweep")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pool size per arm")
    parser.add_argument("--mode", choices=("thread", "fork"), default=None,
                        help="pool mode (default: fork when available)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per arm (best is reported)")
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--require-identical", action="store_true",
                        help="fail unless every arm matches the unsharded "
                             "workspace byte for byte")
    parser.add_argument("--require-scaling", type=float, default=0.0,
                        help="fail unless the widest arm's QPS reaches this "
                             "multiple of the single-shard arm (skipped "
                             "when the host lacks the cores)")
    add_emit_argument(parser)
    args = parser.parse_args(argv)

    mode = args.mode or ("fork" if hasattr(os, "fork") else "thread")
    shard_counts = sorted({int(s) for s in args.shards.split(",")})
    points, obstacles = build_scene(args)
    queries = mixed_workload(args)

    ws = Workspace.from_points(points, obstacles, page_size=args.page_size)
    ws.prefetch_all()
    baseline = result_rows(ws.execute_many(queries))

    workers = effective_workers(args.workers, mode)
    print(f"Shard sweep — {len(queries)} queries ({args.points} points, "
          f"{len(obstacles)} obstacles), {workers} {mode} worker(s), "
          f"host cpus: {os.cpu_count()}")
    print(f"  {'shards':>6}  {'wall s':>8}  {'qps':>8}  {'speedup':>8}  "
          f"{'fan-out':>7}  {'expand':>6}  {'repl':>5}  "
          f"{'route s':>8}  {'reexec s':>8}  {'merge s':>8}")

    arms: dict = {}
    failures: List[str] = []
    for count in shard_counts:
        sws = ShardedWorkspace.from_points(
            points, obstacles, shards=count, page_size=args.page_size)
        sws.prefetch_all()
        best_wall, rows, breakdown = None, None, None
        for _ in range(max(1, args.repeats)):
            wall, got, parts = run_arm(sws, queries, workers, mode)
            if best_wall is None or wall < best_wall:
                best_wall, rows, breakdown = wall, got, parts
        if rows != baseline:
            failures.append(f"{count}-shard arm diverged from the "
                            "unsharded workspace")
        stats = sws.stats
        arms[str(count)] = {
            "shards": count,
            "wall_s": best_wall,
            "qps": len(queries) / best_wall if best_wall > 0 else 0.0,
            "fanout_ratio": stats.fanout_ratio,
            "border_expansions": stats.border_expansions,
            "replicated_obstacles": stats.replicated_obstacles,
            "identical": rows == baseline,
            **breakdown,
        }

    base_qps = arms[str(shard_counts[0])]["qps"]
    for count in shard_counts:
        row = arms[str(count)]
        row["speedup"] = row["qps"] / base_qps if base_qps > 0 else 0.0
        print(f"  {count:>6}  {row['wall_s']:>8.3f}  {row['qps']:>8.1f}  "
              f"{row['speedup']:>7.2f}x  {row['fanout_ratio']:>7.2f}  "
              f"{row['border_expansions']:>6}  "
              f"{row['replicated_obstacles']:>5}  "
              f"{row['route_s']:>8.3f}  {row['reexec_s']:>8.3f}  "
              f"{row['merge_build_s']:>8.3f}")

    widest = arms[str(shard_counts[-1])]
    if args.require_scaling > 0:
        # Scaling needs headroom: with fewer effective workers than the
        # threshold (or a single-entry sweep) the requirement cannot be
        # met even with zero overhead — skip rather than fail.
        if len(shard_counts) < 2 or workers <= args.require_scaling:
            print(f"\n  WARNING: {workers} effective worker(s); "
                  f"--require-scaling {args.require_scaling} skipped "
                  "(no headroom above the theoretical ceiling)")
        elif widest["speedup"] < args.require_scaling:
            failures.append(
                f"{widest['shards']}-shard QPS speedup "
                f"{widest['speedup']:.2f}x below required "
                f"{args.require_scaling:.2f}x")

    identical = all(row["identical"] for row in arms.values())
    emit("bench_shards", {
        "workload": {"queries": len(queries), "points": args.points,
                     "obstacles": len(obstacles), "seed": args.seed,
                     "kind": "warm mixed CONN/COkNN/ONN/range"},
        "mode": mode,
        "workers": workers,
        "arms": arms,
        "identical_results": identical,
    }, path=args.emit)

    if args.require_identical and not identical:
        failures.append("sharded answers diverged (see per-arm flags)")
    if failures:
        for f in failures:
            print(f"\nERROR: {f}")
        return 1
    print("\n  identical result tuples across every shard count")
    return 0


if __name__ == "__main__":
    sys.exit(main())
