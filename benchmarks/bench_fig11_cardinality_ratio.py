"""Figure 11: COkNN performance vs |P|/|O| (UL and ZL, k = 5, ql = 4.5 %).

Paper's claims: query time is U-shaped in the cardinality ratio (fastest
near 0.5); NOE shrinks as data density grows while NPE rises; |SVG|
decreases monotonically with the ratio.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    PARAM_DEFAULTS,
    PARAM_GRID,
    make_dataset,
    run_batch,
)

from conftest import queries_for, record_metrics

from conftest import BENCH_SCALE


@pytest.mark.parametrize("combo", ["UL", "ZL"])
@pytest.mark.parametrize("ratio", PARAM_GRID["ratio"])
def test_coknn_vs_cardinality_ratio(benchmark, combo, ratio):
    points, obstacles = make_dataset(combo, BENCH_SCALE, ratio=ratio)
    batch = queries_for(obstacles, PARAM_DEFAULTS["ql"])

    def run():
        return run_batch(points, obstacles, batch,
                         k=int(PARAM_DEFAULTS["k"]))

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    benchmark.extra_info["ratio"] = ratio
    benchmark.extra_info["cardinality"] = len(points)
    assert agg.queries >= 1
