#!/usr/bin/env python3
"""Locality-scheduled vs submission-order batches on a clustered workload.

A correlated workload — several fleets of moving queries, each fleet
re-evaluating in its own neighborhood — arrives *interleaved*: consecutive
submissions come from different fleets, so under fifo execution consecutive
queries share no obstacle footprint and every one pays its own obstacle-tree
scan.  ``Workspace.execute_many(..., schedule="locality")`` reorders the
batch by spatial locality (grid bucketing + Hilbert order) and issues one
capsule-calibrated prefetch per bucket, so all but the first query of each
neighborhood are served from the cache.

Both schedules return identical results in submission order; the benchmark
reports obstacle-tree page reads, cache hit/miss counts and wall time, and
exits non-zero if the scheduled batch fails to read fewer obstacle pages.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_batch_scheduler.py
    PYTHONPATH=src python benchmarks/bench_batch_scheduler.py --clusters 4 --per-cluster 10
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Sequence

from repro import OnnQuery, RectObstacle, Workspace
from repro.bench.metrics import AggregateStats, Row, format_table

COLUMNS = ("obstacle_reads", "cache_hits", "cache_misses", "cache_served",
           "noe", "total_time_ms")


def build_scene(args) -> tuple:
    """A deterministic city: a building lattice plus scattered data points."""
    rng = random.Random(args.seed)
    side = args.obstacle_side
    step = (100.0 - 6.0) / side
    obstacles = [RectObstacle(3 + step * gx, 3 + step * gy,
                              3 + step * gx + 0.4 * step,
                              3 + step * gy + 0.3 * step)
                 for gx in range(side) for gy in range(side)]
    points = []
    while len(points) < args.points:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        # A point inside a building would be unreachable, forcing a query
        # to drain the whole obstacle tree and skewing the comparison.
        if not any(o.contains_interior(x, y) for o in obstacles):
            points.append((len(points), (x, y)))
    return points, obstacles


def clustered_queries(args) -> List[OnnQuery]:
    """``clusters`` fleets of jittered ONN queries, interleaved round-robin."""
    rng = random.Random(args.seed + 1)
    fleets: List[List[OnnQuery]] = []
    for c in range(args.clusters):
        ax, ay = rng.uniform(15, 85), rng.uniform(15, 85)
        fleets.append([
            OnnQuery((ax + args.jitter * i, ay + 0.3 * args.jitter * i),
                     knn=args.k, label=f"fleet{c}-{i}")
            for i in range(args.per_cluster)])
    interleaved: List[OnnQuery] = []
    for i in range(args.per_cluster):
        for fleet in fleets:
            interleaved.append(fleet[i])
    return interleaved


def run_schedule(args, queries: Sequence[OnnQuery], schedule: str):
    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size)
    snap = ws.obstacle_tree.tracker.stats.snapshot()
    started = time.perf_counter()
    results = ws.execute_many(queries, schedule=schedule)
    wall = time.perf_counter() - started
    reads = ws.obstacle_tree.tracker.stats.delta(snap).logical_reads
    agg = AggregateStats.of([r.stats for r in results])
    agg.obstacle_reads = float(reads)  # batch total incl. prefetch scans
    row = Row(label=schedule, agg=agg,
              extra={"wall_s": wall, "tree_reads": reads,
                     "hits": ws.cache_stats.hits,
                     "misses": ws.cache_stats.misses,
                     "prefetches": ws.cache_stats.prefetch_calls})
    return row, [tuple(r.tuples()) for r in results]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Locality-scheduled vs fifo batch execution.")
    parser.add_argument("--points", type=int, default=150)
    parser.add_argument("--obstacle-side", type=int, default=12,
                        help="buildings per axis (side^2 obstacles)")
    parser.add_argument("--clusters", type=int, default=2)
    parser.add_argument("--per-cluster", type=int, default=8)
    parser.add_argument("--jitter", type=float, default=2.5,
                        help="spacing between a fleet's successive queries")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    queries = clustered_queries(args)
    runs = [run_schedule(args, queries, schedule)
            for schedule in ("fifo", "locality")]
    rows = [row for row, _answers in runs]
    (fifo, fifo_answers), (sched, sched_answers) = runs

    title = (f"Batch scheduler — {len(queries)} interleaved ONN queries, "
             f"{args.clusters} clusters x {args.per_cluster}, k={args.k}")
    print(format_table(title, "schedule", rows, columns=COLUMNS))
    print()
    for row in rows:
        print(f"  {row.label:>9}: {row.extra['tree_reads']} obstacle-tree "
              f"page reads, {row.extra['hits']} hits / "
              f"{row.extra['misses']} misses, "
              f"{row.extra['prefetches']} prefetches, "
              f"{row.extra['wall_s']:.3f} s wall")

    if fifo_answers != sched_answers:
        print("\nERROR: schedules disagree on results")
        return 1
    saved = fifo.extra["tree_reads"] - sched.extra["tree_reads"]
    if saved <= 0:
        print(f"\nERROR: locality schedule saved no obstacle reads "
              f"({sched.extra['tree_reads']} vs {fifo.extra['tree_reads']})")
        return 1
    pct = 100.0 * saved / max(fifo.extra["tree_reads"], 1)
    print(f"\n  identical answers in submission order; locality schedule "
          f"reads {saved} fewer obstacle pages ({pct:.0f}% saved)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
