#!/usr/bin/env python3
"""Parallel snapshot serving vs serial execution (the PR 5 tentpole bench).

A warm mixed CONN/COkNN/ONN workload — the obstacle cache holds the whole
scene, the shared visibility graph is resident — is executed three ways
over one workspace snapshot:

* **serial** — the locality-scheduled batch executor, one thread;
* **thread** — the same buckets on a thread pool (shares every cache
  through the concurrency locks; scales only as far as the interpreter
  allows);
* **fork** — the same buckets on forked worker processes, each a
  copy-on-write snapshot of the warmed workspace (true multi-core
  scaling; POSIX only).

The guard asserts **byte-identical result tuples** across all arms —
parallelism must change wall clock only — and, when the host has the
cores for it (or ``--require-speedup`` insists), that fork-mode
throughput reaches the configured multiple of serial at the configured
worker count.  Results are emitted to the shared benchmark JSON (see
:mod:`_emit`) for the artifact trail.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_concurrent.py
    PYTHONPATH=src python benchmarks/bench_concurrent.py \
        --workers 4 --require-speedup 2.0
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from typing import List, Sequence

from _emit import add_emit_argument, emit

from repro import (
    CoknnQuery,
    ConnQuery,
    OnnQuery,
    RectObstacle,
    Segment,
    Workspace,
)
from repro.query.parallel import effective_workers, last_batch_stats


def build_scene(args):
    """A building lattice plus scattered reachable data points."""
    rng = random.Random(args.seed)
    side = args.obstacle_side
    step = (100.0 - 6.0) / side
    obstacles = [RectObstacle(3 + step * gx, 3 + step * gy,
                              3 + step * gx + 0.4 * step,
                              3 + step * gy + 0.3 * step)
                 for gx in range(side) for gy in range(side)]
    points = []
    while len(points) < args.points:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        if not any(o.contains_interior(x, y) for o in obstacles):
            points.append((len(points), (x, y)))
    return points, obstacles


def mixed_workload(args) -> List:
    """CONN, COkNN, and ONN queries scattered over the whole scene."""
    rng = random.Random(args.seed + 1)
    queries = []
    for i in range(args.queries):
        x, y = rng.uniform(5, 75), rng.uniform(5, 90)
        roll = i % 3
        if roll == 0:
            queries.append(ConnQuery(
                Segment(x, y, x + rng.uniform(8, 20), y),
                label=f"conn-{i}"))
        elif roll == 1:
            queries.append(CoknnQuery(
                Segment(x, y, x, y + rng.uniform(8, 20)),
                rng.randrange(2, 4), label=f"coknn-{i}"))
        else:
            queries.append(OnnQuery((x, y), rng.randrange(1, 4),
                                    label=f"onn-{i}"))
    return queries


def result_rows(results) -> list:
    """Exact comparable view: full tuples, no rounding."""
    return [res.tuples() for res in results]


def run_arm(ws: Workspace, queries, label: str, workers: int,
            mode: str) -> dict:
    snap = ws.snapshot()
    started = time.perf_counter()
    if workers <= 1:
        results = snap.execute_many(queries)
    else:
        results = snap.execute_many(queries, workers=workers, mode=mode)
    wall = time.perf_counter() - started
    row = {"label": label, "workers": workers, "mode": mode,
           "wall_s": wall, "qps": len(queries) / wall if wall > 0 else 0.0}
    stats = last_batch_stats()
    if workers > 1 and stats is not None:
        row["utilization"] = stats.worker_utilization
        row["lock_contention"] = stats.lock_contention
        row["tasks"] = stats.tasks
        row["graph_clones"] = stats.graph_clones
    return row, result_rows(results)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel snapshot serving vs serial execution.")
    parser.add_argument("--points", type=int, default=60)
    parser.add_argument("--obstacle-side", type=int, default=7,
                        help="buildings per axis (side^2 obstacles)")
    parser.add_argument("--queries", type=int, default=120,
                        help="warm mixed workload size")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per arm (best is reported)")
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--require-speedup", type=float, default=0.0,
                        help="fail unless fork-mode throughput reaches this "
                             "multiple of serial (skipped with a warning "
                             "when the host lacks the cores)")
    add_emit_argument(parser)
    args = parser.parse_args(argv)

    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size)
    queries = mixed_workload(args)

    # Warm everything the parallel arms will share: obstacle cache,
    # coverage capsules, the shared visibility graph and its cached rows.
    ws.prefetch_all()
    baseline = result_rows(ws.execute_many(queries))

    fork_workers = effective_workers(args.workers, "fork")
    arms = [("serial", 1, "thread"),
            ("thread", args.workers, "thread")]
    if hasattr(os, "fork"):
        arms.append(("fork", fork_workers, "fork"))

    best: dict = {}
    failures: List[str] = []
    for label, workers, mode in arms:
        for _ in range(max(1, args.repeats)):
            row, rows = run_arm(ws, queries, label, workers, mode)
            if rows != baseline:
                failures.append(f"{label} arm diverged from serial results")
                break
            if label not in best or row["wall_s"] < best[label]["wall_s"]:
                best[label] = row

    serial_wall = best["serial"]["wall_s"]
    print(f"\nWarm mixed workload — {len(queries)} queries "
          f"({args.points} points, {len(obstacles)} obstacles), "
          f"host cpus: {os.cpu_count()}")
    print(f"  {'arm':>8}  {'workers':>7}  {'wall s':>8}  {'qps':>8}  "
          f"{'speedup':>8}  {'util':>6}")
    for label, row in best.items():
        speedup = serial_wall / row["wall_s"] if row["wall_s"] > 0 else 0.0
        row["speedup"] = speedup
        util = f"{row.get('utilization', 1.0):.0%}"
        print(f"  {label:>8}  {row['workers']:>7}  {row['wall_s']:>8.3f}  "
              f"{row['qps']:>8.1f}  {speedup:>7.2f}x  {util:>6}")

    fork_speedup = best.get("fork", {}).get("speedup", 0.0)
    if args.require_speedup > 0:
        # The requirement is only meaningful with headroom above the
        # zero-overhead ceiling (speedup can never exceed the effective
        # worker count): on a host whose cores put the ceiling at or
        # below the threshold, skip instead of failing deterministically.
        if "fork" not in best or fork_workers <= args.require_speedup:
            print(f"\n  WARNING: host has {os.cpu_count()} cpu(s) -> "
                  f"{fork_workers} effective fork worker(s); "
                  f"--require-speedup {args.require_speedup} skipped "
                  "(no headroom above the theoretical ceiling)")
        elif fork_speedup < args.require_speedup:
            failures.append(
                f"fork speedup {fork_speedup:.2f}x at {fork_workers} "
                f"workers below required {args.require_speedup:.2f}x")

    emit("bench_concurrent", {
        "workload": {"queries": len(queries), "points": args.points,
                     "obstacles": len(obstacles), "seed": args.seed,
                     "kind": "warm mixed CONN/COkNN/ONN"},
        "workers_requested": args.workers,
        "arms": best,
        "serial_wall_s": serial_wall,
        "fork_speedup": fork_speedup,
        "identical_results": not failures,
    }, path=args.emit)

    if failures:
        for f in failures:
            print(f"\nERROR: {f}")
        return 1
    print("\n  identical result tuples across all arms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
