"""Figure 12: COkNN performance vs LRU buffer size (CL, k = 5, ql = 4.5 %).

Paper's claim: a non-zero buffer improves ONLY the I/O cost — CPU time, NPE,
NOE and |SVG| are untouched.  The first half of the workload warms the pool;
only the second half is measured, as in the paper.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import PARAM_DEFAULTS, PARAM_GRID, run_batch

from conftest import QUERIES, queries_for, record_metrics


@pytest.mark.parametrize("buffer_pct", PARAM_GRID["buffer"])
def test_coknn_vs_buffer_size(benchmark, cl_dataset, buffer_pct):
    points, obstacles = cl_dataset
    batch = queries_for(obstacles, PARAM_DEFAULTS["ql"], count=QUERIES * 2)

    def run():
        return run_batch(points, obstacles, batch,
                         k=int(PARAM_DEFAULTS["k"]),
                         buffer_pct=float(buffer_pct), warmup=QUERIES)

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    benchmark.extra_info["buffer_pct"] = buffer_pct
    assert agg.queries == QUERIES
