"""Cold-vs-warm latency for a batch of correlated queries.

Measures what the service layer's cross-query obstacle cache buys on the
workload it targets: many queries over one dataset whose footprints overlap
(continuous monitoring / moving queries).  Four variants answer the same
batch — see :mod:`repro.bench.warmcold` — and every variant returns
identical results; only obstacle-tree I/O and wall time differ.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_warm_cache.py
    PYTHONPATH=src python benchmarks/bench_warm_cache.py --scale small --queries 100 --k 5
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from repro.bench.experiments import SCALES, make_dataset
from repro.bench.metrics import format_table
from repro.bench.warmcold import warm_cold_rows
from repro.bench.workloads import clustered_query_workload

COLUMNS = ("total_time_ms", "io_time_ms", "cpu_time_ms", "obstacle_reads",
           "cache_hits", "cache_misses", "cache_served", "noe")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cold vs warm workspace latency on a correlated batch.")
    parser.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    parser.add_argument("--queries", type=int, default=100,
                        help="batch size (default 100, as in the paper's "
                             "workloads)")
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--ql", type=float, default=3.0,
                        help="query length as %% of the space side")
    parser.add_argument("--spread", type=float, default=2.0,
                        help="cluster spread as %% of the space side")
    parser.add_argument("--overfetch", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    points, obstacles = make_dataset("CL", args.scale)
    queries = clustered_query_workload(random.Random(args.seed), args.queries,
                                       args.ql, obstacles,
                                       spread_percent=args.spread)
    rows = warm_cold_rows(points, obstacles, queries, k=args.k,
                          overfetch=args.overfetch)
    title = (f"Warm vs cold obstacle cache — {args.queries} clustered "
             f"queries (CL/{args.scale}, k={args.k}, ql={args.ql:g}%)")
    print(format_table(title, "variant", rows, columns=COLUMNS))
    cold = next(r for r in rows if r.label == "cold")
    best = min(rows, key=lambda r: r.extra["wall_s"])
    print()
    for row in rows:
        print(f"  {row.label:>14}: {row.extra['wall_s']:.3f} s wall, "
              f"{row.agg.obstacle_reads:.1f} obstacle reads/query")
    if best.extra["wall_s"] > 0:
        print(f"  best variant ({best.label}) is "
              f"{cold.extra['wall_s'] / best.extra['wall_s']:.2f}x the cold "
              f"batch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
