"""Ablation: contribution of each pruning rule (this library's addition).

DESIGN.md calls out the paper's pruning rules as the design choices to
ablate: Lemma 1 (endpoint dominance in envelope merges), Lemma 5
(predecessor-region subtraction), Lemma 6 (triangle refinement; paper
configuration), Lemma 7 (CPLMAX cutoff), Lemma 2 (RLMAX scan termination),
and this library's coverage-validation round.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import PARAM_DEFAULTS, run_batch
from repro.core import ConnConfig, DEFAULT_CONFIG

from conftest import queries_for, record_metrics

VARIANTS = {
    "default": DEFAULT_CONFIG,
    "paper_lemma6": ConnConfig.paper_faithful(),
    "no_lemma1": ConnConfig(use_lemma1=False),
    "no_lemma5": ConnConfig(use_lemma5=False),
    "no_lemma7": ConnConfig(use_lemma7=False),
    "no_rlmax": ConnConfig(use_rlmax=False),
    "no_pruning": ConnConfig.no_pruning(),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_pruning_ablation(benchmark, cl_dataset, variant):
    points, obstacles = cl_dataset
    batch = queries_for(obstacles, PARAM_DEFAULTS["ql"])

    def run():
        return run_batch(points, obstacles, batch, k=1,
                         config=VARIANTS[variant])

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    benchmark.extra_info.update({
        "variant": variant,
        "split_solves": round(agg.split_solves, 1),
        "nodes_expanded": round(agg.nodes_expanded, 1),
        "lemma1_prunes": round(agg.lemma1_prunes, 1),
        "lemma7_cutoffs": round(agg.lemma7_cutoffs, 1),
    })
    assert agg.queries >= 1
