"""Figure 10: COkNN performance vs k (CL, ql = 4.5 %).

Paper's claim: total time, NPE, NOE and |SVG| all grow (mildly) with k —
a larger k widens the search range and the result list.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import PARAM_DEFAULTS, PARAM_GRID, run_batch

from conftest import queries_for, record_metrics


@pytest.mark.parametrize("k", PARAM_GRID["k"])
def test_coknn_vs_k(benchmark, cl_dataset, k):
    points, obstacles = cl_dataset
    batch = queries_for(obstacles, PARAM_DEFAULTS["ql"])

    def run():
        return run_batch(points, obstacles, batch, k=int(k))

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    assert agg.npe >= k or agg.npe >= 1
