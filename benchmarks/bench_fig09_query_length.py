"""Figure 9: COkNN performance vs query length ql (CL, k = 5).

Paper's claims to reproduce (Section 5.2):
* total time, NPE, and NOE all grow with ql;
* |SVG| grows with ql but stays far below FULL = 4 |O|.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import PARAM_DEFAULTS, PARAM_GRID, run_batch

from conftest import QUERIES, queries_for, record_metrics


@pytest.mark.parametrize("ql", PARAM_GRID["ql"])
def test_coknn_vs_query_length(benchmark, cl_dataset, ql):
    points, obstacles = cl_dataset
    batch = queries_for(obstacles, ql)

    def run():
        return run_batch(points, obstacles, batch,
                         k=int(PARAM_DEFAULTS["k"]))

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_metrics(benchmark, agg)
    benchmark.extra_info["full_svg"] = 4 * len(obstacles)
    assert agg.queries == QUERIES
    assert agg.npe >= 1
    # Figure 9(b): the local graph is a small fraction of the global one.
    assert agg.svg_size < 4 * len(obstacles)
