#!/usr/bin/env python3
"""Shared vs per-query obstructed-distance backends.

Two workloads where the distance substrate — not the query algorithm —
dominates cost (Zhao, Taniar & Harabor 2018):

* **repeated-query** — a warm workspace answers many CONN queries over
  one corridor on a *static* obstacle set.  The per-query backend builds
  (and visibility-tests) a fresh local graph every time; the shared
  backend builds the workspace graph once and reuses the obstacle
  skeleton, so the guard asserts **zero rebuilds across the whole
  workload** and identical results.
* **monitor-storm** — registered monitors are kept fresh while clustered
  updates mutate one neighborhood.  Every repair span is a sub-query;
  the shared backend serves them all from one graph, patching announced
  obstacle inserts in place.

Reported per arm: visibility-graph builds, Dijkstra runs vs memoized
replays, settled nodes, visibility tests, obstacle page reads, wall time.
Exits non-zero when the shared backend rebuilds on the static workload,
fails to reuse across monitor repairs, or disagrees with the per-query
backend on any answer (the guard CI runs).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --queries 200
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
import sys
import time
from typing import List, Sequence

import numpy as np

from _emit import add_emit_argument, emit, emit_scalar

from repro import (
    ConnQuery,
    PlannerOptions,
    RectObstacle,
    RoutingConfig,
    Segment,
    Workspace,
)
from repro.service.updates import AddObstacle, AddSite, RemoveSite, Update


def build_scene(args) -> tuple:
    """A building lattice plus scattered reachable data points."""
    rng = random.Random(args.seed)
    side = args.obstacle_side
    step = (100.0 - 6.0) / side
    obstacles = [RectObstacle(3 + step * gx, 3 + step * gy,
                              3 + step * gx + 0.4 * step,
                              3 + step * gy + 0.3 * step)
                 for gx in range(side) for gy in range(side)]
    points = []
    while len(points) < args.points:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        if not any(o.contains_interior(x, y) for o in obstacles):
            points.append((len(points), (x, y)))
    return points, obstacles


def corridor_queries(args) -> List[ConnQuery]:
    """Repeated and nearby CONN segments along one corridor."""
    rng = random.Random(args.seed + 1)
    queries = []
    for i in range(args.queries):
        y = 50.0 + rng.uniform(-4.0, 4.0)
        ax = rng.uniform(5.0, 25.0)
        queries.append(ConnQuery(Segment(ax, y, ax + rng.uniform(25, 55), y),
                                 label=f"corridor-{i}"))
    return queries


def storm_updates(args, obstacles) -> List[Update]:
    """Clustered site churn and obstacle inserts near one hot spot."""
    rng = random.Random(args.seed + 2)
    hx, hy = 50.0, 50.0
    updates: List[Update] = []
    live = []
    next_id = 100_000
    for _ in range(args.updates):
        roll = rng.random()
        x, y = hx + rng.uniform(-8, 8), hy + rng.uniform(-8, 8)
        if roll < 0.5 and not any(o.contains_interior(x, y)
                                  for o in obstacles):
            updates.append(AddSite(next_id, x, y))
            live.append((next_id, (x, y)))
            next_id += 1
        elif roll < 0.7 and live:
            pid, (px, py) = live.pop(rng.randrange(len(live)))
            updates.append(RemoveSite(pid, px, py))
        else:
            updates.append(AddObstacle(
                RectObstacle(x, y, x + rng.uniform(0.4, 1.5),
                             y + rng.uniform(0.4, 1.2))))
    return updates


def snapshot(results) -> list:
    """Comparable view of answers (owners + rounded geometry)."""
    out = []
    for res in results:
        out.append([(owner, round(lo, 6), round(hi, 6))
                    for owner, (lo, hi) in res.tuples()])
    return out


def backend_row(label: str, ws: Workspace, wall: float, reads: int) -> dict:
    stats = ws.routing.stats if label == "shared" else \
        ws.per_query_backend.stats
    return {
        "label": label,
        "builds": stats.graphs_built,
        "reuses": stats.graph_reuses,
        "rebuilds": stats.evicted + stats.invalidations,
        "runs": stats.dijkstra_runs,
        "replays": stats.dijkstra_replays,
        "settled": stats.nodes_settled,
        "vtests": stats.visibility_tests,
        "batch_calls": stats.batch_visibility_calls,
        "batched_edges": stats.batched_edges_tested,
        "pruned_edges": stats.kernel_pruned_edges,
        "bulk_pushes": stats.heap_bulk_pushes,
        "array_traversals": stats.array_traversals,
        "reads": reads,
        "wall_s": wall,
    }


def dump_profile(prof: cProfile.Profile, arm: str, top: int = 25,
                 out: "str | None" = None) -> None:
    """Top-``top`` cumulative-time profile lines for one arm.

    By default the dump goes to stderr, which keeps it out of stdout's
    result tables and out of any shell redirection capturing the
    benchmark's machine-readable output.  With ``out`` set, each arm's
    dump is appended to that file instead so CI can upload the profiles
    as a build artifact rather than losing them in log scrollback.
    """
    header = f"\n--- profile: {arm} (top {top} by cumulative time) ---"
    if out:
        with open(out, "a") as fh:
            print(header, file=fh)
            stats = pstats.Stats(prof, stream=fh)
            stats.strip_dirs().sort_stats("cumulative").print_stats(top)
        return
    print(header, file=sys.stderr)
    stats = pstats.Stats(prof, stream=sys.stderr)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def run_repeated(args, backend: str, engine: str = "array",
                 label: str = "") -> dict:
    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size,
                               planner=PlannerOptions(backend=backend),
                               routing=RoutingConfig(engine=engine))
    queries = corridor_queries(args)
    ws.execute(queries[0])  # warm the cache; not part of the measured run
    snap = ws.obstacle_tree.tracker.stats.snapshot()
    prof = cProfile.Profile() if getattr(args, "profile", False) else None
    if prof is not None:
        prof.enable()
    started = time.perf_counter()
    results = [ws.execute(q) for q in queries]
    wall = time.perf_counter() - started
    if prof is not None:
        prof.disable()
        dump_profile(prof, label or f"{backend}/{engine}",
                     out=getattr(args, "profile_out", None))
    reads = ws.obstacle_tree.tracker.stats.delta(snap).logical_reads
    row = backend_row("shared" if backend == "shared" else "per-query",
                      ws, wall, reads)
    if label:
        row["label"] = label
    row["answers"] = snapshot(results)
    return row


def run_storm(args, backend: str) -> dict:
    points, obstacles = build_scene(args)
    ws = Workspace.from_points(points, obstacles, page_size=args.page_size,
                               planner=PlannerOptions(backend=backend))
    rng = random.Random(args.seed + 3)
    monitors = []
    for i in range(args.monitors):
        ax, ay = rng.uniform(35, 65), rng.uniform(42, 58)
        seg = Segment(ax, ay, min(95.0, ax + rng.uniform(10, 18)), ay)
        monitors.append(ws.monitors.register(ConnQuery(seg,
                                                       label=f"mon-{i}")))
    updates = storm_updates(args, obstacles)
    started = time.perf_counter()
    ws.apply(updates)
    wall = time.perf_counter() - started
    row = backend_row("shared" if backend == "shared" else "per-query",
                      ws, wall, 0)
    row["reads"] = ws.cache_stats.fetched
    row["answers"] = snapshot([m.result for m in monitors])
    row["patched"] = ws.routing.stats.patched
    row["sessions"] = (ws.routing.stats.sessions if backend == "shared"
                       else ws.per_query_backend.stats.sessions)
    return row


def print_table(title: str, rows: Sequence[dict]) -> None:
    print(f"\n{title}")
    print(f"  {'backend':>10}  {'VG builds':>9}  {'reuses':>7}  "
          f"{'dijkstra':>9}  {'replays':>8}  {'settled':>8}  "
          f"{'vis tests':>10}  {'obst reads':>10}  {'wall s':>7}")
    for r in rows:
        print(f"  {r['label']:>10}  {r['builds']:>9}  {r['reuses']:>7}  "
              f"{r['runs']:>9}  {r['replays']:>8}  {r['settled']:>8}  "
              f"{r['vtests']:>10}  {r['reads']:>10}  {r['wall_s']:>7.3f}")


def answers_agree(a: list, b: list) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if len(ra) != len(rb):
            return False
        for ta, tb in zip(ra, rb):
            if ta[0] != tb[0]:
                return False
            if any(abs(x - y) > 1e-5 for x, y in zip(ta[1:], tb[1:])
                   if np.isfinite(x) or np.isfinite(y)):
                return False
    return True


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Shared vs per-query obstructed-distance backends.")
    parser.add_argument("--points", type=int, default=50)
    parser.add_argument("--obstacle-side", type=int, default=7,
                        help="buildings per axis (side^2 obstacles)")
    parser.add_argument("--queries", type=int, default=60,
                        help="warm repeated-query workload size (>= 50 "
                             "exercises the zero-rebuild guard)")
    parser.add_argument("--monitors", type=int, default=4)
    parser.add_argument("--updates", type=int, default=10)
    parser.add_argument("--page-size", type=int, default=256)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless the array engine beats the scalar "
                             "engine by at least this factor on the warm "
                             "corridor (CI smoke guard)")
    parser.add_argument("--engine-repeats", type=int, default=1,
                        help="interleaved repetitions of the engine arms; "
                             "the best wall per arm is reported")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile every measured arm and dump the top "
                             "functions by cumulative time to stderr "
                             "(the walls reported while profiling carry "
                             "tracer overhead — don't gate on them)")
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="append each arm's profile dump to FILE "
                             "instead of stderr (implies --profile); lets "
                             "CI keep profiles as an artifact")
    add_emit_argument(parser)
    args = parser.parse_args(argv)
    if args.profile_out:
        args.profile = True
        # Arms append as they finish; truncate once so reruns don't stack.
        open(args.profile_out, "w").close()

    failures = []

    shared = run_repeated(args, "shared")
    per = run_repeated(args, "per-query")
    print_table(f"Repeated-query workload — {args.queries} warm CONN "
                f"queries, static obstacles", (shared, per))
    if not answers_agree(shared["answers"], per["answers"]):
        failures.append("repeated-query answers disagree across backends")
    if shared["builds"] > 1 or shared["rebuilds"] > 0:
        failures.append(
            f"shared backend rebuilt on a static workload "
            f"({shared['builds']} builds, {shared['rebuilds']} rebuilds)")
    if per["builds"] < args.queries:
        failures.append("per-query backend did not build per query "
                        f"({per['builds']} < {args.queries})")

    # Interleaved best-of-N: alternating the arms keeps a machine-load
    # drift from landing entirely on one engine and skewing the ratio.
    array_arm = scalar_arm = None
    for _ in range(max(1, args.engine_repeats)):
        a = run_repeated(args, "shared", engine="array", label="array")
        s = run_repeated(args, "shared", engine="scalar", label="scalar")
        if array_arm is None or a["wall_s"] < array_arm["wall_s"]:
            array_arm = a
        if scalar_arm is None or s["wall_s"] < scalar_arm["wall_s"]:
            scalar_arm = s
    print_table(f"Engine arms — shared backend, {args.queries} warm CONN "
                f"queries, array vs scalar substrate",
                (array_arm, scalar_arm))
    speedup = (scalar_arm["wall_s"] / array_arm["wall_s"]
               if array_arm["wall_s"] > 0 else float("inf"))
    print(f"\n  array engine speedup over scalar oracle: {speedup:.2f}x "
          f"({array_arm['batch_calls']} batched kernel calls, "
          f"{array_arm['batched_edges']} edges tested in batch, "
          f"{array_arm['pruned_edges']} bbox-pruned, "
          f"{array_arm['bulk_pushes']} bulk heap pushes)")
    if not answers_agree(array_arm["answers"], scalar_arm["answers"]):
        failures.append("engine arms disagree: array vs scalar answers")
    if args.require_speedup is not None and speedup < args.require_speedup:
        failures.append(
            f"array engine speedup {speedup:.2f}x below required "
            f"{args.require_speedup:.2f}x")

    s_storm = run_storm(args, "shared")
    p_storm = run_storm(args, "per-query")
    print_table(f"Monitor-storm workload — {args.monitors} monitors, "
                f"{args.updates} clustered updates", (s_storm, p_storm))
    print(f"\n  shared backend: {s_storm['sessions']} repair sessions on "
          f"{s_storm['builds']} graph build(s), {s_storm['patched']} "
          f"obstacle inserts patched in place")
    if not answers_agree(s_storm["answers"], p_storm["answers"]):
        failures.append("monitor-storm standing results disagree")
    if s_storm["sessions"] > 0 and \
            s_storm["builds"] >= s_storm["sessions"]:
        failures.append("monitor repairs did not reuse the shared graph")

    def strip(row: dict) -> dict:
        return {k: v for k, v in row.items() if k != "answers"}

    emit("bench_backends", {
        "workload": {"queries": args.queries, "points": args.points,
                     "monitors": args.monitors, "updates": args.updates,
                     "seed": args.seed},
        "repeated_query": {"shared": strip(shared), "per_query": strip(per)},
        "monitor_storm": {"shared": strip(s_storm),
                          "per_query": strip(p_storm)},
        "engines": {"array": strip(array_arm), "scalar": strip(scalar_arm),
                    "speedup": speedup},
        "identical_results": not failures,
    }, path=args.emit)
    # The PR's headline number, diffable with one key lookup.
    emit_scalar("corridor_speedup", round(speedup, 3), path=args.emit)

    if failures:
        for f in failures:
            print(f"\nERROR: {f}")
        return 1
    saved = per["builds"] - shared["builds"]
    print(f"\n  identical results; shared backend avoided {saved} "
          f"visibility-graph builds on the warm workload "
          f"({shared['vtests']} vs {per['vtests']} visibility tests)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
