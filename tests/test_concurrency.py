"""Snapshot isolation and parallel execution: the concurrency suite.

Covers the read/write lock, snapshot lifecycle, the parallel batch
executor's result equivalence (thread and fork modes), per-session backend
counter aggregation, parallel monitor repair, the async service front —
and the stress test interleaving live updates with parallel batches from
multiple threads, asserting every batch matches a serial re-execution on
its pinned snapshot.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AddObstacle,
    AddSite,
    CoknnQuery,
    OnnQuery,
    RangeQuery,
    RectObstacle,
    RemoveObstacle,
    RemoveSite,
    Segment,
    SnapshotExpired,
    Workspace,
)
from repro.datasets.synthetic import random_rect_obstacles, uniform_points
from repro.query.parallel import (
    effective_workers,
    execute_many_parallel,
    last_batch_stats,
)
from repro.service.concurrency import CountingRLock, ReadWriteLock

BOUNDS = (0.0, 0.0, 1000.0, 1000.0)


def make_ws(n_points=120, n_obstacles=50, seed=3, **kwargs):
    rng = random.Random(seed)
    pts = [(i, xy) for i, xy in enumerate(uniform_points(n_points, rng,
                                                         BOUNDS))]
    obs = random_rect_obstacles(n_obstacles, rng, bounds=BOUNDS)
    return Workspace.from_points(pts, obs, **kwargs)


def mixed_queries(rng, n):
    qs = []
    for _ in range(n):
        x, y = rng.uniform(50, 950), rng.uniform(50, 950)
        kind = rng.randrange(3)
        if kind == 0:
            qs.append(CoknnQuery(Segment(x, y, x + rng.uniform(20, 150),
                                         y + rng.uniform(-80, 80)),
                                 rng.randrange(1, 4)))
        elif kind == 1:
            qs.append(OnnQuery((x, y), rng.randrange(1, 4)))
        else:
            qs.append(RangeQuery((x, y), rng.uniform(40, 140)))
    return qs


def tuple_rows(results):
    return [r.tuples() for r in results]


def rows_close(a, b, tol=1e-9):
    """Tolerant result comparison: owners exact, numbers to ``tol``.

    Parallel/serial equivalence within one snapshot is bit-exact and
    compared with ``==``; repaired standing monitor results may differ
    from a fresh execution by float-splicing noise, which the monitor
    suite has always compared with a tolerance.
    """
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if len(ra) != len(rb):
            return False
        for ta, tb in zip(ra, rb):
            if ta[0] != tb[0]:
                return False
            va = ta[1] if isinstance(ta[1], tuple) else (ta[1],)
            vb = tb[1] if isinstance(tb[1], tuple) else (tb[1],)
            if va != pytest.approx(vb, abs=tol):
                return False
    return True


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        log = []

        def reader(i):
            with lock.read():
                log.append(("r", i))
                time.sleep(0.02)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(4)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Four 20 ms readers overlapping: far less than 80 ms serial.
        assert time.perf_counter() - t0 < 0.075
        assert len(log) == 4

    def test_writer_waits_for_readers(self):
        lock = ReadWriteLock()
        order = []
        ready = threading.Event()

        def reader():
            with lock.read():
                ready.set()
                time.sleep(0.03)
                order.append("read")

        def writer():
            ready.wait()
            with lock.write():
                order.append("write")

        tr, tw = threading.Thread(target=reader), threading.Thread(
            target=writer)
        tr.start()
        tw.start()
        tr.join()
        tw.join()
        assert order == ["read", "write"]
        assert lock.write_waits == 1

    def test_reentrant_read_and_read_under_write(self):
        lock = ReadWriteLock()
        with lock.read():
            with lock.read():
                pass
        with lock.write():
            with lock.read():  # virtual read under own write
                pass
            with lock.write():  # re-entrant write
                pass
        # Write released before a virtual read would be: simulate.
        lock.acquire_write()
        lock.acquire_read()
        lock.release_write()
        lock.release_read()
        assert lock.readers == 0 and not lock.write_held

    def test_upgrade_is_rejected(self):
        lock = ReadWriteLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_counting_lock_counts_contention(self):
        lock = CountingRLock()
        hold = threading.Event()
        entered = threading.Event()

        def holder():
            with lock:
                entered.set()
                hold.wait()

        def contender():
            with lock:
                pass

        t = threading.Thread(target=holder)
        t.start()
        entered.wait()
        blocked = threading.Thread(target=contender)
        blocked.start()
        time.sleep(0.01)
        hold.set()
        blocked.join()
        t.join()
        assert lock.contended == 1
        assert lock.acquisitions == 2


class TestThreadLocalTracking:
    def test_page_tracker_attributes_reads_per_thread(self):
        from repro import PageTracker

        tracker = PageTracker()
        pid = tracker.allocate()
        counts = {}

        def reader(name, n):
            before = tracker.local_stats.snapshot()
            for _ in range(n):
                tracker.access(pid)
            counts[name] = tracker.local_stats.delta(before).logical_reads

        threads = [threading.Thread(target=reader, args=(f"t{i}", 10 + i))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each thread sees exactly its own reads, never a neighbor's.
        assert counts == {"t0": 10, "t1": 11, "t2": 12, "t3": 13}


class TestSnapshot:
    def test_snapshot_pins_versions_and_expires(self):
        ws = make_ws()
        snap = ws.snapshot()
        q = CoknnQuery(Segment(100, 100, 300, 200), 2)
        want = ws.execute(q).tuples()
        assert snap.execute(q).tuples() == want
        assert not snap.expired
        ws.add_site(999, (500.0, 500.0))
        assert snap.expired
        with pytest.raises(SnapshotExpired):
            snap.execute(q)
        with pytest.raises(SnapshotExpired):
            snap.execute_many([q], workers=2)
        fresh = ws.snapshot()
        assert fresh.execute(q).query is q

    def test_snapshot_is_immutable(self):
        ws = make_ws()
        snap = ws.snapshot()
        with pytest.raises(AttributeError, match="immutable"):
            snap.apply
        with pytest.raises(AttributeError, match="immutable"):
            snap.add_obstacle

    def test_snapshot_pins_cache_and_graph_state(self):
        ws = make_ws()
        ws.prefetch_all()
        ws.conn(Segment(100, 100, 300, 200))
        snap = ws.snapshot()
        assert snap.cache_view.resident == len(ws.cache)
        assert snap.cache_view.epoch == ws.cache.epoch
        assert snap.vg_generation == ws.routing.generation
        assert snap.tree_versions
        # Unannounced direct tree mutation also expires the snapshot.
        ws.obstacle_tree.insert(
            RectObstacle(1.0, 1.0, 2.0, 2.0), RectObstacle(
                1.0, 1.0, 2.0, 2.0).mbr())
        assert snap.expired


class TestParallelExecutor:
    @pytest.mark.parametrize("schedule", ["locality", "fifo"])
    def test_thread_mode_matches_serial(self, schedule):
        ws = make_ws()
        rng = random.Random(11)
        qs = mixed_queries(rng, 40)
        serial = ws.execute_many(qs, schedule="fifo")
        par = ws.execute_many(qs, schedule=schedule, workers=4)
        assert tuple_rows(par) == tuple_rows(serial)
        for q, r in zip(qs, par):
            assert r.query is q
        stats = last_batch_stats()
        assert stats.queries == len(qs)
        assert stats.workers == 4 and stats.mode == "thread"
        assert stats.wall_time_s > 0
        assert 0.0 < stats.worker_utilization <= 1.0

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX only")
    def test_fork_mode_matches_serial(self):
        ws = make_ws()
        rng = random.Random(12)
        qs = mixed_queries(rng, 24)
        ws.prefetch_all()  # warm parent: children inherit by fork
        serial = ws.execute_many(qs)
        par = ws.snapshot().execute_many(qs, workers=2, mode="fork")
        assert tuple_rows(par) == tuple_rows(serial)

    def test_warm_workload_runs_parallel_on_shared_graph(self):
        ws = make_ws()
        ws.prefetch_all()
        rng = random.Random(13)
        qs = mixed_queries(rng, 30)
        ws.execute_many(qs)  # warm: primary graph resident
        assert ws.routing.ready
        sessions0 = ws.routing.stats.sessions
        par = ws.execute_many(qs, workers=4)
        assert tuple_rows(par) == tuple_rows(ws.execute_many(qs))
        # Every spatial query ran a shared-backend session; counters
        # aggregated exactly despite concurrent detaches (satellite:
        # per-session counters merged at collection).
        assert ws.routing.stats.sessions > sessions0

    def test_parallel_per_query_stats_are_exact(self):
        ws = make_ws()
        rng = random.Random(14)
        qs = mixed_queries(rng, 24)
        serial = ws.execute_many(qs, schedule="fifo")
        ws2 = make_ws()
        par = ws2.execute_many(qs, schedule="fifo", workers=4)
        # Engine work counters are deterministic per query; each parallel
        # worker must report its own query's counters, not a neighbor's.
        for s, p in zip(serial, par):
            assert s.stats.npe == p.stats.npe
            assert s.stats.backend.sessions == p.stats.backend.sessions
        # Thread-local I/O attribution: summed parallel obstacle reads
        # equal the tree's total logical-read delta (nothing torn or
        # double-charged across workers).
        assert all(p.stats.io.logical_reads >= 0 for p in par)

    def test_backend_session_totals_aggregate(self):
        """Satellite: BackendStats counters merge per-session at collection
        — totals equal the sum of per-query blocks even under parallel
        detach."""
        ws = make_ws()
        ws.prefetch_all()
        rng = random.Random(15)
        qs = [CoknnQuery(Segment(rng.uniform(50, 900), rng.uniform(50, 900),
                                 rng.uniform(50, 900), rng.uniform(50, 900)),
                         2) for _ in range(20)]
        before_shared = ws.routing.stats.sessions
        before_perq = ws.per_query_backend.stats.sessions
        results = ws.execute_many(qs, workers=4)
        total_sessions = (ws.routing.stats.sessions - before_shared) + \
            (ws.per_query_backend.stats.sessions - before_perq)
        assert total_sessions == sum(r.stats.backend.sessions
                                     for r in results)
        vt_per_query = sum(r.stats.backend.visibility_tests
                           for r in results)
        assert vt_per_query >= 0
        # Dijkstra totals: backend cumulative >= sum over this batch's
        # queries (other work may have preceded), and the batch's own
        # per-query deltas are internally consistent.
        for r in results:
            b = r.stats.backend
            assert b.sessions == 1
            assert b.nodes_settled >= 0 and b.dijkstra_runs >= 0

    def test_effective_workers_clamps_fork(self):
        assert effective_workers(1) == 1
        assert effective_workers(8, "thread") == 8
        assert effective_workers(8, "fork") <= max(1, os.cpu_count() or 1)

    def test_accepts_bare_workspace(self):
        ws = make_ws()
        qs = mixed_queries(random.Random(16), 6)
        out = execute_many_parallel(ws, qs, workers=2)
        assert tuple_rows(out) == tuple_rows(ws.execute_many(qs))


class TestServiceFront:
    def test_submit_returns_futures_in_any_order(self):
        ws = make_ws()
        rng = random.Random(17)
        qs = mixed_queries(rng, 12)
        want = tuple_rows(ws.execute_many(qs, schedule="fifo"))
        with ws.service.serve(workers=3) as svc:
            futures = [svc.submit(q) for q in qs]
            got = [f.result(timeout=60).tuples() for f in futures]
        assert got == want

    def test_submit_autostarts_and_shutdown_is_idempotent(self):
        ws = make_ws(n_points=40, n_obstacles=10)
        q = OnnQuery((500.0, 500.0), 2)
        f = ws.service.submit(q)
        assert f.result(timeout=60).tuples() == ws.execute(q).tuples()
        ws.service.shutdown()
        ws.service.shutdown()


class TestParallelMonitors:
    def test_parallel_repair_matches_serial(self):
        rng = random.Random(18)
        updates = [
            AddSite(1000, 300.0, 310.0),
            AddObstacle(RectObstacle(250.0, 250.0, 320.0, 330.0, oid=9001)),
            RemoveSite(1000, 300.0, 310.0),
            RemoveObstacle(RectObstacle(250.0, 250.0, 320.0, 330.0,
                                        oid=9001)),
            AddSite(1001, 620.0, 180.0),
        ]
        queries = [CoknnQuery(Segment(200, 200, 500, 400), 2),
                   CoknnQuery(Segment(100, 600, 600, 650), 1),
                   OnnQuery((320.0, 300.0), 3),
                   RangeQuery((280.0, 280.0), 150.0)]

        def run(repair_workers):
            ws = make_ws(seed=18)
            ws.monitors.repair_workers = repair_workers
            monitors = [ws.monitors.register(q) for q in queries]
            for u in updates:
                ws.apply([u])
            return [m.result.tuples() for m in monitors]

        serial = run(1)
        parallel = run(3)
        assert rows_close(parallel, serial)
        # Exactness: standing results equal fresh executions (to the same
        # splice tolerance the serial monitor suite uses).
        ws = make_ws(seed=18)
        ws.monitors.repair_workers = 3
        monitors = [ws.monitors.register(q) for q in queries]
        for u in updates:
            ws.apply([u])
        assert rows_close([m.result.tuples() for m in monitors],
                          [ws.execute(q).tuples() for q in queries])


class TestInterleavedStress:
    """Satellite: updates racing parallel batches, verified per snapshot."""

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_parallel_batches_match_serial_on_pinned_snapshot(self, seed):
        rng = random.Random(seed)
        ws = make_ws(n_points=60, n_obstacles=24, seed=seed % 1000)
        qs = mixed_queries(rng, 12)
        updates = []
        for i in range(14):
            kind = rng.randrange(4)
            x, y = rng.uniform(100, 900), rng.uniform(100, 900)
            if kind == 0:
                updates.append(AddSite(5000 + i, x, y))
            elif kind == 1 and i > 2:
                prev = updates[rng.randrange(len(updates))]
                if isinstance(prev, AddSite):
                    updates.append(RemoveSite(prev.payload, prev.x, prev.y))
                else:
                    updates.append(AddSite(5000 + i, x, y))
            elif kind == 2:
                updates.append(AddObstacle(RectObstacle(
                    x, y, x + rng.uniform(10, 80), y + rng.uniform(10, 80),
                    oid=7000 + i)))
            else:
                updates.append(AddSite(5000 + i, x, y))

        stop = threading.Event()
        failures = []

        def writer():
            for u in updates:
                if stop.is_set():
                    return
                ws.apply([u])
                time.sleep(0.001)

        def read_batches():
            done = 0
            while done < 4 and not stop.is_set():
                # Pin one version for parallel AND serial execution: any
                # torn read, stale plan, or racy cache serve shows up as a
                # mismatch between the two runs on identical state.
                with ws.read_lock():
                    snap = ws.snapshot()
                    par = snap.execute_many(qs, workers=3)
                    serial = [snap.execute(q) for q in qs]
                if tuple_rows(par) != tuple_rows(serial):
                    failures.append((snap.workspace_version,
                                     tuple_rows(par), tuple_rows(serial)))
                    return
                done += 1

        wt = threading.Thread(target=writer)
        rts = [threading.Thread(target=read_batches) for _ in range(2)]
        wt.start()
        for t in rts:
            t.start()
        wt.join(timeout=120)
        for t in rts:
            t.join(timeout=120)
        stop.set()
        assert not failures, f"snapshot divergence: {failures[0][0]}"
        # The workspace is still healthy afterwards.
        final = ws.execute_many(qs)
        assert tuple_rows(final) == tuple_rows(
            [ws.execute(q) for q in qs])

    def test_expired_snapshot_never_serves_mid_batch(self):
        """A batch admitted under a read hold finishes on its version even
        while a writer queues; the writer's epoch wait is recorded."""
        ws = make_ws(n_points=50, n_obstacles=20, seed=77)
        qs = mixed_queries(random.Random(77), 10)
        started = threading.Event()
        applied = threading.Event()

        def writer():
            started.wait()
            ws.add_site(8888, (500.0, 500.0))
            applied.set()

        t = threading.Thread(target=writer)
        t.start()
        with ws.read_lock():
            snap = ws.snapshot()
            started.set()
            time.sleep(0.02)  # writer is now blocked on our read hold
            results = snap.execute_many(qs, workers=2)
            assert not applied.is_set(), "update slipped into the epoch"
            assert not snap.expired
        t.join(timeout=60)
        assert applied.is_set()
        assert snap.expired
        assert ws.epoch_waits >= 1
        assert len(results) == len(qs)
