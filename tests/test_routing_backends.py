"""Routing backends: protocol, sessions, sharing, maintenance, planning.

Contract under test:

* **Parity** — a session (per-query or shared) reports the same results
  and the same paper metrics (NOE, |SVG|) as the seed's raw per-query
  local visibility graph;
* **Sharing** — the shared backend builds its graph once and reuses it
  across a warm workload, with zero rebuilds on a static obstacle set;
* **Maintenance** — announced inserts patch the shared graph in place,
  announced removals and unannounced tree mutations drop it (never a
  stale serve), and rebuilds are lazy;
* **Planning** — ``auto`` picks per-query for cold one-shots and the
  shared graph when warm, forced choices are honored, and ``explain()``
  names the selection.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import (
    ConnQuery,
    OnnQuery,
    PerQueryVGBackend,
    PlannerOptions,
    RectObstacle,
    SharedVGBackend,
    Workspace,
    build_unified_tree,
)
from repro.core.stats import QueryStats
from repro.geometry import Segment
from repro.obstacles import LocalVisibilityGraph
from repro.routing import ObstructedDistanceBackend, Traversal
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)

SEG = Segment(0, 50, 100, 50)
OBS = [RectObstacle(30, 40, 40, 60), RectObstacle(55, 30, 60, 70)]
POINTS = [(i, (12.0 * i + 5.0, 48.0)) for i in range(8)]


def make_ws(points=POINTS, obstacles=OBS, **kwargs):
    return Workspace.from_points(points, obstacles, **kwargs)


def assert_same_result(a, b, qseg):
    import numpy as np

    ts = np.linspace(0.0, qseg.length, 101)
    for lv_a, lv_b in zip(a.levels, b.levels):
        assert same_values(lv_a.values(ts), lv_b.values(ts))
    assert [o for o, _iv in a.tuples()] == [o for o, _iv in b.tuples()]


class TestTraversal:
    def test_resume_after_early_stop(self):
        adj = [{1: 1.0}, {0: 1.0, 2: 1.0}, {1: 1.0, 3: 5.0}, {2: 5.0}]
        t = Traversal(adj.__getitem__, 0)
        first = t.advance()
        assert first == (0.0, 0, None)
        # A second consumer replays the prefix and extends the frontier.
        order = [node for _d, node, _p in t.order()]
        assert order == [0, 1, 2, 3]
        assert t.dist[3] == pytest.approx(7.0)

    def test_skip_predicate_blocks_relaxation(self):
        adj = [{1: 1.0, 2: 10.0}, {0: 1.0, 2: 1.0}, {0: 10.0, 1: 1.0}]
        t = Traversal(adj.__getitem__, 0, skip=lambda n: n == 1)
        t.run_to_completion()
        assert 1 not in t.dist
        assert t.dist[2] == pytest.approx(10.0)  # forced the long way


class TestSessionParity:
    """Backend sessions must match the raw graph the seed engine used."""

    def test_per_query_session_matches_raw_graph(self):
        raw = LocalVisibilityGraph(SEG)
        raw.add_obstacles(OBS)
        want = raw.shortest_distances(raw.S, [raw.E])[raw.E]

        backend = PerQueryVGBackend()
        with backend.attach_endpoints(SEG) as session:
            assert session.add_obstacles(OBS) == len(OBS)
            got = backend.shortest_distances(session, session.S,
                                             [session.E])[session.E]
        assert got == pytest.approx(want, abs=1e-9)
        assert backend.stats.sessions == 1
        assert backend.stats.graphs_built == 1

    def test_shared_session_counts_admission_per_query(self):
        """NOE/|SVG| parity: resident obstacles still count per session."""
        ot = build_obstacle_tree(OBS)
        backend = SharedVGBackend(ot)
        for _round in range(2):
            with backend.attach_endpoints(SEG) as session:
                assert session.add_obstacles(OBS) == len(OBS)
                assert session.add_obstacles(OBS) == 0  # re-offer, same query
                assert session.svg_size == 2 + 4 + 4
        assert backend.stats.graphs_built == 1
        assert backend.stats.graph_reuses == 1

    def test_stats_flushed_into_query_stats(self):
        backend = PerQueryVGBackend()
        qs = QueryStats()
        with backend.attach_endpoints(SEG, qs) as session:
            session.add_obstacles(OBS)
            session.shortest_distances(session.S, [session.E])
        assert qs.backend_name == "per-query-vg"
        assert qs.backend.sessions == 1
        assert qs.backend.dijkstra_runs >= 1
        assert qs.backend.nodes_settled > 0
        assert qs.backend.visibility_tests > 0

    def test_dijkstra_order_delegation(self):
        backend = PerQueryVGBackend()
        with backend.attach_endpoints(SEG) as session:
            session.add_obstacles(OBS)
            direct = list(session.dijkstra_order(session.S))
            via_backend = list(backend.dijkstra_order(session, session.S))
        assert direct == via_backend


class TestSharedGraphLifecycle:
    def test_zero_rebuilds_on_static_warm_workload(self):
        ws = make_ws()
        ws.prefetch_all()
        rng = random.Random(5)
        for _ in range(12):
            ws.conn(random_query(rng, min_length=10.0))
        assert ws.routing.stats.graphs_built == 1
        assert ws.routing.stats.graph_reuses == 11
        assert ws.routing.stats.invalidations == 0

    def test_insert_patches_graph_in_place(self):
        ws = make_ws()
        ws.prefetch_all()
        ws.conn(SEG)  # builds the shared graph
        built = ws.routing.stats.graphs_built
        new_obs = RectObstacle(70, 45, 75, 55)
        assert ws.add_obstacle(new_obs)
        assert ws.routing.stats.patched == 1
        assert ws.routing.stats.graphs_built == built  # no rebuild
        got = ws.execute(ws.plan(ConnQuery(SEG), backend="shared"))
        want = Workspace.from_points(
            POINTS, [*OBS, new_obs]).conn(SEG)
        assert_same_result(got, want, SEG)
        assert ws.routing.stats.graphs_built == built

    def test_remove_repairs_graph_in_place(self):
        ws = make_ws()
        ws.prefetch_all()
        ws.conn(SEG)
        assert ws.routing.ready
        built = ws.routing.stats.graphs_built
        assert ws.remove_obstacle(OBS[0])
        # Default routing: surgical repair — the graph survives, nothing
        # is evicted, and the removal shows up in the repair counters.
        assert ws.routing.stats.evicted == 0
        assert ws.routing.stats.removal_repairs >= 1
        assert ws.routing.ready  # still resident, repaired in place
        got = ws.execute(ws.plan(ConnQuery(SEG), backend="shared"))
        want = Workspace.from_points(POINTS, OBS[1:]).conn(SEG)
        assert_same_result(got, want, SEG)
        assert ws.routing.stats.graphs_built == built  # no rebuild

    def test_remove_drops_graph_with_repair_disabled(self):
        from repro.routing import RoutingConfig

        ws = make_ws(routing=RoutingConfig(removal_repair=False))
        ws.prefetch_all()
        ws.conn(SEG)
        assert ws.routing.ready
        assert ws.remove_obstacle(OBS[0])
        assert ws.routing.stats.evicted == 1
        assert not ws.routing.ready  # dropped, not yet rebuilt
        got = ws.execute(ws.plan(ConnQuery(SEG), backend="shared"))
        want = Workspace.from_points(POINTS, OBS[1:]).conn(SEG)
        assert_same_result(got, want, SEG)
        assert ws.routing.stats.graphs_built == 2

    def test_unannounced_tree_mutation_invalidates_at_attach(self):
        ws = make_ws()
        ws.prefetch_all()
        ws.conn(SEG)
        assert ws.routing.ready
        sneaky = RectObstacle(48, 20, 52, 80)
        ws.obstacle_tree.insert(sneaky, sneaky.mbr())  # behind the back
        got = ws.execute(ws.plan(ConnQuery(SEG), backend="shared"))
        want = Workspace.from_points(POINTS, [*OBS, sneaky]).conn(SEG)
        assert_same_result(got, want, SEG)
        assert ws.routing.stats.invalidations == 1

    def test_1t_site_updates_do_not_invalidate(self):
        tree = build_unified_tree(POINTS, OBS, page_size=256)
        ws = Workspace.from_unified(tree)
        ws.conn(SEG)
        ws.execute(ws.plan(ConnQuery(SEG), backend="shared"))
        assert ws.routing.ready
        ws.add_site(99, (50.0, 52.0))
        got = ws.execute(ws.plan(ConnQuery(SEG), backend="shared"))
        assert ws.routing.stats.invalidations == 0
        want = Workspace.from_points(
            [*POINTS, (99, (50.0, 52.0))], OBS, layout="1T").conn(SEG)
        assert_same_result(got, want, SEG)

    def test_nested_attach_gets_its_own_graph(self):
        """A second attach while the primary is busy (a nested sub-query or
        a concurrent worker) is served by its own spawned graph — never by
        the graph another session is mutating."""
        ot = build_obstacle_tree(OBS)
        backend = SharedVGBackend(ot)
        outer = backend.attach_endpoints(SEG)
        inner = backend.attach_endpoints(Segment(0, 10, 100, 10))
        assert outer.shared and inner.shared
        assert inner.graph is not outer.graph
        assert outer.graph is backend._graph
        inner.detach()
        assert outer.graph.qseg is not None  # outer still bound
        assert backend.pooled_graphs == 1  # inner's graph returned to pool
        outer.detach()
        assert backend.stats.graph_spawns == 1
        # The pooled spare is reused by the next concurrent pair, not
        # rebuilt.
        outer = backend.attach_endpoints(SEG)
        inner = backend.attach_endpoints(Segment(0, 10, 100, 10))
        assert backend.stats.graph_spawns == 1
        inner.detach()
        outer.detach()

    def test_dead_slots_stay_bounded_over_long_workloads(self):
        """Compaction keeps a long-lived shared graph O(skeleton), not
        O(queries ever served) — with identical answers throughout."""
        ws = make_ws()
        ws.prefetch_all()
        want = ws.conn(SEG).tuples()
        rng = random.Random(9)
        for _ in range(60):
            ws.conn(random_query(rng, min_length=10.0))
            ws.onn(rng.uniform(10, 90), rng.uniform(10, 90), k=2)
        graph = ws.routing._graph
        assert graph is not None
        assert ws.routing.stats.compactions > 0
        assert graph.dead_slots <= max(64, graph.num_nodes) + 4
        assert ws.conn(SEG).tuples() == want  # still exact after compaction

    def test_compact_preserves_cached_rows_and_distances(self):
        g = LocalVisibilityGraph(obstacles=OBS)
        g.bind(SEG)
        d_before = g.shortest_distances(g.S, [g.E])[g.E]
        g.unbind()
        for i in range(80):  # grow a dead-slot history
            p = g.add_point(float(i), 10.0)
            g.remove_point(p)
        vt_before = g.visibility_tests
        assert g.compact() == 82  # 80 dead points + the 2 unbound endpoints
        assert g.dead_slots == 0
        g.bind(SEG)
        d_after = g.shortest_distances(g.S, [g.E])[g.E]
        assert d_after == pytest.approx(d_before, abs=1e-9)
        # The skeleton rows survived: only edges to the two fresh endpoints
        # needed visibility tests, not the whole pairwise skeleton.
        assert g.visibility_tests - vt_before < vt_before
        g.unbind()

    def test_stale_plan_replan_keeps_backend_pin(self):
        ws = make_ws()
        plan = ws.plan(ConnQuery(SEG), backend="shared")
        assert plan.backend == "shared-vg"
        ws.add_site(500, (70.0, 30.0))  # stale: forces a re-plan
        res = ws.execute(plan)
        assert res.stats.backend_name == "shared-vg"
        pinned_per = ws.plan(ConnQuery(SEG), backend="per-query")
        ws.add_site(501, (72.0, 30.0))
        assert ws.execute(pinned_per).stats.backend_name == "per-query-vg"

    def test_monitor_respects_per_query_alias(self):
        for policy in ("per-query", "per-query-vg"):
            ws = make_ws(planner=PlannerOptions(backend=policy))
            m = ws.monitors.register(ConnQuery(SEG))
            ws.add_obstacle(RectObstacle(20.0, 46.0, 22.0, 49.0))
            assert m.result.stats.backend_name == "per-query-vg"
            assert ws.routing.stats.sessions == 0

    def test_bind_unbind_guards(self):
        g = LocalVisibilityGraph(SEG)
        with pytest.raises(RuntimeError):
            g.bind(SEG)  # anchored at construction
        with pytest.raises(RuntimeError):
            g.unbind()  # endpoints are permanent
        shared = LocalVisibilityGraph()
        with pytest.raises(RuntimeError):
            shared.unbind()  # not bound yet
        shared.bind(SEG)
        shared.unbind()
        shared.bind(Segment(0, 0, 10, 10))  # rebinding works
        assert shared.qseg is not None


class TestTraversalMemo:
    def test_repeated_shortest_path_replays(self):
        vg = LocalVisibilityGraph(SEG, obstacles=OBS)
        d1, p1 = vg.shortest_path(vg.S, vg.E)
        runs = vg.dijkstra_runs
        d2, p2 = vg.shortest_path(vg.S, vg.E)
        assert (d1, p1) == (d2, p2)
        assert vg.dijkstra_runs == runs  # no fresh traversal
        assert vg.dijkstra_replays >= 1

    def test_mutation_invalidates_memo(self):
        vg = LocalVisibilityGraph(SEG, obstacles=OBS[:1])
        d1, _ = vg.shortest_path(vg.S, vg.E)
        vg.add_obstacles(OBS[1:])
        d2, _ = vg.shortest_path(vg.S, vg.E)
        assert d2 > d1  # the new wall lengthens the detour
        assert vg.dijkstra_runs >= 2

    def test_removed_transient_never_served_from_memo(self):
        vg = LocalVisibilityGraph(SEG, obstacles=OBS)
        p = vg.add_point(50.0, 45.0)
        vg.shortest_distances(vg.S, [p])
        vg.remove_point(p)
        settled = {node for _d, node, _p in vg.dijkstra_order(vg.S)}
        assert p not in settled


class TestPlannerSelection:
    def test_auto_cold_picks_per_query(self):
        ws = make_ws()
        plan = ws.plan(ConnQuery(SEG))
        assert plan.backend == "per-query-vg"
        assert plan.est_graph_builds == 1

    def test_auto_warm_picks_shared(self):
        ws = make_ws()
        ws.prefetch_all()
        plan = ws.plan(ConnQuery(SEG))
        assert plan.backend == "shared-vg"
        ws.execute(plan)
        after = ws.plan(ConnQuery(SEG))
        assert after.backend == "shared-vg"
        assert after.est_graph_builds == 0  # resident now
        assert any("resident" in n for n in after.notes)

    def test_forced_options_and_overrides(self):
        ws = make_ws(planner=PlannerOptions(backend="shared"))
        assert ws.plan(ConnQuery(SEG)).backend == "shared-vg"
        assert ws.plan(ConnQuery(SEG),
                       backend="per-query").backend == "per-query-vg"
        with pytest.raises(ValueError):
            ws.plan(ConnQuery(SEG), backend="bogus")

    def test_explain_names_backend(self):
        ws = make_ws()
        text = ws.plan(ConnQuery(SEG)).explain()
        assert "backend   : per-query-vg" in text
        ws.prefetch_all()
        warm = ws.plan(OnnQuery((50, 50), knn=2)).explain()
        assert "backend   : shared-vg" in warm

    def test_joins_report_pairwise_backend(self):
        ws = make_ws()
        from repro import SemiJoinQuery

        other = build_point_tree([(100 + i, (9.0 * i, 60.0))
                                  for i in range(4)])
        plan = ws.plan(SemiJoinQuery(ws.data_tree, other))
        assert plan.backend == "pairwise-vg"
        assert "backend   : pairwise-vg" in plan.explain()

    def test_backends_satisfy_protocol(self):
        ws = make_ws()
        assert isinstance(ws.routing, ObstructedDistanceBackend)
        assert isinstance(ws.per_query_backend, ObstructedDistanceBackend)


class TestBackendResultEquivalence:
    """Deterministic spot checks (the Hypothesis suite drives the fuzz)."""

    @pytest.mark.parametrize("seed", [2, 13, 77])
    @pytest.mark.parametrize("k", [1, 2])
    def test_conn_matches_across_backends(self, seed, k):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=7)
        q = random_query(rng)
        shared = Workspace.from_points(
            points, obstacles, planner=PlannerOptions(backend="shared"))
        per = Workspace.from_points(
            points, obstacles, planner=PlannerOptions(backend="per-query"))
        for _ in range(2):  # second round runs on the reused shared graph
            assert_same_result(shared.coknn(q, k=k), per.coknn(q, k=k), q)
        assert shared.routing.stats.graphs_built == 1

    @pytest.mark.parametrize("seed", [4, 29])
    def test_onn_and_range_match_across_backends(self, seed):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=7)
        x, y = rng.uniform(10, 90), rng.uniform(10, 90)
        shared = Workspace.from_points(
            points, obstacles, planner=PlannerOptions(backend="shared"))
        per = Workspace.from_points(
            points, obstacles, planner=PlannerOptions(backend="per-query"))
        for _ in range(2):
            nn_s, st_s = shared.onn(x, y, k=3)
            nn_p, st_p = per.onn(x, y, k=3)
            assert [p for p, _d in nn_s] == [p for p, _d in nn_p]
            assert same_values([d for _p, d in nn_s],
                               [d for _p, d in nn_p])
            assert st_s.noe == st_p.noe
            r_s, _ = shared.range(x, y, 25.0)
            r_p, _ = per.range(x, y, 25.0)
            assert [p for p, _d in r_s] == [p for p, _d in r_p]

    def test_unreachable_point_agrees(self):
        from repro import SegmentObstacle

        # A pinwheel around (50, 50): walls overlap past the corners, so
        # paths cannot graze out through a shared vertex.
        walls = [SegmentObstacle(48, 49, 52, 49), SegmentObstacle(51, 48, 51, 52),
                 SegmentObstacle(52, 51, 48, 51), SegmentObstacle(49, 52, 49, 48)]
        points = [(0, (50.0, 50.0)), (1, (10.0, 50.0))]
        shared = Workspace.from_points(
            points, walls, planner=PlannerOptions(backend="shared"))
        per = Workspace.from_points(
            points, walls, planner=PlannerOptions(backend="per-query"))
        for ws in (shared, per):
            nn, _ = ws.onn(5.0, 50.0, k=2)
            assert [p for p, _d in nn] == [1]  # 0 is sealed off
        d_s = shared.onn(5.0, 50.0, k=1)[0][0][1]
        d_p = per.onn(5.0, 50.0, k=1)[0][0][1]
        assert d_s == pytest.approx(d_p, abs=1e-9)
        assert math.isfinite(d_s)
