"""Unit and property tests for IntervalSet, the region algebra of the library."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import IntervalSet

bound = st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                  allow_infinity=False)


@st.composite
def interval_sets(draw, max_intervals: int = 6) -> IntervalSet:
    n = draw(st.integers(min_value=0, max_value=max_intervals))
    ivals = []
    for _ in range(n):
        a = draw(bound)
        b = draw(bound)
        ivals.append((min(a, b), max(a, b)))
    return IntervalSet(ivals)


def assert_invariants(s: IntervalSet) -> None:
    prev_hi = None
    for lo, hi in s:
        assert hi > lo, f"non-positive interval [{lo}, {hi}]"
        if prev_hi is not None:
            assert lo > prev_hi, f"unsorted/overlapping at [{lo}, {hi}]"
        prev_hi = hi


class TestConstruction:
    def test_empty(self):
        s = IntervalSet.empty()
        assert s.is_empty() and len(s) == 0 and s.measure() == 0.0

    def test_full(self):
        s = IntervalSet.full(0.0, 10.0)
        assert s.measure() == 10.0 and len(s) == 1

    def test_full_degenerate_is_empty(self):
        assert IntervalSet.full(5.0, 5.0).is_empty()

    def test_overlapping_inputs_coalesce(self):
        s = IntervalSet([(0, 5), (3, 8), (8, 10)])
        assert len(s) == 1
        assert s.intervals == [(0, 10)]

    def test_slivers_dropped(self):
        s = IntervalSet([(1.0, 1.0 + 1e-12), (2, 3)])
        assert s.intervals == [(2, 3)]

    def test_unsorted_inputs_sorted(self):
        s = IntervalSet([(5, 6), (1, 2)])
        assert s.intervals == [(1, 2), (5, 6)]


class TestOperations:
    def test_union_disjoint(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(2, 3)])
        assert a.union(b).intervals == [(0, 1), (2, 3)]

    def test_union_overlapping(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(1, 3)])
        assert a.union(b).intervals == [(0, 3)]

    def test_intersect(self):
        a = IntervalSet([(0, 5), (7, 9)])
        b = IntervalSet([(3, 8)])
        assert a.intersect(b).intervals == [(3, 5), (7, 8)]

    def test_subtract_hole(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(3, 4)])
        assert a.subtract(b).intervals == [(0, 3), (4, 10)]

    def test_subtract_everything(self):
        a = IntervalSet([(2, 4)])
        assert a.subtract(IntervalSet([(0, 10)])).is_empty()

    def test_subtract_multiple_holes(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(1, 2), (4, 5), (9, 12)])
        assert a.subtract(b).intervals == [(0, 1), (2, 4), (5, 9)]

    def test_complement(self):
        s = IntervalSet([(2, 3)])
        assert s.complement(0, 10).intervals == [(0, 2), (3, 10)]

    def test_clipped(self):
        s = IntervalSet([(0, 10)])
        assert s.clipped(3, 5).intervals == [(3, 5)]

    def test_contains(self):
        s = IntervalSet([(1, 2), (5, 6)])
        assert s.contains(1.5) and s.contains(5.0) and s.contains(6.0)
        assert not s.contains(3.0) and not s.contains(0.0)

    def test_covers(self):
        assert IntervalSet([(0, 5), (5, 10)]).covers(0, 10)
        assert not IntervalSet([(0, 4)]).covers(0, 10)

    def test_boundaries(self):
        assert IntervalSet([(1, 2), (5, 6)]).boundaries() == [1, 2, 5, 6]

    def test_equality_tolerant(self):
        assert IntervalSet([(0, 1)]) == IntervalSet([(1e-12, 1.0)])

    def test_span(self):
        assert IntervalSet([(1, 2), (7, 9)]).span() == (1, 9)
        assert IntervalSet.empty().span() is None


class TestProperties:
    @given(interval_sets(), interval_sets())
    def test_all_operations_preserve_invariants(self, a, b):
        for s in (a.union(b), a.intersect(b), a.subtract(b)):
            assert_invariants(s)

    @given(interval_sets(), interval_sets())
    def test_union_measure_bounds(self, a, b):
        u = a.union(b)
        assert u.measure() <= a.measure() + b.measure() + 1e-6
        assert u.measure() >= max(a.measure(), b.measure()) - 1e-6

    @given(interval_sets(), interval_sets())
    def test_subtract_then_intersect_disjoint(self, a, b):
        diff = a.subtract(b)
        assert diff.intersect(b).measure() <= 1e-6

    @given(interval_sets(), interval_sets())
    def test_inclusion_exclusion(self, a, b):
        u = a.union(b)
        i = a.intersect(b)
        assert abs(u.measure() + i.measure() -
                   (a.measure() + b.measure())) <= 1e-5

    @given(interval_sets())
    def test_complement_partitions(self, a):
        c = a.clipped(0, 100)
        comp = c.complement(0, 100)
        assert abs(c.measure() + comp.measure() - 100.0) <= 1e-5
        assert c.intersect(comp).measure() <= 1e-6

    @given(interval_sets(), interval_sets(), st.floats(min_value=0, max_value=100))
    def test_membership_consistent_with_ops(self, a, b, t):
        # Zero-measure slivers are dropped by design, so stay away from the
        # interval boundaries where closed-set semantics are ambiguous.
        boundaries = a.boundaries() + b.boundaries()
        if boundaries and min(abs(t - x) for x in boundaries) < 1e-6:
            return
        in_a = a.contains(t, eps=0)
        in_b = b.contains(t, eps=0)
        if in_a and in_b:
            assert a.intersect(b).contains(t, eps=1e-7)
        if in_a or in_b:
            assert a.union(b).contains(t, eps=1e-7)
        if in_a and not in_b:
            assert a.subtract(b).contains(t, eps=1e-7)
