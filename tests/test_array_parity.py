"""Hypothesis property suite for array/scalar engine parity.

The array-native hot path (flat CSR-style adjacency rows, batched
visibility kernels, :class:`~repro.routing.dijkstra.ArrayTraversal`)
promises *byte-identical* behaviour to the scalar dict implementation it
replaced — same distances, same predecessors, same settled order, same
query answers.  That promise is what lets :class:`~repro.routing.config.
RoutingConfig` swap engines freely and keeps the scalar engine alive as
the parity oracle; this suite is the net under it.

Three layers are pinned:

* **rows** — every adjacency row the traversal touches, read through
  ``row_arrays`` on the array graph and ``neighbors`` on the scalar one,
  holds the same neighbor set with bit-equal weights;
* **traversals** — full Dijkstra runs from the query endpoints and from
  transient data points settle the same ``(dist, node, pred)`` sequence,
  entry for entry, including under goal-directed ``prune_bound`` pruning
  and across bind/unbind churn, obstacle insertion, point removal,
  ``compact()`` and ``clone_skeleton()``;
* **queries** — whole workspaces forced onto each engine return
  identical CONN / COkNN / ONN / range tuples.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Workspace
from repro.obstacles.visgraph import LocalVisibilityGraph
from repro.routing.config import (
    ARRAY_ENGINE,
    SCALAR_ENGINE,
    RoutingConfig,
)
from tests.conftest import random_query, random_scene

# Op pattern the churn property drives through both graphs in lock step.
OPS = ("bind", "unbind", "add_obstacle", "add_point", "remove_point",
       "compact")


def _twin_graphs(rng: random.Random, n_obstacles: int = 5,
                 anchored: bool = True):
    """The same scene as one array and one scalar graph (plus points)."""
    points, obstacles = random_scene(rng, n_points=6,
                                     n_obstacles=n_obstacles)
    qseg = random_query(rng)
    pair = []
    for engine in (ARRAY_ENGINE, SCALAR_ENGINE):
        g = LocalVisibilityGraph(qseg if anchored else None, engine=engine)
        g.add_obstacles(obstacles)
        pair.append(g)
    nodes = []
    for _payload, (x, y) in points:
        ids = {g.add_point(x, y) for g in pair}
        assert len(ids) == 1, "engines must allocate identical node ids"
        nodes.append(ids.pop())
    return pair[0], pair[1], nodes, qseg


def _settled(graph: LocalVisibilityGraph, source: int,
             prune_bound: float = math.inf):
    """The complete settled sequence — exact tuples, exhausted eagerly."""
    return list(graph.dijkstra_order(source, prune_bound))


def _assert_rows_match(array_g: LocalVisibilityGraph,
                       scalar_g: LocalVisibilityGraph, node: int) -> None:
    idx, w = array_g.row_arrays(node)
    flat = dict(zip(idx.tolist(), w.tolist()))
    assert flat == scalar_g.neighbors(node)


def _assert_traversals_match(array_g, scalar_g, sources,
                             prune_bound: float = math.inf) -> None:
    for source in sources:
        got = _settled(array_g, source, prune_bound)
        want = _settled(scalar_g, source, prune_bound)
        assert got == want  # dist, node and pred — exact, in order
        for _d, node, _p in want:
            _assert_rows_match(array_g, scalar_g, node)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_rows_and_traversals_identical(seed):
    rng = random.Random(seed)
    array_g, scalar_g, nodes, _qseg = _twin_graphs(rng)
    sources = [array_g.S, array_g.E] + nodes[:2]
    _assert_traversals_match(array_g, scalar_g, sources)
    for source in sources:
        got = array_g.shortest_distances(source, (array_g.S, array_g.E))
        want = scalar_g.shortest_distances(source, (scalar_g.S, scalar_g.E))
        assert got == want


@given(seed=st.integers(min_value=0, max_value=10_000),
       frac=st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=25, deadline=None)
def test_pruned_traversals_identical_and_safe_prefix_exact(seed, frac):
    """Pruning must agree across engines *and* keep the safe set exact."""
    rng = random.Random(seed)
    array_g, _scalar_g, nodes, qseg = _twin_graphs(rng)
    source = nodes[0]
    full = _settled(array_g, source)
    reach = [d for d, _n, _p in full if math.isfinite(d)]
    if not reach:
        return
    bound = max(reach[-1] * frac, 1e-9)
    # Fresh twins for the pruned run: the first pair's memoized *unpruned*
    # traversal would (correctly) serve the pruned request by replay, and
    # beyond-bound entries of a replayed-unpruned vs fresh-pruned run may
    # differ — only the safe set is pinned across construction states.
    array_p, scalar_p, nodes_p, _q = _twin_graphs(random.Random(seed))
    assert nodes_p[0] == source
    _assert_traversals_match(array_p, scalar_p, [source], prune_bound=bound)
    # Safe nodes (dist + h < bound) keep their exact distance, predecessor
    # and settled position from the unpruned traversal.
    pruned = _settled(array_p, source, prune_bound=bound)

    def h(node):
        p = array_g.node_point(node)
        return qseg.dist_point(p.x, p.y)

    safe_full = [e for e in full if e[0] + h(e[1]) < bound]
    safe_pruned = [e for e in pruned if e[0] + h(e[1]) < bound]
    assert safe_pruned == safe_full


@given(seed=st.integers(min_value=0, max_value=10_000),
       pattern=st.lists(st.tuples(st.sampled_from(OPS),
                                  st.integers(min_value=0, max_value=31)),
                        min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_engines_agree_under_graph_churn(seed, pattern):
    rng = random.Random(seed)
    array_g, scalar_g, nodes, qseg = _twin_graphs(rng, anchored=False)
    pair = (array_g, scalar_g)
    bound_seg = None

    def check():
        sources = list(nodes[:2])
        if bound_seg is not None:
            sources += [array_g.S, array_g.E]
        if sources:
            _assert_traversals_match(array_g, scalar_g, sources)

    check()
    for op, victim in pattern:
        if op == "bind" and bound_seg is None:
            bound_seg = random_query(rng)
            for g in pair:
                g.bind(bound_seg)
            assert array_g.S == scalar_g.S and array_g.E == scalar_g.E
        elif op == "unbind" and bound_seg is not None:
            for g in pair:
                g.unbind()
            bound_seg = None
        elif op == "add_obstacle":
            _pts, extra = random_scene(rng, n_points=1, n_obstacles=1)
            for g in pair:
                g.add_obstacles(extra)
        elif op == "add_point":
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            ids = {g.add_point(x, y) for g in pair}
            assert len(ids) == 1
            nodes.append(ids.pop())
        elif op == "remove_point" and nodes:
            node = nodes.pop(victim % len(nodes))
            for g in pair:
                g.remove_point(node)
        elif op == "compact" and bound_seg is None and not nodes:
            # Only safe while no external node ids are held: compaction
            # remaps live slots identically on both engines.
            assert array_g.compact() == scalar_g.compact()
        check()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_clone_skeleton_preserves_parity(seed):
    rng = random.Random(seed)
    array_g, scalar_g, nodes, _qseg = _twin_graphs(rng, anchored=False)
    for g in (array_g, scalar_g):
        for node in nodes:
            g.remove_point(node)
    clones = [g.clone_skeleton() for g in (array_g, scalar_g)]
    qseg = random_query(rng)
    for c in clones:
        c.bind(qseg)
    _assert_traversals_match(clones[0], clones[1],
                             [clones[0].S, clones[0].E])


@given(seed=st.integers(min_value=0, max_value=10_000),
       k=st.integers(min_value=1, max_value=2))
@settings(max_examples=10, deadline=None)
def test_workspace_answers_identical_across_engines(seed, k):
    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
    ws_array = Workspace.from_points(
        list(points), list(obstacles),
        routing=RoutingConfig(engine=ARRAY_ENGINE))
    ws_scalar = Workspace.from_points(
        list(points), list(obstacles),
        routing=RoutingConfig(engine=SCALAR_ENGINE))
    qseg = random_query(rng)
    got = ws_array.coknn(qseg, k=k)
    want = ws_scalar.coknn(qseg, k=k)
    assert got.tuples() == want.tuples()  # owners AND interval floats
    x, y = qseg.point_at(0.5 * qseg.length)
    got_nn, _ = ws_array.onn(x, y, k=k)
    want_nn, _ = ws_scalar.onn(x, y, k=k)
    assert got_nn == want_nn
    got_r, _ = ws_array.range(x, y, 18.0)
    want_r, _ = ws_scalar.range(x, y, 18.0)
    assert sorted(got_r, key=str) == sorted(want_r, key=str)
