"""LRU buffer, page tracker, and best-first incremental traversal tests."""

from __future__ import annotations

import math

from repro.geometry import Rect, Segment
from repro.index import (
    IO_MS_PER_FAULT,
    IncrementalNearest,
    LRUBuffer,
    PageTracker,
    RStarTree,
    nearest_to_segment,
)


class TestLRUBuffer:
    def test_zero_capacity_always_misses(self):
        b = LRUBuffer(0)
        assert not b.access(1)
        assert not b.access(1)
        assert b.misses == 2 and b.hits == 0

    def test_hit_after_load(self):
        b = LRUBuffer(2)
        assert not b.access(1)
        assert b.access(1)
        assert b.hits == 1

    def test_lru_eviction_order(self):
        b = LRUBuffer(2)
        b.access(1)
        b.access(2)
        b.access(1)      # makes 2 the LRU
        b.access(3)      # evicts 2
        assert 1 in b and 3 in b and 2 not in b

    def test_capacity_respected(self):
        b = LRUBuffer(3)
        for pid in range(10):
            b.access(pid)
        assert len(b) == 3

    def test_evict_and_clear(self):
        b = LRUBuffer(4)
        b.access(1)
        b.evict(1)
        assert 1 not in b
        b.access(2)
        b.clear()
        assert len(b) == 0

    def test_hit_rate(self):
        b = LRUBuffer(1)
        b.access(1)
        b.access(1)
        assert b.hit_rate() == 0.5

    def test_negative_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            LRUBuffer(-1)


class TestPageTracker:
    def test_no_buffer_every_read_faults(self):
        t = PageTracker()
        pid = t.allocate()
        t.access(pid)
        t.access(pid)
        assert t.stats.logical_reads == 2
        assert t.stats.page_faults == 2

    def test_buffer_absorbs_rereads(self):
        t = PageTracker(buffer=LRUBuffer(8))
        pid = t.allocate()
        t.access(pid)
        t.access(pid)
        assert t.stats.logical_reads == 2
        assert t.stats.page_faults == 1

    def test_io_time_charges_10ms_per_fault(self):
        t = PageTracker()
        pid = t.allocate()
        t.access(pid)
        assert t.stats.io_time_ms() == IO_MS_PER_FAULT

    def test_snapshot_delta(self):
        t = PageTracker()
        pid = t.allocate()
        t.access(pid)
        snap = t.stats.snapshot()
        t.access(pid)
        t.access(pid)
        d = t.stats.delta(snap)
        assert d.logical_reads == 2 and d.page_faults == 2

    def test_free_releases_page(self):
        t = PageTracker(buffer=LRUBuffer(4))
        pid = t.allocate()
        assert t.num_pages == 1
        t.access(pid)
        t.free(pid)
        assert t.num_pages == 0
        assert pid not in t.buffer


class TestIncrementalNearest:
    def _tree(self, rng, n=300):
        t = RStarTree(page_size=256)
        pts = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
               for i in range(n)]
        for i, (x, y) in pts:
            t.insert_point(i, x, y)
        return t, pts

    def test_ascending_order(self, rng):
        t, pts = self._tree(rng)
        scan = IncrementalNearest(t, lambda r: r.mindist_point(50, 50))
        dists = [d for d, _p, _r in scan]
        assert dists == sorted(dists)
        assert len(dists) == len(pts)

    def test_matches_brute_force_order(self, rng):
        t, pts = self._tree(rng, n=150)
        scan = IncrementalNearest(t, lambda r: r.mindist_point(30, 70))
        got = [d for d, _p, _r in scan]
        want = sorted(math.hypot(x - 30, y - 70) for _i, (x, y) in pts)
        for g, w in zip(got, want):
            assert math.isclose(g, w, abs_tol=1e-7)

    def test_peek_does_not_consume(self, rng):
        t, _pts = self._tree(rng, n=50)
        scan = IncrementalNearest(t, lambda r: r.mindist_point(0, 0))
        k1 = scan.peek_key()
        k2 = scan.peek_key()
        assert k1 == k2
        d, _p, _r = scan.pop()
        assert math.isclose(d, k1)

    def test_exhaustion(self, rng):
        t, pts = self._tree(rng, n=10)
        scan = IncrementalNearest(t, lambda r: r.mindist_point(0, 0))
        for _ in pts:
            assert scan.pop() is not None
        assert scan.pop() is None
        assert math.isinf(scan.peek_key())

    def test_empty_tree(self):
        t = RStarTree()
        scan = IncrementalNearest(t, lambda r: r.mindist_point(0, 0))
        assert scan.pop() is None
        assert math.isinf(scan.peek_key())

    def test_segment_keyed_scan(self, rng):
        t, pts = self._tree(rng, n=200)
        seg = Segment(10, 10, 90, 20)
        scan = nearest_to_segment(t, 10, 10, 90, 20)
        got = [(d, p) for d, p, _r in scan]
        want = sorted((seg.dist_point(x, y), i) for i, (x, y) in pts)
        for (gd, _gp), (wd, _wp) in zip(got, want):
            assert math.isclose(gd, wd, abs_tol=1e-7)

    def test_scan_charges_io(self, rng):
        t, _pts = self._tree(rng, n=300)
        before = t.tracker.stats.logical_reads
        scan = IncrementalNearest(t, lambda r: r.mindist_point(50, 50))
        for _ in range(10):
            scan.pop()
        assert t.tracker.stats.logical_reads > before
