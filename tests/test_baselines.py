"""Baselines: Euclidean CNN, naive oracles, global visibility graph."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines import (
    GlobalVisibilityGraph,
    brute_distance_function,
    cknn_euclidean,
    cnn_euclidean,
    full_vertex_count,
    naive_conn,
)
from repro.geometry import Segment, dist
from repro.obstacles import (
    ObstacleSet,
    RectObstacle,
    SegmentObstacle,
    obstructed_distance,
)
from tests.conftest import build_point_tree, random_query, random_scene


class TestEuclideanCNN:
    def test_single_point(self):
        dt = build_point_tree([(0, (50.0, 10.0))])
        res = cnn_euclidean(dt, Segment(0, 0, 100, 0))
        assert res.tuples() == [(0, (0.0, 100.0))]

    def test_two_points_split_at_bisector(self):
        dt = build_point_tree([(0, (20.0, 10.0)), (1, (80.0, 10.0))])
        res = cnn_euclidean(dt, Segment(0, 0, 100, 0))
        assert res.split_points() == pytest.approx([50.0])
        assert res.owner_at(10.0) == 0
        assert res.owner_at(90.0) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_envelope(self, seed):
        rng = random.Random(1100 + seed)
        points, _ = random_scene(rng, n_points=rng.randint(3, 20),
                                 n_obstacles=0)
        q = random_query(rng)
        res = cnn_euclidean(build_point_tree(points), q)
        for t in np.linspace(0, q.length, 60):
            s = q.point_at(float(t))
            want = min(dist(xy, (s.x, s.y)) for _i, xy in points)
            assert res.distance(float(t)) == pytest.approx(want, abs=1e-6)

    def test_cknn_levels_sorted(self, rng):
        points, _ = random_scene(rng, n_points=12, n_obstacles=0)
        q = random_query(rng)
        res = cknn_euclidean(build_point_tree(points), q, k=3)
        for t in np.linspace(0, q.length, 20):
            ds = [d for _o, d in res.knn_at(float(t))]
            assert ds == sorted(ds)

    def test_rlmax_prunes_scan(self, rng):
        points, _ = random_scene(rng, n_points=60, n_obstacles=0)
        q = Segment(40, 40, 45, 45)
        res = cnn_euclidean(build_point_tree(points), q)
        assert res.stats.npe < len(points)

    def test_degenerate_query_rejected(self, rng):
        points, _ = random_scene(rng, n_obstacles=0)
        with pytest.raises(ValueError):
            cnn_euclidean(build_point_tree(points), Segment(3, 3, 3, 3))


class TestBruteDistanceFunction:
    def test_no_obstacles_is_euclidean(self):
        q = Segment(0, 0, 100, 0)
        ts = np.linspace(0, 100, 11)
        vals = brute_distance_function((50, 10), [], q, ts)
        for t, v in zip(ts, vals):
            assert v == pytest.approx(math.hypot(t - 50, 10), abs=1e-9)

    def test_matches_pairwise_obstructed_distance(self, rng):
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=7)
        q = random_query(rng)
        p = (15.0, 85.0)
        ts = np.linspace(0, q.length, 9)
        vals = brute_distance_function(p, obstacles, q, ts)
        for t, v in zip(ts, vals):
            s = q.point_at(float(t))
            want = obstructed_distance(p, (s.x, s.y), obstacles)
            assert (math.isinf(v) and math.isinf(want)) or \
                v == pytest.approx(want, abs=1e-6)

    def test_naive_conn_owner_is_argmin(self, rng):
        points, obstacles = random_scene(rng, n_points=5, n_obstacles=5)
        q = random_query(rng)
        ts = np.linspace(0, q.length, 7)
        owners, dists = naive_conn(points, obstacles, q, ts)
        per_point = {pid: brute_distance_function(xy, obstacles, q, ts)
                     for pid, xy in points}
        for i in range(len(ts)):
            if owners[i] is None:
                continue
            best = min(per_point[pid][i] for pid, _xy in points)
            assert dists[i] == pytest.approx(best, abs=1e-9)
            assert per_point[owners[i]][i] == pytest.approx(best, abs=1e-9)


class TestGlobalVisibilityGraph:
    def test_full_vertex_count(self):
        obs = [RectObstacle(0, 0, 1, 1), SegmentObstacle(2, 2, 3, 3)]
        assert full_vertex_count(obs) == 6

    def test_vertex_guard(self):
        obs = [RectObstacle(i, 0, i + 0.5, 1) for i in range(30)]
        with pytest.raises(ValueError):
            GlobalVisibilityGraph(obs, max_vertices=100)

    def test_distance_matches_reference(self, rng):
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=8)
        g = GlobalVisibilityGraph(obstacles)
        a, b = (5.0, 5.0), (95.0, 90.0)
        want = obstructed_distance(a, b, obstacles)
        got = g.distance(a, b)
        assert (math.isinf(got) and math.isinf(want)) or \
            got == pytest.approx(want, abs=1e-9)

    def test_graph_size_accessors(self, rng):
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=5)
        g = GlobalVisibilityGraph(obstacles)
        assert g.num_vertices == full_vertex_count(obstacles)
        assert g.num_edges() > 0

    def test_conn_agrees_with_naive(self, rng):
        points, obstacles = random_scene(rng, n_points=5, n_obstacles=5)
        q = random_query(rng)
        g = GlobalVisibilityGraph(obstacles)
        ts = np.linspace(0, q.length, 9)
        owners_g, dists_g = g.conn(points, q, ts)
        owners_n, dists_n = naive_conn(points, obstacles, q, ts)
        with np.errstate(invalid="ignore"):
            both_inf = np.isinf(dists_g) & np.isinf(dists_n)
        assert np.all(both_inf | (np.abs(np.where(both_inf, 0, dists_g) -
                                         np.where(both_inf, 0, dists_n)) < 1e-9))
