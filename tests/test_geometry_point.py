"""Unit and property tests for the Point primitive."""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, as_point, dist, dist_sq, lerp, midpoint

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
points = st.tuples(finite, finite).map(lambda t: Point(*t))


class TestPointArithmetic:
    def test_add_sub_roundtrip(self):
        a = Point(3.0, 4.0)
        b = Point(-1.0, 2.5)
        assert (a + b) - b == a

    def test_scalar_multiplication_both_sides(self):
        p = Point(2.0, -3.0)
        assert p * 2 == Point(4.0, -6.0)
        assert 2 * p == Point(4.0, -6.0)

    def test_negation(self):
        assert -Point(1.0, -2.0) == Point(-1.0, 2.0)

    def test_unpacks_like_tuple(self):
        x, y = Point(7.0, 8.0)
        assert (x, y) == (7.0, 8.0)

    def test_dot_orthogonal_is_zero(self):
        assert Point(1.0, 0.0).dot(Point(0.0, 5.0)) == 0.0

    def test_cross_sign_reflects_orientation(self):
        assert Point(1.0, 0.0).cross(Point(0.0, 1.0)) > 0
        assert Point(0.0, 1.0).cross(Point(1.0, 0.0)) < 0

    def test_norm_345(self):
        assert Point(3.0, 4.0).norm() == 5.0

    def test_normalized_unit_length(self):
        n = Point(3.0, 4.0).normalized()
        assert math.isclose(n.norm(), 1.0)

    def test_normalized_zero_vector_raises(self):
        import pytest

        with pytest.raises(ZeroDivisionError):
            Point(0.0, 0.0).normalized()

    def test_perp_is_rotation_ccw(self):
        assert Point(1.0, 0.0).perp() == Point(0.0, 1.0)

    def test_perp_preserves_norm(self):
        p = Point(3.0, -7.0)
        assert math.isclose(p.perp().norm(), p.norm())


class TestDistanceHelpers:
    def test_dist_known_value(self):
        assert dist((0, 0), (3, 4)) == 5.0

    def test_dist_sq_avoids_sqrt(self):
        assert dist_sq((0, 0), (3, 4)) == 25.0

    def test_midpoint(self):
        assert midpoint((0, 0), (10, 4)) == Point(5.0, 2.0)

    def test_lerp_endpoints(self):
        assert lerp((1, 1), (5, 9), 0.0) == Point(1.0, 1.0)
        assert lerp((1, 1), (5, 9), 1.0) == Point(5.0, 9.0)

    def test_lerp_middle(self):
        assert lerp((0, 0), (2, 4), 0.5) == Point(1.0, 2.0)

    def test_as_point_accepts_tuples(self):
        p = as_point((1, 2))
        assert isinstance(p, Point)
        assert p == Point(1.0, 2.0)

    def test_as_point_passthrough(self):
        p = Point(1.0, 2.0)
        assert as_point(p) is p


class TestPointProperties:
    @given(points, points)
    def test_dist_symmetry(self, a, b):
        assert math.isclose(a.dist(b), b.dist(a), abs_tol=1e-9)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.dist(c) <= a.dist(b) + b.dist(c) + 1e-7

    @given(points)
    def test_dist_to_self_is_zero(self, p):
        assert p.dist(p) == 0.0

    @given(points, points)
    def test_dist_sq_consistent_with_dist(self, a, b):
        assert math.isclose(a.dist(b) ** 2, a.dist_sq(b), rel_tol=1e-9,
                            abs_tol=1e-9)

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = midpoint(a, b)
        assert math.isclose(dist(m, a), dist(m, b), rel_tol=1e-9, abs_tol=1e-6)
