"""Numpy piece-table parity with the scalar ``Piece`` loops.

The vectorized envelope paths (``values``, ``min_over``,
``dominates_challenger``, ``max_endpoint_value``) promise *decision- and
value-identical* results to the scalar reference loops they replaced:
every comparison whose vectorized margin falls inside the float screen
band is re-decided with exact scalar math.  These properties drive both
paths explicitly — the ``_vec``/``_scalar`` pairs directly, below and
above the dispatch threshold — so the parity claim is tested, not
assumed.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PiecewiseDistance
from repro.core.distance_function import _VEC_MIN_PIECES
from repro.geometry import IntervalSet, Segment

Q = Segment(0.0, 0.0, 100.0, 0.0)
TS = np.linspace(0.0, 100.0, 173)

coord = st.floats(min_value=-150.0, max_value=150.0, allow_nan=False,
                  allow_infinity=False)
base = st.floats(min_value=0.0, max_value=200.0, allow_nan=False,
                 allow_infinity=False)
param = st.floats(min_value=-5.0, max_value=105.0, allow_nan=False,
                  allow_infinity=False)


@st.composite
def distance_functions(draw, owner):
    cp = (draw(coord), draw(coord))
    b = draw(base)
    if draw(st.booleans()):
        lo = draw(st.floats(min_value=0, max_value=90))
        hi = draw(st.floats(min_value=lo + 1.0, max_value=100))
        region = IntervalSet([(lo, hi)])
    else:
        region = IntervalSet.full(0.0, Q.length)
    return PiecewiseDistance.from_region(Q, region, cp, b, owner)


@st.composite
def envelopes(draw, min_fns=4, max_fns=9):
    """A merged envelope — usually rich enough to cross the vec threshold."""
    k = draw(st.integers(min_value=min_fns, max_value=max_fns))
    env = PiecewiseDistance.unknown(Q)
    for i in range(k):
        env, _, _ = env.merge_min(draw(distance_functions(i)))
    return env


@st.composite
def regions(draw):
    spans = []
    cursor = 0.0
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        lo = cursor + draw(st.floats(min_value=0.0, max_value=30.0))
        hi = lo + draw(st.floats(min_value=0.5, max_value=40.0))
        if lo >= 100.0:
            break
        spans.append((lo, min(hi, 100.0)))
        cursor = hi + 0.5
    return IntervalSet(spans if spans else [(0.0, 100.0)])


class TestPieceTableParity:
    @given(envelopes())
    @settings(max_examples=80, deadline=None)
    def test_values_vec_equals_loop(self, env):
        # A 2-D parameter array is rejected by the vectorized dispatch, so
        # reshaping routes the same inputs through the per-piece loop; the
        # two paths must agree bit for bit (same IEEE operations).
        vec = env.values(TS)
        loop = env.values(TS.reshape(1, -1)).ravel()
        assert np.array_equal(vec, loop)

    @given(envelopes())
    @settings(max_examples=80, deadline=None)
    def test_max_endpoint_value_parity(self, env):
        assert env.max_endpoint_value() == env._max_endpoint_scalar()

    @given(envelopes(), param, param)
    @settings(max_examples=120, deadline=None)
    def test_min_over_parity(self, env, a, b):
        lo, hi = min(a, b), max(a, b)
        want = env._min_over_scalar(max(lo, 0.0), min(hi, Q.length))
        if hi < lo or min(hi, Q.length) == max(lo, 0.0):
            want = (math.inf if hi < lo else env.value(max(lo, 0.0)))
        assert env.min_over(lo, hi) == want

    @given(envelopes(), regions(), coord, coord, base)
    @settings(max_examples=150, deadline=None)
    def test_dominates_challenger_parity(self, env, region, cx, cy, b):
        vec = env._dominates_vec(region, (cx, cy), b)
        scalar = env._dominates_scalar(region, (cx, cy), b)
        assert vec == scalar
        assert env.dominates_challenger(region, (cx, cy), b) == scalar

    @given(envelopes(), regions(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=80, deadline=None)
    def test_dominates_exact_tie_parity(self, env, region, k):
        # Adversarial: the challenger reuses an incumbent control point and
        # base, forcing exact ties that land squarely in the screen band.
        finite = [p for p in env.pieces if p.cp is not None]
        if not finite:
            return
        p = finite[k % len(finite)]
        vec = env._dominates_vec(region, p.cp, p.base)
        assert vec == env._dominates_scalar(region, p.cp, p.base)


class TestTableLifecycle:
    @given(envelopes(), distance_functions("z"))
    @settings(max_examples=60, deadline=None)
    def test_merge_with_cached_table_is_identical(self, env, f):
        # merge_min reuses the table's cached dist_quadratic coefficients
        # when a preceding dominance check built it; the merged piece list
        # must be exactly the one a table-less merge produces.
        cold = PiecewiseDistance(env.qseg, env.pieces)
        warm = PiecewiseDistance(env.qseg, env.pieces)
        warm._table()
        w_cold, l_cold, c_cold = cold.merge_min(f)
        w_warm, l_warm, c_warm = warm.merge_min(f)
        assert c_warm == c_cold
        assert w_warm.pieces == w_cold.pieces
        assert l_warm.pieces == l_cold.pieces

    @given(envelopes(), distance_functions("z"))
    @settings(max_examples=60, deadline=None)
    def test_merge_result_has_fresh_table(self, env, f):
        env._table()
        merged, _, _ = env.merge_min(f)
        assert merged._tab is None  # new object, never a stale alias
        tab = merged._table()
        assert tab.lo.shape[0] == len(merged.pieces)
        assert np.array_equal(merged.values(TS),
                              merged.values(TS.reshape(1, -1)).ravel())

    def test_replace_span_result_has_fresh_table(self):
        env = PiecewiseDistance.unknown(Q)
        for i, (x, b) in enumerate([(10.0, 1.0), (35.0, 2.0), (60.0, 0.5),
                                    (80.0, 3.0), (20.0, 1.5), (50.0, 0.2),
                                    (70.0, 2.5), (90.0, 1.1)]):
            f = PiecewiseDistance.from_region(
                Q, IntervalSet.full(0.0, Q.length), (x, 5.0), b, i)
            env, _, _ = env.merge_min(f)
        env._table()
        sub = Segment(30.0, 0.0, 70.0, 0.0)
        patch = PiecewiseDistance.from_region(
            sub, IntervalSet.full(0.0, sub.length), (50.0, 1.0), 0.0, "new")
        spliced = env.replace_span(30.0, 70.0, patch)
        assert spliced._tab is None
        assert spliced._table().lo.shape[0] == len(spliced.pieces)
        # The splice region must evaluate as the patch, the flanks as before.
        assert spliced.value(50.0) == pytest.approx(1.0)
        assert spliced.value(5.0) == env.value(5.0)

    def test_dispatch_threshold_consistency(self):
        # Below the threshold the public entry points run the scalar loops;
        # the vectorized bodies must still agree when called directly.
        f = PiecewiseDistance.from_region(
            Q, IntervalSet([(20.0, 60.0)]), (40.0, 10.0), 2.0, "a")
        env, _, _ = PiecewiseDistance.unknown(Q).merge_min(f)
        assert len(env.pieces) < _VEC_MIN_PIECES
        region = IntervalSet([(10.0, 80.0)])
        assert env._dominates_vec(region, (40.0, 30.0), 5.0) == \
            env._dominates_scalar(region, (40.0, 30.0), 5.0)
        assert env.min_over(15.0, 75.0) == env._min_over_scalar(15.0, 75.0)
        assert env.max_endpoint_value() == env._max_endpoint_scalar()


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
