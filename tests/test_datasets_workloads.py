"""Dataset generators and the benchmark workload generator."""

from __future__ import annotations

import math
import random

import pytest

from repro.bench.workloads import query_workload, random_query_segment
from repro.datasets import (
    ObstacleGrid,
    SPACE,
    california_like_points,
    la_street_obstacles,
    random_rect_obstacles,
    random_segment_obstacles,
    reject_inside_obstacles,
    uniform_points,
    zipf_points,
    zipf_value,
)
from repro.geometry import segment_crosses_rect_interior
from repro.obstacles import RectObstacle


def in_space(x, y, bounds=SPACE):
    return bounds[0] <= x <= bounds[2] and bounds[1] <= y <= bounds[3]


class TestPointGenerators:
    def test_uniform_count_and_bounds(self):
        pts = uniform_points(500, random.Random(1))
        assert len(pts) == 500
        assert all(in_space(x, y) for x, y in pts)

    def test_uniform_deterministic_with_seed(self):
        assert uniform_points(50, random.Random(7)) == \
            uniform_points(50, random.Random(7))

    def test_zipf_skew_toward_origin(self):
        pts = zipf_points(3000, random.Random(2), alpha=0.8)
        xs = sorted(x for x, _y in pts)
        median = xs[len(xs) // 2]
        # With alpha = 0.8, the median of x is far below the uniform median.
        assert median < 1500.0

    def test_zipf_alpha_zero_is_uniformish(self):
        rng = random.Random(3)
        vals = [zipf_value(rng, 0.0) for _ in range(4000)]
        mean = sum(vals) / len(vals)
        assert 0.45 < mean < 0.55

    def test_zipf_invalid_alpha(self):
        with pytest.raises(ValueError):
            zipf_value(random.Random(0), 1.5)

    def test_california_like_clustered(self):
        pts = california_like_points(2000, random.Random(4))
        assert len(pts) == 2000
        assert all(in_space(x, y) for x, y in pts)
        # Clustered data has much lower nearest-neighbor spacing than uniform.
        sample = pts[:200]

        def mean_nn(ps):
            total = 0.0
            for i, (x, y) in enumerate(ps):
                best = min(math.hypot(x - a, y - b)
                           for j, (a, b) in enumerate(ps) if j != i)
                total += best
            return total / len(ps)

        uni = uniform_points(200, random.Random(5))
        assert mean_nn(sample) < mean_nn(uni)


class TestObstacleGenerators:
    def test_la_street_count_and_thinness(self):
        obs = la_street_obstacles(800, random.Random(6))
        assert len(obs) == 800
        for o in obs:
            r = o.rect
            assert min(r.width, r.height) <= 14.0
            assert max(r.width, r.height) >= min(r.width, r.height)

    def test_la_street_zero(self):
        assert la_street_obstacles(0, random.Random(0)) == []

    def test_random_rect_obstacles_within_bounds(self):
        obs = random_rect_obstacles(100, random.Random(7))
        for o in obs:
            r = o.rect
            assert in_space(r.xlo, r.ylo) and in_space(r.xhi, r.yhi)

    def test_random_segment_obstacles(self):
        obs = random_segment_obstacles(50, random.Random(8))
        assert len(obs) == 50

    def test_reject_inside_obstacles(self):
        rng = random.Random(9)
        obs = [RectObstacle(0, 0, 5000, 5000)]
        pts = [(2500.0, 2500.0), (9000.0, 9000.0)]
        fixed = reject_inside_obstacles(pts, obs, rng)
        assert len(fixed) == 2
        assert not obs[0].rect.contains_point_open(*fixed[0])
        assert fixed[1] == (9000.0, 9000.0)


class TestObstacleGrid:
    def test_inside_lookup(self):
        obs = [RectObstacle(100, 100, 200, 200)]
        grid = ObstacleGrid(obs)
        assert grid.inside_any(150, 150)
        assert not grid.inside_any(250, 250)
        assert not grid.inside_any(100, 100)  # boundary is allowed

    def test_candidates_near(self):
        obs = [RectObstacle(100, 100, 200, 200), RectObstacle(9000, 9000, 9100, 9100)]
        grid = ObstacleGrid(obs)
        near = grid.candidates_near(0, 0, 300, 300)
        assert obs[0] in near and obs[1] not in near


class TestWorkloads:
    def test_query_length_controlled(self):
        rng = random.Random(10)
        for ql in (1.5, 4.5, 7.5):
            seg = random_query_segment(rng, ql)
            assert seg.length == pytest.approx(10000.0 * ql / 100.0, rel=1e-9)

    def test_queries_stay_in_space(self):
        rng = random.Random(11)
        for _ in range(50):
            seg = random_query_segment(rng, 7.5)
            assert in_space(seg.ax, seg.ay) and in_space(seg.bx, seg.by)

    def test_queries_avoid_obstacle_interiors(self):
        rng = random.Random(12)
        obs = la_street_obstacles(400, rng)
        batch = query_workload(random.Random(13), 25, 4.5, obs)
        for seg in batch:
            for o in obs:
                r = o.rect
                assert not segment_crosses_rect_interior(
                    seg.ax, seg.ay, seg.bx, seg.by,
                    r.xlo, r.ylo, r.xhi, r.yhi)

    def test_workload_deterministic(self):
        obs = la_street_obstacles(100, random.Random(14))
        a = query_workload(random.Random(15), 5, 4.5, obs)
        b = query_workload(random.Random(15), 5, 4.5, obs)
        assert a == b
