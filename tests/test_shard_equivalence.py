"""Hypothesis equivalence suite: sharded answers are byte-identical.

The property behind the whole shard subsystem: a
:class:`~repro.shard.ShardedWorkspace` over 1 / 2 / 4 / 9 shards —
arbitrary scene, arbitrary query mix, arbitrary interleaved updates —
answers **exactly** like the unsharded :class:`Workspace` on the same
data, including the delta streams of registered monitors.  Hypothesis
drives the op pattern (query kinds, update kinds, victims); scene
geometry comes from a seeded generator so coordinates stay
well-conditioned.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AddObstacle,
    AddSite,
    CoknnQuery,
    OnnQuery,
    RangeQuery,
    RectObstacle,
    RemoveObstacle,
    RemoveSite,
    Segment,
    SegmentObstacle,
    ShardedWorkspace,
    Workspace,
)
from tests.conftest import random_scene

SHARD_COUNTS = (1, 2, 4, 9)
QUERY_KINDS = ("coknn", "onn", "range")
UPDATE_KINDS = ("add_site", "remove_site", "add_obstacle",
                "remove_obstacle")


def _query_for(kind: str, rng: random.Random, k: int):
    x, y = rng.uniform(5, 90), rng.uniform(5, 90)
    if kind == "coknn":
        return CoknnQuery(Segment(x, y, x + rng.uniform(3, 25),
                                  y + rng.uniform(-10, 10)), k)
    if kind == "onn":
        return OnnQuery((x, y), knn=k)
    return RangeQuery((x, y), rng.uniform(8, 30))


def _update_for(kind: str, rng: random.Random, points, obstacles,
                next_id: int):
    if kind == "add_site":
        return AddSite(next_id, rng.uniform(0, 95), rng.uniform(0, 95))
    if kind == "remove_site" and points:
        payload, (x, y) = points[rng.randrange(len(points))]
        return RemoveSite(payload, x, y)
    if kind == "remove_obstacle" and obstacles:
        return RemoveObstacle(obstacles[rng.randrange(len(obstacles))])
    x, y = rng.uniform(0, 90), rng.uniform(0, 90)
    if rng.random() < 0.3:
        return AddObstacle(SegmentObstacle(x, y, x + rng.uniform(-10, 10),
                                           y + rng.uniform(-10, 10)))
    return AddObstacle(RectObstacle(x, y, x + rng.uniform(1, 8),
                                    y + rng.uniform(1, 6)))


def _assert_same(query, plain, sharded):
    assert plain.tuples() == sharded.tuples(), query
    if isinstance(query, CoknnQuery):
        assert plain.knn_intervals() == sharded.knn_intervals(), query


@given(seed=st.integers(min_value=0, max_value=10_000),
       shards=st.sampled_from(SHARD_COUNTS),
       kinds=st.lists(st.sampled_from(QUERY_KINDS), min_size=1,
                      max_size=4),
       k=st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_static_workloads_identical(seed, shards, kinds, k):
    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
    ws = Workspace.from_points(points, obstacles)
    sws = ShardedWorkspace.from_points(points, obstacles, shards=shards)
    for kind in kinds:
        q = _query_for(kind, rng, k)
        _assert_same(q, ws.execute(q), sws.execute(q))
    # The batch path routes through the same protocol.
    batch = [_query_for(kind, rng, k) for kind in kinds]
    for q, r in zip(batch, sws.execute_many(batch, workers=2)):
        _assert_same(q, ws.execute(q), r)


@given(seed=st.integers(min_value=0, max_value=10_000),
       shards=st.sampled_from(SHARD_COUNTS),
       pattern=st.lists(
           st.tuples(st.sampled_from(UPDATE_KINDS),
                     st.sampled_from(QUERY_KINDS)),
           min_size=1, max_size=5))
@settings(max_examples=12, deadline=None)
def test_interleaved_updates_identical(seed, shards, pattern):
    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
    points, obstacles = list(points), list(obstacles)
    ws = Workspace.from_points(points, obstacles)
    sws = ShardedWorkspace.from_points(points, obstacles, shards=shards)
    next_id = 10_000
    for update_kind, query_kind in pattern:
        update = _update_for(update_kind, rng, points, obstacles, next_id)
        if isinstance(update, AddSite):
            points.append((update.payload, (update.x, update.y)))
            next_id += 1
        elif isinstance(update, RemoveSite):
            points = [(p, xy) for p, xy in points if p != update.payload]
        elif isinstance(update, AddObstacle):
            obstacles.append(update.obstacle)
        else:
            obstacles = [o for o in obstacles if o is not update.obstacle]
        flags_plain = ws.apply([update])
        flags_shard = sws.apply([update])
        assert flags_plain == flags_shard, update
        q = _query_for(query_kind, rng, 2)
        _assert_same(q, ws.execute(q), sws.execute(q))


@given(seed=st.integers(min_value=0, max_value=10_000),
       shards=st.sampled_from(SHARD_COUNTS),
       updates=st.lists(st.sampled_from(UPDATE_KINDS), min_size=1,
                        max_size=4))
@settings(max_examples=10, deadline=None)
def test_monitor_delta_streams_identical(seed, shards, updates):
    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=8, n_obstacles=4)
    points, obstacles = list(points), list(obstacles)
    ws = Workspace.from_points(points, obstacles)
    sws = ShardedWorkspace.from_points(points, obstacles, shards=shards)
    monitors = [
        (ws.monitors.register(q), sws.monitors.register(q))
        for q in (OnnQuery((rng.uniform(20, 80), rng.uniform(20, 80)),
                           knn=2),
                  RangeQuery((rng.uniform(20, 80), rng.uniform(20, 80)),
                             rng.uniform(10, 25)))
    ]
    next_id = 20_000
    for update_kind in updates:
        update = _update_for(update_kind, rng, points, obstacles, next_id)
        if isinstance(update, AddSite):
            points.append((update.payload, (update.x, update.y)))
            next_id += 1
        elif isinstance(update, RemoveSite):
            points = [(p, xy) for p, xy in points if p != update.payload]
        elif isinstance(update, AddObstacle):
            obstacles.append(update.obstacle)
        else:
            obstacles = [o for o in obstacles if o is not update.obstacle]
        applied = ws.apply([update])
        assert sws.apply([update]) == applied
        if not applied[0]:
            continue
        for plain, shard in monitors:
            assert plain.result.tuples() == shard.result.tuples(), update
            dp = plain.events[-1].delta
            dsh = shard.events[-1].delta
            assert (dp.added, dp.removed, dp.changed) == \
                   (dsh.added, dsh.removed, dsh.changed), update
