"""The locality-aware batch executor: ordering, equivalence, I/O savings.

The scene replicates ``benchmarks/bench_batch_scheduler.py`` at its fast
verified configuration: a 10 x 10 building lattice, 250 reachable data
points, and two interleaved fleets of jittered ONN queries.
"""

from __future__ import annotations

import pathlib
import random
import subprocess
import sys

import pytest

from repro import (
    OnnQuery,
    RectObstacle,
    RStarTree,
    Segment,
    SemiJoinQuery,
    Workspace,
)


def grid_obstacles(side=10):
    """A lattice of small buildings over a 100 x 100 space."""
    step = (100.0 - 6.0) / side
    return [RectObstacle(3 + step * gx, 3 + step * gy,
                         3 + step * gx + 0.4 * step,
                         3 + step * gy + 0.3 * step)
            for gx in range(side) for gy in range(side)]


def scattered_points(obstacles, seed=7, n=250):
    """Points outside the buildings (interior points would be unreachable)."""
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        if not any(o.contains_interior(x, y) for o in obstacles):
            out.append((len(out), (x, y)))
    return out


def make_ws(**kwargs) -> Workspace:
    """A deterministic scene; page_size=256 gives the obstacle tree depth."""
    obstacles = grid_obstacles()
    return Workspace.from_points(scattered_points(obstacles), obstacles,
                                 page_size=256, **kwargs)


def clustered_batch(per_cluster=5, clusters=2, seed=8):
    """Fleets of jittered ONN queries, interleaved in submission order.

    The worst case for a fifo batch: consecutive queries come from
    different fleets, so they never share an obstacle footprint.
    """
    rng = random.Random(seed)
    fleets = []
    for c in range(clusters):
        ax, ay = rng.uniform(15, 85), rng.uniform(15, 85)
        fleets.append([OnnQuery((ax + 2.5 * i, ay + 0.75 * i), knn=2,
                                label=f"fleet{c}-{i}")
                       for i in range(per_cluster)])
    out = []
    for i in range(per_cluster):
        for fleet in fleets:
            out.append(fleet[i])
    return out


def obstacle_reads(ws: Workspace, run) -> int:
    snap = ws.obstacle_tree.tracker.stats.snapshot()
    run()
    return ws.obstacle_tree.tracker.stats.delta(snap).logical_reads


class TestOrderingAndEquivalence:
    def test_submission_order_and_schedule_equivalence(self):
        """Scheduling changes execution order, never results or their order."""
        queries = clustered_batch()
        ws_fifo, ws_sched = make_ws(), make_ws()
        fifo = ws_fifo.execute_many(queries, schedule="fifo")
        sched = ws_sched.execute_many(queries, schedule="locality")
        assert len(sched) == len(queries)
        for q, a, b in zip(queries, fifo, sched):
            assert a.query is q and b.query is q
            assert a.tuples() == b.tuples()

    def test_mixed_batch_with_non_spatial_queries(self):
        ws = make_ws()
        inner = RStarTree()
        for i in range(4):
            inner.insert_point(f"d{i}", 10.0 * i + 30, 50.0)
        queries = clustered_batch(per_cluster=2)
        queries.insert(1, SemiJoinQuery(ws.data_tree, inner))
        results = ws.execute_many(queries)
        for q, res in zip(queries, results):
            assert res.query is q
        ref = make_ws()
        assert results[1].tuples() == \
            ref.execute(SemiJoinQuery(ref.data_tree, inner)).tuples()

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            make_ws().execute_many(clustered_batch(2), schedule="random")

    def test_legacy_batch_is_fifo(self):
        ws = make_ws()
        segs = [Segment(30 + 3 * i, 44 + i, 42 + 3 * i, 45 + i)
                for i in range(3)]
        results = ws.batch(segs, k=2)
        ref = make_ws()
        assert [r.tuples() for r in results] == \
            [ref.coknn(s, k=2).tuples() for s in segs]
        assert ws.cache_stats.prefetch_calls == 0


class TestLocalityScheduling:
    def test_fewer_obstacle_reads_than_fifo(self):
        """On a clustered interleaved batch, scheduling must save tree I/O."""
        queries = clustered_batch()
        ws_fifo = make_ws()
        fifo_reads = obstacle_reads(
            ws_fifo, lambda: ws_fifo.execute_many(queries, schedule="fifo"))
        ws_sched = make_ws()
        sched_reads = obstacle_reads(
            ws_sched,
            lambda: ws_sched.execute_many(queries, schedule="locality"))
        assert sched_reads < fifo_reads, (sched_reads, fifo_reads)
        assert ws_sched.cache_stats.misses < ws_fifo.cache_stats.misses

    def test_tiny_batches_skip_scheduling(self):
        """<= 2 queries run fifo (nothing to reorder or prefetch)."""
        ws = make_ws()
        queries = clustered_batch(per_cluster=1)
        results = ws.execute_many(queries)
        assert [r.query for r in results] == queries
        assert ws.cache_stats.prefetch_calls == 0

    def test_stream_is_lazy_and_ordered(self):
        ws = make_ws()
        queries = clustered_batch(per_cluster=2)
        it = ws.stream(queries)
        assert ws.cache_stats.hits + ws.cache_stats.misses == 0  # nothing ran
        first = next(it)
        assert first.query is queries[0]
        rest = list(it)
        assert [r.query for r in rest] == queries[1:]
        ref = make_ws()
        assert first.tuples() == ref.execute(queries[0]).tuples()

    def test_benchmark_script_shows_savings(self):
        """The bench exits non-zero unless locality saves obstacle reads."""
        script = (pathlib.Path(__file__).parent.parent / "benchmarks" /
                  "bench_batch_scheduler.py")
        proc = subprocess.run(
            [sys.executable, str(script), "--points", "250",
             "--obstacle-side", "10", "--per-cluster", "5"],
            capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stdout[-2000:] + proc.stderr[-2000:]
        assert "fewer obstacle pages" in proc.stdout
