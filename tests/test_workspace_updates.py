"""Dynamic updates through the workspace: correctness before performance.

The headline contract of the update subsystem: a *warmed* workspace that
receives site/obstacle updates answers every subsequent query identically
to a workspace freshly built on the mutated dataset — the obstacle cache is
maintained surgically (patch on insert, evict on remove), and any mutation
that bypasses the workspace trips the cache's version guard into a full
invalidation, never a silent stale serve.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import (
    AddObstacle,
    AddSite,
    CoknnQuery,
    RectObstacle,
    RemoveObstacle,
    RemoveSite,
    SegmentObstacle,
    Workspace,
)
from repro.geometry import Rect
from tests.conftest import random_query, random_scene, same_values


def fresh_like(points, obstacles, layout="2T", **kwargs):
    return Workspace.from_points(points, obstacles, layout=layout, **kwargs)


def assert_matches_fresh(ws, points, obstacles, qseg, k=2, layout="2T"):
    """Every query kind on ``ws`` equals a cold workspace on the same data."""
    fresh = fresh_like(points, obstacles, layout=layout)
    got = ws.coknn(qseg, k=k)
    want = fresh.coknn(qseg, k=k)
    ts = np.linspace(0.0, qseg.length, 101)
    for lv_g, lv_w in zip(got.levels, want.levels):
        assert same_values(lv_g.values(ts), lv_w.values(ts))
    assert [o for o, _iv in got.tuples()] == [o for o, _iv in want.tuples()]
    x, y = qseg.point_at(0.3 * qseg.length)
    got_nn, _ = ws.onn(x, y, k=k)
    want_nn, _ = fresh.onn(x, y, k=k)
    assert [p for p, _d in got_nn] == [p for p, _d in want_nn]
    assert got_nn == pytest.approx(want_nn, abs=1e-6) or \
        [d for _p, d in got_nn] == pytest.approx([d for _p, d in want_nn],
                                                 abs=1e-6)
    got_r, _ = ws.range(x, y, 25.0)
    want_r, _ = fresh.range(x, y, 25.0)
    assert sorted(p for p, _d in got_r) == sorted(p for p, _d in want_r)


class TestStaleCacheGuard:
    """Satellite bugfix: stale serving is impossible even without monitors."""

    def test_direct_tree_mutation_invalidates_cache(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles)
        q = random_query(rng)
        ws.coknn(q, k=2)  # warm: capsules + cached obstacles recorded
        assert ws.cache.coverage_regions > 0
        # Mutate the obstacle tree *behind the workspace's back*.
        wall = SegmentObstacle(q.ax, q.ay - 5.0, q.bx, q.by + 5.0)
        ws.obstacle_tree.insert(wall, wall.mbr())
        assert_matches_fresh(ws, points, obstacles + [wall], q)
        assert ws.cache.stats.invalidations >= 1

    def test_direct_delete_never_serves_ghost_obstacle(self):
        wall = SegmentObstacle(5.0, -50.0, 5.0, 50.0)
        points = [("p", (10.0, 0.0))]
        ws = Workspace.from_points(points, [wall])
        detour, _ = ws.onn(0.0, 0.0, k=1)
        assert detour[0][1] > 10.0  # walled off: path detours
        assert ws.obstacle_tree.delete(wall, wall.mbr())
        direct, _ = ws.onn(0.0, 0.0, k=1)
        assert direct[0][1] == pytest.approx(10.0, abs=1e-9)

    def test_unannounced_mutation_between_announced_ones(self, rng):
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
        ws = Workspace.from_points(points, obstacles)
        q = random_query(rng)
        ws.coknn(q, k=1)
        extra = RectObstacle(10, 10, 14, 13)
        ws.obstacle_tree.insert(extra, extra.mbr())  # foreign
        late = RectObstacle(40, 40, 45, 44)
        ws.add_obstacle(late)  # announced, but the version gap is 2
        assert ws.cache.stats.invalidations >= 1
        assert_matches_fresh(ws, points, obstacles + [extra, late], q)


class TestSurgicalMaintenance:
    def test_obstacle_insert_is_patched_not_invalidated(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles)
        q = random_query(rng)
        ws.coknn(q, k=2)
        capsules_before = ws.cache.coverage_regions
        assert capsules_before > 0
        new = RectObstacle(20, 20, 26, 24)
        ws.add_obstacle(new)
        assert ws.cache.stats.invalidations == 0
        assert ws.cache.stats.patched == 1
        assert ws.cache.coverage_regions == capsules_before
        assert new in ws.cache.obstacles
        assert_matches_fresh(ws, points, obstacles + [new], q)

    def test_obstacle_remove_evicts_from_cache(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles)
        ws.prefetch_all()
        target = obstacles[0]
        assert target in ws.cache.obstacles
        assert ws.remove_obstacle(target) is True
        assert ws.cache.stats.invalidations == 0
        assert ws.cache.stats.evicted == 1
        assert target not in ws.cache.obstacles
        # The full-cache capsule survives eviction, so the query below runs
        # without any obstacle-tree read — and still gets fresh answers.
        snap = ws.obstacle_tree.tracker.stats.snapshot()
        q = random_query(rng)
        assert_matches_fresh(ws, points, obstacles[1:], q)
        assert ws.obstacle_tree.tracker.stats.delta(snap).logical_reads == 0

    def test_site_updates_leave_obstacle_cache_alone(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles)
        q = random_query(rng)
        ws.coknn(q, k=1)
        capsules = ws.cache.coverage_regions
        ws.add_site(99, (31.0, 57.0))
        ws.remove_site(points[0][0], points[0][1])
        assert ws.cache.coverage_regions == capsules
        assert ws.cache.stats.invalidations == 0
        mutated = [p for p in points if p[0] != points[0][0]]
        mutated.append((99, (31.0, 57.0)))
        assert_matches_fresh(ws, mutated, obstacles, q)

    def test_duplicate_obstacle_remove_keeps_survivor_cached(self, rng):
        """Regression: removing one of two equal tree entries must not evict
        the obstacle from the cache (the dataset still contains it)."""
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles)
        dup = obstacles[0]
        ws.add_obstacle(dup)  # second tree entry for an already-indexed one
        q = random_query(rng)
        ws.coknn(q, k=2)  # warm: capsules recorded with dup resident
        assert ws.remove_obstacle(dup) is True  # one entry remains
        assert dup in ws.cache.obstacles
        assert_matches_fresh(ws, points, obstacles, q)
        assert ws.remove_obstacle(dup) is True  # now the last copy goes
        assert dup not in ws.cache.obstacles
        assert_matches_fresh(ws, points, obstacles[1:], q)

    def test_remove_returns_false_for_unknown(self, rng):
        points, obstacles = random_scene(rng, n_points=6, n_obstacles=4)
        ws = Workspace.from_points(points, obstacles)
        assert ws.remove_site("nope", (1.0, 2.0)) is False
        assert ws.remove_obstacle(RectObstacle(0, 0, 1, 1)) is False
        assert ws.version == 0

    def test_apply_batch_routes_everything(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles)
        q = random_query(rng)
        ws.coknn(q, k=2)
        new_obs = RectObstacle(60, 15, 66, 19)
        flags = ws.apply([
            AddSite("fresh", 44.0, 61.0),
            RemoveSite(points[2][0], *points[2][1]),
            AddObstacle(new_obs),
            RemoveObstacle(obstacles[1]),
            RemoveObstacle(obstacles[1]),  # second time: nothing left
        ])
        assert flags == [True, True, True, True, False]
        assert ws.version == 4
        mutated_points = [p for p in points if p[0] != points[2][0]]
        mutated_points.append(("fresh", (44.0, 61.0)))
        mutated_obs = [o for o in obstacles if o != obstacles[1]] + [new_obs]
        assert_matches_fresh(ws, mutated_points, mutated_obs, q)

    def test_unknown_update_type_rejected(self, rng):
        points, obstacles = random_scene(rng, n_points=5, n_obstacles=3)
        ws = Workspace.from_points(points, obstacles)
        with pytest.raises(TypeError):
            ws.apply([("add", 1, 2)])


class TestUnifiedLayoutUpdates:
    @pytest.mark.parametrize("seed", [5, 21])
    def test_1t_updates_match_fresh(self, seed):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles, layout="1T")
        q = random_query(rng)
        ws.coknn(q, k=2)  # warm the unified scan's harvest cache
        new_obs = RectObstacle(35, 35, 41, 39)
        ws.add_site("late", 12.0, 88.0)
        ws.add_obstacle(new_obs)
        assert ws.remove_site(points[1][0], points[1][1]) is True
        assert ws.remove_obstacle(obstacles[0]) is True
        mutated_points = [p for p in points if p[0] != points[1][0]]
        mutated_points.append(("late", (12.0, 88.0)))
        mutated_obs = obstacles[1:] + [new_obs]
        assert_matches_fresh(ws, mutated_points, mutated_obs, q, layout="1T")


class TestPlanVersioning:
    def test_prepared_plan_replans_after_update(self, rng):
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
        ws = Workspace.from_points(points, obstacles)
        q = CoknnQuery(random_query(rng), knn=1)
        plan = ws.plan(q)
        assert plan.workspace_version == ws.version
        wall = SegmentObstacle(q.segment.ax, q.segment.ay - 3.0,
                               q.segment.bx, q.segment.by + 3.0)
        ws.add_obstacle(wall)
        assert plan.workspace_version != ws.version
        got = ws.execute(plan)  # must re-plan, then answer on fresh data
        want = fresh_like(points, obstacles + [wall]).execute(q)
        ts = np.linspace(0.0, q.segment.length, 101)
        assert same_values(got.envelope.values(ts), want.envelope.values(ts))

    def test_prepared_plan_replans_after_direct_tree_mutation(self, rng):
        """A mutation bypassing the workspace leaves ``version`` untouched;
        the plan's recorded tree versions must catch it anyway."""
        from repro import PlannerOptions

        points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
        ws = Workspace.from_points(
            points, obstacles, planner=PlannerOptions(naive_max_points=50))
        q = CoknnQuery(random_query(rng), knn=1)
        plan = ws.plan(q)
        assert plan.algorithm == "naive-preload"
        for i in range(60):  # directly: the dataset outgrows the threshold
            ws.data_tree.insert_point(1000 + i, 1.0 + 0.1 * i, 2.0)
        ws.execute(plan)
        # A stale plan would have drained the whole obstacle tree.
        assert ws.cache.stats.prefetch_calls == 0

    def test_warm_plan_goes_cold_after_invalidation(self, rng):
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
        ws = Workspace.from_points(points, obstacles)
        ws.prefetch_all()
        q = CoknnQuery(random_query(rng), knn=1)
        assert ws.plan(q).warm
        ws.obstacle_tree.insert(RectObstacle(1, 1, 2, 2), Rect(1, 1, 2, 2))
        assert not ws.plan(q).warm  # version guard dropped the capsules
