"""COkNN (continuous obstructed k-NN): oracle comparisons and k-envelope laws."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines import naive_coknn
from repro.core import ConnConfig, coknn, conn
from repro.geometry import Segment
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)


def assert_klevels_match_oracle(points, obstacles, q, res, k, samples=41):
    ts = np.linspace(0.0, q.length, samples)
    want = naive_coknn(points, obstacles, q, ts, k)
    for j, t in enumerate(ts):
        got = res.knn_at(float(t))
        for lvl in range(k):
            wd = want[j][lvl][1] if lvl < len(want[j]) else math.inf
            gd = got[lvl][1]
            assert (abs(gd - wd) < 1e-5) or (math.isinf(gd) and math.isinf(wd)), (
                f"t={t} level={lvl}: got {gd}, want {wd}")


class TestBasics:
    def test_k1_equals_conn(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        r1 = conn(dt, ot, q)
        rk = coknn(dt, ot, q, k=1)
        ts = np.linspace(0, q.length, 101)
        a = r1.envelope.values(ts)
        b = rk.envelope.values(ts)
        assert same_values(a, b, atol=1e-6)

    def test_invalid_k_rejected(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                  random_query(rng), k=0)

    def test_levels_are_sorted_pointwise(self, rng):
        points, obstacles = random_scene(rng, n_points=12)
        q = random_query(rng)
        res = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                    q, k=4)
        ts = np.linspace(0, q.length, 101)
        vals = np.stack([lv.values(ts) for lv in res.levels])
        finite = np.isfinite(vals)
        for j in range(len(res.levels) - 1):
            both = finite[j] & finite[j + 1]
            assert np.all(vals[j][both] <= vals[j + 1][both] + 1e-6)

    def test_levels_have_distinct_owners_pointwise(self, rng):
        points, obstacles = random_scene(rng, n_points=12)
        q = random_query(rng)
        res = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                    q, k=3)
        for t in np.linspace(0, q.length, 23):
            owners = [o for o, d in res.knn_at(float(t)) if math.isfinite(d)]
            assert len(owners) == len(set(owners))

    def test_k_larger_than_dataset(self, rng):
        points, obstacles = random_scene(rng, n_points=3)
        q = random_query(rng)
        res = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                    q, k=5)
        finite_counts = [sum(math.isfinite(d) for _o, d in res.knn_at(t))
                         for t in np.linspace(0, q.length, 11)]
        assert max(finite_counts) <= 3


class TestOracle:
    @pytest.mark.parametrize("seed,k", [(s, k) for s in range(5)
                                        for k in (2, 3, 5)])
    def test_matches_naive_coknn(self, seed, k):
        rng = random.Random(4000 + seed)
        points, obstacles = random_scene(
            rng, n_points=rng.randint(6, 14), n_obstacles=rng.randint(3, 9))
        q = random_query(rng)
        res = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                    q, k=k)
        assert_klevels_match_oracle(points, obstacles, q, res, k)

    def test_knn_intervals_partition_query(self, rng):
        points, obstacles = random_scene(rng, n_points=10)
        q = random_query(rng)
        res = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                    q, k=3)
        intervals = res.knn_intervals()
        assert intervals[0][1][0] == pytest.approx(0.0)
        assert intervals[-1][1][1] == pytest.approx(q.length)
        for (a, b) in zip(intervals, intervals[1:]):
            assert a[1][1] == pytest.approx(b[1][0])
            assert a[0] != b[0]  # adjacent intervals merged when equal

    def test_pruning_invariance(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=7)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        fast = coknn(dt, ot, q, k=3)
        slow = coknn(dt, ot, q, k=3, config=ConnConfig.no_pruning())
        ts = np.linspace(0, q.length, 101)
        for lvl in range(3):
            a = fast.levels[lvl].values(ts)
            b = slow.levels[lvl].values(ts)
            assert same_values(a, b)

    def test_growing_k_extends_prefix(self, rng):
        """Levels 1..k of COkNN(k) == levels 1..k of COkNN(k+2)."""
        points, obstacles = random_scene(rng, n_points=12)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        r3 = coknn(dt, ot, q, k=3)
        r5 = coknn(dt, ot, q, k=5)
        ts = np.linspace(0, q.length, 67)
        for lvl in range(3):
            a = r3.levels[lvl].values(ts)
            b = r5.levels[lvl].values(ts)
            assert same_values(a, b)

    def test_npe_grows_with_k(self, rng):
        points, obstacles = random_scene(rng, n_points=30, n_obstacles=5)
        q = Segment(20, 50, 40, 50)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        npe = [coknn(dt, ot, q, k=k).stats.npe for k in (1, 3, 5)]
        assert npe[0] <= npe[1] <= npe[2]
