"""Hypothesis property suite for the dynamic-update subsystem.

The property: a long-lived :class:`Workspace` that interleaves arbitrary
site/obstacle updates with CONN / ONN / range queries always answers
exactly like naive recomputation — fresh trees, cold cache, the core free
functions — on the dataset as mutated so far.  Hypothesis drives the *op
pattern* (which update kind, which victim, when to query); scene geometry
comes from a seeded generator so coordinates stay well-conditioned.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RectObstacle, SegmentObstacle, Workspace, coknn, onn
from repro.core import obstructed_range
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)

OPS = ("add_site", "remove_site", "add_obstacle", "remove_obstacle")


def _random_obstacle(rng: random.Random):
    x, y = rng.uniform(0, 92), rng.uniform(0, 92)
    if rng.random() < 0.3:
        return SegmentObstacle(x, y, x + rng.uniform(-12, 12),
                               y + rng.uniform(-12, 12))
    return RectObstacle(x, y, x + rng.uniform(1, 7), y + rng.uniform(1, 5))


def _check_all_kinds(ws, points, obstacles, qseg, k):
    dt = build_point_tree(points)
    ot = build_obstacle_tree(obstacles)
    ts = np.linspace(0.0, qseg.length, 81)

    got = ws.coknn(qseg, k=k)
    want = coknn(dt, ot, qseg, k=k)
    for lv_g, lv_w in zip(got.levels, want.levels):
        assert same_values(lv_g.values(ts), lv_w.values(ts))
    assert [o for o, _iv in got.tuples()] == [o for o, _iv in want.tuples()]

    x, y = qseg.point_at(0.5 * qseg.length)
    got_nn, _ = ws.onn(x, y, k=k)
    want_nn, _ = onn(dt, ot, x, y, k=k)
    assert [p for p, _d in got_nn] == [p for p, _d in want_nn]
    assert same_values([d for _p, d in got_nn], [d for _p, d in want_nn])

    got_r, _ = ws.range(x, y, 20.0)
    want_r, _ = obstructed_range(dt, ot, x, y, 20.0)
    assert sorted(map(str, (p for p, _d in got_r))) == \
        sorted(map(str, (p for p, _d in want_r)))


@given(seed=st.integers(min_value=0, max_value=10_000),
       pattern=st.lists(st.tuples(st.sampled_from(OPS),
                                  st.integers(min_value=0, max_value=31),
                                  st.booleans()),
                        min_size=1, max_size=6),
       k=st.integers(min_value=1, max_value=2))
@settings(max_examples=20, deadline=None)
def test_interleaved_updates_match_naive_recompute(seed, pattern, k):
    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
    points = list(points)
    obstacles = list(obstacles)
    ws = Workspace.from_points(points, obstacles)
    qseg = random_query(rng)
    ws.coknn(qseg, k=k)  # warm the cache before any mutation
    next_id = 10_000
    for op, victim, query_between in pattern:
        if op == "add_site":
            xy = (rng.uniform(0, 100), rng.uniform(0, 100))
            ws.add_site(next_id, xy)
            points.append((next_id, xy))
            next_id += 1
        elif op == "remove_site" and len(points) > 2:
            pid, xy = points.pop(victim % len(points))
            assert ws.remove_site(pid, xy) is True
        elif op == "add_obstacle":
            obs = _random_obstacle(rng)
            ws.add_obstacle(obs)
            obstacles.append(obs)
        elif op == "remove_obstacle" and obstacles:
            obs = obstacles.pop(victim % len(obstacles))
            assert ws.remove_obstacle(obs) is True
        if query_between:
            _check_all_kinds(ws, points, obstacles, qseg, k)
    _check_all_kinds(ws, points, obstacles, qseg, k)


@given(seed=st.integers(min_value=0, max_value=10_000),
       n_updates=st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_monitor_tracks_naive_recompute(seed, n_updates):
    """The standing result of a registered monitor obeys the same property."""
    from repro import CoknnQuery

    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
    points = list(points)
    obstacles = list(obstacles)
    ws = Workspace.from_points(points, obstacles)
    q = CoknnQuery(random_query(rng), knn=2)
    m = ws.monitors.register(q)
    next_id = 50_000
    ts = np.linspace(0.0, q.segment.length, 81)
    for _ in range(n_updates):
        roll = rng.random()
        if roll < 0.4:
            xy = (rng.uniform(0, 100), rng.uniform(0, 100))
            ws.add_site(next_id, xy)
            points.append((next_id, xy))
            next_id += 1
        elif roll < 0.6 and len(points) > 2:
            pid, xy = points.pop(rng.randrange(len(points)))
            ws.remove_site(pid, xy)
        elif roll < 0.8 and obstacles:
            obs = obstacles.pop(rng.randrange(len(obstacles)))
            ws.remove_obstacle(obs)
        else:
            obs = _random_obstacle(rng)
            ws.add_obstacle(obs)
            obstacles.append(obs)
        want = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                     q.segment, k=2)
        for lv_g, lv_w in zip(m.result.levels, want.levels):
            assert same_values(lv_g.values(ts), lv_w.values(ts))
        assert [o for o, _iv in m.result.tuples()] == \
            [o for o, _iv in want.tuples()]
