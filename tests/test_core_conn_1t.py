"""Single-tree (1T) CONN/COkNN: equivalence with 2T and traversal behavior."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import (
    build_unified_tree,
    coknn,
    coknn_single_tree,
    conn,
    conn_single_tree,
)
from repro.geometry import Segment
from repro.obstacles import Obstacle, RectObstacle
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)


class TestUnifiedTree:
    def test_build_contains_everything(self, rng):
        points, obstacles = random_scene(rng)
        tree = build_unified_tree(points, obstacles)
        tree.check_invariants()
        assert tree.size == len(points) + len(obstacles)
        payloads = [p for p, _r in tree.items()]
        assert sum(isinstance(p, Obstacle) for p in payloads) == len(obstacles)

    def test_build_insert_mode(self, rng):
        points, obstacles = random_scene(rng, n_points=30, n_obstacles=10)
        tree = build_unified_tree(points, obstacles, bulk=False)
        tree.check_invariants()
        assert tree.size == 40


class TestEquivalenceWith2T:
    @pytest.mark.parametrize("seed,k", [(s, k) for s in range(6)
                                        for k in (1, 3)])
    def test_same_distance_functions(self, seed, k):
        rng = random.Random(9000 + seed)
        points, obstacles = random_scene(
            rng, n_points=rng.randint(5, 14), n_obstacles=rng.randint(3, 10))
        q = random_query(rng)
        r2 = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                   q, k=k)
        r1 = coknn_single_tree(build_unified_tree(points, obstacles), q, k=k)
        ts = np.linspace(0, q.length, 101)
        for lvl in range(k):
            assert same_values(r2.levels[lvl].values(ts),
                               r1.levels[lvl].values(ts))

    def test_same_tuples_k1(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        r2 = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        r1 = conn_single_tree(build_unified_tree(points, obstacles), q)
        assert [o for o, _ in r2.tuples()] == [o for o, _ in r1.tuples()]
        for (_o2, (l2, h2)), (_o1, (l1, h1)) in zip(r2.tuples(), r1.tuples()):
            assert l2 == pytest.approx(l1, abs=1e-6)
            assert h2 == pytest.approx(h1, abs=1e-6)


class TestTraversalBehavior:
    def test_single_tree_uses_one_tracker(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        tree = build_unified_tree(points, obstacles)
        res = conn_single_tree(tree, q)
        assert res.stats.io.logical_reads > 0

    def test_obstacles_on_path_enter_graph(self):
        points = [(0, (50.0, 30.0))]
        obstacles = [RectObstacle(40, 10, 60, 20)]
        tree = build_unified_tree(points, obstacles)
        q = Segment(0, 0, 100, 0)
        res = conn_single_tree(tree, q)
        assert res.stats.noe == 1  # the blocking obstacle was encountered

    def test_degenerate_query_rejected(self, rng):
        points, obstacles = random_scene(rng)
        tree = build_unified_tree(points, obstacles)
        with pytest.raises(ValueError):
            conn_single_tree(tree, Segment(1, 1, 1, 1))

    def test_empty_unified_tree(self):
        tree = build_unified_tree([], [])
        res = conn_single_tree(tree, Segment(0, 0, 10, 0))
        assert res.tuples() == [(None, (0.0, 10.0))]

    def test_obstacle_only_tree(self):
        tree = build_unified_tree([], [RectObstacle(1, 1, 2, 2)])
        res = conn_single_tree(tree, Segment(0, 0, 10, 0))
        assert res.tuples() == [(None, (0.0, 10.0))]
        assert res.stats.npe == 0

    def test_points_only_tree_matches_2t(self, rng):
        points, _ = random_scene(rng, n_obstacles=0)
        q = random_query(rng)
        r1 = conn_single_tree(build_unified_tree(points, []), q)
        r2 = conn(build_point_tree(points), build_obstacle_tree([]), q)
        ts = np.linspace(0, q.length, 51)
        assert same_values(r1.envelope.values(ts), r2.envelope.values(ts))
