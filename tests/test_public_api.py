"""Public API surface: exports, docstrings, and the README code path."""

from __future__ import annotations

import inspect
import random

import pytest

import repro
import repro.baselines
import repro.bench
import repro.core
import repro.datasets
import repro.geometry
import repro.index
import repro.obstacles
import repro.service


ALL_PACKAGES = [repro, repro.baselines, repro.bench, repro.core,
                repro.datasets, repro.geometry, repro.index, repro.obstacles,
                repro.service]


class TestExports:
    @pytest.mark.parametrize("pkg", ALL_PACKAGES,
                             ids=lambda p: p.__name__)
    def test_all_names_resolve(self, pkg):
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg.__name__}.{name} missing"

    @pytest.mark.parametrize("pkg", ALL_PACKAGES,
                             ids=lambda p: p.__name__)
    def test_package_docstring(self, pkg):
        assert pkg.__doc__ and len(pkg.__doc__.strip()) > 10

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", sorted(set(repro.__all__) - {"__version__"}))
    def test_public_items_documented(self, name):
        obj = getattr(repro, name)
        if inspect.ismodule(obj):
            return
        doc = inspect.getdoc(obj)
        assert doc, f"repro.{name} lacks a docstring"

    def test_core_callables_have_docstrings(self):
        for fn in (repro.conn, repro.coknn, repro.onn, repro.conn_single_tree,
                   repro.coknn_single_tree, repro.obstructed_distance,
                   repro.obstructed_path, repro.cnn_euclidean):
            assert inspect.getdoc(fn)


class TestReadmeFlow:
    def test_readme_snippet_runs(self):
        rng = random.Random(0)
        data = repro.RStarTree()
        for i in range(200):
            data.insert_point(i, rng.uniform(0, 1000), rng.uniform(0, 1000))
        obstacles = repro.RStarTree()
        for _ in range(50):
            x, y = rng.uniform(0, 950), rng.uniform(0, 950)
            o = repro.RectObstacle(x, y, x + 40, y + 12)
            obstacles.insert(o, o.mbr())
        q = repro.Segment(100, 500, 900, 520)
        result = repro.conn(data, obstacles, q)
        assert result.tuples()
        assert all(lo < hi for _o, (lo, hi) in result.tuples())
        res3 = repro.coknn(data, obstacles, q, k=3)
        assert len(res3.knn_at(q.length / 2)) == 3

    def test_module_docstring_example_runs(self):
        rng = random.Random(0)
        data = repro.RStarTree()
        for i in range(100):
            data.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        obstacles = repro.RStarTree()
        for o in [repro.RectObstacle(40, 40, 60, 60)]:
            obstacles.insert(o, o.mbr())
        result = repro.conn(data, obstacles, repro.Segment(0, 50, 100, 50))
        assert result.tuples()
