"""Terminal visualization renderers."""

from __future__ import annotations

from repro.core import conn
from repro.geometry import Segment
from repro.obstacles import PolygonObstacle, RectObstacle, SegmentObstacle
from repro.viz import render_profile, render_scene
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
)


class TestRenderScene:
    def test_dimensions(self, rng):
        points, obstacles = random_scene(rng)
        art = render_scene(points, obstacles, random_query(rng),
                           width=60, height=20)
        lines = art.split("\n")
        assert len(lines) == 20
        assert all(len(line) == 60 for line in lines)

    def test_obstacle_marks_present(self):
        art = render_scene([], [RectObstacle(10, 10, 90, 90)],
                           Segment(0, 0, 100, 100))
        assert "#" in art

    def test_wall_marks_present(self):
        art = render_scene([], [SegmentObstacle(10, 10, 90, 90)])
        assert "/" in art

    def test_polygon_marks_present(self):
        art = render_scene([], [PolygonObstacle([(20, 20), (80, 25), (50, 80)])])
        assert "#" in art

    def test_query_endpoints_labeled(self):
        art = render_scene([], [], Segment(0, 50, 100, 50))
        assert "S" in art and "E" in art and "=" in art

    def test_point_labels(self):
        art = render_scene([("alpha", (50.0, 50.0)), ("beta", (10.0, 90.0))],
                           [])
        assert "a" in art and "b" in art

    def test_empty_scene(self):
        art = render_scene([], [])
        assert len(art.split("\n")) == 24


class TestRenderProfile:
    def test_profile_shape(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        out = render_profile(res, width=50)
        lines = out.split("\n")
        assert len(lines[0]) == 50
        assert len(lines[1]) == 50
        assert "min" in lines[2] and "max" in lines[2]

    def test_split_points_marked(self):
        points = [(0, (20.0, 10.0)), (1, (80.0, 10.0))]
        res = conn(build_point_tree(points), build_obstacle_tree([]),
                   Segment(0, 0, 100, 0))
        out = render_profile(res, width=40)
        assert "^" in out.split("\n")[1]

    def test_unreachable_marked(self):
        res = conn(build_point_tree([]),
                   build_obstacle_tree([RectObstacle(1, 1, 2, 2)]),
                   Segment(0, 0, 10, 0))
        out = render_profile(res)
        assert "!" in out
