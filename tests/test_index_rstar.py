"""R*-tree structure and query correctness, incl. hypothesis battles vs brute force."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.index import RStarTree, knn

coord = st.floats(min_value=0, max_value=1000, allow_nan=False,
                  allow_infinity=False)


def brute_knn(points, x, y, k):
    return [pid for pid, _ in
            sorted(points, key=lambda p: math.hypot(p[1][0] - x, p[1][1] - y))[:k]]


def brute_range(points, rect: Rect):
    return sorted(pid for pid, (x, y) in points if rect.contains_point(x, y))


class TestConstruction:
    def test_empty_tree(self):
        t = RStarTree()
        t.check_invariants()
        assert t.size == 0 and t.height == 1
        assert t.range_search(Rect(0, 0, 10, 10)) == []

    def test_fanout_from_page_size(self):
        t = RStarTree(page_size=4096)
        assert t.max_entries == (4096 - 16) // 40
        assert t.min_entries == max(2, int(t.max_entries * 0.4))

    def test_page_size_too_small_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(page_size=64)

    def test_invalid_rect_rejected(self):
        t = RStarTree()
        with pytest.raises(ValueError):
            t.insert("x", Rect(5, 5, 1, 1))

    def test_single_insert(self):
        t = RStarTree()
        t.insert_point("a", 1, 2)
        t.check_invariants()
        assert t.size == 1
        assert t.range_search(Rect(0, 0, 3, 3)) == ["a"]


class TestInsertionGrowth:
    def test_splits_preserve_invariants(self, rng):
        t = RStarTree(page_size=256)
        for i in range(500):
            t.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        t.check_invariants()
        assert t.height >= 3

    def test_duplicate_coordinates(self):
        t = RStarTree(page_size=256)
        for i in range(100):
            t.insert_point(i, 5.0, 5.0)
        t.check_invariants()
        assert sorted(t.range_search(Rect(5, 5, 5, 5))) == list(range(100))

    def test_collinear_points(self):
        t = RStarTree(page_size=256)
        for i in range(200):
            t.insert_point(i, float(i), 0.0)
        t.check_invariants()
        assert sorted(t.range_search(Rect(10, 0, 20, 0))) == list(range(10, 21))

    def test_rect_items(self, rng):
        t = RStarTree(page_size=256)
        items = []
        for i in range(300):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            r = Rect(x, y, x + rng.uniform(0, 10), y + rng.uniform(0, 10))
            items.append((i, r))
            t.insert(i, r)
        t.check_invariants()
        probe = Rect(20, 20, 40, 40)
        want = sorted(i for i, r in items if r.intersects(probe))
        assert sorted(t.range_search(probe)) == want


class TestDeletion:
    def test_delete_missing_returns_false(self):
        t = RStarTree()
        t.insert_point("a", 1, 1)
        assert not t.delete("b", Rect.point(1, 1))
        assert t.size == 1

    def test_delete_to_empty(self, rng):
        t = RStarTree(page_size=256)
        pts = [(i, (rng.uniform(0, 50), rng.uniform(0, 50))) for i in range(120)]
        for i, (x, y) in pts:
            t.insert_point(i, x, y)
        for i, (x, y) in pts:
            assert t.delete(i, Rect.point(x, y))
        t.check_invariants()
        assert t.size == 0

    def test_interleaved_insert_delete(self, rng):
        t = RStarTree(page_size=256)
        alive = {}
        next_id = 0
        for _round in range(600):
            if alive and rng.random() < 0.4:
                pid = rng.choice(list(alive))
                x, y = alive.pop(pid)
                assert t.delete(pid, Rect.point(x, y))
            else:
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                t.insert_point(next_id, x, y)
                alive[next_id] = (x, y)
                next_id += 1
        t.check_invariants()
        assert t.size == len(alive)
        got = sorted(t.range_search(Rect(0, 0, 100, 100)))
        assert got == sorted(alive)


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 50, 333, 2000])
    def test_sizes(self, n, rng):
        items = [(i, Rect.point(rng.uniform(0, 100), rng.uniform(0, 100)))
                 for i in range(n)]
        t = RStarTree.bulk_load(items, page_size=256)
        t.check_invariants()
        assert t.size == n

    def test_bulk_equals_insert_results(self, rng):
        pts = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
               for i in range(400)]
        t1 = RStarTree(page_size=256)
        for i, (x, y) in pts:
            t1.insert_point(i, x, y)
        t2 = RStarTree.bulk_load(((i, Rect.point(x, y)) for i, (x, y) in pts),
                                 page_size=256)
        probe = Rect(25, 25, 60, 75)
        assert sorted(t1.range_search(probe)) == sorted(t2.range_search(probe))
        assert ([p for _, p in knn(t1, 50, 50, 7)] ==
                [p for _, p in knn(t2, 50, 50, 7)])

    def test_bulk_load_supports_further_inserts(self, rng):
        items = [(i, Rect.point(rng.uniform(0, 100), rng.uniform(0, 100)))
                 for i in range(200)]
        t = RStarTree.bulk_load(items, page_size=256)
        for i in range(200, 260):
            t.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        t.check_invariants()
        assert t.size == 260


class TestQueriesAgainstBruteForce:
    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=120),
           st.tuples(coord, coord, coord, coord))
    @settings(max_examples=30, deadline=None)
    def test_range_query(self, pts, probe):
        points = list(enumerate(pts))
        t = RStarTree(page_size=256)
        for i, (x, y) in points:
            t.insert_point(i, x, y)
        x1, x2 = sorted((probe[0], probe[2]))
        y1, y2 = sorted((probe[1], probe[3]))
        rect = Rect(x1, y1, x2, y2)
        assert sorted(t.range_search(rect)) == brute_range(points, rect)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=120),
           coord, coord, st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_knn_distances_match_brute(self, pts, qx, qy, k):
        points = list(enumerate(pts))
        t = RStarTree(page_size=256)
        for i, (x, y) in points:
            t.insert_point(i, x, y)
        got = knn(t, qx, qy, k)
        want_ids = brute_knn(points, qx, qy, k)
        # Distances must agree even when ties reorder ids.
        want_d = sorted(math.hypot(pts[i][0] - qx, pts[i][1] - qy)
                        for i in want_ids)
        got_d = sorted(d for d, _ in got)
        assert len(got) == min(k, len(points))
        for g, w in zip(got_d, want_d):
            assert math.isclose(g, w, abs_tol=1e-7)


class TestIOAccounting:
    def test_queries_read_pages(self, rng):
        t = RStarTree(page_size=256)
        for i in range(500):
            t.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        before = t.tracker.stats.logical_reads
        t.range_search(Rect(0, 0, 100, 100))
        assert t.tracker.stats.logical_reads > before

    def test_num_pages_counts_nodes(self, rng):
        t = RStarTree(page_size=256)
        for i in range(300):
            t.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        assert t.num_pages >= t.height


class TestUpdateStorms:
    """Randomized insert/delete storms: structure, accounting, versioning.

    The dynamic-update subsystem leans on three tree guarantees — structural
    invariants survive arbitrary mutation interleavings, ``size`` tracks the
    live set exactly, and ``delete`` reports truthfully — so each is pounded
    here across seeds, page sizes, and duplicate-heavy workloads.
    """

    @pytest.mark.parametrize("seed", [11, 29, 47, 83])
    @pytest.mark.parametrize("page_size", [176, 256, 512])
    def test_storm_preserves_invariants_and_size(self, seed, page_size):
        rng = random.Random(seed)
        t = RStarTree(page_size=page_size)
        alive: dict[int, tuple[float, float]] = {}
        next_id = 0
        for step in range(400):
            roll = rng.random()
            if alive and roll < 0.45:
                pid = rng.choice(list(alive))
                x, y = alive.pop(pid)
                assert t.delete(pid, Rect.point(x, y)) is True
            elif roll < 0.5:
                # Deleting something never inserted must report False and
                # leave the tree untouched.
                before = t.size
                assert t.delete(("ghost", step), Rect.point(1.0, 1.0)) is False
                assert t.size == before
            else:
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                t.insert_point(next_id, x, y)
                alive[next_id] = (x, y)
                next_id += 1
            if step % 50 == 49:
                t.check_invariants()
                assert t.size == len(alive)
        t.check_invariants()
        assert t.size == len(alive)
        assert sorted(t.range_search(Rect(0, 0, 100, 100))) == sorted(alive)

    def test_storm_on_bulk_loaded_tree(self, rng):
        pts = [(i, Rect.point(rng.uniform(0, 100), rng.uniform(0, 100)))
               for i in range(300)]
        t = RStarTree.bulk_load(pts, page_size=256)
        alive = {i: rect for i, rect in pts}
        next_id = len(pts)
        for _ in range(200):
            if alive and rng.random() < 0.6:
                pid = rng.choice(list(alive))
                assert t.delete(pid, alive.pop(pid)) is True
            else:
                pid = next_id
                next_id += 1
                rect = Rect.point(rng.uniform(0, 100), rng.uniform(0, 100))
                t.insert(pid, rect)
                alive[pid] = rect
        t.check_invariants()
        assert t.size == len(alive)

    def test_duplicate_location_storm(self):
        """Many items at identical coordinates: deletes must hit payloads."""
        t = RStarTree(page_size=176)
        for i in range(120):
            t.insert_point(i, 5.0, 5.0)
        t.check_invariants()
        for i in range(0, 120, 2):
            assert t.delete(i, Rect.point(5.0, 5.0)) is True
            assert t.delete(i, Rect.point(5.0, 5.0)) is False
        t.check_invariants()
        assert t.size == 60
        assert sorted(t.range_search(Rect.point(5.0, 5.0))) == \
            list(range(1, 120, 2))

    def test_version_counts_mutations_only(self, rng):
        t = RStarTree(page_size=256)
        assert t.version == 0
        for i in range(40):
            t.insert_point(i, rng.uniform(0, 10), rng.uniform(0, 10))
        assert t.version == 40
        t.range_search(Rect(0, 0, 10, 10))  # reads must not bump
        assert t.version == 40
        assert t.delete(0, Rect(0, 0, 10, 10))
        assert t.version == 41
        assert not t.delete("missing", Rect(0, 0, 10, 10))
        assert t.version == 41
