"""Benchmark harness: metric aggregation, dataset plumbing, figure drivers.

The figure drivers run here at ``tiny`` scale with a single query per
configuration — enough to validate the plumbing and the qualitative
direction of the headline trends without turning the unit suite into a
benchmark run.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    PARAM_DEFAULTS,
    PARAM_GRID,
    ablation,
    build_trees,
    figure9,
    figure10,
    figure12,
    make_dataset,
    run_batch,
)
from repro.bench.metrics import AggregateStats, Row, format_table
from repro.bench.workloads import query_workload
from repro.core.stats import QueryStats


class TestMetrics:
    def test_aggregate_of_empty(self):
        agg = AggregateStats.of([])
        assert agg.queries == 0 and agg.npe == 0.0

    def test_aggregate_means(self):
        a = QueryStats(npe=2, noe=4)
        b = QueryStats(npe=4, noe=8)
        a.io.page_faults = 10
        b.io.page_faults = 30
        agg = AggregateStats.of([a, b])
        assert agg.queries == 2
        assert agg.npe == 3.0
        assert agg.noe == 6.0
        assert agg.page_faults == 20.0
        assert agg.io_time_ms == 200.0  # 20 faults x 10 ms

    def test_total_time_is_io_plus_cpu(self):
        s = QueryStats(cpu_time_s=0.5)
        s.io.page_faults = 3
        agg = AggregateStats.of([s])
        assert agg.total_time_ms == pytest.approx(500.0 + 30.0)

    def test_format_table_contains_rows(self):
        rows = [Row("x=1", AggregateStats.of([QueryStats(npe=5)]),
                    extra={"note": 1.0})]
        text = format_table("Title", "param", rows)
        assert "Title" in text and "x=1" in text and "note" in text

    def test_query_stats_merge(self):
        a = QueryStats(npe=1, split_solves=2)
        b = QueryStats(npe=2, split_solves=3)
        a.merge(b)
        assert a.npe == 3 and a.split_solves == 5


class TestDatasets:
    def test_param_grid_matches_paper_table2(self):
        assert PARAM_GRID["ql"] == (1.5, 3.0, 4.5, 6.0, 7.5)
        assert PARAM_GRID["k"] == (1, 3, 5, 7, 9)
        assert PARAM_GRID["ratio"] == (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)
        assert PARAM_GRID["buffer"] == (0, 1, 2, 4, 8, 16, 32)
        assert PARAM_DEFAULTS == {"ql": 4.5, "k": 5, "ratio": 0.5, "buffer": 0}

    @pytest.mark.parametrize("combo", ["CL", "UL", "ZL"])
    def test_make_dataset_combinations(self, combo):
        points, obstacles = make_dataset(combo, "tiny")
        assert len(points) > 0 and len(obstacles) > 0
        # Cached: same object on second call.
        again = make_dataset(combo, "tiny")
        assert again[0] is points

    def test_ratio_controls_cardinality(self):
        small_p, obs = make_dataset("UL", "tiny", ratio=0.1)
        big_p, _ = make_dataset("UL", "tiny", ratio=2.0)
        assert len(big_p) > len(small_p)
        assert len(small_p) == pytest.approx(0.1 * len(obs), rel=0.2, abs=12)

    def test_unknown_combo_rejected(self):
        with pytest.raises(ValueError):
            make_dataset("XX", "tiny")

    def test_build_trees(self):
        points, obstacles = make_dataset("CL", "tiny")
        dt, ot = build_trees(points, obstacles)
        dt.check_invariants()
        ot.check_invariants()
        assert dt.size == len(points) and ot.size == len(obstacles)


class TestRunBatch:
    def test_two_tree_batch(self):
        points, obstacles = make_dataset("CL", "tiny")
        queries = query_workload(__import__("random").Random(1), 2, 1.5,
                                 obstacles)
        agg = run_batch(points, obstacles, queries, k=1)
        assert agg.queries == 2
        assert agg.npe >= 1
        assert agg.page_faults > 0

    def test_one_tree_batch(self):
        points, obstacles = make_dataset("CL", "tiny")
        queries = query_workload(__import__("random").Random(2), 2, 1.5,
                                 obstacles)
        agg = run_batch(points, obstacles, queries, k=1, mode="1T")
        assert agg.queries == 2

    def test_warmup_excluded(self):
        points, obstacles = make_dataset("CL", "tiny")
        queries = query_workload(__import__("random").Random(3), 4, 1.5,
                                 obstacles)
        agg = run_batch(points, obstacles, queries, k=1, warmup=2)
        assert agg.queries == 2

    def test_buffer_reduces_faults(self):
        points, obstacles = make_dataset("CL", "tiny")
        queries = query_workload(__import__("random").Random(4), 6, 1.5,
                                 obstacles)
        cold = run_batch(points, obstacles, queries, k=1, warmup=3)
        warm = run_batch(points, obstacles, queries, k=1, warmup=3,
                         buffer_pct=32.0)
        assert warm.page_faults < cold.page_faults
        assert warm.logical_reads == pytest.approx(cold.logical_reads)

    def test_unknown_mode_rejected(self):
        points, obstacles = make_dataset("CL", "tiny")
        with pytest.raises(ValueError):
            run_batch(points, obstacles, [], k=1, mode="3T")


class TestFigureDrivers:
    def test_figure9_shape(self):
        rows = figure9("tiny", queries=1)
        assert len(rows) == len(PARAM_GRID["ql"])
        # NOE and |SVG| grow with query length (allowing noise at one query).
        assert rows[-1].agg.noe >= rows[0].agg.noe
        assert rows[-1].agg.svg_size >= rows[0].agg.svg_size
        assert all(r.extra["full_svg"] > r.agg.svg_size for r in rows)

    def test_figure10_shape(self):
        rows = figure10("tiny", queries=1)
        assert len(rows) == len(PARAM_GRID["k"])
        assert rows[-1].agg.npe >= rows[0].agg.npe

    def test_figure12_buffer_only_helps_io(self):
        out = figure12("tiny", queries=2, combos=("CL",))
        rows = out["CL"]
        assert len(rows) == len(PARAM_GRID["buffer"])
        faults = [r.agg.page_faults for r in rows]
        assert faults[-1] <= faults[0]
        # CPU-side metrics are buffer-independent.
        npes = {round(r.agg.npe, 6) for r in rows}
        assert len(npes) == 1

    def test_ablation_rows(self):
        rows = ablation("tiny", queries=1)
        labels = [r.label for r in rows]
        assert "default" in labels and "paper (+lemma6)" in labels
