"""BulkRowHeap parity with heapq — the array engine's settle-order proof.

The sequence heap replaces the per-edge ``heappush`` loop in
``ArrayTraversal.advance``, so its pop order must be *identical* to a
binary heap of individual ``(dist, node)`` tuples under every workload,
including adversarial distance ties.  Hypothesis drives both structures
through the same operation sequences (distances drawn from a tiny pool to
force ties) and a randomized Dijkstra settle-order comparison.
"""

from __future__ import annotations

import heapq
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.heap import BulkRowHeap

# A tiny distance pool makes (dist, node) ties — and even exact duplicate
# pairs — common instead of vanishingly rare.
tie_dist = st.sampled_from(
    [0.0, 1.0, 1.0 + 2 ** -52, 2.0, 2.5, 3.0])
node_id = st.integers(min_value=0, max_value=15)

# Rows both below and above _MIN_RUN, so the per-element and sorted-run
# paths (and their interleavings) are all exercised.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), tie_dist, node_id),
        st.tuples(st.just("row"),
                  st.lists(st.tuples(tie_dist, node_id), max_size=24)),
        st.tuples(st.just("pop")),
    ),
    max_size=80)


class TestHeapqParity:
    @given(operations)
    @settings(max_examples=200, deadline=None)
    def test_pop_order_matches_heapq(self, ops):
        # max_runs=3 forces frequent compaction so the merge path is
        # exercised, not just the fast run-cursor path.
        h = BulkRowHeap(max_runs=3)
        ref: list = []
        for op in ops:
            if op[0] == "push":
                _, d, n = op
                h.push(d, n)
                heapq.heappush(ref, (d, n))
            elif op[0] == "row":
                pairs = op[1]
                ds = np.asarray([p[0] for p in pairs], dtype=np.float64)
                ns = np.asarray([p[1] for p in pairs], dtype=np.int64)
                h.push_row(ds, ns)
                for d, n in pairs:
                    heapq.heappush(ref, (d, n))
            else:
                assert bool(h) == bool(ref)
                if ref:
                    assert h.pop() == heapq.heappop(ref)
            assert len(h) == len(ref)
        while ref:
            assert h.pop() == heapq.heappop(ref)
        assert not h and len(h) == 0

    def test_empty_row_is_noop(self):
        h = BulkRowHeap()
        h.push_row(np.empty(0), np.empty(0, dtype=np.int64))
        assert len(h) == 0 and not h and h.bulk_pushes == 0

    def test_bulk_push_counter_counts_runs_only(self):
        h = BulkRowHeap()
        h.push(0.0, 0)
        h.push_row(np.array([2.0, 1.0]), np.array([5, 7]))  # short: per-elem
        h.push_row(np.arange(20.0) + 3.0,
                   np.arange(20, dtype=np.int64))  # long: one sorted run
        assert h.bulk_pushes == 1
        assert [h.pop() for _ in range(3)] == [(0.0, 0), (1.0, 7), (2.0, 5)]
        assert [h.pop() for _ in range(20)] == [
            (3.0 + i, i) for i in range(20)]

    def test_compaction_preserves_order(self):
        # max_runs=2 with long rows triggers repeated compaction; short
        # rows interleave singleton entries that compaction must keep.
        h = BulkRowHeap(max_runs=2)
        ref: list = []
        rng = random.Random(7)
        for i in range(12):
            size = rng.randrange(16, 30) if i % 2 == 0 else rng.randrange(1, 5)
            pairs = [(rng.choice([1.0, 2.0, 2.0, 3.0]), rng.randrange(6))
                     for _ in range(size)]
            h.push_row(np.array([p[0] for p in pairs]),
                       np.array([p[1] for p in pairs], dtype=np.int64))
            for p in pairs:
                heapq.heappush(ref, p)
        while ref:
            assert h.pop() == heapq.heappop(ref)


def _dijkstra_settle_order(n, rows, use_bulk):
    """Settle order of a textbook Dijkstra over adjacency ``rows``."""
    dist = [math.inf] * n
    dist[0] = 0.0
    settled = [False] * n
    order = []
    if use_bulk:
        heap = BulkRowHeap(max_runs=3)
        heap.push(0.0, 0)
    else:
        heap = [(0.0, 0)]
    while heap:
        if use_bulk:
            d, u = heap.pop()
        else:
            d, u = heapq.heappop(heap)
        if settled[u] or d > dist[u]:
            continue
        settled[u] = True
        order.append(u)
        improved_d, improved_v = [], []
        for v, w in rows[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                improved_d.append(nd)
                improved_v.append(v)
        if use_bulk:
            heap.push_row(np.asarray(improved_d, dtype=np.float64),
                          np.asarray(improved_v, dtype=np.int64))
        else:
            for nd, v in zip(improved_d, improved_v):
                heapq.heappush(heap, (nd, v))
    return order, dist


class TestSettleOrderIdentity:
    @given(st.integers(min_value=2, max_value=14), st.integers())
    @settings(max_examples=120, deadline=None)
    def test_dijkstra_settle_order_identical(self, n, seed):
        # Edge weights from a tiny pool: many tentative distances collide
        # exactly, the regime where a sloppy heap would reorder settles.
        rng = random.Random(seed)
        weights = [1.0, 1.0, 2.0, 0.5, 3.0]
        rows = [[(v, rng.choice(weights)) for v in range(n)
                 if v != u and rng.random() < 0.6] for u in range(n)]
        order_ref, dist_ref = _dijkstra_settle_order(n, rows, use_bulk=False)
        order_blk, dist_blk = _dijkstra_settle_order(n, rows, use_bulk=True)
        assert order_blk == order_ref
        assert dist_blk == dist_ref  # exact — same float additions


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
