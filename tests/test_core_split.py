"""The quadratic split-point solver (Theorem 1) and the Case 1-4 taxonomy."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import classify_case, crossing_params, dist_quadratic, \
    perpendicular_distance
from repro.geometry import Segment

coord = st.floats(min_value=-200, max_value=200, allow_nan=False,
                  allow_infinity=False)
base_d = st.floats(min_value=0, max_value=300, allow_nan=False,
                   allow_infinity=False)


def path_value(qseg, cp, base, t):
    p = qseg.point_at(t)
    return base + math.hypot(p.x - cp[0], p.y - cp[1])


class TestDistQuadratic:
    @given(coord, coord, st.floats(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_matches_direct_distance(self, px, py, t):
        q = Segment(0, 0, 100, 0)
        b, c = dist_quadratic(q, px, py)
        want = q.point_at(t).dist((px, py))
        got_sq = t * t + b * t + c
        # Compare squared distances: near the segment the three quadratic
        # terms cancel almost exactly, so the achievable absolute error is
        # a few ulps of the *term magnitudes*, not of the tiny residual.
        scale = t * t + abs(b) * t + abs(c) + 1.0
        assert math.isclose(got_sq, want * want,
                            rel_tol=1e-9, abs_tol=1e-12 * scale)

    def test_oblique_segment(self):
        q = Segment(1, 2, 4, 6)  # length 5
        b, c = dist_quadratic(q, 3.0, -1.0)
        for t in (0.0, 1.7, 5.0):
            want = q.point_at(t).dist((3.0, -1.0))
            got = math.sqrt(t * t + b * t + c)
            assert math.isclose(got, want, rel_tol=1e-9)


class TestCrossingParams:
    def test_symmetric_points_single_crossing(self):
        """Equal bases, mirrored control points: tie at the midpoint."""
        q = Segment(0, 0, 10, 0)
        roots = crossing_params(q, (2, 3), 0.0, (8, 3), 0.0, 0.0, 10.0)
        assert len(roots) == 1
        assert math.isclose(roots[0], 5.0, abs_tol=1e-7)

    def test_no_crossing_when_one_dominates(self):
        q = Segment(0, 0, 10, 0)
        # Control point at distance with a big base handicap never wins.
        roots = crossing_params(q, (5, 1), 100.0, (5, 2), 0.0, 0.0, 10.0)
        assert roots == []

    def test_two_crossings_case2_configuration(self):
        """A near control point with base handicap loses in the middle only."""
        q = Segment(0, 0, 20, 0)
        u = (10.0, 8.0)   # far from the line, no handicap
        v = (10.0, 1.0)   # close to the line, but base handicap 5
        roots = crossing_params(q, u, 0.0, v, 5.0, 0.0, 20.0)
        assert len(roots) == 2
        # Verify each root is a genuine tie.
        for t in roots:
            fu = path_value(q, u, 0.0, t)
            fv = path_value(q, v, 5.0, t)
            assert math.isclose(fu, fv, abs_tol=1e-6)

    def test_roots_sorted_and_inside_interval(self):
        q = Segment(0, 0, 20, 0)
        roots = crossing_params(q, (10, 8), 0.0, (10, 1), 5.0, 0.0, 20.0)
        assert roots == sorted(roots)
        for t in roots:
            assert 0.0 < t < 20.0

    def test_interval_clipping_drops_outside_roots(self):
        q = Segment(0, 0, 20, 0)
        all_roots = crossing_params(q, (10, 8), 0.0, (10, 1), 5.0, 0.0, 20.0)
        assert len(all_roots) == 2
        lo = all_roots[0] + 0.5
        clipped = crossing_params(q, (10, 8), 0.0, (10, 1), 5.0, lo, 20.0)
        assert len(clipped) == 1

    def test_identical_control_points_no_roots(self):
        q = Segment(0, 0, 10, 0)
        assert crossing_params(q, (5, 2), 1.0, (5, 2), 3.0, 0.0, 10.0) == []

    @given(st.tuples(coord, coord), base_d, st.tuples(coord, coord), base_d)
    @settings(max_examples=120, deadline=None)
    def test_at_most_two_roots_and_all_are_ties(self, u, bu, v, bv):
        """Theorem 1: never more than two tie points, each a true tie."""
        q = Segment(0, 0, 100, 0)
        roots = crossing_params(q, u, bu, v, bv, 0.0, 100.0)
        assert len(roots) <= 2
        for t in roots:
            fu = path_value(q, u, bu, t)
            fv = path_value(q, v, bv, t)
            assert math.isclose(fu, fv, abs_tol=1e-5), (u, bu, v, bv, t)

    @given(st.tuples(coord, coord), base_d, st.tuples(coord, coord), base_d)
    @settings(max_examples=120, deadline=None)
    def test_sign_constant_between_roots(self, u, bu, v, bv):
        """Between consecutive roots the winner never changes (sampled)."""
        q = Segment(0, 0, 100, 0)
        roots = crossing_params(q, u, bu, v, bv, 0.0, 100.0)
        edges = [0.0, *roots, 100.0]
        for lo, hi in zip(edges, edges[1:]):
            if hi - lo < 1e-6:
                continue
            signs = set()
            for f in (0.15, 0.5, 0.85):
                t = lo + f * (hi - lo)
                diff = path_value(q, u, bu, t) - path_value(q, v, bv, t)
                if abs(diff) > 1e-6:
                    signs.add(diff > 0)
            assert len(signs) <= 1, (u, bu, v, bv, roots, lo, hi)


class TestClassifyCase:
    def _setup(self):
        # Canonical configuration from Figure 4: both control points above
        # the query line, u farther than v.
        q = Segment(0, 0, 20, 0)
        u = (12.0, 6.0)
        v = (8.0, 2.0)
        return q, u, v

    def test_case1_challenger_takes_all(self):
        q, u, v = self._setup()
        duv = math.dist(u, v)
        # d = v_base - u_base >= dist(u, v): challenger u wins everywhere.
        case = classify_case(q, u, 0.0, v, duv + 1.0)
        assert case == 1
        roots = crossing_params(q, u, 0.0, v, duv + 1.0, 0.0, 20.0)
        assert roots == []

    def test_case2_two_split_points(self):
        q, u, v = self._setup()
        duv = math.dist(u, v)
        a = abs(q.param_of(*u) - q.param_of(*v))
        d = (a + duv) / 2.0  # strictly between a and dist(u, v)
        case = classify_case(q, u, 0.0, v, d)
        assert case == 2

    def test_case3_one_split_point(self):
        q, u, v = self._setup()
        case = classify_case(q, u, 0.0, v, 0.0)  # d = 0 in (-a, a]
        assert case == 3
        roots = crossing_params(q, u, 0.0, v, 0.0, 0.0, 20.0)
        assert len(roots) == 1

    def test_case4_incumbent_keeps_all(self):
        q, u, v = self._setup()
        a = abs(q.param_of(*u) - q.param_of(*v))
        case = classify_case(q, u, a + 5.0, v, 0.0)  # d = -(a+5) <= -a
        assert case == 4
        roots = crossing_params(q, u, a + 5.0, v, 0.0, 0.0, 20.0)
        # Case 4 may still produce tangent roots clipped away; the winner
        # check matters: v dominates at every sample.
        for t in (0.0, 5.0, 10.0, 15.0, 20.0):
            assert path_value(q, v, 0.0, t) <= path_value(q, u, a + 5.0, t) + 1e-9


class TestPerpendicularDistance:
    def test_horizontal_line(self):
        q = Segment(0, 0, 10, 0)
        assert perpendicular_distance(q, 3, 7) == pytest.approx(7.0)

    def test_point_on_line(self):
        q = Segment(0, 0, 10, 0)
        assert perpendicular_distance(q, 25, 0) == pytest.approx(0.0)

    def test_oblique(self):
        q = Segment(0, 0, 10, 10)
        assert perpendicular_distance(q, 10, 0) == pytest.approx(math.sqrt(50))

    @given(coord, coord)
    def test_beyond_endpoints_uses_line_not_segment(self, px, py):
        q = Segment(0, 0, 10, 0)
        assert perpendicular_distance(q, px, py) == pytest.approx(abs(py))
