"""Extensions beyond the paper's core: trajectory CONN and obstructed range.

Trajectory CONN is the paper's first "future work" item (Section 6);
obstructed range is part of the Zhang et al. [31] query family the paper
builds on.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines import brute_distance_function, naive_onn
from repro.core import (
    coknn,
    conn,
    obstructed_range,
    trajectory_coknn,
    trajectory_conn,
)
from repro.geometry import Segment
from repro.obstacles import RectObstacle, obstructed_distance
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_scene,
    same_values,
)


class TestTrajectoryConn:
    def test_single_leg_equals_conn(self, rng):
        points, obstacles = random_scene(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        waypoints = [(10, 20), (90, 70)]
        traj = trajectory_conn(dt, ot, waypoints)
        seg = Segment(10, 20, 90, 70)
        ref = conn(dt, ot, seg)
        ts = np.linspace(0, seg.length, 51)
        got = np.array([traj.distance(float(t)) for t in ts])
        assert same_values(got, ref.envelope.values(ts))

    def test_multi_leg_lengths(self, rng):
        points, obstacles = random_scene(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        waypoints = [(5, 5), (50, 5), (50, 60), (90, 90)]
        traj = trajectory_conn(dt, ot, waypoints)
        want = sum(math.dist(a, b) for a, b in zip(waypoints, waypoints[1:]))
        assert traj.length == pytest.approx(want)
        assert len(traj.legs) == 3

    def test_each_leg_matches_direct_query(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        waypoints = [(5, 50), (45, 55), (95, 40)]
        traj = trajectory_coknn(dt, ot, waypoints, k=2)
        offset = 0.0
        for (a, b) in zip(waypoints, waypoints[1:]):
            seg = Segment(*a, *b)
            ref = coknn(dt, ot, seg, k=2)
            for f in (0.1, 0.5, 0.9):
                local = f * seg.length
                got = traj.knn_at(offset + local)
                want = ref.knn_at(local)
                for (go, gd), (wo, wd) in zip(got, want):
                    assert (math.isinf(gd) and math.isinf(wd)) or \
                        gd == pytest.approx(wd, abs=1e-6)
            offset += seg.length

    def test_tuples_partition_trajectory(self, rng):
        points, obstacles = random_scene(rng)
        traj = trajectory_conn(build_point_tree(points),
                               build_obstacle_tree(obstacles),
                               [(5, 5), (50, 20), (95, 5)])
        tuples = traj.tuples()
        assert tuples[0][1][0] == pytest.approx(0.0)
        assert tuples[-1][1][1] == pytest.approx(traj.length)
        for a, b in zip(tuples, tuples[1:]):
            assert a[1][1] == pytest.approx(b[1][0], abs=1e-6)
            assert a[0] != b[0]  # merged across equal owners

    def test_owner_continuous_through_turn(self):
        """A single far point stays the owner across a waypoint."""
        points = [("only", (50.0, 50.0))]
        traj = trajectory_conn(build_point_tree(points),
                               build_obstacle_tree([]),
                               [(0, 0), (50, 0), (100, 0)])
        assert traj.tuples() == [("only", (0.0, pytest.approx(100.0)))]

    def test_degenerate_legs_skipped(self, rng):
        points, obstacles = random_scene(rng)
        traj = trajectory_conn(build_point_tree(points),
                               build_obstacle_tree(obstacles),
                               [(5, 5), (5, 5), (60, 40)])
        assert len(traj.legs) == 1

    def test_too_few_waypoints(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            trajectory_conn(build_point_tree(points),
                            build_obstacle_tree(obstacles), [(1, 1)])

    def test_all_degenerate_rejected(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            trajectory_conn(build_point_tree(points),
                            build_obstacle_tree(obstacles),
                            [(1, 1), (1, 1)])

    def test_stats_aggregate(self, rng):
        points, obstacles = random_scene(rng)
        traj = trajectory_conn(build_point_tree(points),
                               build_obstacle_tree(obstacles),
                               [(5, 5), (50, 20), (95, 5)])
        assert traj.stats.npe >= len(traj.legs)


class TestObstructedRange:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = random.Random(9100 + seed)
        points, obstacles = random_scene(rng, n_points=14, n_obstacles=7)
        qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
        radius = rng.uniform(10, 60)
        got, _stats = obstructed_range(build_point_tree(points),
                                       build_obstacle_tree(obstacles),
                                       qx, qy, radius)
        want = {}
        for pid, xy in points:
            d = obstructed_distance(xy, (qx, qy), obstacles)
            if d <= radius + 1e-9:
                want[pid] = d
        assert {p for p, _d in got} == set(want)
        for p, d in got:
            assert d == pytest.approx(want[p], abs=1e-6)

    def test_results_sorted(self, rng):
        points, obstacles = random_scene(rng, n_points=15)
        got, _ = obstructed_range(build_point_tree(points),
                                  build_obstacle_tree(obstacles),
                                  50, 50, 80.0)
        dists = [d for _p, d in got]
        assert dists == sorted(dists)

    def test_zero_radius(self, rng):
        points, obstacles = random_scene(rng)
        got, _ = obstructed_range(build_point_tree(points),
                                  build_obstacle_tree(obstacles),
                                  -5, -5, 0.0)
        assert got == []

    def test_negative_radius_rejected(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            obstructed_range(build_point_tree(points),
                             build_obstacle_tree(obstacles), 0, 0, -1.0)

    def test_radius_excludes_detoured_point(self):
        """A point Euclidean-inside the radius falls out once walls detour it."""
        points = [("p", (10.0, 0.0))]
        wall = RectObstacle(4, -30, 6, 30)
        dt = build_point_tree(points)
        within_free, _ = obstructed_range(dt, build_obstacle_tree([]),
                                          0, 0, 12.0)
        assert [p for p, _d in within_free] == ["p"]
        within_blocked, _ = obstructed_range(dt, build_obstacle_tree([wall]),
                                             0, 0, 12.0)
        assert within_blocked == []

    def test_consistent_with_onn(self, rng):
        """Range with radius = k-th ONN distance returns at least k points."""
        points, obstacles = random_scene(rng, n_points=12)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        want = naive_onn(points, obstacles, (40.0, 60.0), k=3)
        if len(want) < 3:
            return
        radius = want[-1][1]
        got, _ = obstructed_range(dt, ot, 40.0, 60.0, radius + 1e-6)
        assert len(got) >= 3
