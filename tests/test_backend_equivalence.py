"""Hypothesis property suite for obstructed-distance backend equivalence.

The property: two long-lived workspaces over the same evolving dataset —
one forced onto the workspace-shared incremental visibility graph
(``SharedVGBackend``), one forced onto throwaway per-query graphs
(``PerQueryVGBackend``) — always return identical CONN / COkNN / ONN /
range answers, no matter how site/obstacle updates interleave with
queries.  Hypothesis drives the op pattern (mirroring
``tests/test_property_updates.py``); scene geometry comes from a seeded
generator so coordinates stay well-conditioned.

This is the safety net that lets the planner swap backends freely: the
shared graph may hold more obstacles than any one query retrieved, but
every one of them is real, so both substrates converge on the same true
obstructed distances.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PlannerOptions, RectObstacle, SegmentObstacle, Workspace
from tests.conftest import random_query, random_scene, same_values

OPS = ("add_site", "remove_site", "add_obstacle", "remove_obstacle")


def _random_obstacle(rng: random.Random):
    x, y = rng.uniform(0, 92), rng.uniform(0, 92)
    if rng.random() < 0.3:
        return SegmentObstacle(x, y, x + rng.uniform(-12, 12),
                               y + rng.uniform(-12, 12))
    return RectObstacle(x, y, x + rng.uniform(1, 7), y + rng.uniform(1, 5))


def _check_agreement(ws_shared, ws_per, qseg, k):
    ts = np.linspace(0.0, qseg.length, 81)

    got = ws_shared.coknn(qseg, k=k)
    want = ws_per.coknn(qseg, k=k)
    for lv_g, lv_w in zip(got.levels, want.levels):
        assert same_values(lv_g.values(ts), lv_w.values(ts))
    assert [o for o, _iv in got.tuples()] == [o for o, _iv in want.tuples()]
    assert got.stats.noe == want.stats.noe
    assert got.stats.svg_size == want.stats.svg_size

    x, y = qseg.point_at(0.5 * qseg.length)
    got_nn, _ = ws_shared.onn(x, y, k=k)
    want_nn, _ = ws_per.onn(x, y, k=k)
    assert [p for p, _d in got_nn] == [p for p, _d in want_nn]
    assert same_values([d for _p, d in got_nn], [d for _p, d in want_nn])

    got_r, _ = ws_shared.range(x, y, 20.0)
    want_r, _ = ws_per.range(x, y, 20.0)
    assert sorted(map(str, (p for p, _d in got_r))) == \
        sorted(map(str, (p for p, _d in want_r)))


@given(seed=st.integers(min_value=0, max_value=10_000),
       pattern=st.lists(st.tuples(st.sampled_from(OPS),
                                  st.integers(min_value=0, max_value=31),
                                  st.booleans()),
                        min_size=1, max_size=6),
       k=st.integers(min_value=1, max_value=2))
@settings(max_examples=20, deadline=None)
def test_backends_agree_under_interleaved_updates(seed, pattern, k):
    rng = random.Random(seed)
    points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
    points = list(points)
    obstacles = list(obstacles)
    ws_shared = Workspace.from_points(
        points, obstacles, planner=PlannerOptions(backend="shared"))
    ws_per = Workspace.from_points(
        points, obstacles, planner=PlannerOptions(backend="per-query"))
    qseg = random_query(rng)
    _check_agreement(ws_shared, ws_per, qseg, k)  # warm both before mutating
    next_id = 10_000
    for op, victim, query_between in pattern:
        if op == "add_site":
            xy = (rng.uniform(0, 100), rng.uniform(0, 100))
            for ws in (ws_shared, ws_per):
                ws.add_site(next_id, xy)
            points.append((next_id, xy))
            next_id += 1
        elif op == "remove_site" and len(points) > 2:
            pid, xy = points.pop(victim % len(points))
            for ws in (ws_shared, ws_per):
                assert ws.remove_site(pid, xy) is True
        elif op == "add_obstacle":
            obs = _random_obstacle(rng)
            for ws in (ws_shared, ws_per):
                ws.add_obstacle(obs)
            obstacles.append(obs)
        elif op == "remove_obstacle" and obstacles:
            obs = obstacles.pop(victim % len(obstacles))
            for ws in (ws_shared, ws_per):
                assert ws.remove_obstacle(obs) is True
        if query_between:
            _check_agreement(ws_shared, ws_per, qseg, k)
    _check_agreement(ws_shared, ws_per, qseg, k)
    # The per-query workspace never touched its shared backend...
    assert ws_per.routing.stats.sessions == 0
    # ...while the shared one never built more graphs than its maintenance
    # path allows: one initial build plus one rebuild per announced removal
    # or guarded invalidation.
    rs = ws_shared.routing.stats
    assert rs.graphs_built <= 1 + rs.evicted + rs.invalidations
