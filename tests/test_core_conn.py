"""End-to-end CONN correctness: oracle comparisons, pruning invariance, structure."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines import cnn_euclidean, naive_conn
from repro.core import ConnConfig, conn
from repro.geometry import Rect, Segment
from repro.obstacles import RectObstacle, SegmentObstacle
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    first_mismatch,
    random_query,
    random_scene,
    same_values,
)


def assert_matches_oracle(points, obstacles, q, result, samples=121):
    """The engine's distance function must equal the brute-force oracle."""
    ts = np.linspace(0.0, q.length, samples)
    _owners, want = naive_conn(points, obstacles, q, ts)
    got = result.envelope.values(ts)
    assert same_values(got, want), first_mismatch(got, want, ts)


class TestSmallScenes:
    def test_no_obstacles_equals_euclidean_cnn(self, rng):
        points, _ = random_scene(rng, n_points=15, n_obstacles=0)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree([])
        res = conn(dt, ot, q)
        euc = cnn_euclidean(build_point_tree(points), q)
        ts = np.linspace(0, q.length, 101)
        assert np.allclose(res.envelope.values(ts), euc.envelope.values(ts),
                           atol=1e-7)
        assert [o for o, _r in res.tuples()] == [o for o, _r in euc.tuples()]

    def test_single_point_owns_everything(self):
        dt = build_point_tree([(0, (50.0, 20.0))])
        ot = build_obstacle_tree([RectObstacle(40, 5, 60, 10)])
        q = Segment(0, 0, 100, 0)
        res = conn(dt, ot, q)
        tuples = res.tuples()
        assert len(tuples) == 1
        assert tuples[0][0] == 0
        assert tuples[0][1] == pytest.approx((0.0, 100.0))

    def test_obstacle_changes_winner(self):
        """A wall in front of the closer point hands the middle to the farther one."""
        points = [(0, (50.0, 10.0)), (1, (50.0, -30.0))]
        wall = SegmentObstacle(20, 5, 80, 5)
        q = Segment(0, 0, 100, 0)
        dt = build_point_tree(points)
        res_free = conn(dt, build_obstacle_tree([]), q)
        assert res_free.owner_at(50.0) == 0
        res_blocked = conn(build_point_tree(points),
                           build_obstacle_tree([wall]), q)
        assert res_blocked.owner_at(50.0) == 1
        # Away from the wall's shadow, the close point still wins.
        assert res_blocked.owner_at(1.0) == 0

    def test_result_is_partition(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        res.envelope.assert_partition()
        tuples = res.tuples()
        assert tuples[0][1][0] == pytest.approx(0.0)
        assert tuples[-1][1][1] == pytest.approx(q.length)
        for (a, b) in zip(tuples, tuples[1:]):
            assert a[1][1] == pytest.approx(b[1][0])

    def test_split_points_are_ties(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        for sp in res.split_points():
            left = res.envelope.value(max(sp - 1e-4, 0.0))
            right = res.envelope.value(min(sp + 1e-4, q.length))
            if math.isfinite(left) and math.isfinite(right):
                assert abs(left - right) < 1e-2


class TestOracleBattery:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_scene_matches_oracle(self, seed):
        rng = random.Random(1000 + seed)
        points, obstacles = random_scene(
            rng, n_points=rng.randint(4, 16), n_obstacles=rng.randint(2, 10))
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        assert_matches_oracle(points, obstacles, q, res)

    @pytest.mark.parametrize("seed", range(12, 18))
    def test_dense_obstacles_matches_oracle(self, seed):
        rng = random.Random(2000 + seed)
        points, obstacles = random_scene(rng, n_points=6, n_obstacles=14,
                                         segment_fraction=0.5)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        assert_matches_oracle(points, obstacles, q, res)

    def test_query_touching_obstacle_boundary(self):
        points = [(0, (20.0, 20.0)), (1, (80.0, 30.0))]
        # q runs exactly along the top edge of an obstacle.
        obstacles = [RectObstacle(30, -10, 70, 0)]
        q = Segment(0, 0, 100, 0)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        assert_matches_oracle(points, obstacles, q, res)

    def test_point_behind_wall_segment(self):
        points = [(0, (50.0, 20.0))]
        obstacles = [SegmentObstacle(0, 10, 100, 10)]  # full-width wall
        q = Segment(0, 0, 100, 0)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        # The wall spans the whole scene: the only routes go around its
        # endpoints at x=0 / x=100.
        assert_matches_oracle(points, obstacles, q, res)
        assert res.distance(50.0) > 60.0


class TestPruningInvariance:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_pruning_flags_equal_no_pruning(self, seed):
        rng = random.Random(3000 + seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=8)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        res_fast = conn(dt, ot, q)
        res_slow = conn(dt, ot, q, config=ConnConfig.no_pruning())
        ts = np.linspace(0, q.length, 151)
        a = res_fast.envelope.values(ts)
        b = res_slow.envelope.values(ts)
        assert same_values(a, b), first_mismatch(a, b, ts)

    @pytest.mark.parametrize("flag", ["use_lemma1", "use_lemma5", "use_lemma6",
                                      "use_lemma7", "use_rlmax"])
    def test_each_flag_individually(self, flag, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=8)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        base = conn(dt, ot, q)
        variant = conn(dt, ot, q, config=ConnConfig(**{flag: False}))
        ts = np.linspace(0, q.length, 101)
        a = base.envelope.values(ts)
        b = variant.envelope.values(ts)
        assert same_values(a, b), first_mismatch(a, b, ts)

    def test_rlmax_pruning_reduces_npe(self, rng):
        points, obstacles = random_scene(rng, n_points=40, n_obstacles=5)
        q = Segment(10, 50, 30, 50)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        with_pruning = conn(dt, ot, q)
        without = conn(dt, ot, q, config=ConnConfig(use_rlmax=False))
        assert without.stats.npe == len(points)
        assert with_pruning.stats.npe <= without.stats.npe


class TestStatsAndEdgeCases:
    def test_stats_populated(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        s = res.stats
        assert s.npe >= 1
        assert s.svg_size >= 2
        assert s.io.logical_reads > 0
        assert s.cpu_time_s > 0
        assert s.total_time_ms >= s.io_time_ms

    def test_noe_bounded_by_obstacle_count(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        assert 0 <= res.stats.noe <= len(obstacles)

    def test_empty_data_set(self):
        dt = build_point_tree([])
        ot = build_obstacle_tree([RectObstacle(10, 10, 20, 20)])
        res = conn(dt, ot, Segment(0, 0, 50, 0))
        assert res.tuples() == [(None, (0.0, 50.0))]
        assert math.isinf(res.distance(25.0))

    def test_degenerate_query_rejected(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            conn(build_point_tree(points), build_obstacle_tree(obstacles),
                 Segment(5, 5, 5, 5))

    def test_distance_at_owner_point_locations(self, rng):
        """At any t, dist to the reported owner <= dist to every other point."""
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        from repro.obstacles import obstructed_distance

        for t in np.linspace(0, q.length, 7):
            owner = res.owner_at(float(t))
            if owner is None:
                continue
            s = q.point_at(float(t))
            d_owner = obstructed_distance(dict(points)[owner], (s.x, s.y),
                                          obstacles)
            assert d_owner == pytest.approx(res.distance(float(t)), abs=1e-5)

    def test_deterministic_across_runs(self, rng):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        r1 = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        r2 = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        assert [(o, r) for o, r in r1.tuples()] == \
            [(o, r) for o, r in r2.tuples()]
