"""Bulk row materialization: byte-identity with the per-node path.

Contract under test:

* **Row identity** — ``materialize_rows`` / ``build_all`` with
  ``bulk_build`` set produce, for every node, exactly the ids (same
  order), exactly the weights (bitwise float equality) and exactly the
  staleness watermarks the per-node ``row_arrays`` walk produces — across
  mixed obstacle kinds, bind/unbind churn, point insertion/removal and
  ``compact()``;
* **Counters** — the bulk path ticks ``rows_bulk_materialized`` and
  ``bulk_pair_launches``; the per-node oracle (``bulk_build=False``)
  leaves them untouched;
* **Prefetch** — an array traversal with frontier prefetch settles the
  exact ``(dist, node, pred)`` sequence of an unprefetched one while
  cutting its rows through the bulk pass;
* **Diagnostics** — ``num_edges(materialize=True)`` rides the bulk pass
  and counts the same edge set either way.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Segment
from repro.obstacles import (
    LocalVisibilityGraph,
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
)
from tests.conftest import random_query, random_scene

Q = Segment(0, 50, 100, 50)


def mixed_scene(rng: random.Random, n: int = 9):
    """Obstacles cycling rect / segment / triangle, scattered in the box."""
    obstacles = []
    for i in range(n):
        x = rng.uniform(5, 85)
        y = rng.uniform(5, 85)
        w = rng.uniform(3, 9)
        h = rng.uniform(3, 9)
        kind = i % 3
        if kind == 0:
            obstacles.append(RectObstacle(x, y, x + w, y + h))
        elif kind == 1:
            obstacles.append(SegmentObstacle(x, y, x + w, y + h))
        else:
            obstacles.append(PolygonObstacle(
                [(x, y), (x + w, y), (x + 0.5 * w, y + h)]))
    return obstacles


def twin_graphs(rng: random.Random, n_obstacles: int = 9):
    """One bulk graph and one per-node oracle over the same scene."""
    obstacles = mixed_scene(rng, n_obstacles)
    bulk = LocalVisibilityGraph(Q, bulk_build=True)
    oracle = LocalVisibilityGraph(Q, bulk_build=False)
    for g in (bulk, oracle):
        g.add_obstacles(obstacles)
    return bulk, oracle


def assert_rows_identical(bulk: LocalVisibilityGraph,
                          oracle: LocalVisibilityGraph) -> None:
    assert bulk._alive_ids() == oracle._alive_ids()
    for v in bulk._alive_ids():
        bi, bw = bulk.row_arrays(v)
        oi, ow = oracle.row_arrays(v)
        assert bi.tolist() == oi.tolist()          # same ids, same order
        assert bw.tolist() == ow.tolist()          # bitwise-equal weights
        assert bulk._row_marks[v] == oracle._row_marks[v]


class TestBuildAllIdentity:
    def test_rows_and_marks_byte_identical(self):
        bulk, oracle = twin_graphs(random.Random(7))
        made_b = bulk.build_all()
        made_o = oracle.build_all()
        assert made_b == made_o > 0
        assert_rows_identical(bulk, oracle)

    def test_bulk_counters_tick_only_on_bulk_path(self):
        bulk, oracle = twin_graphs(random.Random(8))
        bulk.build_all()
        oracle.build_all()
        assert bulk.rows_bulk_materialized > 0
        assert bulk.bulk_pair_launches > 0
        assert oracle.rows_bulk_materialized == 0
        assert oracle.bulk_pair_launches == 0

    def test_build_all_idempotent(self):
        bulk, _ = twin_graphs(random.Random(9))
        assert bulk.build_all() > 0
        rows_after_first = bulk.rows_bulk_materialized
        assert bulk.build_all() == 0          # nothing missing second time
        assert bulk.rows_bulk_materialized == rows_after_first

    def test_materialize_rows_subset_matches_lazy(self):
        bulk, oracle = twin_graphs(random.Random(10))
        subset = bulk._alive_ids()[::2]
        assert bulk.materialize_rows(subset) == len(subset)
        for v in subset:
            bi, bw = bulk.row_arrays(v)
            oi, ow = oracle.row_arrays(v)
            assert bi.tolist() == oi.tolist()
            assert bw.tolist() == ow.tolist()

    def test_materialize_rows_empty_scene(self):
        g = LocalVisibilityGraph(Q)
        assert g.build_all() >= 0             # endpoints only; no crash
        idx, w = g.row_arrays(g.S)
        assert g.E in idx.tolist()

    def test_num_edges_materialize_agrees(self):
        bulk, oracle = twin_graphs(random.Random(11))
        assert bulk.num_edges(materialize=True) == \
            oracle.num_edges(materialize=True)
        assert bulk.rows_bulk_materialized > 0


class TestChurnIdentity:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_bind_unbind_obstacle_point_compact_storm(self, seed):
        rng = random.Random(seed)
        points, _ = random_scene(rng, n_points=5, n_obstacles=0)
        bulk = LocalVisibilityGraph(None, bulk_build=True)
        oracle = LocalVisibilityGraph(None, bulk_build=False)
        pair = (bulk, oracle)
        shared = mixed_scene(rng, 6)
        for g in pair:
            g.add_obstacles(shared)
        nodes = []
        for _p, (x, y) in points:
            ids = {g.add_point(x, y) for g in pair}
            assert len(ids) == 1
            nodes.append(ids.pop())
        bound = False
        for _step in range(8):
            op = rng.choice(("bind", "unbind", "obstacle", "point",
                             "compact", "build"))
            if op == "bind" and not bound:
                qseg = random_query(rng)
                for g in pair:
                    g.bind(qseg)
                bound = True
            elif op == "unbind" and bound:
                for g in pair:
                    g.unbind()
                bound = False
            elif op == "obstacle":
                extra = mixed_scene(rng, 1)
                for g in pair:
                    g.add_obstacles(extra)
            elif op == "point":
                x, y = rng.uniform(0, 100), rng.uniform(0, 100)
                ids = {g.add_point(x, y) for g in pair}
                assert len(ids) == 1
            elif op == "compact":
                for g in pair:
                    g.compact()
            else:
                assert bulk.build_all() == oracle.build_all()
            assert_rows_identical(bulk, oracle)


class TestFrontierPrefetch:
    def test_settle_order_identical_with_prefetch(self):
        rng = random.Random(13)
        obstacles = mixed_scene(rng, 9)
        plain = LocalVisibilityGraph(Q, prefetch=0)
        waved = LocalVisibilityGraph(Q, prefetch=16)
        for g in (plain, waved):
            g.add_obstacles(obstacles)
        got = list(waved.dijkstra_order(waved.S))
        want = list(plain.dijkstra_order(plain.S))
        assert got == want                     # dist, node, pred — exact
        assert waved.rows_bulk_materialized > 0
        assert plain.rows_bulk_materialized == 0

    def test_prefetched_rows_match_lazy_rows(self):
        rng = random.Random(14)
        obstacles = mixed_scene(rng, 9)
        plain = LocalVisibilityGraph(Q, prefetch=0)
        waved = LocalVisibilityGraph(Q, prefetch=8)
        for g in (plain, waved):
            g.add_obstacles(obstacles)
        waved.shortest_distances(waved.S, (waved.E,))
        for v in waved._alive_ids():
            wi, ww = waved.row_arrays(v)
            pi, pw = plain.row_arrays(v)
            assert wi.tolist() == pi.tolist()
            assert ww.tolist() == pw.tolist()


class TestBulkVisibilityKernel:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_blocked_bulk_matches_unchunked_launch(self, seed):
        from repro.geometry.vectorized import blocked_batch

        rng = random.Random(seed)
        g = LocalVisibilityGraph(Q)
        g.add_obstacles(mixed_scene(rng, 7))
        n = rng.randrange(1, 120)
        src = np.array([[rng.uniform(0, 100), rng.uniform(0, 100)]
                        for _ in range(n)])
        tgt = np.array([[rng.uniform(0, 100), rng.uniform(0, 100)]
                        for _ in range(n)])
        got = g._blocked_bulk(src, tgt)
        want = blocked_batch(src, tgt, g.obstacles.rects, g.obstacles.segs,
                             g.obstacles.polys)
        assert got.tolist() == want.tolist()

    def test_blocked_bulk_empty(self):
        g = LocalVisibilityGraph(Q)
        empty = np.empty((0, 2))
        assert g._blocked_bulk(empty, empty).size == 0
