"""Partitioners: total ownership, clamping, balance, rect fan-out."""

from __future__ import annotations

import math
import random

import pytest

from repro.geometry import Rect
from repro.shard.partition import (
    GridPartitioner,
    HilbertPartitioner,
    _factor_pair,
    bounds_of,
)

BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)


class TestFactorPair:
    def test_most_square(self):
        assert _factor_pair(1) == (1, 1)
        assert _factor_pair(2) == (2, 1)
        assert _factor_pair(4) == (2, 2)
        assert _factor_pair(6) == (3, 2)
        assert _factor_pair(9) == (3, 3)
        assert _factor_pair(12) == (4, 3)

    def test_prime_degenerates_to_strip(self):
        assert _factor_pair(7) == (7, 1)


class TestGridPartitioner:
    def test_square_shapes(self):
        assert GridPartitioner.square(BOUNDS, 2).num_shards == 2
        g = GridPartitioner.square(BOUNDS, 9)
        assert (g.nx, g.ny) == (3, 3)

    def test_every_point_has_exactly_one_owner(self):
        g = GridPartitioner.square(BOUNDS, 4)
        rng = random.Random(3)
        for _ in range(200):
            x, y = rng.uniform(-50, 150), rng.uniform(-50, 150)
            sid = g.shard_of(x, y)
            assert 0 <= sid < 4

    def test_row_major_ids(self):
        g = GridPartitioner(BOUNDS, 2, 2)
        assert g.shard_of(25, 25) == 0
        assert g.shard_of(75, 25) == 1
        assert g.shard_of(25, 75) == 2
        assert g.shard_of(75, 75) == 3

    def test_outside_points_clamp_to_edge_shards(self):
        g = GridPartitioner(BOUNDS, 2, 2)
        assert g.shard_of(-1000, -1000) == 0
        assert g.shard_of(1000, 1000) == 3
        assert g.shard_of(-math.inf, 50.0001) == 2
        assert g.shard_of(math.inf, 49.9999) == 1

    def test_rect_fanout(self):
        g = GridPartitioner(BOUNDS, 2, 2)
        assert g.shards_for_rect(Rect(10, 10, 20, 20)) == {0}
        assert g.shards_for_rect(Rect(40, 10, 60, 20)) == {0, 1}
        assert g.shards_for_rect(Rect(40, 40, 60, 60)) == {0, 1, 2, 3}
        huge = Rect(-1e9, -1e9, 1e9, 1e9)
        assert g.shards_for_rect(huge) == g.all_shards()

    def test_region_tiles_bounds(self):
        g = GridPartitioner(BOUNDS, 3, 3)
        area = sum(g.region(s).area() for s in range(9))
        assert area == pytest.approx(BOUNDS.area())
        with pytest.raises(ValueError):
            g.region(9)

    def test_region_owns_its_interior(self):
        g = GridPartitioner(BOUNDS, 3, 2)
        for sid in range(g.num_shards):
            r = g.region(sid)
            cx, cy = (r.xlo + r.xhi) / 2, (r.ylo + r.yhi) / 2
            assert g.shard_of(cx, cy) == sid

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            GridPartitioner(Rect(0, 0, 0, 10), 2, 2)
        with pytest.raises(ValueError):
            GridPartitioner(BOUNDS, 0, 2)


class TestHilbertPartitioner:
    def test_every_point_owned_and_every_shard_nonempty(self):
        h = HilbertPartitioner(BOUNDS, 5, order=3)
        seen = set()
        for x in range(0, 100, 3):
            for y in range(0, 100, 3):
                sid = h.shard_of(x + 0.5, y + 0.5)
                assert 0 <= sid < 5
                seen.add(sid)
        assert seen == set(range(5))

    def test_site_weighting_shrinks_dense_shards(self):
        rng = random.Random(11)
        # Pile most sites into the lower-left quadrant.
        sites = [(rng.uniform(0, 25), rng.uniform(0, 25)) for _ in range(300)]
        sites += [(rng.uniform(0, 100), rng.uniform(0, 100))
                  for _ in range(30)]
        h = HilbertPartitioner(BOUNDS, 4, sites=sites, order=4)
        counts = [0, 0, 0, 0]
        for x, y in sites:
            counts[h.shard_of(x, y)] += 1
        # Balanced cut: no shard hoards the workload.
        assert max(counts) < 0.65 * len(sites)

    def test_rect_fanout_covers_owner(self):
        h = HilbertPartitioner(BOUNDS, 4, order=4)
        rng = random.Random(5)
        for _ in range(100):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            r = Rect(x, y, x + rng.uniform(0, 30), y + rng.uniform(0, 30))
            fan = h.shards_for_rect(r)
            assert h.shard_of(x, y) in fan
            assert h.shard_of(r.xhi, r.yhi) in fan

    def test_too_many_shards_for_grid(self):
        with pytest.raises(ValueError):
            HilbertPartitioner(BOUNDS, 5, order=1)

    def test_describe_mentions_cells(self):
        h = HilbertPartitioner(BOUNDS, 2, order=2)
        assert "4x4" in h.describe()


class TestBoundsOf:
    def test_covers_points_and_rects(self):
        b = bounds_of([(0, 0), (10, 5)], [Rect(-2, 1, 3, 8)])
        assert b.xlo <= -2 and b.xhi >= 10
        assert b.ylo <= 0 and b.yhi >= 8

    def test_empty_inputs_get_unit_square(self):
        b = bounds_of([])
        assert b.is_valid() and b.area() > 0

    def test_degenerate_extents_padded(self):
        b = bounds_of([(5, 5), (5, 9)])
        assert b.width > 0 and b.height > 0
