"""Sharded workspaces: router, border expansion, updates, monitors, stats.

The deterministic counterpart of the Hypothesis equivalence suite
(``test_shard_equivalence.py``): constructed scenes where the expected
routing — which shards are consulted, when the border protocol expands,
when a monitor re-homes — is known in advance, plus the bookkeeping
surfaces (``ShardStats``, ``explain()``, snapshot expiry, the merge
cache) that randomized equivalence checks cannot pin down.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    AddObstacle,
    AddSite,
    CoknnQuery,
    ConnQuery,
    GridPartitioner,
    OnnQuery,
    QueryStats,
    RangeQuery,
    Rect,
    RectObstacle,
    Segment,
    SemiJoinQuery,
    ShardStats,
    ShardedWorkspace,
    SnapshotExpired,
    TrajectoryQuery,
    Workspace,
)
from repro.index import RStarTree
from repro.shard import MERGE_CACHE_CAP, HilbertPartitioner
from repro.shard.sharded import ShardedSnapshot
from tests.conftest import random_scene

BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)


def quad_partitioner() -> GridPartitioner:
    return GridPartitioner(BOUNDS, 2, 2)


def build_pair(rng_seed=3, n_points=24, n_obstacles=12, shards=4):
    """An unsharded workspace and its sharded twin over one random scene."""
    rng = random.Random(rng_seed)
    points, obstacles = random_scene(rng, n_points=n_points,
                                     n_obstacles=n_obstacles)
    ws = Workspace.from_points(points, obstacles, layout="2T")
    sws = ShardedWorkspace.from_points(points, obstacles, shards=shards)
    return ws, sws


class TestConstruction:
    def test_sites_partitioned_obstacles_replicated(self):
        points = [(0, (10.0, 10.0)), (1, (90.0, 10.0)), (2, (10.0, 90.0)),
                  (3, (90.0, 90.0))]
        straddler = RectObstacle(45, 45, 55, 55)  # touches all four shards
        local = RectObstacle(10, 20, 14, 24)      # shard 0 only
        sws = ShardedWorkspace.from_points(
            points, [straddler, local], partitioner=quad_partitioner())
        assert [ws.data_tree.size for ws in sws.shards] == [1, 1, 1, 1]
        assert [ws.obstacle_tree.size for ws in sws.shards] == [2, 1, 1, 1]
        assert sws.stats.replicated_obstacles == 3
        assert sws.size == 4

    def test_shard_count_defaults_to_most_square_grid(self):
        ws, sws = build_pair(shards=9)
        assert sws.num_shards == 9
        assert isinstance(sws.partitioner, GridPartitioner)
        assert (sws.partitioner.nx, sws.partitioner.ny) == (3, 3)

    def test_from_workspace_reshards_current_contents(self):
        ws, _ = build_pair()
        sws = ShardedWorkspace.from_workspace(ws, shards=4)
        assert sws.size == ws.data_tree.size
        q = OnnQuery((50, 50), knn=3)
        assert sws.execute(q).tuples() == ws.execute(q).tuples()

    def test_rejects_1t_shards(self):
        points = [(0, (1.0, 1.0))]
        ws_1t = Workspace.from_points(points, [], layout="1T")
        with pytest.raises(ValueError, match="2T"):
            ShardedWorkspace([ws_1t], GridPartitioner(BOUNDS, 1, 1))
        with pytest.raises(ValueError, match="only 2T"):
            ShardedWorkspace.from_workspace(ws_1t)

    def test_shard_count_must_match_partitioner(self):
        ws = Workspace.from_points([(0, (1.0, 1.0))], [])
        with pytest.raises(ValueError, match="expects 4"):
            ShardedWorkspace([ws], quad_partitioner())


class TestRouting:
    def test_local_query_stays_on_one_shard(self):
        points = [(0, (10.0, 10.0)), (1, (12.0, 10.0)), (2, (90.0, 90.0))]
        sws = ShardedWorkspace.from_points(points, [],
                                           partitioner=quad_partitioner())
        result = sws.execute(OnnQuery((10, 10), knn=1))
        block = result.stats.shard
        assert block.fanout == 1
        assert block.border_expansions == 0
        assert set(block.by_shard) == {0}

    def test_border_expansion_crosses_into_neighbor(self):
        # Query point in shard 0; its only NN lives across the x=50 edge.
        points = [(0, (55.0, 10.0)), (1, (90.0, 90.0))]
        sws = ShardedWorkspace.from_points(points, [],
                                           partitioner=quad_partitioner())
        result = sws.execute(OnnQuery((45, 10), knn=1))
        assert result.tuples()[0][0] == 0
        block = result.stats.shard
        assert block.border_expansions >= 1
        assert {0, 1} <= set(block.by_shard)

    def test_expansion_answer_identical_to_unsharded(self):
        ws, sws = build_pair(rng_seed=17)
        # Segment straddling the center: guaranteed multi-shard.
        q = CoknnQuery(Segment(35, 35, 65, 65), 3)
        a, b = ws.execute(q), sws.execute(q)
        assert a.tuples() == b.tuples()
        assert a.knn_intervals() == b.knn_intervals()
        assert b.stats.shard.fanout >= 2

    def test_all_query_kinds_identical(self):
        ws, sws = build_pair(rng_seed=29)
        queries = [
            ConnQuery(Segment(10, 15, 35, 15)),
            CoknnQuery(Segment(40, 40, 60, 70), 2),
            OnnQuery((50, 50), knn=4),
            RangeQuery((30, 60), 22.0),
            TrajectoryQuery(((5, 5), (50, 50), (95, 10)), 2),
        ]
        for q in queries:
            a, b = ws.execute(q), sws.execute(q)
            if isinstance(q, TrajectoryQuery):
                assert [leg.tuples() for leg in a.legs] == \
                       [leg.tuples() for leg in b.legs]
            else:
                assert a.tuples() == b.tuples()

    def test_semi_join_routes_globally(self):
        ws, sws = build_pair(rng_seed=11, n_points=10, n_obstacles=6)
        rng = random.Random(99)
        inner = RStarTree(page_size=256)
        for i in range(6):
            inner.insert_point(1000 + i, rng.uniform(0, 100),
                               rng.uniform(0, 100))
        q = SemiJoinQuery(ws.data_tree, inner)
        a, b = ws.execute(q), sws.execute(q)
        assert a.tuples() == b.tuples()
        assert b.stats.shard.fanout == sws.num_shards

    def test_legacy_shortcuts_route(self):
        ws, sws = build_pair(rng_seed=5)
        seg = Segment(20, 20, 70, 30)
        assert sws.conn(seg).tuples() == ws.conn(seg).tuples()
        assert sws.coknn(seg, 2).tuples() == ws.coknn(seg, 2).tuples()
        assert sws.onn(50, 50, k=2)[0] == ws.onn(50, 50, k=2)[0]
        assert sws.range(40, 40, 18.0)[0] == ws.range(40, 40, 18.0)[0]

    def test_stream_preserves_submission_order(self):
        ws, sws = build_pair(rng_seed=7)
        queries = [OnnQuery((20 * i + 5, 30), knn=2, label=f"q{i}")
                   for i in range(4)]
        got = [r.tuples() for r in sws.stream(queries)]
        want = [ws.execute(q).tuples() for q in queries]
        assert got == want

    def test_hilbert_partitioner_identical_too(self):
        rng = random.Random(13)
        points, obstacles = random_scene(rng, n_points=30, n_obstacles=10)
        ws = Workspace.from_points(points, obstacles)
        part = HilbertPartitioner(BOUNDS, 4,
                                  sites=[xy for _p, xy in points], order=4)
        sws = ShardedWorkspace.from_points(points, obstacles,
                                           partitioner=part)
        for q in [OnnQuery((50, 50), knn=3), RangeQuery((25, 70), 20.0),
                  ConnQuery(Segment(10, 80, 80, 20))]:
            assert ws.execute(q).tuples() == sws.execute(q).tuples()


class TestMergeCache:
    def test_repeat_crossings_reuse_merged_environment(self):
        ws, sws = build_pair(rng_seed=17)
        q = CoknnQuery(Segment(35, 35, 65, 65), 3)
        sws.execute(q)
        built = sws.stats.merges_built
        assert built >= 1
        sws.execute(q)
        assert sws.stats.merges_built == built
        assert sws.stats.merge_reuses >= 1

    def test_update_keeps_cached_merge_exact(self):
        ws, sws = build_pair(rng_seed=17)
        q = CoknnQuery(Segment(35, 35, 65, 65), 3)
        sws.execute(q)  # populate the merge cache
        update = AddSite(777, 52.0, 48.0)
        ws.apply([update])
        sws.apply([update])
        assert ws.execute(q).tuples() == sws.execute(q).tuples()

    def test_cache_is_bounded(self):
        assert MERGE_CACHE_CAP >= 1
        ws, sws = build_pair(rng_seed=17)
        sws.execute(CoknnQuery(Segment(35, 35, 65, 65), 3))
        assert len(sws._merged) <= MERGE_CACHE_CAP


class TestUpdates:
    def test_site_update_routes_to_owner_only(self):
        points = [(0, (10.0, 10.0)), (1, (90.0, 90.0))]
        sws = ShardedWorkspace.from_points(points, [],
                                           partitioner=quad_partitioner())
        sizes = [w.data_tree.size for w in sws.shards]
        assert sws.add_site(7, 80, 20)  # shard 1
        assert [w.data_tree.size for w in sws.shards] == \
               [sizes[0], sizes[1] + 1, sizes[2], sizes[3]]
        assert sws.remove_site(7, 80, 20)
        assert not sws.remove_site(7, 80, 20)

    def test_obstacle_replicas_stay_in_lockstep(self):
        points = [(0, (10.0, 10.0)), (1, (90.0, 90.0))]
        sws = ShardedWorkspace.from_points(points, [],
                                           partitioner=quad_partitioner())
        straddler = RectObstacle(40, 40, 60, 60)
        assert sws.add_obstacle(straddler)
        assert [w.obstacle_tree.size for w in sws.shards] == [1, 1, 1, 1]
        assert sws.stats.replicated_obstacles == 3
        assert sws.remove_obstacle(straddler)
        assert [w.obstacle_tree.size for w in sws.shards] == [0, 0, 0, 0]
        assert sws.stats.replicated_obstacles == 0
        assert not sws.remove_obstacle(straddler)

    def test_version_bumps_once_per_applied_update(self):
        ws, sws = build_pair()
        v = sws.version
        sws.add_obstacle(RectObstacle(40, 40, 60, 60))
        assert sws.version == v + 1
        assert not sws.remove_site(424242, 1, 1)  # no-match: no bump
        assert sws.version == v + 1

    def test_interleaved_updates_preserve_equivalence(self):
        ws, sws = build_pair(rng_seed=43)
        rng = random.Random(4)
        q = CoknnQuery(Segment(20, 50, 80, 50), 2)
        for step in range(6):
            x, y = rng.uniform(5, 95), rng.uniform(5, 95)
            if step % 2:
                update = AddSite(900 + step, x, y)
            else:
                update = AddObstacle(RectObstacle(x, y, x + 3, y + 2))
            ws.apply([update])
            sws.apply([update])
            assert ws.execute(q).tuples() == sws.execute(q).tuples()


class TestMonitors:
    def test_monitor_results_and_deltas_match_unsharded(self):
        ws, sws = build_pair(rng_seed=19)
        q = OnnQuery((50, 50), knn=3)
        m_plain = ws.monitors.register(q)
        m_shard = sws.monitors.register(q)
        events = []
        m2 = sws.monitors.register(RangeQuery((40, 60), 18.0),
                                   callback=events.append)
        for update in [AddSite(800, 51.0, 52.0), AddSite(801, 10.0, 10.0),
                       AddObstacle(RectObstacle(48, 48, 52, 52))]:
            ws.apply([update])
            sws.apply([update])
            assert m_plain.result.tuples() == m_shard.result.tuples()
            ep, es = m_plain.events[-1], m_shard.events[-1]
            assert (ep.delta.added, ep.delta.removed, ep.delta.changed) == \
                   (es.delta.added, es.delta.removed, es.delta.changed)
        assert len(events) == 3  # callback saw every update
        assert len(sws.monitors) == 2
        assert sws.monitors.stats.updates == 3

    def test_monitor_pinned_home_and_rehome(self):
        points = [(0, (12.0, 10.0)), (1, (60.0, 10.0))]
        sws = ShardedWorkspace.from_points(points, [],
                                           partitioner=quad_partitioner())
        monitor = sws.monitors.register(OnnQuery((10, 10), knn=1))
        assert monitor.home == {0}  # NN two units away: ball stays local
        rehomes = sws.stats.rehomes
        sws.remove_site(0, 12, 10)  # NN now across the x=50 border
        assert monitor.result.tuples()[0][0] == 1
        assert 1 in monitor.home
        assert sws.stats.rehomes == rehomes + 1

    def test_far_update_dismissed_without_rerun(self):
        points = [(0, (12.0, 10.0)), (1, (90.0, 90.0))]
        sws = ShardedWorkspace.from_points(points, [],
                                           partitioner=quad_partitioner())
        sws.monitors.register(OnnQuery((10, 10), knn=1))
        sws.add_site(5, 95, 95)  # far outside the influence ball
        assert sws.monitors.stats.noops == 1
        assert sws.monitors.stats.reruns == 0

    def test_unregister_stops_maintenance(self):
        ws, sws = build_pair()
        monitor = sws.monitors.register(OnnQuery((50, 50), knn=2))
        assert sws.monitors.unregister(monitor)
        assert not sws.monitors.unregister(monitor.id)
        sws.add_site(888, 50.5, 50.5)
        assert len(monitor.events) == 0

    def test_rejects_unmonitorable_queries(self):
        ws, sws = build_pair()
        with pytest.raises(ValueError, match="no monitor"):
            sws.monitors.register(
                TrajectoryQuery(((0, 0), (10, 10)), 1))


class TestSnapshots:
    def test_snapshot_expires_on_any_shard_mutation(self):
        ws, sws = build_pair()
        snap = sws.snapshot()
        assert isinstance(snap, ShardedSnapshot)
        assert not snap.expired
        snap.execute(OnnQuery((20, 20), knn=2))
        sws.add_site(999, 21.0, 21.0)
        assert snap.expired
        with pytest.raises(SnapshotExpired):
            snap.execute(OnnQuery((20, 20), knn=2))
        assert sws.snapshots_taken == 1

    def test_snapshot_execute_many(self):
        ws, sws = build_pair()
        queries = [OnnQuery((25, 25), knn=2), RangeQuery((60, 60), 15.0)]
        snap = sws.snapshot()
        got = [r.tuples() for r in snap.execute_many(queries)]
        want = [ws.execute(q).tuples() for q in queries]
        assert got == want


class TestExecuteMany:
    @pytest.mark.parametrize("mode", ["thread", "fork"])
    def test_parallel_matches_serial_and_unsharded(self, mode):
        ws, sws = build_pair(rng_seed=31, n_points=30)
        rng = random.Random(8)
        queries = [OnnQuery((rng.uniform(5, 95), rng.uniform(5, 95)), knn=2,
                            label=f"q{i}") for i in range(10)]
        queries.append(RangeQuery((50, 50), 20.0))
        want = [ws.execute(q).tuples() for q in queries]
        serial = [r.tuples() for r in sws.execute_many(queries)]
        parallel = [r.tuples()
                    for r in sws.execute_many(queries, workers=3, mode=mode)]
        assert serial == want
        assert parallel == want

    def test_every_result_carries_shard_block(self):
        ws, sws = build_pair()
        results = sws.execute_many(
            [OnnQuery((20, 20), knn=1), OnnQuery((80, 80), knn=1)],
            workers=2, mode="thread")
        for r in results:
            assert isinstance(r.stats.shard, ShardStats)
            assert r.stats.shard.queries == 1

    def test_rejects_unknown_mode(self):
        ws, sws = build_pair()
        with pytest.raises(ValueError, match="unknown mode"):
            sws.execute_many([OnnQuery((1, 1), knn=1)], workers=2,
                             mode="greenlet")


class TestStatsAndExplain:
    def test_cumulative_stats_accumulate(self):
        ws, sws = build_pair(rng_seed=17)
        sws.execute(OnnQuery((10, 10), knn=1))
        sws.execute(CoknnQuery(Segment(35, 35, 65, 65), 3))
        s = sws.stats
        assert s.queries == 2
        assert s.fanout >= 2
        assert s.fanout_ratio >= 1.0
        assert sum(s.by_shard.values()) == s.fanout
        text = s.describe()
        assert "2 queries" in text and "fan-out" in text

    def test_query_stats_merge_carries_shard_block(self):
        ws, sws = build_pair()
        total = QueryStats()
        for q in [OnnQuery((20, 20), knn=1), OnnQuery((80, 80), knn=1)]:
            total.merge(sws.execute(q).stats)
        assert total.shard is not None
        assert total.shard.queries == 2
        plain = QueryStats()
        plain.merge(ws.execute(OnnQuery((20, 20), knn=1)).stats)
        assert plain.shard is None  # unsharded stats stay shard-free

    def test_plan_reports_fanout_and_explain_line(self):
        ws, sws = build_pair(rng_seed=17)
        plan = sws.plan(CoknnQuery(Segment(35, 35, 65, 65), 3))
        assert plan.est_shard_fanout >= 2
        text = plan.explain()
        assert "shards" in text and "fan-out" in text
        assert any("sharded: home shard(s)" in note for note in plan.notes)
        unsharded_plan = ws.plan(CoknnQuery(Segment(35, 35, 65, 65), 3))
        assert unsharded_plan.est_shard_fanout == 0
        assert "shards" not in unsharded_plan.explain()

    def test_stats_describe_empty(self):
        assert ShardStats().describe() == "no sharded queries yet"
