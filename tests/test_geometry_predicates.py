"""Tests for scalar geometric predicates (orientation, crossing, clipping)."""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    clip_segment_to_rect,
    line_line_intersection,
    orient_sign,
    point_in_triangle,
    point_seg_dist,
    seg_seg_dist,
    segment_crosses_rect_interior,
    segments_intersect,
    segments_properly_cross,
)

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False,
                  allow_infinity=False)


class TestOrientation:
    def test_left_turn_positive(self):
        assert orient_sign(0, 0, 1, 0, 1, 1) == 1

    def test_right_turn_negative(self):
        assert orient_sign(0, 0, 1, 0, 1, -1) == -1

    def test_collinear_zero(self):
        assert orient_sign(0, 0, 1, 1, 2, 2) == 0

    def test_near_collinear_with_large_coordinates(self):
        # At coordinates ~1e4 the raw determinant can be ~1e-8 by rounding;
        # the scaled tolerance must classify this as collinear.
        assert orient_sign(0, 0, 9000, 9000, 4500.0000000001, 4500) == 0


class TestProperCrossing:
    def test_plain_cross(self):
        assert segments_properly_cross(0, 0, 2, 2, 0, 2, 2, 0)

    def test_shared_endpoint_not_proper(self):
        assert not segments_properly_cross(0, 0, 2, 2, 2, 2, 3, 0)

    def test_t_junction_not_proper(self):
        # Endpoint of one segment lies in the interior of the other.
        assert not segments_properly_cross(0, 0, 2, 0, 1, 0, 1, 5)

    def test_collinear_overlap_not_proper(self):
        assert not segments_properly_cross(0, 0, 2, 0, 1, 0, 3, 0)

    def test_disjoint(self):
        assert not segments_properly_cross(0, 0, 1, 0, 0, 1, 1, 1)


class TestSegmentsIntersect:
    def test_proper_cross_intersects(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_touching_endpoint_intersects(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_collinear_overlap_intersects(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_parallel_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)


class TestDistances:
    def test_point_seg_projects_inside(self):
        assert math.isclose(point_seg_dist(1, 1, 0, 0, 2, 0), 1.0)

    def test_point_seg_clamps_to_endpoint(self):
        assert math.isclose(point_seg_dist(-3, 4, 0, 0, 2, 0), 5.0)

    def test_point_degenerate_segment(self):
        assert math.isclose(point_seg_dist(3, 4, 0, 0, 0, 0), 5.0)

    def test_seg_seg_crossing_is_zero(self):
        assert seg_seg_dist(0, 0, 2, 2, 0, 2, 2, 0) == 0.0

    def test_seg_seg_parallel(self):
        assert math.isclose(seg_seg_dist(0, 0, 2, 0, 0, 3, 2, 3), 3.0)

    @given(coord, coord, coord, coord, coord, coord)
    def test_point_seg_dist_below_endpoint_distances(self, px, py, ax, ay, bx, by):
        d = point_seg_dist(px, py, ax, ay, bx, by)
        assert d <= math.hypot(px - ax, py - ay) + 1e-9
        assert d <= math.hypot(px - bx, py - by) + 1e-9


class TestClipping:
    def test_fully_inside(self):
        assert clip_segment_to_rect(1, 1, 2, 2, 0, 0, 3, 3) == (0.0, 1.0)

    def test_fully_outside(self):
        assert clip_segment_to_rect(5, 5, 6, 6, 0, 0, 3, 3) is None

    def test_crossing_clip_params(self):
        t = clip_segment_to_rect(-1, 1, 3, 1, 0, 0, 2, 2)
        assert t is not None
        t0, t1 = t
        assert math.isclose(t0, 0.25) and math.isclose(t1, 0.75)

    def test_parallel_miss(self):
        assert clip_segment_to_rect(-1, 5, 3, 5, 0, 0, 2, 2) is None


class TestRectInteriorCrossing:
    def test_straight_through(self):
        assert segment_crosses_rect_interior(-1, 1, 3, 1, 0, 0, 2, 2)

    def test_along_edge_does_not_block(self):
        assert not segment_crosses_rect_interior(0, 0, 2, 0, 0, 0, 2, 2)

    def test_corner_touch_does_not_block(self):
        assert not segment_crosses_rect_interior(-1, -1, 1, 1, 1, 1, 3, 3)

    def test_degenerate_rect_never_blocks(self):
        assert not segment_crosses_rect_interior(-1, 1, 3, 1, 0, 1, 2, 1)

    def test_endpoint_on_boundary_entering(self):
        # Starts on the boundary and dives inside: blocked.
        assert segment_crosses_rect_interior(0, 1, 2, 1, 0, 0, 4, 4)

    def test_chord_between_corners(self):
        # Diagonal chord through the interior between two corners: blocked.
        assert segment_crosses_rect_interior(0, 0, 2, 2, 0, 0, 2, 2)


class TestTriangleAndLines:
    def test_point_inside_triangle(self):
        assert point_in_triangle(1, 0.5, 0, 0, 2, 0, 1, 2)

    def test_point_on_edge_counts_inside(self):
        assert point_in_triangle(1, 0, 0, 0, 2, 0, 1, 2)

    def test_point_outside_triangle(self):
        assert not point_in_triangle(3, 3, 0, 0, 2, 0, 1, 2)

    def test_line_intersection_params(self):
        hit = line_line_intersection(0, 0, 2, 0, 1, -1, 1, 1)
        assert hit is not None
        t, u = hit
        assert math.isclose(t, 0.5) and math.isclose(u, 0.5)

    def test_parallel_lines_none(self):
        assert line_line_intersection(0, 0, 1, 0, 0, 1, 1, 1) is None
