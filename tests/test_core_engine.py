"""Engine internals: KEnvelope cascade, ConnResult accessors, data sources."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core import ConnConfig, PiecewiseDistance, QueryStats
from repro.core.engine import ConnResult, KEnvelope, TreeDataSource
from repro.geometry import IntervalSet, Rect, Segment
from tests.conftest import build_point_tree, same_values

Q = Segment(0, 0, 100, 0)
CFG = ConnConfig()


def fn(cp, base, owner):
    return PiecewiseDistance.from_region(Q, IntervalSet.full(0, Q.length),
                                         cp, base, owner)


class TestKEnvelope:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KEnvelope(Q, 0)

    def test_initial_rlmax_infinite(self):
        env = KEnvelope(Q, 2)
        assert math.isinf(env.rlmax())

    def test_rlmax_finite_after_k_candidates(self):
        env = KEnvelope(Q, 2)
        stats = QueryStats()
        env.insert(fn((10, 5), 0.0, "a"), CFG, stats)
        assert math.isinf(env.rlmax())  # only 1 candidate for k=2
        env.insert(fn((90, 5), 0.0, "b"), CFG, stats)
        assert math.isfinite(env.rlmax())

    def test_rlmax_is_max_endpoint_of_kth_level(self):
        env = KEnvelope(Q, 1)
        stats = QueryStats()
        env.insert(fn((50, 10), 0.0, "a"), CFG, stats)
        want = max(math.hypot(50, 10), math.hypot(50, 10))
        assert env.rlmax() == pytest.approx(want)

    def test_cascade_matches_sorted_values(self):
        rng = random.Random(3)
        env = KEnvelope(Q, 3)
        stats = QueryStats()
        fns = [fn((rng.uniform(0, 100), rng.uniform(1, 30)),
                  rng.uniform(0, 10), i) for i in range(6)]
        for f in fns:
            env.insert(f, CFG, stats)
        ts = np.linspace(0, 100, 101)
        stacked = np.sort(np.stack([f.values(ts) for f in fns]), axis=0)
        for lvl in range(3):
            assert same_values(env.levels[lvl].values(ts), stacked[lvl])

    def test_insert_reports_change(self):
        env = KEnvelope(Q, 1)
        stats = QueryStats()
        assert env.insert(fn((50, 5), 0.0, "a"), CFG, stats)
        # A hopeless candidate changes nothing.
        assert not env.insert(fn((50, 500), 100.0, "b"), CFG, stats)


class TestConnResult:
    def _result(self):
        stats = QueryStats()
        env = KEnvelope(Q, 2)
        env.insert(fn((20, 10), 0.0, "a"), CFG, stats)
        env.insert(fn((80, 10), 0.0, "b"), CFG, stats)
        return ConnResult(Q, 2, env.levels, stats)

    def test_envelope_is_level_one(self):
        res = self._result()
        assert res.envelope is res.levels[0]

    def test_owner_and_distance(self):
        res = self._result()
        assert res.owner_at(0.0) == "a"
        assert res.owner_at(100.0) == "b"
        assert res.distance(0.0) == pytest.approx(math.hypot(20, 10))

    def test_kth_distance_dominates(self):
        res = self._result()
        for t in (0.0, 25.0, 50.0, 75.0, 100.0):
            assert res.kth_distance(t) >= res.distance(t) - 1e-9

    def test_knn_at_sorted_pairs(self):
        res = self._result()
        pairs = res.knn_at(50.0)
        assert len(pairs) == 2
        assert pairs[0][1] <= pairs[1][1]
        assert {p[0] for p in pairs} == {"a", "b"}

    def test_knn_intervals_owners_swap(self):
        res = self._result()
        intervals = res.knn_intervals()
        assert intervals[0][0] == ("a", "b")
        assert intervals[-1][0] == ("b", "a")

    def test_knn_intervals_merge_unreachable_level_boundaries(self):
        """A level boundary between two no-path pieces must not force a cut.

        Unreachable (``cp is None``) pieces can carry arbitrary recorded
        owners (whichever function lost there); the ordered k-NN tuple is
        unchanged across such a boundary, so the intervals must merge and
        the reported owner must be the normalized ``None``.
        """
        from repro.core.distance_function import Piece

        level1 = fn((50, 10), 0.0, "a")
        level2 = PiecewiseDistance(Q, [
            Piece(0.0, 40.0, None, math.inf, "a"),
            Piece(40.0, 100.0, None, math.inf, "b"),
        ])
        res = ConnResult(Q, 2, [level1, level2], QueryStats())
        intervals = res.knn_intervals()
        assert intervals == [(("a", None), (0.0, 100.0))]

    def test_knn_intervals_merge_same_owner_cp_change(self):
        """A control-point change within one owner never cuts the partition."""
        from repro.core.distance_function import Piece

        level1 = PiecewiseDistance(Q, [
            Piece(0.0, 60.0, (0.0, 10.0), 0.0, "a"),
            Piece(60.0, 100.0, (100.0, 10.0), 2.0, "a"),
        ])
        res = ConnResult(Q, 1, [level1], QueryStats())
        intervals = res.knn_intervals()
        assert intervals == [(("a",), (0.0, 100.0))]

    def test_tuples_and_split_points(self):
        res = self._result()
        assert res.split_points() == pytest.approx([50.0])
        assert [o for o, _r in res.tuples()] == ["a", "b"]


class TestTreeDataSource:
    def test_orders_by_segment_mindist(self, rng):
        pts = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
               for i in range(40)]
        tree = build_point_tree(pts)
        q = Segment(0, 50, 100, 50)
        src = TreeDataSource(tree, q)
        dists = []
        while not math.isinf(src.peek_key()):
            d, _payload, (x, y) = src.pop()
            assert d == pytest.approx(q.dist_point(x, y), abs=1e-9)
            dists.append(d)
        assert dists == sorted(dists)
        assert len(dists) == 40

    def test_peek_stable(self, rng):
        pts = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
               for i in range(5)]
        src = TreeDataSource(build_point_tree(pts), Segment(0, 0, 10, 0))
        assert src.peek_key() == src.peek_key()
