"""Shared fixtures and scene builders for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.geometry import Rect, Segment
from repro.index import RStarTree
from repro.obstacles import Obstacle, RectObstacle, SegmentObstacle


def same_values(a, b, atol: float = 1e-5) -> bool:
    """Elementwise closeness that treats matching infinities as equal."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        both_inf = np.isinf(a) & np.isinf(b)
        close = np.abs(np.where(both_inf, 0.0, a) -
                       np.where(both_inf, 0.0, b)) <= atol
    return bool(np.all(close | both_inf))


def first_mismatch(a, b, ts, atol: float = 1e-5):
    """Index/position/values of the first mismatch for failure messages."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        both_inf = np.isinf(a) & np.isinf(b)
        bad = (np.abs(np.where(both_inf, 0.0, a) -
                      np.where(both_inf, 0.0, b)) > atol) & ~both_inf
    if not bad.any():
        return None
    i = int(np.nonzero(bad)[0][0])
    return (i, float(ts[i]), float(a[i]), float(b[i]))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def random_scene(rng: random.Random, n_points: int = 12, n_obstacles: int = 8,
                 side: float = 100.0, segment_fraction: float = 0.3):
    """A random scene: points outside obstacle interiors, mixed obstacle kinds.

    Returns:
        ``(points, obstacles)`` with points as ``(id, (x, y))``.
    """
    obstacles: list[Obstacle] = []
    for _ in range(n_obstacles):
        x = rng.uniform(0, side)
        y = rng.uniform(0, side)
        if rng.random() < segment_fraction:
            obstacles.append(SegmentObstacle(
                x, y, x + rng.uniform(-side / 5, side / 5),
                y + rng.uniform(-side / 5, side / 5)))
        else:
            obstacles.append(RectObstacle(
                x, y, x + rng.uniform(side / 30, side / 5),
                y + rng.uniform(side / 30, side / 5)))

    def inside(px: float, py: float) -> bool:
        return any(isinstance(o, RectObstacle) and
                   o.rect.contains_point_open(px, py) for o in obstacles)

    points: list[tuple[int, tuple[float, float]]] = []
    while len(points) < n_points:
        x = rng.uniform(0, side)
        y = rng.uniform(0, side)
        if not inside(x, y):
            points.append((len(points), (x, y)))
    return points, obstacles


def random_query(rng: random.Random, side: float = 100.0,
                 min_length: float = 20.0) -> Segment:
    """A random query segment of reasonable length inside the scene."""
    while True:
        seg = Segment(rng.uniform(0, side), rng.uniform(0, side),
                      rng.uniform(0, side), rng.uniform(0, side))
        if seg.length >= min_length:
            return seg


def build_point_tree(points, page_size: int = 256) -> RStarTree:
    tree = RStarTree(page_size=page_size)
    for pid, (x, y) in points:
        tree.insert_point(pid, x, y)
    return tree


def build_obstacle_tree(obstacles, page_size: int = 256) -> RStarTree:
    tree = RStarTree(page_size=page_size)
    for o in obstacles:
        tree.insert(o, o.mbr())
    return tree
