"""Shadow intervals / visible regions: vectorized == scalar == dense sampling."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.geometry import IntervalSet, Segment
from repro.obstacles import (
    ObstacleSet,
    RectObstacle,
    SegmentObstacle,
    shadow_intervals_scalar,
    shadow_set,
    visible_region,
    visible_region_scalar,
)


def sampled_visibility(vx, vy, qseg, oset: ObstacleSet, samples=400):
    """Ground truth by dense sampling of the blocked predicate."""
    ts = np.linspace(0.0, qseg.length, samples)
    out = []
    for t in ts:
        p = qseg.point_at(float(t))
        out.append(not oset.blocked(vx, vy, p.x, p.y))
    return ts, out


def check_against_sampling(vx, vy, qseg, oset, tol=None):
    """The computed VR must agree with sampling except near its boundaries."""
    vr = visible_region(vx, vy, qseg, oset)
    tol = tol if tol is not None else qseg.length / 150.0
    bounds = vr.boundaries()
    ts, visible = sampled_visibility(vx, vy, qseg, oset)
    for t, vis in zip(ts, visible):
        if bounds and min(abs(t - b) for b in bounds) < tol:
            continue  # sampling jitter right at a shadow boundary
        assert vr.contains(float(t)) == vis, (
            f"at t={t}: computed {vr.contains(float(t))}, sampled {vis}")


class TestSingleRect:
    def test_rect_between_viewpoint_and_segment(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([RectObstacle(4, 1, 6, 2)])
        vr = visible_region(5, 3, q, oset)
        # The shadow covers the middle; both ends stay visible.
        assert vr.contains(0.5) and vr.contains(9.5)
        assert not vr.contains(5.0)

    def test_rect_behind_viewpoint_no_shadow(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([RectObstacle(4, 5, 6, 6)])
        vr = visible_region(5, 3, q, oset)
        assert vr == IntervalSet.full(0.0, 10.0)

    def test_rect_not_between_no_shadow(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([RectObstacle(20, 1, 25, 2)])
        assert visible_region(5, 3, q, oset) == IntervalSet.full(0.0, 10.0)

    def test_viewpoint_at_rect_corner(self):
        # A node that IS an obstacle corner still sees along both edges.
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([RectObstacle(4, 2, 6, 4)])
        vr = visible_region(4, 2, q, oset)  # bottom-left corner
        assert vr.contains(0.0) and vr.contains(4.0)
        # Points shadowed by its own rectangle (beyond the bottom-right
        # corner, looking through the body) stay visible along the bottom
        # edge, so the whole bottom line of sight is clear.
        assert vr.contains(6.0)

    def test_scalar_vectorized_agree(self):
        q = Segment(0, 0, 10, 0)
        o = RectObstacle(4, 1, 6, 2)
        oset = ObstacleSet([o])
        assert visible_region(5, 3, q, oset) == visible_region_scalar(5, 3, q, oset)

    def test_shadow_single_interval(self):
        q = Segment(0, 0, 10, 0)
        o = RectObstacle(4, 1, 6, 2)
        blocked = shadow_intervals_scalar(5, 3, q, o)
        assert len(blocked) == 1


class TestSingleSegmentObstacle:
    def test_wall_blocks_cone(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([SegmentObstacle(4, 1, 6, 1)])
        vr = visible_region(5, 3, q, oset)
        assert not vr.contains(5.0)
        assert vr.contains(0.2) and vr.contains(9.8)

    def test_wall_parallel_to_sightline_invisible_effect(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([SegmentObstacle(5, 1, 5, 4)])  # vertical wall
        vr = visible_region(5, 3, q, oset)
        # The wall is collinear with the viewpoint's vertical: only a sliver
        # of q directly below is affected (grazing along the wall is allowed,
        # so nothing is truly blocked).
        assert vr.contains(1.0) and vr.contains(9.0)

    def test_endpoint_grazing_allowed(self):
        q = Segment(0, 0, 10, 0)
        o = SegmentObstacle(4, 1, 6, 1)
        oset = ObstacleSet([o])
        vr = visible_region(4, 1, q, oset)  # viewpoint at wall endpoint
        assert vr == IntervalSet.full(0.0, 10.0)


class TestAgainstSampling:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_scene_rects(self, seed):
        rng = random.Random(seed)
        obs = []
        for _ in range(6):
            x, y = rng.uniform(0, 80), rng.uniform(0, 80)
            obs.append(RectObstacle(x, y, x + rng.uniform(2, 20),
                                    y + rng.uniform(2, 20)))
        oset = ObstacleSet(obs)
        q = Segment(5, 5, 90, 30)
        vx, vy = rng.uniform(0, 90), rng.uniform(0, 90)
        while any(isinstance(o, RectObstacle) and
                  o.rect.contains_point_open(vx, vy) for o in obs):
            vx, vy = rng.uniform(0, 90), rng.uniform(0, 90)
        check_against_sampling(vx, vy, q, oset)

    @pytest.mark.parametrize("seed", range(8, 14))
    def test_random_scene_mixed(self, seed):
        rng = random.Random(seed)
        obs = []
        for _ in range(7):
            x, y = rng.uniform(0, 80), rng.uniform(0, 80)
            if rng.random() < 0.5:
                obs.append(SegmentObstacle(x, y, x + rng.uniform(-15, 15),
                                           y + rng.uniform(-15, 15)))
            else:
                obs.append(RectObstacle(x, y, x + rng.uniform(2, 15),
                                        y + rng.uniform(2, 15)))
        oset = ObstacleSet(obs)
        q = Segment(0, 40, 95, 45)
        vx, vy = rng.uniform(0, 90), rng.uniform(0, 90)
        while any(isinstance(o, RectObstacle) and
                  o.rect.contains_point_open(vx, vy) for o in obs):
            vx, vy = rng.uniform(0, 90), rng.uniform(0, 90)
        check_against_sampling(vx, vy, q, oset)

    @pytest.mark.parametrize("seed", range(14, 20))
    def test_scalar_equals_vectorized_randomized(self, seed):
        rng = random.Random(seed)
        obs = []
        for _ in range(5):
            x, y = rng.uniform(0, 60), rng.uniform(0, 60)
            if rng.random() < 0.5:
                obs.append(SegmentObstacle(x, y, x + rng.uniform(-10, 10),
                                           y + rng.uniform(-10, 10)))
            else:
                obs.append(RectObstacle(x, y, x + rng.uniform(2, 12),
                                        y + rng.uniform(2, 12)))
        oset = ObstacleSet(obs)
        q = Segment(2, 3, 70, 55)
        vx, vy = rng.uniform(0, 70), rng.uniform(0, 70)
        assert (visible_region(vx, vy, q, oset) ==
                visible_region_scalar(vx, vy, q, oset))


class TestShadowSet:
    def test_union_of_shadows(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([RectObstacle(1, 1, 2, 2), RectObstacle(7, 1, 8, 2)])
        shadows = shadow_set(5, 4, q, oset.rects, oset.segs)
        vr = IntervalSet.full(0, 10).subtract(shadows)
        assert vr.contains(5.0)          # gap between the two shadows
        assert not shadows.is_empty()

    def test_empty_obstacles_no_shadow(self):
        q = Segment(0, 0, 10, 0)
        oset = ObstacleSet([])
        assert shadow_set(5, 4, q, oset.rects, oset.segs).is_empty()
