"""Hypothesis property tests on the envelope algebra (the engine's heart)."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.core import ConnConfig, PiecewiseDistance, crossing_params
from repro.core.distance_function import Piece
from repro.geometry import IntervalSet, Segment

Q = Segment(0.0, 0.0, 100.0, 0.0)
TS = np.linspace(0.0, 100.0, 201)

coord = st.floats(min_value=-150.0, max_value=150.0, allow_nan=False,
                  allow_infinity=False)
base = st.floats(min_value=0.0, max_value=200.0, allow_nan=False,
                 allow_infinity=False)


@st.composite
def distance_functions(draw, owner):
    cp = (draw(coord), draw(coord))
    b = draw(base)
    # Sometimes restrict to a sub-region with unknown flanks.
    if draw(st.booleans()):
        lo = draw(st.floats(min_value=0, max_value=90))
        hi = draw(st.floats(min_value=lo + 1.0, max_value=100))
        region = IntervalSet([(lo, hi)])
    else:
        region = IntervalSet.full(0.0, Q.length)
    return PiecewiseDistance.from_region(Q, region, cp, b, owner)


def close(a, b, atol=1e-5):
    with np.errstate(invalid="ignore"):
        both_inf = np.isinf(a) & np.isinf(b)
        return np.all(both_inf | (np.abs(np.where(both_inf, 0, a) -
                                         np.where(both_inf, 0, b)) <= atol))


class TestEnvelopeAlgebra:
    @given(st.lists(st.integers(), min_size=1, max_size=5, unique=True)
           .flatmap(lambda ids: st.tuples(*[distance_functions(i) for i in ids])))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_pointwise_min(self, fns):
        env = PiecewiseDistance.unknown(Q)
        for f in fns:
            env, _, _ = env.merge_min(f)
            env.assert_partition()
        want = np.min([f.values(TS) for f in fns], axis=0)
        assert close(env.values(TS), want)

    @given(distance_functions("a"), distance_functions("b"),
           distance_functions("c"))
    # The boundary-tie regression PR 4's review caught: with every control
    # point *on* the query line, fb and fc coincide on the ray t >= 1, the
    # squared tie equation degenerates to an identity, and merge order used
    # to decide whether fb's strict win on [0, 1) was ever discovered.
    @example(fa=PiecewiseDistance.from_region(
                 Q, IntervalSet.full(0.0, Q.length), (0.0, 0.0), 0.0, "a"),
             fb=PiecewiseDistance.from_region(
                 Q, IntervalSet.full(0.0, Q.length), (0.0, 0.0), 0.0, "b"),
             fc=PiecewiseDistance.from_region(
                 Q, IntervalSet.full(0.0, Q.length), (1.0, 0.0), 1.0, "c"))
    @settings(max_examples=40, deadline=None)
    def test_insertion_order_invariance(self, fa, fb, fc):
        def build(order):
            env = PiecewiseDistance.unknown(Q)
            for f in order:
                env, _, _ = env.merge_min(f)
            return env.values(TS)

        assert close(build([fa, fb, fc]), build([fc, fb, fa]))

    @given(distance_functions("a"), distance_functions("b"))
    @settings(max_examples=40, deadline=None)
    def test_winner_loser_partition(self, fa, fb):
        win, lose, _ = fa.merge_min(fb)
        win.assert_partition()
        lose.assert_partition()
        # At a sample that coincides exactly with a piece boundary, closed
        # intervals make both sides "known" at that single point while the
        # loser's pieces are unknown on both flanks — a measure-zero
        # evaluation artifact, not an envelope error.  Sample off-boundary.
        bounds = np.array(fa.boundaries() + fb.boundaries())
        ts = TS[np.min(np.abs(TS[:, None] - bounds[None, :]), axis=1) > 1e-6]
        va = fa.values(ts)
        vb = fb.values(ts)
        assert close(win.values(ts), np.minimum(va, vb))
        assert close(lose.values(ts), np.maximum(va, vb))

    @given(distance_functions("a"), distance_functions("b"))
    @settings(max_examples=40, deadline=None)
    def test_lemma1_flag_never_changes_values(self, fa, fb):
        w1, _, _ = fa.merge_min(fb, ConnConfig(use_lemma1=True))
        w2, _, _ = fa.merge_min(fb, ConnConfig(use_lemma1=False))
        assert close(w1.values(TS), w2.values(TS))

    @given(distance_functions("a"))
    @settings(max_examples=30, deadline=None)
    def test_merge_with_unknown_is_identity(self, fa):
        win, lose, changed = PiecewiseDistance.unknown(Q).merge_min(fa)
        assert close(win.values(TS), fa.values(TS))
        assert lose.all_unknown()

    @given(distance_functions("a"))
    @settings(max_examples=30, deadline=None)
    def test_max_endpoint_value_bounds_function(self, fa):
        m = fa.max_endpoint_value()
        vals = fa.values(TS)
        if math.isinf(m):
            assert np.isinf(vals).any()
        else:
            assert np.all(vals <= m + 1e-6)


class TestCrossingSymmetry:
    @given(st.tuples(coord, coord), base, st.tuples(coord, coord), base)
    @settings(max_examples=60, deadline=None)
    def test_roots_symmetric_in_arguments(self, u, bu, v, bv):
        # Control points on the query line can make the two path functions
        # *identical* over whole sub-segments (both reduce to |t - t0| +
        # const), where isolated roots are ill-defined; the engine resolves
        # such ties by midpoint evaluation.  Test the generic configuration:
        # both control points strictly off the line, roots strictly interior
        # (a tangency at t=0/t=L may fall on either side of the inclusion
        # margin depending on argument order).
        assume(abs(u[1]) > 0.5 and abs(v[1]) > 0.5)

        def interior(roots):
            return [t for t in roots if 1e-4 < t < Q.length - 1e-4]

        r1 = interior(crossing_params(Q, u, bu, v, bv, 0.0, Q.length))
        r2 = interior(crossing_params(Q, v, bv, u, bu, 0.0, Q.length))
        assert len(r1) == len(r2)
        for a, b in zip(r1, r2):
            assert abs(a - b) < 1e-4

    @given(st.tuples(coord, coord), base,
           st.floats(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_self_crossing_empty(self, u, bu, shift):
        # Same control point, different bases: never equal (unless shift=0).
        roots = crossing_params(Q, u, bu, u, bu + shift + 0.1, 0.0, Q.length)
        assert roots == []


class TestPieceInvariants:
    @given(st.tuples(coord, coord), base,
           st.floats(min_value=0, max_value=99),
           st.floats(min_value=0.5, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_piece_value_convexity(self, cp, b, lo, width):
        hi = min(lo + width, 100.0)
        piece = Piece(lo, hi, cp, b, "x")
        # Convexity along the segment: midpoint value <= endpoint average.
        mid_v = piece.value_at(Q, (lo + hi) / 2)
        avg = 0.5 * (piece.value_at(Q, lo) + piece.value_at(Q, hi))
        assert mid_v <= avg + 1e-9
        assert piece.max_value(Q) >= mid_v - 1e-9
