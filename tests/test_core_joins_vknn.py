"""Obstructed joins and visible-kNN: correctness against brute force."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    obstructed_closest_pair,
    obstructed_e_distance_join,
    obstructed_semi_join,
    vknn,
)
from repro.obstacles import ObstacleSet, RectObstacle, obstructed_distance
from tests.conftest import build_obstacle_tree, build_point_tree, random_scene


def two_sets(rng, n_a=6, n_b=7, n_obstacles=6):
    points_a, obstacles = random_scene(rng, n_points=n_a,
                                       n_obstacles=n_obstacles)
    points_b, _ = random_scene(rng, n_points=n_b, n_obstacles=0)

    def inside(x, y):
        return any(isinstance(o, RectObstacle) and
                   o.rect.contains_point_open(x, y) for o in obstacles)

    points_b = [(f"b{i}", xy) for i, (_pid, xy) in enumerate(points_b)
                if not inside(*xy)]
    points_a = [(f"a{i}", xy) for i, (_pid, xy) in enumerate(points_a)]
    return points_a, points_b, obstacles


def brute_pairs(points_a, points_b, obstacles):
    out = {}
    for pa, xa in points_a:
        for pb, xb in points_b:
            out[(pa, pb)] = obstructed_distance(xa, xb, obstacles)
    return out


class TestEDistanceJoin:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        rng = random.Random(9800 + seed)
        points_a, points_b, obstacles = two_sets(rng)
        e = rng.uniform(15, 50)
        pairs, _stats = obstructed_e_distance_join(
            build_point_tree(points_a), build_point_tree(points_b),
            build_obstacle_tree(obstacles), e)
        want = {(pa, pb): d for (pa, pb), d in
                brute_pairs(points_a, points_b, obstacles).items()
                if d <= e + 1e-9}
        assert {(pa, pb) for pa, pb, _d in pairs} == set(want)
        for pa, pb, d in pairs:
            assert d == pytest.approx(want[(pa, pb)], abs=1e-6)

    def test_sorted_by_distance(self, rng):
        points_a, points_b, obstacles = two_sets(rng)
        pairs, _ = obstructed_e_distance_join(
            build_point_tree(points_a), build_point_tree(points_b),
            build_obstacle_tree(obstacles), 60.0)
        dists = [d for _a, _b, d in pairs]
        assert dists == sorted(dists)

    def test_negative_e_rejected(self, rng):
        points_a, points_b, obstacles = two_sets(rng)
        with pytest.raises(ValueError):
            obstructed_e_distance_join(build_point_tree(points_a),
                                       build_point_tree(points_b),
                                       build_obstacle_tree(obstacles), -1.0)

    def test_empty_inputs(self, rng):
        points_a, _points_b, obstacles = two_sets(rng)
        pairs, _ = obstructed_e_distance_join(
            build_point_tree(points_a), build_point_tree([]),
            build_obstacle_tree(obstacles), 10.0)
        assert pairs == []


class TestClosestPair:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        rng = random.Random(9900 + seed)
        points_a, points_b, obstacles = two_sets(rng)
        got, _stats = obstructed_closest_pair(
            build_point_tree(points_a), build_point_tree(points_b),
            build_obstacle_tree(obstacles))
        table = brute_pairs(points_a, points_b, obstacles)
        finite = {k: v for k, v in table.items() if math.isfinite(v)}
        if not finite:
            assert got is None
            return
        want_d = min(finite.values())
        assert got is not None
        _pa, _pb, d = got
        assert d == pytest.approx(want_d, abs=1e-6)

    def test_empty_side_returns_none(self, rng):
        points_a, _points_b, obstacles = two_sets(rng)
        got, _ = obstructed_closest_pair(build_point_tree(points_a),
                                         build_point_tree([]),
                                         build_obstacle_tree(obstacles))
        assert got is None

    def test_obstacle_changes_winner(self):
        points_a = [("a0", (0.0, 0.0))]
        points_b = [("near", (10.0, 0.0)), ("far", (0.0, -13.0))]
        wall = RectObstacle(4, -30, 6, 30)
        free, _ = obstructed_closest_pair(build_point_tree(points_a),
                                          build_point_tree(points_b),
                                          build_obstacle_tree([]))
        assert free[1] == "near"
        blocked, _ = obstructed_closest_pair(build_point_tree(points_a),
                                             build_point_tree(points_b),
                                             build_obstacle_tree([wall]))
        assert blocked[1] == "far"


class TestSemiJoin:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        rng = random.Random(10_000 + seed)
        points_a, points_b, obstacles = two_sets(rng)
        if not points_b:
            return
        rows, _stats = obstructed_semi_join(
            build_point_tree(points_a), build_point_tree(points_b),
            build_obstacle_tree(obstacles))
        table = brute_pairs(points_a, points_b, obstacles)
        assert len(rows) == len(points_a)
        for pa, pb, d in rows:
            want = min(table[(pa, q)] for q, _xy in points_b)
            if math.isinf(want):
                assert math.isinf(d)
            else:
                assert d == pytest.approx(want, abs=1e-6)

    def test_row_per_outer_point(self, rng):
        points_a, points_b, obstacles = two_sets(rng)
        rows, _ = obstructed_semi_join(build_point_tree(points_a),
                                       build_point_tree(points_b),
                                       build_obstacle_tree(obstacles))
        assert [pa for pa, _pb, _d in rows] and len(rows) == len(points_a)


class TestVkNN:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        rng = random.Random(10_100 + seed)
        points, obstacles = random_scene(rng, n_points=14, n_obstacles=8)
        qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
        k = rng.choice((1, 3, 5))
        got, _stats = vknn(build_point_tree(points),
                           build_obstacle_tree(obstacles), qx, qy, k=k)
        oset = ObstacleSet(obstacles)
        visible = sorted(
            (math.hypot(x - qx, y - qy), pid)
            for pid, (x, y) in points
            if not oset.blocked(qx, qy, x, y))
        want = visible[:k]
        assert len(got) == len(want)
        for (gp, gd), (wd, wp) in zip(got, want):
            assert gd == pytest.approx(wd, abs=1e-9)

    def test_hidden_points_excluded(self):
        points = [("hidden", (10.0, 0.0)), ("seen", (0.0, 20.0))]
        wall = RectObstacle(4, -5, 6, 5)
        got, _ = vknn(build_point_tree(points), build_obstacle_tree([wall]),
                      0, 0, k=2)
        assert [p for p, _d in got] == ["seen"]

    def test_distances_euclidean_not_obstructed(self):
        points = [("p", (10.0, 0.0))]
        got, _ = vknn(build_point_tree(points), build_obstacle_tree([]),
                      0, 0, k=1)
        assert got[0][1] == pytest.approx(10.0)

    def test_invalid_k(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            vknn(build_point_tree(points), build_obstacle_tree(obstacles),
                 0, 0, k=0)
