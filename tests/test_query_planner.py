"""Planner selection, ``explain()`` output, and executor equivalence.

The equivalence matrix the issue demands: ``execute(Query)`` must match the
legacy entry point for every query type, on both layouts, warm and cold.
"""

from __future__ import annotations

import math
import random

import pytest

import repro
from repro import (
    ClosestPairQuery,
    CoknnQuery,
    ConnQuery,
    EDistanceJoinQuery,
    OnnQuery,
    PlannerOptions,
    RangeQuery,
    RectObstacle,
    RStarTree,
    Segment,
    SemiJoinQuery,
    TrajectoryQuery,
    Workspace,
)


def scene_parts(seed: int = 11):
    rng = random.Random(seed)
    points = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
              for i in range(50)]
    obstacles = [RectObstacle(x, y, x + 8, y + 5)
                 for x, y in ((rng.uniform(0, 90), rng.uniform(0, 90))
                              for _ in range(14))]
    return points, obstacles


@pytest.fixture(scope="module")
def parts():
    return scene_parts()


def make_ws(parts, layout="2T", **kwargs) -> Workspace:
    points, obstacles = parts
    return Workspace.from_points(points, obstacles, layout=layout, **kwargs)


def inner_tree(seed: int = 23, n: int = 7) -> RStarTree:
    rng = random.Random(seed)
    tree = RStarTree()
    for i in range(n):
        tree.insert_point(f"b{i}", rng.uniform(0, 100), rng.uniform(0, 100))
    return tree


SEG = Segment(5, 45, 95, 52)
WAYPOINTS = ((5, 5), (50, 60), (95, 20))


class TestPlanSelection:
    def test_layout_selection(self, parts):
        assert make_ws(parts).plan(ConnQuery(SEG)).algorithm == "coknn-2t"
        assert make_ws(parts, "1T").plan(
            CoknnQuery(SEG, knn=2)).algorithm == "coknn-1t"
        assert make_ws(parts).plan(OnnQuery((5, 5))).algorithm == \
            "onn-scan-2t"
        assert make_ws(parts, "1T").plan(
            RangeQuery((5, 5), 10)).algorithm == "range-scan-1t"
        assert make_ws(parts).plan(
            TrajectoryQuery(WAYPOINTS)).algorithm == "trajectory-coknn-2t"
        assert make_ws(parts).plan(
            SemiJoinQuery(inner_tree(), inner_tree())).algorithm == \
            "semi-join"

    def test_joins_need_2t(self, parts):
        ws = make_ws(parts, "1T")
        for q in (SemiJoinQuery(inner_tree(), inner_tree()),
                  EDistanceJoinQuery(inner_tree(), inner_tree(), 5.0),
                  ClosestPairQuery(inner_tree(), inner_tree())):
            with pytest.raises(ValueError, match="2T"):
                ws.plan(q)

    def test_unknown_query_rejected(self, parts):
        with pytest.raises(TypeError):
            make_ws(parts).plan("not a query")

    def test_explain_transcript(self, parts):
        ws = make_ws(parts)
        q = CoknnQuery(SEG, knn=3, label="patrol-7")
        text = ws.plan(q).explain()
        assert "QueryPlan: coknn-2t" in text
        assert "k=3" in text and "patrol-7" in text
        assert "footprint" in text and "cache" in text
        assert "cold" in text and "obstacle-tree page reads" in text
        assert str(ws.plan(q)) == text

    def test_warm_plan_estimates_zero_io(self, parts):
        ws = make_ws(parts)
        q = ConnQuery(SEG)
        cold = ws.plan(q)
        assert not cold.warm and cold.est_obstacle_io > 0
        ws.prefetch_all()
        warm = ws.plan(q)
        assert warm.warm and warm.est_obstacle_io == 0
        assert "warm" in warm.explain()

    def test_range_plan_uses_exact_radius(self, parts):
        plan = make_ws(parts).plan(RangeQuery((10, 10), 17.5))
        assert plan.est_radius == 17.5

    def test_planner_prices_parallelism(self, parts):
        waypoints = tuple((10.0 * i, 20.0 + 5.0 * (i % 3))
                          for i in range(7))  # 6 legs
        traj = TrajectoryQuery(waypoints, 2)
        serial_ws = make_ws(parts)
        assert serial_ws.plan(traj).est_parallel_speedup == 1.0
        ws = make_ws(parts, planner=PlannerOptions(parallel_workers=4))
        plan = ws.plan(traj)
        # 6 legs over 4 workers drain in 2 pool rounds: 3x.
        assert plan.est_parallel_speedup == pytest.approx(3.0)
        assert "speedup" in plan.explain()
        # Single-segment plans are inherently serial.
        assert ws.plan(ConnQuery(SEG)).est_parallel_speedup == 1.0
        # And the trajectory executor honors the priced pool: identical
        # answers with parallel legs.
        assert ws.execute(traj).tuples() == serial_ws.execute(traj).tuples()

    def test_execute_accepts_prepared_plan(self, parts):
        ws = make_ws(parts)
        q = ConnQuery(SEG)
        plan = ws.plan(q)
        res = ws.execute(plan)
        assert res.query is q
        assert res.tuples() == make_ws(parts).conn(SEG).tuples()


class TestNaiveFallback:
    def test_threshold_selects_naive_preload(self, parts):
        ws = make_ws(parts, planner=PlannerOptions(naive_max_points=1000))
        plan = ws.plan(ConnQuery(SEG))
        assert plan.algorithm == "naive-preload"
        assert any("tiny" in n for n in plan.notes)
        # Default planner never picks it.
        assert make_ws(parts).plan(ConnQuery(SEG)).algorithm == "coknn-2t"
        # Large thresholds don't apply below the dataset size.
        ws_big = make_ws(parts, planner=PlannerOptions(naive_max_points=10))
        assert ws_big.plan(ConnQuery(SEG)).algorithm == "coknn-2t"

    def test_naive_results_match_engine(self, parts):
        ws = make_ws(parts, planner=PlannerOptions(naive_max_points=1000))
        reference = make_ws(parts)
        for q in (ConnQuery(SEG), CoknnQuery(SEG, knn=2),
                  OnnQuery((20, 20), knn=2), RangeQuery((20, 20), 30.0),
                  TrajectoryQuery(WAYPOINTS)):
            a = ws.execute(q)
            b = reference.execute(q)
            assert a.tuples() == b.tuples(), q
            assert a.stats.noe == b.stats.noe, q
        # After the preload no query reads the obstacle tree again.
        res = ws.execute(ConnQuery(SEG))
        assert res.stats.obstacle_reads == 0
        assert ws.plan(ConnQuery(SEG)).warm


class TestExecutorEquivalence:
    """execute(Query) == legacy entry point, 2T and 1T, warm and cold."""

    @pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
    @pytest.mark.parametrize("layout", ["2T", "1T"])
    def test_conn_coknn_trajectory(self, parts, layout, warm):
        points, obstacles = parts
        ws = make_ws(parts, layout)
        if warm:
            ws.prefetch_all()
        if layout == "2T":
            legacy_conn = repro.conn(ws.data_tree, ws.obstacle_tree, SEG)
            legacy_k = repro.coknn(ws.data_tree, ws.obstacle_tree, SEG, k=3)
            legacy_traj = repro.trajectory_coknn(
                ws.data_tree, ws.obstacle_tree, WAYPOINTS, k=2)
        else:
            legacy_conn = repro.conn_single_tree(ws.unified_tree, SEG)
            legacy_k = repro.coknn_single_tree(ws.unified_tree, SEG, k=3)
            legacy_traj = None
        assert ws.execute(ConnQuery(SEG)).tuples() == legacy_conn.tuples()
        got_k = ws.execute(CoknnQuery(SEG, knn=3))
        assert got_k.tuples() == legacy_k.tuples()
        assert got_k.knn_at(SEG.length / 2) == legacy_k.knn_at(SEG.length / 2)
        if legacy_traj is not None:
            got_t = ws.execute(TrajectoryQuery(WAYPOINTS, knn=2))
            assert got_t.tuples() == legacy_traj.tuples()

    @pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
    @pytest.mark.parametrize("layout", ["2T", "1T"])
    def test_onn_range(self, parts, layout, warm):
        ws = make_ws(parts, layout)
        ref = make_ws(parts, "2T")  # legacy free functions are 2T
        if warm:
            ws.prefetch_all()
        legacy_onn, _ = repro.onn(ref.data_tree, ref.obstacle_tree,
                                  20.0, 20.0, k=3)
        legacy_rng, _ = repro.obstructed_range(ref.data_tree,
                                               ref.obstacle_tree,
                                               20.0, 20.0, 30.0)
        got_onn = ws.execute(OnnQuery((20.0, 20.0), knn=3))
        got_rng = ws.execute(RangeQuery((20.0, 20.0), 30.0))
        assert [(p, pytest.approx(d)) for p, d in legacy_onn] == \
            [(p, pytest.approx(d)) for p, d in got_onn.tuples()]
        assert [(p, pytest.approx(d)) for p, d in legacy_rng] == \
            [(p, pytest.approx(d)) for p, d in got_rng.tuples()]

    @pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
    def test_joins(self, parts, warm):
        ws = make_ws(parts)
        inner = inner_tree()
        if warm:
            ws.prefetch_all()
        legacy_semi, _ = repro.obstructed_semi_join(
            ws.data_tree, inner, ws.obstacle_tree)
        legacy_e, _ = repro.obstructed_e_distance_join(
            ws.data_tree, inner, ws.obstacle_tree, 20.0)
        legacy_cp, _ = repro.obstructed_closest_pair(
            ws.data_tree, inner, ws.obstacle_tree)
        assert ws.execute(SemiJoinQuery(ws.data_tree, inner)).tuples() == \
            legacy_semi
        assert ws.execute(
            EDistanceJoinQuery(ws.data_tree, inner, 20.0)).tuples() == \
            legacy_e
        got_cp = ws.execute(ClosestPairQuery(ws.data_tree, inner))
        assert got_cp.pair == legacy_cp

    def test_service_shims_match_execute(self, parts):
        """The convenience methods are shims over the same planner path."""
        ws = make_ws(parts)
        assert ws.service.conn(SEG).tuples() == \
            ws.execute(ConnQuery(SEG)).tuples()
        assert ws.service.coknn(SEG, k=2).tuples() == \
            ws.execute(CoknnQuery(SEG, knn=2)).tuples()
        inner = inner_tree()
        rows, _ = ws.service.semi_join(ws.data_tree, inner)
        assert rows == ws.execute(SemiJoinQuery(ws.data_tree, inner)).tuples()

    def test_unreachable_is_consistent(self, parts):
        """A query sealed inside an obstacle ring agrees across paths."""
        points = [("out", (50.0, 90.0))]
        ring = [RectObstacle(10, 10, 40, 12), RectObstacle(10, 28, 40, 30),
                RectObstacle(10, 10, 12, 30), RectObstacle(38, 10, 40, 30)]
        ws = Workspace.from_points(points, ring)
        q = OnnQuery((25.0, 20.0))
        res = ws.execute(q)
        legacy, _ = repro.onn(ws.data_tree, ws.obstacle_tree, 25.0, 20.0)
        assert res.tuples() == legacy
        assert res.tuples() == []  # sealed off: no finite-distance neighbor
        assert math.isinf(
            ws.execute(ClosestPairQuery(ws.data_tree, ws.data_tree)).pair[2]
        ) is False  # a point is its own closest pair across identical trees
