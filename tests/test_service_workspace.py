"""Service layer: Workspace facade, QueryService, cross-query obstacle cache.

The contract under test is twofold:

* **Equivalence** — warm-cache results (owners, split points, distances)
  are identical to the cold free functions on randomized scenes, for every
  query kind, with and without prefetch/overfetch;
* **Amortization** — a warm repeat of a query performs strictly fewer
  obstacle-tree logical reads than its cold first run (zero, once covered),
  and the cache counters in ``QueryStats`` / ``CacheStats`` report it.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import (
    ObstacleCache,
    QueryService,
    Workspace,
    coknn,
    coknn_single_tree,
    conn,
    obstructed_range,
    obstructed_semi_join,
    onn,
    trajectory_coknn,
)
from repro.core.conn_1t import build_unified_tree
from repro.geometry import Rect, Segment
from repro.obstacles import RectObstacle
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)


def make_workspace(points, obstacles, **kwargs):
    return Workspace.from_trees(build_point_tree(points),
                                build_obstacle_tree(obstacles), **kwargs)


def assert_same_result(got, want, qseg):
    ts = np.linspace(0.0, qseg.length, 41)
    for lv_got, lv_want in zip(got.levels, want.levels):
        assert same_values(lv_got.values(ts), lv_want.values(ts))
    assert got.tuples() == want.tuples()
    assert got.split_points() == pytest.approx(want.split_points(), abs=1e-6)


class TestWarmEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23, 91])
    @pytest.mark.parametrize("k", [1, 3])
    def test_warm_coknn_matches_cold(self, seed, k):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=12, n_obstacles=8)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        cold = coknn(dt, ot, q, k=k)
        ws = Workspace.from_trees(dt, ot)
        first = ws.coknn(q, k=k)
        warm = ws.coknn(q, k=k)
        assert_same_result(first, cold, q)
        assert_same_result(warm, cold, q)
        assert warm.stats.noe == cold.stats.noe

    def test_overfetch_gap_obstacles_still_reach_graph(self):
        """Regression: overfetched (cache-only) pops must reach the graph.

        A long wall makes the detour jump the retrieval radius far past the
        overfetched capsule in one round; the small blocker, cached in the
        overfetch gap of round 1, must still be inserted by the later miss
        round or the warm path routes straight through it.
        """
        from repro.obstacles import SegmentObstacle

        wall = SegmentObstacle(5, -200, 5, 30)
        gap_blocker = SegmentObstacle(0, 24, 4.5, 16)
        dt = build_point_tree([("p", (10.0, 0.0))])
        ot = build_obstacle_tree([wall, gap_blocker])
        cold, _ = onn(dt, ot, 0.0, 0.0, k=1)
        ws = Workspace.from_trees(dt, ot, overfetch=2.5)
        warm, _ = ws.onn(0.0, 0.0, k=1)
        assert warm[0][0] == cold[0][0]
        assert warm[0][1] == pytest.approx(cold[0][1], abs=1e-9)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_overfetch_and_prefetch_match_cold(self, seed):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=9)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        cold = conn(dt, ot, q)
        deep = Workspace.from_trees(dt, ot, overfetch=2.5)
        assert_same_result(deep.conn(q), cold, q)
        assert_same_result(deep.conn(q), cold, q)
        warmed = Workspace.from_trees(dt, ot)
        warmed.prefetch_all()
        assert_same_result(warmed.conn(q), cold, q)

    @pytest.mark.parametrize("seed", [5, 29])
    def test_warm_trajectory_matches_cold(self, seed):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        waypoints = [(5, 50), (45, 55), (60, 20), (95, 40)]
        cold = trajectory_coknn(dt, ot, waypoints, k=2)
        ws = Workspace.from_trees(dt, ot)
        ws.trajectory(waypoints, k=2)  # warm the cache along the polyline
        warm = ws.trajectory(waypoints, k=2)
        assert warm.tuples() == cold.tuples()
        for t in np.linspace(0.0, cold.length, 31):
            pairs_w = warm.knn_at(float(t))
            pairs_c = cold.knn_at(float(t))
            for (ow, dw), (oc, dc) in zip(pairs_w, pairs_c):
                assert (math.isinf(dw) and math.isinf(dc)) or \
                    dw == pytest.approx(dc, abs=1e-6)

    def test_warm_onn_and_range_match_cold(self, rng):
        points, obstacles = random_scene(rng, n_points=14, n_obstacles=7)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        cold_nbrs, _ = onn(dt, ot, 50.0, 50.0, k=4)
        cold_range, _ = obstructed_range(dt, ot, 50.0, 50.0, 45.0)
        ws = Workspace.from_trees(dt, ot)
        for _ in range(2):  # second round runs warm
            nbrs, _stats = ws.onn(50.0, 50.0, k=4)
            assert [p for p, _ in nbrs] == [p for p, _ in cold_nbrs]
            assert [d for _, d in nbrs] == pytest.approx(
                [d for _, d in cold_nbrs], abs=1e-6)
            matches, _stats = ws.range(50.0, 50.0, 45.0)
            assert [p for p, _ in matches] == [p for p, _ in cold_range]
            assert [d for _, d in matches] == pytest.approx(
                [d for _, d in cold_range], abs=1e-6)

    def test_semi_join_with_shared_cache_matches_cold(self, rng):
        points_a, obstacles = random_scene(rng, n_points=6, n_obstacles=5)
        points_b = [(100 + i, (rng.uniform(0, 100), rng.uniform(0, 100)))
                    for i in range(5)]
        ta = build_point_tree(points_a)
        tb = build_point_tree(points_b)
        ot = build_obstacle_tree(obstacles)
        cold_rows, _ = obstructed_semi_join(ta, tb, ot)
        ws = Workspace.from_trees(ta, ot)
        ws.prefetch_all()
        rows, _ = ws.service.semi_join(ta, tb)
        assert [(a, b) for a, b, _ in rows] == \
            [(a, b) for a, b, _ in cold_rows]
        assert [d for _, _, d in rows] == pytest.approx(
            [d for _, _, d in cold_rows], abs=1e-6)

    @pytest.mark.parametrize("seed", [11, 41])
    def test_single_tree_workspace_matches_free_function(self, seed):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        tree = build_unified_tree(points, obstacles, page_size=256)
        q = random_query(rng)
        cold = coknn_single_tree(tree, q, k=2)
        ws = Workspace.from_unified(tree)
        warm = ws.coknn(q, k=2)
        assert_same_result(warm, cold, q)
        assert len(ws.cache) == warm.stats.noe  # obstacles harvested


class TestWarmCacheSavings:
    def test_second_query_reads_strictly_less(self, rng):
        points, obstacles = random_scene(rng, n_points=15, n_obstacles=10)
        ws = make_workspace(points, obstacles)
        q = random_query(rng)
        tracker = ws.obstacle_tree.tracker
        before = tracker.stats.snapshot()
        first = ws.conn(q)
        mid = tracker.stats.snapshot()
        second = ws.conn(q)
        after = tracker.stats.snapshot()
        cold_reads = mid.delta(before).logical_reads
        warm_reads = after.delta(mid).logical_reads
        assert cold_reads > 0
        assert warm_reads < cold_reads  # strictly fewer on the warm repeat
        assert warm_reads == 0          # fully covered: no tree access at all
        assert first.stats.obstacle_reads == cold_reads
        assert second.stats.obstacle_reads == 0
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits > 0
        assert second.stats.cache_served == second.stats.noe

    def test_prefetch_makes_first_query_readless(self, rng):
        points, obstacles = random_scene(rng, n_points=12, n_obstacles=8)
        ws = make_workspace(points, obstacles)
        prefetched = ws.prefetch(Rect(0, 0, 100, 100), margin=1e6)
        assert prefetched == len(obstacles)
        stats = ws.cache_stats
        assert stats.prefetch_calls == 1
        assert stats.prefetched == prefetched
        res = ws.conn(random_query(rng))
        assert res.stats.obstacle_reads == 0
        assert res.stats.cache_misses == 0

    def test_batch_amortizes_across_queries(self, rng):
        points, obstacles = random_scene(rng, n_points=12, n_obstacles=8)
        ws = make_workspace(points, obstacles, overfetch=2.0)
        q = random_query(rng)
        queries = [q] * 4
        results = ws.batch(queries, k=2)
        reads = [r.stats.obstacle_reads for r in results]
        assert reads[0] > 0 or all(r == 0 for r in reads)
        assert all(r == 0 for r in reads[1:])
        assert ws.cache_stats.hit_rate > 0.0

    def test_cache_stats_accumulate(self):
        points = [(0, (10.0, 10.0)), (1, (90.0, 10.0))]
        obstacles = [RectObstacle(40, 0, 60, 30)]
        ws = make_workspace(points, obstacles)
        q = Segment(0, 50, 100, 50)
        ws.conn(q)
        ws.conn(q)
        stats = ws.cache_stats
        assert stats.misses > 0 and stats.hits > 0
        assert stats.inserted == len(obstacles)
        assert stats.served > 0
        assert 0.0 < stats.hit_rate < 1.0


class TestObstacleCacheUnit:
    def test_coverage_capsule_containment(self):
        tree = build_obstacle_tree([RectObstacle(40, 40, 60, 60)])
        cache = ObstacleCache(tree)
        spine = Segment(0, 0, 100, 0)
        cache.record_coverage(spine, 50.0)
        assert cache.covered(Segment(10, 10, 90, 10), 30.0)
        assert not cache.covered(Segment(10, 10, 90, 10), 45.0)
        assert not cache.covered(Segment(0, 60, 100, 60), 30.0)
        assert cache.coverage_regions == 1

    def test_contained_capsules_are_absorbed(self):
        tree = build_obstacle_tree([])
        cache = ObstacleCache(tree)
        spine = Segment(0, 0, 100, 0)
        cache.record_coverage(spine, 10.0)
        cache.record_coverage(spine, 50.0)   # absorbs the smaller capsule
        cache.record_coverage(spine, 20.0)   # already covered: not recorded
        assert cache.coverage_regions == 1
        assert cache.covered(spine, 49.0)

    def test_infinite_capsule_covers_everything(self):
        obstacles = [RectObstacle(10 * i, 10, 10 * i + 5, 20)
                     for i in range(5)]
        cache = ObstacleCache(build_obstacle_tree(obstacles))
        assert cache.prefetch_all() == len(obstacles)
        assert cache.covered(Segment(-1e7, 0, 1e7, 1e5), math.inf)
        assert len(cache) == len(obstacles)

    def test_overfetch_below_one_rejected(self):
        with pytest.raises(ValueError):
            ObstacleCache(build_obstacle_tree([]), overfetch=0.5)


class TestWorkspaceFacade:
    def test_layout_validation(self, rng):
        points, obstacles = random_scene(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        ut = build_unified_tree(points, obstacles)
        with pytest.raises(ValueError):
            Workspace(data_tree=dt)
        with pytest.raises(ValueError):
            Workspace(data_tree=dt, obstacle_tree=ot, unified_tree=ut)
        with pytest.raises(ValueError):
            Workspace.from_points(points, obstacles, layout="3T")
        assert Workspace.from_trees(dt, ot).layout == "2T"
        assert Workspace.from_unified(ut).layout == "1T"

    def test_degenerate_query_rejected(self, rng):
        points, obstacles = random_scene(rng)
        ws = make_workspace(points, obstacles)
        with pytest.raises(ValueError):
            ws.conn(Segment(5, 5, 5, 5))
        with pytest.raises(ValueError):
            ws.onn(5, 5, k=0)
        with pytest.raises(ValueError):
            ws.range(5, 5, -1.0)
        with pytest.raises(ValueError):
            ws.trajectory([(1, 1)])

    def test_joins_require_2t(self, rng):
        points, obstacles = random_scene(rng)
        ws = Workspace.from_unified(build_unified_tree(points, obstacles))
        dt = build_point_tree(points)
        with pytest.raises(ValueError):
            ws.service.semi_join(dt, dt)

    def test_service_is_importable_and_bound(self, rng):
        points, obstacles = random_scene(rng)
        ws = make_workspace(points, obstacles)
        assert isinstance(ws.service, QueryService)
        assert ws.service is ws.service  # stable instance

    def test_onn_on_single_tree_layout(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=5)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        cold_nbrs, _ = onn(dt, ot, 40.0, 60.0, k=3)
        ws = Workspace.from_unified(build_unified_tree(points, obstacles))
        nbrs, stats = ws.onn(40.0, 60.0, k=3)
        assert [p for p, _ in nbrs] == [p for p, _ in cold_nbrs]
        assert [d for _, d in nbrs] == pytest.approx(
            [d for _, d in cold_nbrs], abs=1e-6)
        assert stats.npe > 0
