"""Convex polygon obstacles end to end (the paper's footnote-1 generality)."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core import conn, coknn
from repro.baselines import naive_conn
from repro.geometry import IntervalSet, Segment
from repro.geometry.vectorized import crosses_convex_polygon
from repro.obstacles import (
    ObstacleSet,
    PolygonObstacle,
    RectObstacle,
    obstructed_distance,
    obstructed_path,
    visible_region,
    visible_region_scalar,
)
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    first_mismatch,
    random_query,
    random_scene,
    same_values,
)


def random_convex_polygon(rng, cx, cy, radius, n_vertices=None):
    """A random convex polygon: well-separated points on a circle."""
    n = n_vertices or rng.randint(3, 7)
    while True:
        angles = sorted(rng.uniform(0, 2 * math.pi) for _ in range(n))
        gaps = [b - a for a, b in zip(angles, angles[1:])]
        gaps.append(2 * math.pi - (angles[-1] - angles[0]))
        if min(gaps) > 0.25:  # no near-duplicate vertices
            break
    return PolygonObstacle([
        (cx + radius * math.cos(a), cy + radius * math.sin(a))
        for a in angles
    ])


class TestConstruction:
    def test_triangle(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert len(tri.points) == 3
        assert tri.mbr().xhi == 4.0

    def test_clockwise_input_normalized(self):
        cw = PolygonObstacle([(0, 0), (2, 3), (4, 0)])
        ccw = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert set(cw.points) == set(ccw.points)
        # Both must classify interior points identically.
        assert cw.contains_interior(2, 1) and ccw.contains_interior(2, 1)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            PolygonObstacle([(0, 0), (1, 1)])

    def test_nonconvex_rejected(self):
        with pytest.raises(ValueError):
            PolygonObstacle([(0, 0), (4, 0), (4, 4), (2, 1), (0, 4)])

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            PolygonObstacle([(0, 0), (1, 1), (2, 2)])

    def test_contains_interior(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert tri.contains_interior(2, 1)
        assert not tri.contains_interior(2, 0)  # on edge
        assert not tri.contains_interior(9, 9)


class TestBlocking:
    def test_through_interior_blocks(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert tri.blocks(-1, 1, 5, 1)

    def test_miss_does_not_block(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert not tri.blocks(-1, 5, 5, 5)

    def test_edge_graze_does_not_block(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert not tri.blocks(-2, 0, 6, 0)

    def test_vertex_touch_does_not_block(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        assert not tri.blocks(2, 3, 2, 8)

    def test_chord_between_vertices_blocks(self):
        square = PolygonObstacle([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert square.blocks(0, 0, 4, 4)

    def test_matches_equivalent_rect(self):
        rng = random.Random(5)
        square = PolygonObstacle([(10, 10), (20, 10), (20, 18), (10, 18)])
        rect = RectObstacle(10, 10, 20, 18)
        for _ in range(200):
            a = (rng.uniform(0, 30), rng.uniform(0, 30))
            b = (rng.uniform(0, 30), rng.uniform(0, 30))
            assert square.blocks(*a, *b) == rect.blocks(*a, *b), (a, b)

    def test_vectorized_kernel_shapes(self):
        tri = PolygonObstacle([(0, 0), (4, 0), (2, 3)])
        bx = np.array([5.0, 5.0, 2.0])
        by = np.array([1.0, 5.0, 8.0])
        out = crosses_convex_polygon(-1, 1, bx, by, tri.as_array())
        assert out.tolist() == [True, False, False]


class TestShadowsAndVisibility:
    def test_shadow_blocks_middle(self):
        q = Segment(0, 0, 10, 0)
        tri = PolygonObstacle([(4, 1), (6, 1), (5, 2)])
        oset = ObstacleSet([tri])
        vr = visible_region(5, 3, q, oset)
        assert not vr.contains(5.0)
        assert vr.contains(0.5) and vr.contains(9.5)

    def test_scalar_vectorized_agree(self):
        rng = random.Random(6)
        for _ in range(8):
            poly = random_convex_polygon(rng, rng.uniform(20, 60),
                                         rng.uniform(20, 60), 10)
            oset = ObstacleSet([poly])
            q = Segment(0, 10, 80, 15)
            vx, vy = rng.uniform(0, 80), rng.uniform(0, 80)
            if poly.contains_interior(vx, vy):
                continue
            assert (visible_region(vx, vy, q, oset) ==
                    visible_region_scalar(vx, vy, q, oset))

    def test_visible_region_vs_sampling(self):
        rng = random.Random(7)
        polys = [random_convex_polygon(rng, rng.uniform(10, 70),
                                       rng.uniform(10, 70), 8)
                 for _ in range(4)]
        oset = ObstacleSet(polys)
        q = Segment(0, 40, 80, 42)
        vx, vy = 40.0, 75.0
        vr = visible_region(vx, vy, q, oset)
        bounds = vr.boundaries()
        for t in np.linspace(0, q.length, 160):
            if bounds and min(abs(t - b) for b in bounds) < q.length / 200:
                continue
            p = q.point_at(float(t))
            assert vr.contains(float(t)) == (not oset.blocked(vx, vy, p.x, p.y))


class TestDistancesAndQueries:
    def test_path_bends_at_polygon_vertices(self):
        hexa = PolygonObstacle([(30, 20), (50, 15), (65, 25), (60, 45),
                                (40, 50), (28, 35)])
        d, path = obstructed_path((10, 30), (80, 32), [hexa])
        assert d > math.dist((10, 30), (80, 32))
        vertex_set = {(p.x, p.y) for p in hexa.points}
        for bend in path[1:-1]:
            assert (bend.x, bend.y) in vertex_set

    def test_polygon_vs_equivalent_rect_distance(self):
        rng = random.Random(8)
        square = PolygonObstacle([(30, 30), (60, 30), (60, 50), (30, 50)])
        rect = RectObstacle(30, 30, 60, 50)
        for _ in range(10):
            a = (rng.uniform(0, 90), rng.uniform(0, 90))
            b = (rng.uniform(0, 90), rng.uniform(0, 90))
            if rect.rect.contains_point_open(*a) or \
                    rect.rect.contains_point_open(*b):
                continue
            d1 = obstructed_distance(a, b, [square])
            d2 = obstructed_distance(a, b, [rect])
            assert d1 == pytest.approx(d2, abs=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_conn_with_polygons_matches_oracle(self, seed):
        rng = random.Random(9500 + seed)
        polys = [random_convex_polygon(rng, rng.uniform(10, 90),
                                       rng.uniform(10, 90),
                                       rng.uniform(4, 12))
                 for _ in range(5)]
        points = []
        while len(points) < 10:
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            if not any(p.contains_interior(x, y) for p in polys):
                points.append((len(points), (x, y)))
        q = random_query(rng)
        res = conn(build_point_tree(points), build_obstacle_tree(polys), q)
        ts = np.linspace(0, q.length, 101)
        _owners, want = naive_conn(points, polys, q, ts)
        got = res.envelope.values(ts)
        assert same_values(got, want), first_mismatch(got, want, ts)

    def test_mixed_obstacle_kinds_coknn(self, rng):
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=4)
        obstacles.append(PolygonObstacle([(20, 20), (35, 18), (30, 34)]))
        q = random_query(rng)
        res = coknn(build_point_tree(points), build_obstacle_tree(obstacles),
                    q, k=2)
        ts = np.linspace(0, q.length, 41)
        from repro.baselines import naive_coknn

        want = naive_coknn(points, obstacles, q, ts, 2)
        for j, t in enumerate(ts):
            got = res.knn_at(float(t))
            for lvl in range(2):
                wd = want[j][lvl][1] if lvl < len(want[j]) else math.inf
                gd = got[lvl][1]
                assert (abs(gd - wd) < 1e-5) or \
                    (math.isinf(gd) and math.isinf(wd))
