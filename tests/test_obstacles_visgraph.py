"""Local visibility graph: structure, incremental growth, Dijkstra vs networkx."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.geometry import Segment
from repro.obstacles import (
    LocalVisibilityGraph,
    ObstacleSet,
    RectObstacle,
    SegmentObstacle,
    obstructed_distance,
)


def make_vg(obstacles, q=Segment(0, 50, 100, 50)):
    vg = LocalVisibilityGraph(q)
    vg.add_obstacles(obstacles)
    return vg


def networkx_reference(vg: LocalVisibilityGraph):
    """Materialize the graph fully and mirror it in networkx."""
    g = nx.Graph()
    for node in range(len(vg._xy)):
        if vg._alive[node]:
            g.add_node(node)
            for nbr, w in vg.neighbors(node).items():
                g.add_edge(node, nbr, weight=w)
    return g


class TestStructure:
    def test_initial_graph_has_endpoints(self):
        vg = LocalVisibilityGraph(Segment(0, 0, 10, 0))
        assert vg.num_nodes == 2
        assert vg.svg_size == 2
        # With no obstacles S sees E directly.
        assert vg.neighbors(vg.S)[vg.E] == pytest.approx(10.0)

    def test_obstacle_vertices_become_nodes(self):
        vg = make_vg([RectObstacle(40, 40, 60, 60)])
        assert vg.svg_size == 6  # S, E + 4 corners

    def test_segment_obstacle_two_vertices(self):
        vg = make_vg([SegmentObstacle(40, 40, 60, 60)])
        assert vg.svg_size == 4

    def test_rect_blocks_direct_edge(self):
        q = Segment(0, 50, 100, 50)
        vg = make_vg([RectObstacle(45, 40, 55, 60)], q)
        assert vg.E not in vg.neighbors(vg.S)

    def test_rect_boundary_edges_exist(self):
        vg = make_vg([RectObstacle(40, 40, 60, 60)])
        # Adjacent corners of a rect are mutually visible (run along edge);
        # diagonal corners are blocked by the interior.
        corners = [i for i in range(2, 6)]
        xy = {i: vg.node_point(i) for i in corners}
        for i in corners:
            nbrs = vg.neighbors(i)
            for j in corners:
                if i == j:
                    continue
                diag = (xy[i].x != xy[j].x) and (xy[i].y != xy[j].y)
                assert (j not in nbrs) == diag

    def test_transient_point_add_remove(self):
        vg = make_vg([RectObstacle(40, 40, 60, 60)])
        before = vg.num_nodes
        p = vg.add_point(50, 10)
        assert vg.num_nodes == before + 1
        assert vg.svg_size == before  # transient points don't count in |SVG|
        assert vg.neighbors(p)  # sees something
        vg.remove_point(p)
        assert vg.num_nodes == before
        # no dangling references to p in cached rows
        for node in range(len(vg._xy)):
            if vg._alive[node]:
                assert p not in vg.neighbors(node)

    def test_remove_permanent_node_rejected(self):
        vg = make_vg([])
        with pytest.raises(ValueError):
            vg.remove_point(vg.S)

    def test_seeded_constructor_equals_add_obstacles(self):
        q = Segment(0, 50, 100, 50)
        obstacles = [RectObstacle(30, 40, 40, 60),
                     SegmentObstacle(60, 30, 70, 70)]
        seeded = LocalVisibilityGraph(q, obstacles=obstacles)
        grown = make_vg(obstacles, q)
        assert seeded.svg_size == grown.svg_size
        da = seeded.shortest_distances(seeded.S, [seeded.E])[seeded.E]
        db = grown.shortest_distances(grown.S, [grown.E])[grown.E]
        assert da == pytest.approx(db)

    def test_duplicate_obstacles_skipped(self):
        obstacles = [RectObstacle(30, 40, 40, 60)]
        vg = make_vg(obstacles)
        assert vg.add_obstacles(obstacles) == 0  # re-offer is a no-op
        assert vg.add_obstacles([SegmentObstacle(60, 30, 70, 70),
                                 obstacles[0]]) == 1
        assert vg.svg_size == 2 + 4 + 2

    def test_incremental_equals_batch(self):
        """Adding obstacles one by one == adding them all at once."""
        rng = random.Random(3)
        obs = []
        for _ in range(8):
            x, y = rng.uniform(0, 90), rng.uniform(0, 90)
            obs.append(RectObstacle(x, y, x + rng.uniform(2, 10),
                                    y + rng.uniform(2, 10)))
        q = Segment(0, 50, 100, 50)
        vg_batch = make_vg(obs, q)
        vg_inc = LocalVisibilityGraph(q)
        for o in obs:
            vg_inc.add_obstacles([o])
        g1 = networkx_reference(vg_batch)
        g2 = networkx_reference(vg_inc)
        assert set(g1.nodes) == set(g2.nodes)
        assert set(map(frozenset, g1.edges)) == set(map(frozenset, g2.edges))

    def test_edge_invalidated_by_later_obstacle(self):
        q = Segment(0, 50, 100, 50)
        vg = LocalVisibilityGraph(q)
        assert vg.E in vg.neighbors(vg.S)
        vg.add_obstacles([RectObstacle(45, 40, 55, 60)])
        assert vg.E not in vg.neighbors(vg.S)


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(6))
    def test_distances_match_networkx(self, seed):
        rng = random.Random(seed)
        obs = []
        for _ in range(7):
            x, y = rng.uniform(0, 90), rng.uniform(0, 90)
            if rng.random() < 0.3:
                obs.append(SegmentObstacle(x, y, x + rng.uniform(-15, 15),
                                           y + rng.uniform(-15, 15)))
            else:
                obs.append(RectObstacle(x, y, x + rng.uniform(2, 12),
                                        y + rng.uniform(2, 12)))
        vg = make_vg(obs)
        g = networkx_reference(vg)
        lengths = nx.single_source_dijkstra_path_length(g, vg.S)
        got = {}
        for d, node, _pred in vg.dijkstra_order(vg.S):
            got[node] = d
        for node, want in lengths.items():
            assert math.isclose(got[node], want, abs_tol=1e-9)
        # Unreached nodes are exactly those networkx also cannot reach.
        assert set(got) == set(lengths)

    def test_settled_order_ascending(self):
        vg = make_vg([RectObstacle(30, 30, 70, 70)])
        dists = [d for d, _n, _p in vg.dijkstra_order(vg.S)]
        assert dists == sorted(dists)

    def test_predecessors_form_shortest_paths(self):
        vg = make_vg([RectObstacle(30, 40, 70, 60)])
        dist = {}
        pred = {}
        for d, node, p in vg.dijkstra_order(vg.S):
            dist[node] = d
            pred[node] = p
        for node, p in pred.items():
            if p is not None:
                w = vg.neighbors(p)[node]
                assert math.isclose(dist[node], dist[p] + w, abs_tol=1e-9)

    def test_shortest_path_endpoints(self):
        q = Segment(0, 50, 100, 50)
        vg = make_vg([RectObstacle(45, 30, 55, 70)], q)
        d, path = vg.shortest_path(vg.S, vg.E)
        assert path[0] == vg.S and path[-1] == vg.E
        assert d > 100.0  # forced around the block
        ref = obstructed_distance((0, 50), (100, 50),
                                  [RectObstacle(45, 30, 55, 70)])
        assert math.isclose(d, ref, abs_tol=1e-9)

    def test_unreachable_distance_inf(self):
        q = Segment(0, 50, 100, 50)
        walls = [RectObstacle(40, -10, 45, 110),
                 RectObstacle(55, -10, 60, 110),
                 RectObstacle(40, -10, 60, -5),
                 RectObstacle(40, 105, 60, 110)]
        vg = make_vg(walls, q)
        p = vg.add_point(50, 50)  # inside the walled corridor
        d = vg.shortest_distances(p, [vg.S])[vg.S]
        assert math.isinf(d)

    def test_shortest_distances_early_stop(self):
        vg = make_vg([RectObstacle(30, 40, 70, 60)])
        out = vg.shortest_distances(vg.S, [vg.E])
        assert set(out) == {vg.E}
        assert math.isfinite(out[vg.E])


class TestVisibleRegionCache:
    def test_cache_narrows_with_new_obstacles(self):
        q = Segment(0, 0, 100, 0)
        vg = LocalVisibilityGraph(q)
        p = vg.add_point(50, 30)
        vr0 = vg.visible_region_of(p)
        assert vr0.measure() == pytest.approx(100.0)
        vg.add_obstacles([RectObstacle(45, 5, 55, 10)])
        vr1 = vg.visible_region_of(p)
        assert vr1.measure() < 100.0
        # Incremental narrowing equals recomputation from scratch.
        from repro.obstacles import visible_region

        fresh = visible_region(50, 30, q, vg.obstacles)
        assert vr1 == fresh

    def test_distinct_nodes_cached_independently(self):
        q = Segment(0, 0, 100, 0)
        vg = make_vg([RectObstacle(40, 10, 60, 20)], q)
        a = vg.add_point(50, 30)
        b = vg.add_point(50, 5)
        vra = vg.visible_region_of(a)
        vrb = vg.visible_region_of(b)
        assert vra.measure() < vrb.measure()  # a is behind the obstacle
