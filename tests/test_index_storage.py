"""R*-tree disk persistence: round trips, format guarantees, error cases."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core import conn
from repro.geometry import Rect, Segment
from repro.index import RStarTree
from repro.index.storage import load_tree, save_tree
from repro.obstacles import PolygonObstacle, RectObstacle, SegmentObstacle
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)


class TestRoundTrip:
    def test_point_tree_round_trip(self, rng, tmp_path):
        tree = RStarTree(page_size=512)
        pts = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
               for i in range(300)]
        for i, (x, y) in pts:
            tree.insert_point(i, x, y)
        path = tmp_path / "points.rtree"
        written = save_tree(tree, path)
        assert written >= (tree.num_pages + 1) * 512
        assert written % 512 == 0
        loaded = load_tree(path)
        loaded.check_invariants()
        assert loaded.size == 300
        probe = Rect(20, 20, 60, 70)
        assert sorted(loaded.range_search(probe)) == \
            sorted(tree.range_search(probe))

    def test_structure_preserved_exactly(self, rng, tmp_path):
        tree = RStarTree(page_size=512)
        for i in range(150):
            tree.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        path = tmp_path / "t.rtree"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.height == tree.height
        assert loaded.num_pages == tree.num_pages
        assert loaded.root.page_id == tree.root.page_id
        assert loaded.max_entries == tree.max_entries

    def test_obstacle_payloads_round_trip(self, tmp_path):
        obstacles = [
            RectObstacle(1, 2, 3, 4),
            SegmentObstacle(5, 6, 7, 8),
            PolygonObstacle([(10, 10), (14, 10), (12, 13)]),
        ]
        tree = build_obstacle_tree(obstacles, page_size=512)
        path = tmp_path / "obs.rtree"
        save_tree(tree, path)
        loaded = load_tree(path)
        payloads = {type(p).__name__: p for p, _r in loaded.items()}
        assert payloads["RectObstacle"].rect == Rect(1, 2, 3, 4)
        assert payloads["SegmentObstacle"].seg.length == pytest.approx(
            obstacles[1].seg.length)
        assert len(payloads["PolygonObstacle"].points) == 3
        # Oids survive, so payload equality works across the round trip.
        assert payloads["RectObstacle"] == obstacles[0]

    def test_string_payloads(self, tmp_path):
        tree = RStarTree(page_size=512)
        tree.insert_point("alpha", 1, 1)
        tree.insert_point("beta", 2, 2)
        path = tmp_path / "s.rtree"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert sorted(p for p, _ in loaded.items()) == ["alpha", "beta"]

    def test_empty_tree(self, tmp_path):
        tree = RStarTree(page_size=512)
        path = tmp_path / "empty.rtree"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.size == 0
        assert loaded.range_search(Rect(0, 0, 10, 10)) == []

    def test_loaded_tree_supports_inserts(self, rng, tmp_path):
        tree = RStarTree(page_size=512)
        for i in range(100):
            tree.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        path = tmp_path / "grow.rtree"
        save_tree(tree, path)
        loaded = load_tree(path)
        for i in range(100, 160):
            loaded.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        loaded.check_invariants()
        assert loaded.size == 160

    def test_conn_on_loaded_trees(self, rng, tmp_path):
        points, obstacles = random_scene(rng)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        want = conn(dt, ot, q)
        save_tree(dt, tmp_path / "p.rtree")
        save_tree(ot, tmp_path / "o.rtree")
        got = conn(load_tree(tmp_path / "p.rtree"),
                   load_tree(tmp_path / "o.rtree"), q)
        ts = np.linspace(0, q.length, 101)
        assert same_values(got.envelope.values(ts), want.envelope.values(ts))


class TestFormat:
    def test_page_alignment(self, rng, tmp_path):
        tree = RStarTree(page_size=1024)
        for i in range(200):
            tree.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
        path = tmp_path / "a.rtree"
        save_tree(tree, path)
        assert path.stat().st_size % 1024 == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rtree"
        path.write_bytes(b"NOPE" + b"\0" * 4096)
        with pytest.raises(ValueError, match="not an R\\*-tree"):
            load_tree(path)

    def test_unsupported_version_rejected(self, tmp_path):
        header = struct.pack("<4sIIIIQQQ", b"RPRO", 99, 4096, 10, 4, 0, 0, 0)
        path = tmp_path / "v99.rtree"
        path.write_bytes(header.ljust(4096, b"\0"))
        with pytest.raises(ValueError, match="version"):
            load_tree(path)

    def test_unpersistable_payload_raises(self, tmp_path):
        tree = RStarTree(page_size=512)
        tree.insert_point(object(), 1, 1)  # not JSON-serializable
        with pytest.raises(TypeError, match="not persistable"):
            save_tree(tree, tmp_path / "bad.rtree")

    def test_oversized_payload_spills_to_continuation_pages(self, tmp_path):
        tree = RStarTree(page_size=512)
        tree.insert_point("x" * 4000, 1, 1)
        path = tmp_path / "big.rtree"
        written = save_tree(tree, path)
        assert written % 512 == 0
        assert written > 2 * 512  # header + >1 node pages
        loaded = load_tree(path)
        assert [p for p, _r in loaded.items()] == ["x" * 4000]
