"""The declarative query API: typed descriptions, normalization, exports."""

from __future__ import annotations

import inspect
import random
import typing

import pytest

import repro
from repro import (
    ClosestPairQuery,
    CoknnQuery,
    ConnQuery,
    EDistanceJoinQuery,
    OnnQuery,
    Point,
    Query,
    QueryResult,
    RangeQuery,
    RectObstacle,
    RStarTree,
    Segment,
    SemiJoinQuery,
    TrajectoryQuery,
    Workspace,
)


def small_scene(seed: int = 3, layout: str = "2T") -> Workspace:
    rng = random.Random(seed)
    points = [(i, (rng.uniform(0, 100), rng.uniform(0, 100)))
              for i in range(40)]
    obstacles = [RectObstacle(x, y, x + 7, y + 4)
                 for x, y in ((rng.uniform(0, 90), rng.uniform(0, 90))
                              for _ in range(12))]
    return Workspace.from_points(points, obstacles, layout=layout)


def other_tree(seed: int = 5, n: int = 6) -> RStarTree:
    rng = random.Random(seed)
    tree = RStarTree()
    for i in range(n):
        tree.insert_point(f"b{i}", rng.uniform(0, 100), rng.uniform(0, 100))
    return tree


class TestDescriptions:
    def test_frozen_and_validated(self):
        q = CoknnQuery(Segment(0, 0, 10, 0), knn=2, label="tagged")
        with pytest.raises(Exception):
            q.knn = 3  # frozen dataclass
        assert q.k == 2 and q.label == "tagged"
        with pytest.raises(ValueError):
            CoknnQuery(Segment(5, 5, 5, 5))  # degenerate
        with pytest.raises(ValueError):
            CoknnQuery(Segment(0, 0, 1, 0), knn=0)
        with pytest.raises(ValueError):
            ConnQuery(Segment(0, 0, 1, 0), knn=2)  # CONN is k = 1
        with pytest.raises(ValueError):
            OnnQuery((1, 2), knn=0)
        with pytest.raises(ValueError):
            RangeQuery((1, 2), -1.0)
        with pytest.raises(ValueError):
            TrajectoryQuery(((0, 0),))
        with pytest.raises(ValueError):
            TrajectoryQuery(((5, 5), (5, 5)))  # no leg of positive length
        with pytest.raises(ValueError):
            EDistanceJoinQuery(other_tree(), other_tree(), -2.0)

    def test_segment_and_point_coercion(self):
        assert CoknnQuery((0, 0, 10, 0)).segment == Segment(0, 0, 10, 0)
        assert OnnQuery((3, 4)).point == Point(3.0, 4.0)
        assert OnnQuery(Point(3, 4)) == OnnQuery((3, 4))
        assert RangeQuery(Point(1, 2), 5).radius == 5.0
        assert TrajectoryQuery([(0, 0), (1, 1)]).waypoints == \
            ((0.0, 0.0), (1.0, 1.0))

    def test_footprints(self):
        assert ConnQuery(Segment(2, 8, 10, 4)).footprint() == \
            repro.Rect(2, 4, 10, 8)
        fp = RangeQuery((5, 5), 3).footprint()
        assert (fp.xlo, fp.ylo, fp.xhi, fp.yhi) == (2, 2, 8, 8)
        assert TrajectoryQuery([(0, 0), (4, 9)]).footprint() == \
            repro.Rect(0, 0, 4, 9)
        assert SemiJoinQuery(other_tree(), other_tree()).footprint() is None

    def test_per_query_config_override(self):
        ws = small_scene()
        cfg = repro.ConnConfig.no_pruning()
        q = ConnQuery(Segment(0, 50, 100, 50), config=cfg)
        assert ws.plan(q).config == cfg
        assert ws.plan(ConnQuery(Segment(0, 50, 100, 50))).config == ws.config
        assert ws.execute(q).tuples() == \
            ws.conn(Segment(0, 50, 100, 50)).tuples()


class TestPointNormalization:
    """``onn``/``range`` accept bare floats, an (x, y) tuple, or a Point."""

    @pytest.mark.parametrize("layout", ["2T", "1T"])
    def test_workspace_onn_spellings(self, layout):
        ws = small_scene(layout=layout)
        base, _ = ws.onn(20.0, 30.0, k=3)
        assert ws.onn((20.0, 30.0), k=3)[0] == base
        assert ws.onn(Point(20.0, 30.0), k=3)[0] == base
        assert ws.service.onn((20.0, 30.0), k=3)[0] == base

    def test_workspace_range_spellings(self):
        ws = small_scene()
        base, _ = ws.range(20.0, 30.0, 25.0)
        assert ws.range((20.0, 30.0), 25.0)[0] == base
        assert ws.range(Point(20.0, 30.0), radius=25.0)[0] == base
        assert ws.service.range((20.0, 30.0), 25.0)[0] == base

    def test_free_function_spellings(self):
        ws = small_scene()
        dt, ot = ws.data_tree, ws.obstacle_tree
        base, _ = repro.onn(dt, ot, 20.0, 30.0, k=2)
        assert repro.onn(dt, ot, (20.0, 30.0), k=2)[0] == base
        rbase, _ = repro.obstructed_range(dt, ot, 20.0, 30.0, 25.0)
        assert repro.obstructed_range(dt, ot, (20.0, 30.0), 25.0)[0] == rbase
        assert repro.obstructed_range(dt, ot, Point(20.0, 30.0),
                                      radius=25.0)[0] == rbase

    def test_ambiguous_spellings_rejected(self):
        ws = small_scene()
        with pytest.raises(TypeError):
            ws.onn((20.0, 30.0), 3)  # k must be keyword with a point-like
        with pytest.raises(TypeError):
            ws.onn(20.0)  # missing y
        with pytest.raises(TypeError):
            ws.range(20.0, 30.0)  # missing radius


class TestResultProtocol:
    """Every ``execute`` result: ``.tuples()``, ``.stats``, ``.query``."""

    def test_all_eight_query_types(self):
        ws = small_scene()
        inner = other_tree()
        seg = Segment(10, 50, 90, 55)
        queries = [
            ConnQuery(seg),
            CoknnQuery(seg, knn=2),
            OnnQuery((20, 20), knn=2),
            RangeQuery((20, 20), 30.0),
            TrajectoryQuery([(0, 0), (50, 50), (90, 10)]),
            SemiJoinQuery(ws.data_tree, inner),
            EDistanceJoinQuery(ws.data_tree, inner, 15.0),
            ClosestPairQuery(ws.data_tree, inner),
        ]
        for q in queries:
            res = ws.execute(q)
            assert isinstance(res, QueryResult), q
            assert res.query is q
            assert isinstance(res.tuples(), list)
            assert res.stats is not None

    def test_sequence_behavior_of_wrapped_results(self):
        ws = small_scene()
        res = ws.execute(OnnQuery((20, 20), knn=3))
        assert len(res) == len(res.tuples()) == len(res.neighbors)
        assert list(res) == res.tuples()
        assert res[0] == res.tuples()[0]
        jres = ws.execute(SemiJoinQuery(ws.data_tree, other_tree()))
        assert jres.rows == jres.tuples()
        cres = ws.execute(ClosestPairQuery(ws.data_tree, other_tree()))
        assert cres.tuples() == ([cres.pair] if cres.pair else [])


class TestExports:
    QUERY_TYPES = [ConnQuery, CoknnQuery, OnnQuery, RangeQuery,
                   TrajectoryQuery, SemiJoinQuery, EDistanceJoinQuery,
                   ClosestPairQuery]

    def test_query_types_in_all(self):
        for cls in self.QUERY_TYPES + [Query, repro.QueryPlan,
                                       repro.PlannerOptions,
                                       repro.QueryResult,
                                       repro.NeighborsResult,
                                       repro.JoinResult,
                                       repro.ClosestPairResult,
                                       repro.TrajectoryResult]:
            assert cls.__name__ in repro.__all__
            assert getattr(repro, cls.__name__) is cls

    def test_every_workspace_return_type_importable(self):
        """Every public Workspace method's return type resolves at top level."""
        classes: set = set()

        def walk(tp):
            if tp is None:
                return
            for arg in typing.get_args(tp):
                walk(arg)
            if (inspect.isclass(tp) and not typing.get_args(tp)
                    and getattr(tp, "__module__", "").startswith("repro")):
                classes.add(tp)

        members = inspect.getmembers(Workspace, predicate=inspect.isfunction)
        for name, fn in members:
            if name.startswith("_"):
                continue
            walk(typing.get_type_hints(fn).get("return"))
        for name, prop in inspect.getmembers(
                Workspace, lambda m: isinstance(m, property)):
            if name.startswith("_"):
                continue
            walk(typing.get_type_hints(prop.fget).get("return"))
        assert {"ConnResult", "TrajectoryResult", "QueryPlan", "QueryStats",
                "CacheStats", "QueryService", "QueryResult"} <= \
            {c.__name__ for c in classes}
        for cls in classes:
            assert getattr(repro, cls.__name__, None) is cls, \
                f"repro.{cls.__name__} is not exported from the top level"
