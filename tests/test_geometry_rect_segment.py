"""Tests for Rect and Segment geometry, including the mindist lower bounds."""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect, Segment

coord = st.floats(min_value=-500, max_value=500, allow_nan=False,
                  allow_infinity=False)


@st.composite
def rects(draw) -> Rect:
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def segments(draw) -> Segment:
    return Segment(draw(coord), draw(coord), draw(coord), draw(coord))


class TestRectBasics:
    def test_from_points(self):
        r = Rect.from_points([(1, 5), (4, 2), (3, 3)])
        assert r == Rect(1, 2, 4, 5)

    def test_point_rect_is_degenerate(self):
        r = Rect.point(2, 3)
        assert r.area() == 0.0 and r.contains_point(2, 3)

    def test_area_margin(self):
        r = Rect(0, 0, 4, 2)
        assert r.area() == 8.0 and r.margin() == 6.0

    def test_corners_ccw(self):
        c = Rect(0, 0, 1, 2).corners()
        assert c == (Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2))

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_intersection_area(self):
        assert Rect(0, 0, 2, 2).intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(2, 2, 3, 3)) == 0.0

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 2, 2))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(5, 5, 11, 6))

    def test_enlargement(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(0, 0, 2, 1)) == 1.0

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(1) == Rect(0, 0, 3, 3)


class TestRectDistances:
    def test_mindist_point_inside_zero(self):
        assert Rect(0, 0, 2, 2).mindist_point(1, 1) == 0.0

    def test_mindist_point_outside(self):
        assert Rect(0, 0, 2, 2).mindist_point(5, 6) == 5.0

    def test_maxdist_point(self):
        assert Rect(0, 0, 3, 4).maxdist_point(0, 0) == 5.0

    def test_mindist_rect_overlapping_zero(self):
        assert Rect(0, 0, 2, 2).mindist_rect(Rect(1, 1, 3, 3)) == 0.0

    def test_mindist_rect_diagonal(self):
        assert Rect(0, 0, 1, 1).mindist_rect(Rect(4, 5, 6, 7)) == 5.0

    def test_mindist_segment_crossing_zero(self):
        assert Rect(0, 0, 2, 2).mindist_segment(-1, 1, 3, 1) == 0.0

    def test_mindist_segment_parallel(self):
        assert math.isclose(Rect(0, 0, 2, 2).mindist_segment(0, 5, 2, 5), 3.0)

    def test_mindist_segment_endpoint_inside_zero(self):
        assert Rect(0, 0, 2, 2).mindist_segment(1, 1, 9, 9) == 0.0

    @given(rects(), coord, coord, coord, coord)
    def test_mindist_segment_lower_bounds_samples(self, r, ax, ay, bx, by):
        """mindist(rect, seg) must lower-bound the distance from any sample
        of the segment to the rect — the property the R-tree scan relies on."""
        if math.hypot(bx - ax, by - ay) < 1e-9:
            return
        md = r.mindist_segment(ax, ay, bx, by)
        for f in (0.0, 0.25, 0.5, 0.75, 1.0):
            px = ax + f * (bx - ax)
            py = ay + f * (by - ay)
            assert md <= r.mindist_point(px, py) + 1e-7


class TestSegment:
    def test_length(self):
        assert Segment(0, 0, 3, 4).length == 5.0

    def test_point_at_clamps(self):
        s = Segment(0, 0, 10, 0)
        assert s.point_at(-5) == Point(0, 0)
        assert s.point_at(99) == Point(10, 0)
        assert s.point_at(5) == Point(5, 0)

    def test_param_of_projection(self):
        s = Segment(0, 0, 10, 0)
        assert s.param_of(3, 7) == 3.0
        assert s.param_of(-2, 0) == -2.0

    def test_param_clamped(self):
        s = Segment(0, 0, 10, 0)
        assert s.param_clamped(-2, 0) == 0.0
        assert s.param_clamped(12, 0) == 10.0

    def test_dist_point(self):
        assert Segment(0, 0, 10, 0).dist_point(5, 3) == 3.0

    def test_direction_unit(self):
        d = Segment(0, 0, 3, 4).direction()
        assert math.isclose(d.norm(), 1.0)

    def test_degenerate_direction_raises(self):
        import pytest

        with pytest.raises(ZeroDivisionError):
            Segment(1, 1, 1, 1).direction()

    def test_line_intersection_param(self):
        s = Segment(0, 0, 10, 0)
        t = s.line_intersection_param(5, -1, 5, 1)
        assert t is not None and math.isclose(t, 5.0)

    def test_line_intersection_parallel_none(self):
        s = Segment(0, 0, 10, 0)
        assert s.line_intersection_param(0, 1, 10, 1) is None

    def test_reversed(self):
        assert Segment(1, 2, 3, 4).reversed() == Segment(3, 4, 1, 2)

    def test_bbox(self):
        assert Segment(3, 1, 0, 5).bbox() == (0, 1, 3, 5)

    def test_is_degenerate(self):
        assert Segment(1, 1, 1, 1).is_degenerate()
        assert not Segment(0, 0, 1, 0).is_degenerate()

    @given(segments(), st.floats(min_value=0, max_value=1))
    def test_point_at_on_segment(self, s, f):
        if s.is_degenerate():
            return
        p = s.point_at(f * s.length)
        assert s.dist_point(p.x, p.y) <= 1e-6

    @given(segments(), coord, coord)
    def test_param_clamped_minimizes_distance(self, s, px, py):
        if s.is_degenerate():
            return
        t = s.param_clamped(px, py)
        best = s.point_at(t)
        d_best = math.hypot(px - best.x, py - best.y)
        for f in (0.0, 0.33, 0.66, 1.0):
            other = s.point_at(f * s.length)
            assert d_best <= math.hypot(px - other.x, py - other.y) + 1e-6
