"""Surgical removal repair: byte-identity with drop-and-rebuild.

Contract under test:

* **Graph repair** — after any interleaving of obstacle inserts and
  removals, a surgically repaired graph holds exactly the adjacency
  (same neighbor sets, bitwise-equal weights), exactly the visible
  regions and exactly the shortest distances of a graph freshly built
  over the surviving obstacles;
* **Workspace answers** — the repair arm (``removal_repair=True``) and
  the drop-and-rebuild oracle answer every query of an insert/remove
  storm with float-identical tuples, while their counters prove which
  maintenance path ran;
* **Sharding** — removing a boundary obstacle replicated into several
  shards repairs every replica, and the sharded answers stay identical
  to the unsharded workspace's;
* **Slab clip** — ``_segment_hits_box`` (the filter that bounds the
  repair's retest set) is exact on axis-parallel, degenerate and
  clipped-span segments, and never prunes a segment the removed
  obstacle actually blocked.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConnQuery,
    PlannerOptions,
    RectObstacle,
    ShardedWorkspace,
    Workspace,
)
from repro.geometry import Segment
from repro.obstacles import LocalVisibilityGraph
from repro.obstacles.visgraph import _segment_hits_box
from repro.routing import RoutingConfig
from tests.test_bulk_materialize import mixed_scene

Q = Segment(0, 50, 100, 50)


def row_dict(g: LocalVisibilityGraph, v: int) -> dict:
    idx, w = g.row_arrays(v)
    return dict(zip(idx.tolist(), w.tolist()))


def assert_graphs_equivalent(repaired: LocalVisibilityGraph,
                             fresh: LocalVisibilityGraph) -> None:
    """Same alive permanent nodes, adjacency, regions and distances.

    Repair appends re-opened edges at the end of a surviving row while a
    fresh build emits candidates in ascending id order, so rows compare
    as mappings; the weights still go through the same ``math.hypot`` in
    both paths and must be bitwise equal.
    """
    repaired.build_all()
    fresh.build_all()
    perm = [(v, repaired._xy[v]) for v in repaired._alive_ids()
            if not repaired._transient[v]]
    fresh_xy = {fresh._xy[v]: v for v in fresh._alive_ids()
                if not fresh._transient[v]}
    assert sorted(xy for _v, xy in perm) == sorted(fresh_xy)
    remap = {v: fresh_xy[xy] for v, xy in perm}
    for v, _xy in perm:
        got = {remap[u]: w for u, w in row_dict(repaired, v).items()
               if u in remap}
        want = {u: w for u, w in row_dict(fresh, remap[v]).items()}
        assert got == want
        assert list(repaired.visible_region_of(v)) == \
            list(fresh.visible_region_of(remap[v]))
    d_rep = repaired.shortest_distances(repaired.S, (repaired.E,))
    d_new = fresh.shortest_distances(fresh.S, (fresh.E,))
    assert d_rep == d_new


class TestGraphRepair:
    def test_removal_restores_blocked_edge_exactly(self):
        blocker = RectObstacle(45, 40, 55, 60)
        g = LocalVisibilityGraph(Q)
        g.add_obstacles([blocker])
        assert g.E not in row_dict(g, g.S)
        retested = g.remove_obstacle(blocker)
        assert retested is not None and retested > 0
        clean = LocalVisibilityGraph(Q)
        assert row_dict(g, g.S)[g.E] == row_dict(clean, clean.S)[clean.E]
        assert g.removal_repairs == 1
        assert g.repair_retested_pairs == retested

    def test_remove_nonresident_is_none(self):
        g = LocalVisibilityGraph(Q)
        g.add_obstacles([RectObstacle(10, 10, 20, 20)])
        assert g.remove_obstacle(RectObstacle(70, 70, 80, 80)) is None
        assert g.removal_repairs == 0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_insert_remove_storm_equals_fresh_build(self, seed):
        rng = random.Random(seed)
        pool = mixed_scene(rng, 8)
        g = LocalVisibilityGraph(Q)
        resident: list = []
        for _step in range(12):
            if resident and rng.random() < 0.45:
                victim = resident.pop(rng.randrange(len(resident)))
                assert g.remove_obstacle(victim) is not None
            elif pool:
                o = pool.pop()
                g.add_obstacles([o])
                resident.append(o)
            if rng.random() < 0.3:
                g.build_all()   # interleave eager materialization
        fresh = LocalVisibilityGraph(Q)
        fresh.add_obstacles(resident)
        assert_graphs_equivalent(g, fresh)

    def test_repair_only_adds_visibility(self):
        rng = random.Random(21)
        obstacles = mixed_scene(rng, 9)
        g = LocalVisibilityGraph(Q)
        g.add_obstacles(obstacles)
        g.build_all()
        before = {v: set(row_dict(g, v)) for v in g._alive_ids()}
        victim = obstacles[4]
        dead = set(g._obstacle_nodes[victim])
        g.remove_obstacle(victim)
        for v in g._alive_ids():
            if v in before:
                assert before[v] - dead <= set(row_dict(g, v))


def storm_script(rng: random.Random, n_rounds: int):
    """(obstacle, query, query) insert/remove rounds near the corridor."""
    rounds = []
    for i in range(n_rounds):
        x = rng.uniform(15.0, 70.0)
        y = 50.0 + rng.uniform(-8.0, 6.0)
        o = RectObstacle(x, y, x + rng.uniform(2.0, 5.0),
                         y + rng.uniform(2.0, 5.0))
        qx = rng.uniform(0.0, 20.0)
        qy = 50.0 + rng.uniform(-3.0, 3.0)
        q = ConnQuery(Segment(qx, qy, qx + rng.uniform(30, 60), qy),
                      label=f"storm-{i}")
        rounds.append((o, q))
    return rounds


POINTS = [(i, (11.0 * i + 3.0, 47.0 + (i % 3))) for i in range(9)]


def run_storm(routing: RoutingConfig, rounds) -> tuple:
    ws = Workspace.from_points(POINTS, [RectObstacle(40, 44, 46, 56)],
                               planner=PlannerOptions(backend="shared"),
                               routing=routing)
    answers = []
    for o, q in rounds:
        ws.add_obstacle(o)
        answers.append([(owner, lo, hi)
                        for owner, (lo, hi) in ws.execute(q).tuples()])
        assert ws.remove_obstacle(o)
        answers.append([(owner, lo, hi)
                        for owner, (lo, hi) in ws.execute(q).tuples()])
    return answers, ws.routing.stats


class TestWorkspaceStorm:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_repair_and_rebuild_answers_identical(self, seed):
        rounds = storm_script(random.Random(seed), 4)
        got, s_rep = run_storm(RoutingConfig(), rounds)
        want, s_reb = run_storm(RoutingConfig(removal_repair=False), rounds)
        assert got == want                      # exact floats, all rounds
        assert s_rep.removal_repairs >= 4       # every removal repaired
        assert s_reb.removal_repairs == 0
        assert s_reb.evicted >= 4               # every removal dropped

    def test_repair_keeps_graph_resident(self):
        rounds = storm_script(random.Random(3), 3)
        _answers, stats = run_storm(RoutingConfig(), rounds)
        assert stats.graphs_built == 1          # never rebuilt


class TestShardedRepair:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_replicated_boundary_obstacle_removal(self, shards):
        points = [(i, (12.0 * i + 5.0, 48.0)) for i in range(8)]
        base = [RectObstacle(20, 40, 26, 60)]
        # Straddles every shard boundary of the 2x1 and 2x2 grids.
        straddler = RectObstacle(44, 38, 56, 62)
        q = ConnQuery(Segment(5, 50, 90, 50), label="border")
        flat = Workspace.from_points(points, base,
                                     planner=PlannerOptions(backend="shared"))
        sws = ShardedWorkspace.from_points(
            points, base, shards=shards,
            planner=PlannerOptions(backend="shared"))
        for ws in (flat, sws):
            ws.add_obstacle(straddler)
        with_it = flat.execute(q).tuples()
        assert sws.execute(q).tuples() == with_it
        for ws in (flat, sws):
            assert ws.remove_obstacle(straddler)
        without = flat.execute(q).tuples()
        assert sws.execute(q).tuples() == without
        assert with_it != without               # the obstacle mattered
        # The corridor query spans shards, so the resident graph lives in
        # the router's merged environment; replicas in individual shard
        # backends repair too when resident.
        repairs = sum(w.routing.stats.removal_repairs
                      for w in (*sws.shards, *sws._merged.values()))
        assert repairs >= 1                     # a resident replica repaired

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=8, deadline=None)
    def test_sharded_storm_matches_unsharded(self, seed):
        rng = random.Random(seed)
        rounds = storm_script(rng, 3)
        points = POINTS
        flat = Workspace.from_points(points, [],
                                     planner=PlannerOptions(backend="shared"))
        sws = ShardedWorkspace.from_points(
            points, [], shards=4, planner=PlannerOptions(backend="shared"))
        for o, q in rounds:
            for ws in (flat, sws):
                ws.add_obstacle(o)
            assert sws.execute(q).tuples() == flat.execute(q).tuples()
            for ws in (flat, sws):
                assert ws.remove_obstacle(o)
            assert sws.execute(q).tuples() == flat.execute(q).tuples()


class TestSegmentHitsBox:
    BOX = (10.0, 10.0, 20.0, 20.0)

    def hits(self, vx, vy, tx, ty):
        out = _segment_hits_box(vx, vy, np.asarray([tx]), np.asarray([ty]),
                                *self.BOX)
        return bool(out[0])

    def test_crossing_segment(self):
        assert self.hits(5, 15, 25, 15)

    def test_vertical_segment(self):
        assert self.hits(15, 5, 15, 25)
        assert not self.hits(25, 5, 25, 25)     # parallel, outside the slab

    def test_horizontal_segment(self):
        assert self.hits(5, 12, 25, 12)
        assert not self.hits(5, 25, 25, 25)

    def test_degenerate_point_segment(self):
        assert self.hits(15, 15, 15, 15)        # inside the box
        assert not self.hits(5, 5, 5, 5)        # outside the box

    def test_span_stops_short_of_box(self):
        # The infinite line crosses, but the [0, 1] span ends before it.
        assert not self.hits(0, 15, 5, 15)

    def test_endpoint_on_boundary(self):
        assert self.hits(10, 15, 0, 15)         # starts on the box edge

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_never_prunes_a_blocked_pair(self, seed):
        """Soundness: blocked by the rect => segment crosses its bbox."""
        rng = random.Random(seed)
        o = RectObstacle(40, 40, 60, 60)
        vx, vy = rng.uniform(0, 100), rng.uniform(0, 100)
        tx, ty = rng.uniform(0, 100), rng.uniform(0, 100)
        if o.blocks(vx, vy, tx, ty):
            assert _segment_hits_box(vx, vy, np.asarray([tx]),
                                     np.asarray([ty]), 40, 40, 60, 60)[0]
