"""PiecewiseDistance: partitioning, evaluation, and the min-envelope merge."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core import ConnConfig, PiecewiseDistance, QueryStats
from repro.core.distance_function import Piece
from repro.geometry import IntervalSet, Segment

Q = Segment(0, 0, 100, 0)


def fn(cp, base, owner, region=None):
    region = region if region is not None else IntervalSet.full(0, Q.length)
    return PiecewiseDistance.from_region(Q, region, cp, base, owner)


class TestConstruction:
    def test_unknown_covers_everything(self):
        f = PiecewiseDistance.unknown(Q)
        f.assert_partition()
        assert f.all_unknown()
        assert math.isinf(f.value(50.0))
        assert math.isinf(f.max_endpoint_value())

    def test_from_full_region(self):
        f = fn((50, 10), 5.0, "a")
        f.assert_partition()
        assert f.covered()
        assert f.value(50.0) == pytest.approx(15.0)

    def test_from_partial_region(self):
        f = fn((50, 10), 0.0, "a", IntervalSet([(20, 60)]))
        f.assert_partition()
        assert math.isinf(f.value(10.0))
        assert math.isfinite(f.value(40.0))
        assert math.isinf(f.value(80.0))

    def test_from_multi_interval_region(self):
        f = fn((50, 10), 0.0, "a", IntervalSet([(0, 20), (40, 60), (90, 100)]))
        f.assert_partition()
        assert len(f.pieces) == 5

    def test_from_empty_region_is_unknown(self):
        f = fn((50, 10), 0.0, "a", IntervalSet.empty())
        assert f.all_unknown()


class TestEvaluation:
    def test_value_is_base_plus_distance(self):
        f = fn((30, 40), 7.0, "a")
        assert f.value(30.0) == pytest.approx(47.0)
        assert f.value(0.0) == pytest.approx(7.0 + 50.0)

    def test_values_vectorized_match_scalar(self):
        f = fn((30, 40), 7.0, "a", IntervalSet([(10, 80)]))
        ts = np.linspace(0, 100, 51)
        vals = f.values(ts)
        for t, v in zip(ts, vals):
            s = f.value(float(t))
            assert (math.isinf(v) and math.isinf(s)) or \
                v == pytest.approx(s, abs=1e-9)

    def test_max_endpoint_value(self):
        f = fn((0, 10), 0.0, "a")
        # farthest endpoint is t=100 -> dist = sqrt(100^2 + 10^2)
        assert f.max_endpoint_value() == pytest.approx(math.hypot(100, 10))

    def test_owner_tuples_merge_across_cps(self):
        pieces = [Piece(0, 40, (10, 10), 0.0, "a"),
                  Piece(40, 100, (70, 10), 2.0, "a")]
        f = PiecewiseDistance(Q, pieces)
        assert f.owner_tuples() == [("a", (0, 100))]

    def test_split_points_on_owner_change(self):
        pieces = [Piece(0, 40, (10, 10), 0.0, "a"),
                  Piece(40, 100, (70, 10), 0.0, "b")]
        f = PiecewiseDistance(Q, pieces)
        assert f.split_points() == [40]


class TestMergeMin:
    def test_challenger_into_unknown_wins_everywhere(self):
        incumbent = PiecewiseDistance.unknown(Q)
        challenger = fn((50, 5), 0.0, "a")
        win, lose, changed = incumbent.merge_min(challenger)
        assert changed
        win.assert_partition()
        assert win.owner_at(50.0) == "a"
        assert lose.all_unknown()

    def test_merge_is_pointwise_min(self):
        a = fn((20, 10), 0.0, "a")
        b = fn((80, 10), 0.0, "b")
        win, lose, _ = a.merge_min(b)
        win.assert_partition()
        lose.assert_partition()
        ts = np.linspace(0, 100, 201)
        va = a.values(ts)
        vb = b.values(ts)
        vw = win.values(ts)
        vl = lose.values(ts)
        assert np.allclose(vw, np.minimum(va, vb), atol=1e-6)
        assert np.allclose(vl, np.maximum(va, vb), atol=1e-6)

    def test_merge_winner_owners_correct(self):
        a = fn((20, 10), 0.0, "a")
        b = fn((80, 10), 0.0, "b")
        win, _, _ = a.merge_min(b)
        assert win.owner_at(5.0) == "a"
        assert win.owner_at(95.0) == "b"
        assert win.split_points() == pytest.approx([50.0])

    def test_tie_keeps_incumbent(self):
        a = fn((50, 10), 0.0, "a")
        b = fn((50, 10), 0.0, "b")
        win, _, changed = a.merge_min(b)
        assert not changed
        assert all(p.owner == "a" for p in win.pieces)

    def test_same_cp_smaller_base_wins(self):
        a = fn((50, 10), 5.0, "a")
        b = fn((50, 10), 1.0, "b")
        win, _, changed = a.merge_min(b)
        assert changed and win.owner_at(50.0) == "b"

    def test_partial_regions_compose(self):
        a = fn((20, 5), 0.0, "a", IntervalSet([(0, 50)]))
        b = fn((80, 5), 0.0, "b", IntervalSet([(30, 100)]))
        win, _, _ = a.merge_min(b)
        win.assert_partition()
        assert win.owner_at(10.0) == "a"
        assert win.owner_at(90.0) == "b"
        # Both known in the overlap: winner by distance.
        assert win.owner_at(35.0) == "a"

    def test_lemma1_prune_counted_and_correct(self):
        stats = QueryStats()
        cfg = ConnConfig()
        # Incumbent close to the line, challenger far with no chance.
        a = fn((50, 2), 0.0, "a")
        b = fn((50, 40), 0.0, "b")
        win, _, changed = a.merge_min(b, cfg, stats)
        assert not changed
        assert stats.lemma1_prunes >= 1
        assert stats.split_solves == 0

    def test_lemma1_disabled_same_result(self):
        rng = random.Random(1)
        for _ in range(30):
            a = fn((rng.uniform(0, 100), rng.uniform(1, 40)),
                   rng.uniform(0, 30), "a")
            b = fn((rng.uniform(0, 100), rng.uniform(1, 40)),
                   rng.uniform(0, 30), "b")
            w1, _, _ = a.merge_min(b, ConnConfig())
            w2, _, _ = a.merge_min(b, ConnConfig(use_lemma1=False))
            ts = np.linspace(0, 100, 101)
            assert np.allclose(w1.values(ts), w2.values(ts), atol=1e-6)

    def test_randomized_envelopes_vs_sampling(self):
        rng = random.Random(7)
        ts = np.linspace(0, 100, 301)
        for _ in range(20):
            fns = [fn((rng.uniform(0, 100), rng.uniform(-40, 40)),
                      rng.uniform(0, 30), i) for i in range(5)]
            env = PiecewiseDistance.unknown(Q)
            for f in fns:
                env, _, _ = env.merge_min(f)
                env.assert_partition()
            want = np.min([f.values(ts) for f in fns], axis=0)
            assert np.allclose(env.values(ts), want, atol=1e-5)

    def test_loser_cascade_gives_second_best(self):
        rng = random.Random(8)
        ts = np.linspace(0, 100, 301)
        for _ in range(10):
            fns = [fn((rng.uniform(0, 100), rng.uniform(1, 40)),
                      rng.uniform(0, 20), i) for i in range(4)]
            lvl1 = PiecewiseDistance.unknown(Q)
            lvl2 = PiecewiseDistance.unknown(Q)
            for f in fns:
                lvl1, carry, _ = lvl1.merge_min(f)
                lvl2, _, _ = lvl2.merge_min(carry)
            vals = np.sort(np.stack([f.values(ts) for f in fns]), axis=0)
            assert np.allclose(lvl1.values(ts), vals[0], atol=1e-5)
            assert np.allclose(lvl2.values(ts), vals[1], atol=1e-5)
