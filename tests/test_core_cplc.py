"""CPLC (control point lists), IOR coverage, and the Lemma 6 finding."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines import brute_distance_function
from repro.core import ConnConfig, QueryStats, compute_cpl, conn
from repro.core.ior import ObstacleRetriever, ior_fixpoint
from repro.geometry import Segment
from repro.obstacles import (
    LocalVisibilityGraph,
    RectObstacle,
    SegmentObstacle,
    obstructed_distance,
)
from tests.conftest import (
    build_obstacle_tree,
    build_point_tree,
    random_query,
    random_scene,
    same_values,
    first_mismatch,
)


def cpl_for_point(point, obstacles, q, cfg=ConnConfig()):
    """Run IOR + CPLC for one point against a real obstacle tree."""
    stats = QueryStats()
    vg = LocalVisibilityGraph(q)
    retriever = ObstacleRetriever(build_obstacle_tree(obstacles), q, vg, stats)
    node = vg.add_point(*point)
    try:
        ior_fixpoint(vg, retriever, node, stats)
        while True:
            cpl = compute_cpl(vg, node, "p", cfg, stats)
            claimed = cpl.max_endpoint_value()
            if claimed <= retriever.radius + 1e-9:
                break
            if retriever.ensure(claimed) == 0:
                break
    finally:
        vg.remove_point(node)
    return cpl, stats


class TestCPLCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_cpl_equals_brute_distance_function(self, seed):
        rng = random.Random(5000 + seed)
        points, obstacles = random_scene(rng, n_points=1,
                                         n_obstacles=rng.randint(2, 12))
        q = random_query(rng)
        point = points[0][1]
        cpl, _stats = cpl_for_point(point, obstacles, q)
        cpl.assert_partition()
        ts = np.linspace(0, q.length, 181)
        want = brute_distance_function(point, obstacles, q, ts)
        got = cpl.values(ts)
        assert same_values(got, want), first_mismatch(got, want, ts)

    def test_point_visible_everywhere_is_its_own_cp(self):
        q = Segment(0, 0, 100, 0)
        cpl, _ = cpl_for_point((50, 30), [RectObstacle(10, 60, 20, 70)], q)
        assert len(cpl.pieces) == 1
        piece = cpl.pieces[0]
        assert piece.cp == (50, 30) and piece.base == 0.0

    def test_blocked_point_uses_obstacle_corner_cp(self):
        q = Segment(0, 0, 100, 0)
        wall = RectObstacle(30, 5, 70, 10)
        cpl, _ = cpl_for_point((50, 20), [wall], q)
        # Directly below the wall, the control point must be a wall corner.
        piece = cpl.piece_at(50.0)
        assert piece.cp in ((30.0, 5.0), (70.0, 5.0), (30.0, 10.0), (70.0, 10.0))
        assert piece.base > 0

    def test_cpl_base_is_obstructed_distance_to_cp(self):
        q = Segment(0, 0, 100, 0)
        obstacles = [RectObstacle(30, 5, 70, 10), RectObstacle(20, 12, 40, 18)]
        cpl, _ = cpl_for_point((50, 25), obstacles, q)
        for piece in cpl.pieces:
            if piece.cp is None:
                continue
            d = obstructed_distance((50, 25), piece.cp, obstacles)
            assert piece.base == pytest.approx(d, abs=1e-6)

    def test_lemma7_cutoff_fires_and_preserves_result(self):
        rng = random.Random(77)
        points, obstacles = random_scene(rng, n_points=1, n_obstacles=10)
        q = random_query(rng)
        p = points[0][1]
        fast, stats_fast = cpl_for_point(p, obstacles, q, ConnConfig())
        slow, _ = cpl_for_point(p, obstacles, q, ConnConfig(use_lemma7=False))
        ts = np.linspace(0, q.length, 101)
        assert same_values(fast.values(ts), slow.values(ts))

    def test_lemma5_reduces_work_not_results(self):
        rng = random.Random(78)
        points, obstacles = random_scene(rng, n_points=1, n_obstacles=10)
        q = random_query(rng)
        p = points[0][1]
        with_l5, s_with = cpl_for_point(p, obstacles, q, ConnConfig())
        without, s_without = cpl_for_point(p, obstacles, q,
                                           ConnConfig(use_lemma5=False))
        ts = np.linspace(0, q.length, 101)
        assert same_values(with_l5.values(ts), without.values(ts))
        assert s_with.split_solves <= s_without.split_solves


class TestIOR:
    def test_radius_covers_endpoint_paths(self):
        q = Segment(0, 0, 100, 0)
        obstacles = [RectObstacle(40, -5, 60, 5)]
        stats = QueryStats()
        vg = LocalVisibilityGraph(q)
        retriever = ObstacleRetriever(build_obstacle_tree(obstacles), q, vg,
                                      stats)
        node = vg.add_point(50, 20)
        ior_fixpoint(vg, retriever, node, stats)
        d_s = vg.shortest_distances(node, (vg.S,))[vg.S]
        d_e = vg.shortest_distances(node, (vg.E,))[vg.E]
        assert retriever.radius >= max(d_s, d_e) - 1e-9
        # Both endpoint distances are the true obstructed distances.
        assert d_s == pytest.approx(
            obstructed_distance((50, 20), (0, 0), obstacles), abs=1e-9)
        assert d_e == pytest.approx(
            obstructed_distance((50, 20), (100, 0), obstacles), abs=1e-9)

    def test_obstacles_out_of_range_not_retrieved(self):
        q = Segment(0, 0, 10, 0)
        near = RectObstacle(4, 1, 6, 2)
        far = RectObstacle(500, 500, 520, 520)
        stats = QueryStats()
        vg = LocalVisibilityGraph(q)
        retriever = ObstacleRetriever(build_obstacle_tree([near, far]), q, vg,
                                      stats)
        node = vg.add_point(5, 5)
        ior_fixpoint(vg, retriever, node, stats)
        assert stats.noe <= 1
        assert all(o.oid != far.oid for o in vg.obstacles)

    def test_retriever_radius_monotone(self):
        q = Segment(0, 0, 50, 0)
        obstacles = [RectObstacle(10 * i, 2, 10 * i + 5, 6) for i in range(1, 4)]
        stats = QueryStats()
        vg = LocalVisibilityGraph(q)
        retriever = ObstacleRetriever(build_obstacle_tree(obstacles), q, vg,
                                      stats)
        assert retriever.ensure(3.0) >= 0
        r1 = retriever.radius
        retriever.ensure(1.0)  # smaller request: no-op
        assert retriever.radius == r1
        retriever.ensure(100.0)
        assert retriever.radius == 100.0
        assert stats.noe == len(obstacles)


class TestLemma6Finding:
    """Reproduction finding: the paper's Lemma 6 can prune a true control point.

    The lemma's proof builds a competitor path through the blocking
    obstacle's silhouette vertex; with several obstacles shadowing the same
    visible-region hole that path can be blocked, so the pruning claim fails.
    The library therefore ships with Lemma 6 off by default and exposes
    ``ConnConfig.paper_faithful()`` for the published behavior.
    """

    def _scene(self):
        rng = random.Random(2016)
        points, obstacles = random_scene(rng, n_points=6, n_obstacles=14,
                                         segment_fraction=0.5)
        q = random_query(rng)
        return points, obstacles, q

    def test_default_config_matches_oracle_on_counterexample(self):
        from repro.baselines import naive_conn

        points, obstacles, q = self._scene()
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        ts = np.linspace(0, q.length, 121)
        _owners, want = naive_conn(points, obstacles, q, ts)
        assert same_values(res.envelope.values(ts), want)

    def test_paper_faithful_lemma6_overestimates_here(self):
        """Documents the counterexample: with Lemma 6 on, distances inflate."""
        from repro.baselines import naive_conn

        points, obstacles, q = self._scene()
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q,
                   config=ConnConfig.paper_faithful())
        ts = np.linspace(0, q.length, 121)
        _owners, want = naive_conn(points, obstacles, q, ts)
        got = res.envelope.values(ts)
        with np.errstate(invalid="ignore"):
            finite = np.isfinite(got) & np.isfinite(want)
        # Lemma 6 can only remove candidate paths, so any error is upward.
        assert np.all(got[finite] >= want[finite] - 1e-6)
        assert np.any(got[finite] > want[finite] + 1e-4), (
            "scene no longer triggers the Lemma 6 counterexample")

    @pytest.mark.parametrize("seed", range(3))
    def test_lemma6_agrees_on_sparse_scenes(self, seed):
        """With few obstacles the lemma's assumptions hold and results agree."""
        rng = random.Random(6000 + seed)
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=3)
        q = random_query(rng)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        a = conn(dt, ot, q)
        b = conn(dt, ot, q, config=ConnConfig.paper_faithful())
        ts = np.linspace(0, q.length, 101)
        assert same_values(a.envelope.values(ts), b.envelope.values(ts))
