"""Scenario tests mirroring the paper's running examples.

These reconstruct the *structure* of the paper's figures — Figure 1 (CNN vs
CONN on the gas-station example), Figure 2 (visibility-graph shortest path),
Figure 3 (control points), Figure 5 (obstacle search range) — and assert the
qualitative claims the paper makes about them.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import cnn_euclidean
from repro.core import ConnConfig, QueryStats, compute_cpl, conn
from repro.core.ior import ObstacleRetriever, ior_fixpoint
from repro.geometry import Segment
from repro.obstacles import (
    LocalVisibilityGraph,
    RectObstacle,
    obstructed_distance,
    obstructed_path,
)
from tests.conftest import build_obstacle_tree, build_point_tree


class TestFigure1GasStations:
    """CNN vs CONN: obstacles change both split points and answer objects."""

    def setup_method(self):
        # Six "gas stations" along a "highway" q = [S, E], with obstacles
        # arranged so the Euclidean NN of S differs from its obstructed NN
        # (the paper's point d loses to a thanks to obstacle o3).
        self.q = Segment(0, 0, 100, 0)
        self.points = [
            ("a", (2.0, 12.0)),    # slightly farther than d, but unblocked
            ("b", (35.0, 12.0)),
            ("c", (90.0, 14.0)),
            ("d", (10.0, 6.0)),    # Euclidean NN of S, walled off by o3
            ("f", (55.0, 45.0)),
            ("g", (62.0, 13.0)),
        ]
        self.obstacles = [
            RectObstacle(4.0, 0.0, 6.0, 12.0),    # o3: wall between S and d
            RectObstacle(45.0, 4.0, 58.0, 9.0),   # o4-ish: mid highway
        ]

    def test_euclidean_nn_of_start_is_d(self):
        res = cnn_euclidean(build_point_tree(self.points), self.q)
        assert res.owner_at(0.0) == "d"

    def test_obstructed_nn_of_start_changes(self):
        res = conn(build_point_tree(self.points),
                   build_obstacle_tree(self.obstacles), self.q)
        assert res.owner_at(0.0) == "a"

    def test_split_points_differ_from_cnn(self):
        cnn_res = cnn_euclidean(build_point_tree(self.points), self.q)
        conn_res = conn(build_point_tree(self.points),
                        build_obstacle_tree(self.obstacles), self.q)
        assert cnn_res.split_points() != conn_res.split_points()

    def test_result_covers_whole_highway(self):
        res = conn(build_point_tree(self.points),
                   build_obstacle_tree(self.obstacles), self.q)
        tuples = res.tuples()
        assert tuples[0][1][0] == 0.0
        assert tuples[-1][1][1] == pytest.approx(self.q.length)


class TestFigure2ShortestPath:
    """Shortest obstructed path bends only at obstacle vertices."""

    def test_two_obstacle_detour(self):
        o1 = RectObstacle(20, 10, 40, 40)
        o2 = RectObstacle(50, 25, 75, 55)
        ps, pe = (5.0, 30.0), (95.0, 35.0)
        d, path = obstructed_path(ps, pe, [o1, o2])
        assert d > math.dist(ps, pe)
        vertices = {(vx, vy) for o in (o1, o2) for vx, vy in o.vertices()}
        for bend in path[1:-1]:
            assert (bend.x, bend.y) in vertices

    def test_path_is_locally_unblocked(self):
        o1 = RectObstacle(20, 10, 40, 40)
        o2 = RectObstacle(50, 25, 75, 55)
        _d, path = obstructed_path((5, 30), (95, 35), [o1, o2])
        for a, b in zip(path, path[1:]):
            for o in (o1, o2):
                assert not o.blocks(a.x, a.y, b.x, b.y)


class TestFigure3ControlPoints:
    """A point blocked from part of q routes through control points."""

    def test_control_point_decomposition(self):
        q = Segment(0, 0, 100, 0)
        # One obstacle between p and the right part of q.
        wall = RectObstacle(55, 8, 70, 16)
        p = (60.0, 25.0)
        stats = QueryStats()
        vg = LocalVisibilityGraph(q)
        retriever = ObstacleRetriever(build_obstacle_tree([wall]), q, vg, stats)
        node = vg.add_point(*p)
        ior_fixpoint(vg, retriever, node, stats)
        cpl = compute_cpl(vg, node, "p", ConnConfig(), stats)
        cpl.assert_partition()
        # Multiple control points: p itself where visible, wall corners in
        # the shadow.
        cps = {piece.cp for piece in cpl.pieces}
        assert (60.0, 25.0) in cps
        assert len(cps) >= 2
        corner_cps = cps - {(60.0, 25.0)}
        wall_vertices = {(vx, vy) for vx, vy in wall.vertices()}
        assert corner_cps <= wall_vertices
        # Distance through a control point: ||p, cp|| + dist(cp, s).
        shadow_piece = next(pc for pc in cpl.pieces
                            if pc.cp in wall_vertices)
        mid = 0.5 * (shadow_piece.lo + shadow_piece.hi)
        s = q.point_at(mid)
        want = obstructed_distance(p, (s.x, s.y), [wall])
        assert cpl.value(mid) == pytest.approx(want, abs=1e-6)


class TestFigure5SearchRange:
    """IOR retrieves only obstacles that can affect the result (Theorem 2)."""

    def test_far_obstacles_never_fetched(self):
        q = Segment(0, 0, 100, 0)
        near = [RectObstacle(30, 5, 40, 12), RectObstacle(60, 6, 72, 14)]
        far = [RectObstacle(3000 + 50 * i, 3000, 3020 + 50 * i, 3040)
               for i in range(10)]
        points = [("p", (50.0, 30.0))]
        res = conn(build_point_tree(points),
                   build_obstacle_tree(near + far), q)
        assert res.stats.noe <= len(near)

    def test_obstacle_tree_traversed_once(self):
        """Total obstacle-tree I/O stays bounded by one traversal's worth."""
        q = Segment(0, 0, 100, 0)
        obstacles = [RectObstacle(10 * i, 5, 10 * i + 6, 11) for i in range(9)]
        points = [(i, (10.0 * i + 3, 20.0 + 3 * i)) for i in range(8)]
        ot = build_obstacle_tree(obstacles)
        res = conn(build_point_tree(points), ot, q)
        assert res.stats.noe <= len(obstacles)


class TestTheorem4Exactness:
    """'No false misses and no false hits' on a handcrafted scene."""

    def test_every_interval_owner_is_exact(self):
        q = Segment(0, 0, 100, 0)
        points = [("left", (20.0, 15.0)), ("right", (80.0, 15.0)),
                  ("far", (50.0, 60.0))]
        obstacles = [RectObstacle(30, 5, 70, 20)]  # blocks both side points
        res = conn(build_point_tree(points), build_obstacle_tree(obstacles), q)
        for t in np.linspace(0, 100, 41):
            s = q.point_at(float(t))
            dists = {pid: obstructed_distance(xy, (s.x, s.y), obstacles)
                     for pid, xy in points}
            best = min(dists.values())
            got_owner = res.owner_at(float(t))
            assert dists[got_owner] == pytest.approx(best, abs=1e-6)
