"""Continuous-query monitors: affected-tests, local repair, deltas.

Contract under test:

* **Exactness** — after any update sequence, every monitor's standing
  result equals a fresh execution of its query on the mutated dataset,
  whether the maintenance path was no-op, span repair, or full re-run;
* **Incrementality** — updates outside a monitor's influence region are
  dismissed without touching the obstacle index, and span repairs re-run
  strictly less than the whole segment;
* **Deltas** — emitted events describe exactly what changed.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import (
    CoknnQuery,
    ConnQuery,
    OnnQuery,
    RangeQuery,
    RectObstacle,
    SegmentObstacle,
    SemiJoinQuery,
    Workspace,
)
from repro.geometry import Segment
from repro.monitor import NO_OP, REPAIR, RERUN
from tests.conftest import (
    build_point_tree,
    random_query,
    random_scene,
    same_values,
)


def assert_monitor_fresh(monitor, points, obstacles):
    """The standing result equals a cold run on the mutated dataset."""
    fresh_ws = Workspace.from_points(points, obstacles)
    fresh = fresh_ws.execute(monitor.query)
    if isinstance(monitor.query, CoknnQuery):
        qseg = monitor.query.segment
        ts = np.linspace(0.0, qseg.length, 151)
        for lv_g, lv_w in zip(monitor.result.levels, fresh.levels):
            assert same_values(lv_g.values(ts), lv_w.values(ts))
        got, want = monitor.result.tuples(), fresh.tuples()
        assert [o for o, _ in got] == [o for o, _ in want]
        assert np.allclose([iv for _, iv in got], [iv for _, iv in want],
                           atol=1e-6)
    else:
        got, want = monitor.result.tuples(), fresh.tuples()
        assert [p for p, _ in got] == [p for p, _ in want]
        assert [d for _, d in got] == pytest.approx([d for _, d in want],
                                                    abs=1e-6)


class TestAffectedTest:
    def test_far_update_is_noop_with_zero_reads(self):
        points = [("a", (10.0, 10.0)), ("b", (20.0, 12.0))]
        obstacles = [RectObstacle(12, 4, 14, 7)]  # near, not on, the segment
        ws = Workspace.from_points(points, obstacles)
        m = ws.monitors.register(ConnQuery(Segment(5, 10, 25, 10)))
        snap = ws.obstacle_tree.tracker.stats.snapshot()
        ws.add_site("far", (900.0, 900.0))
        # The affected-test ran on recorded state alone: a site insert never
        # touches the obstacle tree, and the dismissal added no reads.
        assert ws.obstacle_tree.tracker.stats.delta(snap).logical_reads == 0
        ws.add_obstacle(RectObstacle(800, 800, 810, 805))
        assert [e.action for e in m.events[-2:]] == [NO_OP, NO_OP]
        assert ws.monitors.stats.noops == 2

    def test_obstacle_insert_ignores_unreachable_pieces(self):
        """A segment walled off mid-way has infinite pieces; an obstacle
        insert far away still cannot affect them (site inserts can)."""
        points = [("a", (10.0, 10.0))]
        # The wall straddles the query segment: the far side is unreachable
        # only locally around the crossing (paths bend around wall ends).
        wall = SegmentObstacle(15.0, 9.0, 15.0, 11.0)
        ws = Workspace.from_points(points, [wall])
        m = ws.monitors.register(ConnQuery(Segment(5, 10, 25, 10)))
        ws.add_obstacle(RectObstacle(800, 800, 810, 805))
        assert m.events[-1].action == NO_OP

    def test_remove_unrelated_site_is_noop(self):
        points = [("a", (10.0, 10.0)), ("b", (20.0, 12.0)),
                  ("far", (90.0, 90.0))]
        ws = Workspace.from_points(points, [RectObstacle(40, 40, 44, 43)])
        m = ws.monitors.register(OnnQuery((12.0, 10.0), knn=2))
        ws.remove_site("far", (90.0, 90.0))
        assert m.events[-1].action == NO_OP
        assert m.events[-1].delta.empty

    def test_near_update_triggers_maintenance(self):
        points = [("a", (10.0, 10.0)), ("b", (20.0, 12.0))]
        ws = Workspace.from_points(points, [RectObstacle(40, 40, 44, 43)])
        m = ws.monitors.register(ConnQuery(Segment(5, 10, 25, 10)))
        ws.add_site("mid", (15.0, 10.5))
        assert m.events[-1].action in (REPAIR, RERUN)
        assert ("mid", ) in [row[3] for row in m.events[-1].delta.intervals]


class TestSegmentRepair:
    @pytest.mark.parametrize("seed", [2, 13, 31, 57])
    def test_update_storm_stays_exact(self, seed):
        rng = random.Random(seed)
        points, obstacles = random_scene(rng, n_points=12, n_obstacles=8)
        points = list(points)
        obstacles = list(obstacles)
        ws = Workspace.from_points(points, obstacles)
        q = CoknnQuery(random_query(rng), knn=2)
        m = ws.monitors.register(q)
        next_id = 1000
        for _ in range(12):
            roll = rng.random()
            if roll < 0.3 and len(points) > 3:
                pid, xy = points.pop(rng.randrange(len(points)))
                assert ws.remove_site(pid, xy)
            elif roll < 0.55:
                xy = (rng.uniform(0, 100), rng.uniform(0, 100))
                ws.add_site(next_id, xy)
                points.append((next_id, xy))
                next_id += 1
            elif roll < 0.75 and len(obstacles) > 2:
                obs = obstacles.pop(rng.randrange(len(obstacles)))
                assert ws.remove_obstacle(obs)
            else:
                x, y = rng.uniform(0, 92), rng.uniform(0, 92)
                obs = RectObstacle(x, y, x + rng.uniform(1, 7),
                                   y + rng.uniform(1, 5))
                ws.add_obstacle(obs)
                obstacles.append(obs)
            assert_monitor_fresh(m, points, obstacles)
        assert len(m.events) == 12

    def test_local_insert_repairs_partial_span(self):
        """A site insert near one end repairs a strict sub-span."""
        points = [(i, (float(5 + 10 * i), 30.0)) for i in range(10)]
        ws = Workspace.from_points(points, [RectObstacle(48, 24, 52, 28)])
        q = CoknnQuery(Segment(0, 20, 100, 20), knn=1)
        m = ws.monitors.register(q)
        ws.add_site("new", (8.0, 21.0))
        event = m.events[-1]
        assert event.action == REPAIR
        covered = sum(hi - lo for lo, hi in event.spans)
        assert 0.0 < covered < q.segment.length
        assert not event.delta.empty
        assert_monitor_fresh(m, points + [("new", (8.0, 21.0))],
                             [RectObstacle(48, 24, 52, 28)])

    def test_remove_site_repairs_only_its_intervals(self):
        points = [(i, (float(5 + 10 * i), 30.0)) for i in range(10)]
        ws = Workspace.from_points(points, [])
        q = ConnQuery(Segment(0, 20, 100, 20))
        m = ws.monitors.register(q)
        owner_spans = [iv for o, iv in m.result.tuples() if o == 0]
        assert owner_spans
        ws.remove_site(0, (5.0, 30.0))
        event = m.events[-1]
        assert event.action == REPAIR
        assert all(o != 0 for o, _iv in m.result.tuples())
        assert_monitor_fresh(m, points[1:], [])

    def test_obstacle_insert_cutting_paths(self):
        points = [("a", (20.0, 40.0)), ("b", (80.0, 40.0))]
        ws = Workspace.from_points(points, [])
        q = ConnQuery(Segment(10, 10, 90, 10))
        m = ws.monitors.register(q)
        wall = SegmentObstacle(50.0, 5.0, 50.0, 60.0)
        ws.add_obstacle(wall)
        assert m.events[-1].action in (REPAIR, RERUN)
        assert_monitor_fresh(m, points, [wall])


    def test_repair_span_boundary_on_wall_crossing(self):
        """Regression (Hypothesis seed 1004): a repair span whose boundary
        sits exactly on an obstacle-crossing parameter must not let the
        sub-query's endpoint tunnel through the wall.

        Without edge padding, the sub-segment starts exactly on the wall,
        the engine's endpoint node sees both sides (each leg only grazes),
        and the spliced distance undercuts the true obstructed distance.
        """
        rng = random.Random(1004)
        points, obstacles = random_scene(rng, n_points=8, n_obstacles=5)
        points = list(points)
        q = CoknnQuery(random_query(rng), knn=2)
        ws = Workspace.from_points(points, obstacles)
        m = ws.monitors.register(q)
        assert rng.random() < 0.4  # the recorded op pattern: add then remove
        xy = (rng.uniform(0, 100), rng.uniform(0, 100))
        ws.add_site(50000, xy)
        points.append((50000, xy))
        assert 0.4 <= rng.random() < 0.6
        pid, pxy = points.pop(rng.randrange(len(points)))
        assert pid == 50000  # the repair span lands on the wall crossing
        ws.remove_site(pid, pxy)
        assert_monitor_fresh(m, points, obstacles)


class TestPointMonitors:
    def test_onn_delta_reports_displaced_neighbor(self):
        points = [("a", (10.0, 0.0)), ("b", (30.0, 0.0))]
        ws = Workspace.from_points(points, [])
        m = ws.monitors.register(OnnQuery((0.0, 0.0), knn=2))
        assert [p for p, _ in m.result.tuples()] == ["a", "b"]
        ws.add_site("c", (5.0, 0.0))
        event = m.events[-1]
        assert event.action == RERUN
        assert ("c", 5.0) in event.delta.added
        assert [p for p, _ in event.delta.removed] == ["b"]
        assert [p for p, _ in m.result.tuples()] == ["c", "a"]

    def test_range_monitor_membership_changes(self):
        points = [("in", (5.0, 0.0)), ("edge", (12.0, 0.0))]
        ws = Workspace.from_points(points, [])
        m = ws.monitors.register(RangeQuery((0.0, 0.0), 10.0))
        assert [p for p, _ in m.result.tuples()] == ["in"]
        # Outside the radius: provably irrelevant, not even a re-run.
        ws.add_site("far", (25.0, 0.0))
        assert m.events[-1].action == NO_OP
        ws.add_site("close", (3.0, 0.0))
        assert m.events[-1].action == RERUN
        assert ("close", 3.0) in m.events[-1].delta.added
        # A wall pushes the obstructed distance of "in" past the radius.
        wall = SegmentObstacle(4.0, -30.0, 4.0, 30.0)
        ws.add_obstacle(wall)
        assert [p for p, _ in m.events[-1].delta.removed] == ["in"]
        assert_monitor_fresh(
            m, points + [("far", (25.0, 0.0)), ("close", (3.0, 0.0))],
            [wall])

    def test_obstacle_removal_restores_neighbor(self):
        wall = SegmentObstacle(4.0, -30.0, 4.0, 30.0)
        points = [("p", (8.0, 0.0))]
        ws = Workspace.from_points(points, [wall])
        m = ws.monitors.register(OnnQuery((0.0, 0.0), knn=1))
        assert m.result.tuples()[0][1] > 8.0
        ws.remove_obstacle(wall)
        assert m.events[-1].action == RERUN
        assert m.result.tuples()[0][1] == pytest.approx(8.0, abs=1e-9)
        changed = dict(m.events[-1].delta.changed)
        assert changed["p"] == pytest.approx(8.0, abs=1e-9)


class TestRegistry:
    def test_callback_and_unregister(self):
        points = [("a", (10.0, 10.0))]
        ws = Workspace.from_points(points, [])
        seen = []
        m = ws.monitors.register(OnnQuery((0.0, 0.0)), callback=seen.append)
        ws.add_site("b", (5.0, 5.0))
        assert len(seen) == 1 and seen[0].monitor is m
        assert len(ws.monitors) == 1
        assert ws.monitors.unregister(m) is True
        assert ws.monitors.unregister(m) is False
        ws.add_site("c", (1.0, 1.0))
        assert len(seen) == 1  # no further events after unregister
        assert not m.active

    def test_unregister_during_fanout_skips_peer(self):
        """A callback unregistering a peer mid-update must silence it."""
        points = [("a", (10.0, 10.0))]
        ws = Workspace.from_points(points, [])
        second_events = []
        holder = {}

        def first_callback(event):
            ws.monitors.unregister(holder["second"])

        ws.monitors.register(OnnQuery((0.0, 0.0)), callback=first_callback)
        holder["second"] = ws.monitors.register(
            OnnQuery((1.0, 1.0)), callback=second_events.append)
        ws.add_site("b", (2.0, 2.0))
        assert second_events == []
        assert len(ws.monitors) == 1

    def test_join_queries_are_rejected(self):
        points, obstacles = random_scene(random.Random(3), 6, 4)
        ws = Workspace.from_points(points, obstacles)
        other = build_point_tree(points)
        with pytest.raises(ValueError, match="no monitor"):
            ws.monitors.register(SemiJoinQuery(other, other))

    def test_maintenance_stats_accumulate(self):
        points = [("a", (10.0, 10.0)), ("b", (20.0, 12.0))]
        ws = Workspace.from_points(points, [])
        ws.monitors.register(OnnQuery((12.0, 10.0), knn=1))
        ws.add_site("far", (500.0, 500.0))
        ws.add_site("near", (11.5, 10.0))
        stats = ws.monitors.stats
        assert stats.updates == 2
        assert stats.noops == 1
        assert stats.reruns == 1
        assert 0.0 < stats.noop_rate < 1.0

    def test_events_record_workspace_version(self):
        ws = Workspace.from_points([("a", (1.0, 1.0))], [])
        m = ws.monitors.register(OnnQuery((0.0, 0.0)))
        ws.add_site("b", (2.0, 2.0))
        ws.add_site("c", (3.0, 3.0))
        assert [e.workspace_version for e in m.events] == [1, 2]


class TestMonitorOnUnifiedLayout:
    def test_1t_monitor_stays_exact(self):
        rng = random.Random(9)
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        ws = Workspace.from_points(points, obstacles, layout="1T")
        q = CoknnQuery(random_query(rng), knn=2)
        m = ws.monitors.register(q)
        new_obs = RectObstacle(30, 50, 36, 54)
        ws.add_obstacle(new_obs)
        ws.add_site("x", (55.0, 45.0))
        fresh = Workspace.from_points(
            points + [("x", (55.0, 45.0))], obstacles + [new_obs],
            layout="1T").execute(q)
        ts = np.linspace(0.0, q.segment.length, 151)
        for lv_g, lv_w in zip(m.result.levels, fresh.levels):
            assert same_values(lv_g.values(ts), lv_w.values(ts))


def test_monitor_influence_handles_unreachable_segment():
    """An island query point (influence = inf) must treat every update as
    potentially affecting — and stay exact when the wall opens."""
    # A pinwheel: the walls overlap past the corners, so paths cannot graze
    # out through a shared vertex the way they could with a plain box.
    box = [SegmentObstacle(-2, -1, 2, -1), SegmentObstacle(1, -2, 1, 2),
           SegmentObstacle(2, 1, -2, 1), SegmentObstacle(-1, 2, -1, -2)]
    points = [("out", (10.0, 0.0))]
    ws = Workspace.from_points(points, box)
    m = ws.monitors.register(OnnQuery((0.0, 0.0), knn=1))
    assert m.result.tuples() == [] or \
        math.isinf(m.result.tuples()[0][1])
    ws.remove_obstacle(box[1])  # open the east wall
    assert m.events[-1].action == RERUN
    got = m.result.tuples()
    assert got and got[0][0] == "out" and math.isfinite(got[0][1])


def test_segment_monitor_exact_after_interleaved_batch(rng):
    points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
    ws = Workspace.from_points(points, obstacles)
    q = ConnQuery(random_query(rng))
    m = ws.monitors.register(q)
    from repro import AddObstacle, AddSite, RemoveSite

    new_obs = RectObstacle(25, 60, 31, 64)
    ws.apply([AddSite("s1", 70.0, 20.0), AddObstacle(new_obs),
              RemoveSite(points[4][0], *points[4][1])])
    mutated = [p for p in points if p[0] != points[4][0]]
    mutated.append(("s1", (70.0, 20.0)))
    assert_monitor_fresh(m, mutated, obstacles + [new_obs])


def test_repair_spans_reuse_workspace_backend():
    """Repair spans and reruns run on the workspace-shared routing backend.

    A monitor storm is exactly the correlated workload the shared
    incremental visibility graph exists for: across many repairs the
    workspace builds its shared graph at most once per graph-dropping
    update, every repair span reuses it, and announced obstacle inserts
    are patched in place rather than triggering rebuilds.
    """
    points = [(i, (12.0 * i + 5.0, 48.0)) for i in range(8)]
    obstacles = [RectObstacle(30, 40, 40, 60)]
    ws = Workspace.from_points(points, obstacles)
    seg = Segment(0, 50, 100, 50)
    m = ws.monitors.register(ConnQuery(seg))
    assert ws.routing.stats.sessions == 0  # initial run was a cold one-shot

    maintained = 0
    for i in range(4):
        # Small obstacles right next to the segment: guaranteed affecting.
        ws.add_obstacle(RectObstacle(15.0 + 18.0 * i, 46.0,
                                     17.0 + 18.0 * i, 49.0))
        maintained += 1
        assert m.events[-1].action in (REPAIR, RERUN)
        assert m.result.stats.backend_name == "shared-vg"
    assert maintained == 4

    rs = ws.routing.stats
    assert rs.sessions >= maintained  # every maintenance span attached
    assert rs.graphs_built == 1       # built once, never rebuilt...
    assert rs.graph_reuses >= maintained - 1  # ...and reused across spans
    # Every insert after the shared graph existed was patched in place
    # (the first one preceded the first repair, so no graph existed yet).
    assert rs.patched == maintained - 1
    assert rs.invalidations == 0

    # The standing result stays exact on the shared substrate.
    assert_monitor_fresh(m, points,
                         obstacles + [RectObstacle(15.0 + 18.0 * i, 46.0,
                                                   17.0 + 18.0 * i, 49.0)
                                      for i in range(4)])
