"""Vectorized predicates must agree exactly with their scalar references."""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    segment_crosses_rect_interior,
    segments_properly_cross,
)
from repro.geometry.vectorized import (
    blocked_by_rects,
    blocked_by_segments,
    crosses_rect_interior,
    pairwise_visibility,
    proper_cross_segments,
    visibility_mask,
)

coord = st.floats(min_value=-100, max_value=100, allow_nan=False,
                  allow_infinity=False)


@st.composite
def rect_rows(draw, n: int = 8) -> np.ndarray:
    rows = []
    for _ in range(n):
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        rows.append((x1, y1, x2, y2))
    return np.asarray(rows)


@st.composite
def seg_rows(draw, n: int = 8) -> np.ndarray:
    return np.asarray([(draw(coord), draw(coord), draw(coord), draw(coord))
                       for _ in range(n)])


class TestAgainstScalar:
    @given(coord, coord, coord, coord, rect_rows())
    @settings(max_examples=60)
    def test_rect_crossing_matches_scalar(self, ax, ay, bx, by, rects):
        got = blocked_by_rects(ax, ay, bx, by, rects)
        want = [segment_crosses_rect_interior(ax, ay, bx, by, *row)
                for row in rects]
        assert list(got) == want

    @given(coord, coord, coord, coord, seg_rows())
    @settings(max_examples=60)
    def test_segment_crossing_matches_scalar(self, ax, ay, bx, by, segs):
        got = blocked_by_segments(ax, ay, bx, by, segs)
        want = [segments_properly_cross(ax, ay, bx, by, *row) for row in segs]
        assert list(got) == want


class TestKnownCases:
    def test_rect_through_middle(self):
        rects = np.array([[0.0, 0.0, 2.0, 2.0]])
        assert crosses_rect_interior(-1, 1, 3, 1, *rects[0])
        assert blocked_by_rects(-1, 1, 3, 1, rects)[0]

    def test_rect_edge_graze_visible(self):
        rects = np.array([[0.0, 0.0, 2.0, 2.0]])
        assert not blocked_by_rects(0, 0, 2, 0, rects)[0]

    def test_degenerate_rect_never_blocks(self):
        rects = np.array([[0.0, 1.0, 2.0, 1.0]])
        assert not blocked_by_rects(-1, 1, 3, 1, rects)[0]

    def test_vertical_sight_line(self):
        rects = np.array([[0.0, 0.0, 2.0, 2.0]])
        assert blocked_by_rects(1, -1, 1, 3, rects)[0]
        assert not blocked_by_rects(5, -1, 5, 3, rects)[0]

    def test_proper_cross_array(self):
        segs = np.array([[0.0, 2.0, 2.0, 0.0], [5.0, 5.0, 6.0, 6.0]])
        got = blocked_by_segments(0, 0, 2, 2, segs)
        assert got.tolist() == [True, False]

    def test_empty_obstacle_arrays(self):
        empty = np.empty((0, 4))
        assert blocked_by_rects(0, 0, 1, 1, empty).shape == (0,)
        assert blocked_by_segments(0, 0, 1, 1, empty).shape == (0,)


class TestVisibilityMask:
    def test_wall_splits_targets(self):
        rects = np.array([[4.0, -10.0, 6.0, 10.0]])
        segs = np.empty((0, 4))
        targets = np.array([[2.0, 0.0], [10.0, 0.0], [5.0, 20.0]])
        mask = visibility_mask(0.0, 0.0, targets, rects, segs)
        assert mask.tolist() == [True, False, True]

    def test_no_obstacles_all_visible(self):
        targets = np.array([[1.0, 1.0], [2.0, 2.0]])
        mask = visibility_mask(0, 0, targets, np.empty((0, 4)), np.empty((0, 4)))
        assert mask.all()

    def test_empty_targets(self):
        mask = visibility_mask(0, 0, np.empty((0, 2)), np.empty((0, 4)),
                               np.empty((0, 4)))
        assert mask.shape == (0,)


class TestPairwiseVisibility:
    def test_matches_elementwise_mask(self):
        rng = random.Random(5)
        rects = np.asarray([[x, y, x + rng.uniform(1, 10), y + rng.uniform(1, 10)]
                            for x, y in ((rng.uniform(0, 50), rng.uniform(0, 50))
                                         for _ in range(6))])
        segs = np.asarray([[rng.uniform(0, 50), rng.uniform(0, 50),
                            rng.uniform(0, 50), rng.uniform(0, 50)]
                           for _ in range(4)])
        pts = np.asarray([[rng.uniform(0, 50), rng.uniform(0, 50)]
                          for _ in range(15)])
        full = pairwise_visibility(pts, pts, rects, segs)
        for i in range(len(pts)):
            row = visibility_mask(pts[i, 0], pts[i, 1], pts, rects, segs)
            assert (full[i] == row).all()

    def test_chunking_equivalence(self):
        rng = random.Random(9)
        rects = np.asarray([[10, 10, 20, 20], [30, 5, 35, 45]], dtype=float)
        segs = np.empty((0, 4))
        pts = np.asarray([[rng.uniform(0, 50), rng.uniform(0, 50)]
                          for _ in range(23)])
        a = pairwise_visibility(pts, pts, rects, segs, chunk_elems=50)
        b = pairwise_visibility(pts, pts, rects, segs)
        assert (a == b).all()

    def test_symmetry(self):
        rng = random.Random(11)
        rects = np.asarray([[5, 5, 15, 15]], dtype=float)
        pts = np.asarray([[rng.uniform(0, 30), rng.uniform(0, 30)]
                          for _ in range(12)])
        m = pairwise_visibility(pts, pts, rects, np.empty((0, 4)))
        assert (m == m.T).all()
