"""Obstructed distance/path: known geometries, networkx cross-check, invariants."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.geometry import dist
from repro.obstacles import (
    ObstacleSet,
    RectObstacle,
    SegmentObstacle,
    all_obstructed_distances,
    build_full_graph,
    obstructed_distance,
    obstructed_path,
)
from tests.conftest import random_scene


class TestKnownGeometries:
    def test_no_obstacles_straight_line(self):
        d, path = obstructed_path((0, 0), (3, 4), [])
        assert math.isclose(d, 5.0)
        assert len(path) == 2

    def test_single_wall_detour(self):
        # Wall between the points: path must round an endpoint.
        wall = SegmentObstacle(5, -5, 5, 5)
        d = obstructed_distance((0, 0), (10, 0), [wall])
        want = dist((0, 0), (5, 5)) + dist((5, 5), (10, 0))
        assert math.isclose(d, want, rel_tol=1e-9)

    def test_rect_detour_around_corner(self):
        box = RectObstacle(4, -2, 6, 2)
        d = obstructed_distance((0, 0), (10, 0), [box])
        want = dist((0, 0), (4, 2)) + dist((4, 2), (6, 2)) + dist((6, 2), (10, 0))
        assert math.isclose(d, want, rel_tol=1e-9)

    def test_path_bends_at_obstacle_vertices(self):
        box = RectObstacle(4, -2, 6, 2)
        _d, path = obstructed_path((0, 0), (10, 0), [box])
        corners = {(4, -2), (6, -2), (4, 2), (6, 2)}
        for p in path[1:-1]:
            assert (p.x, p.y) in corners

    def test_obstacle_not_blocking_is_ignored(self):
        box = RectObstacle(4, 5, 6, 9)
        d = obstructed_distance((0, 0), (10, 0), [box])
        assert math.isclose(d, 10.0)

    def test_sealed_target_unreachable(self):
        # Walls must genuinely overlap: paths may graze along touching
        # boundaries, so a box of merely edge-adjacent rectangles leaks.
        walls = [RectObstacle(2.8, 2.8, 7.2, 4.1), RectObstacle(2.8, 5.9, 7.2, 7.2),
                 RectObstacle(2.8, 4.0, 4.1, 6.0), RectObstacle(5.9, 4.0, 7.2, 6.0)]
        d, path = obstructed_path((0, 0), (5, 5), walls)
        assert math.isinf(d)
        assert path == []

    def test_touching_box_leaks_through_seam(self):
        # The companion case: edge-adjacent (non-overlapping) walls leave a
        # grazing path along the shared boundary, so the cavity IS reachable.
        walls = [RectObstacle(3, 3, 7, 4), RectObstacle(3, 6, 7, 7),
                 RectObstacle(3, 4, 4, 6), RectObstacle(6, 4, 7, 6)]
        d, _path = obstructed_path((0, 0), (5, 5), walls)
        assert math.isfinite(d)

    def test_touching_walls_allow_corner_slip(self):
        # Two walls meeting at a point: passing through the shared vertex is
        # allowed (paths may graze vertices).
        w1 = SegmentObstacle(0, 5, 5, 5)
        w2 = SegmentObstacle(5, 5, 10, 5)
        d = obstructed_distance((5, 0), (5, 10), [w1, w2])
        assert math.isclose(d, 10.0)

    def test_point_on_obstacle_boundary(self):
        box = RectObstacle(4, 0, 6, 2)
        # Source sits exactly on the boundary: allowed, path hugs the rect.
        d = obstructed_distance((4, 0), (10, 0), [box])
        assert math.isclose(d, 6.0)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_distance_equals_networkx_on_full_graph(self, seed):
        rng = random.Random(seed)
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=9)
        a = (rng.uniform(0, 100), rng.uniform(0, 100))
        b = (rng.uniform(0, 100), rng.uniform(0, 100))
        obs = ObstacleSet(obstacles)

        def strictly_inside(p):
            return any(isinstance(o, RectObstacle) and
                       o.rect.contains_point_open(*p) for o in obstacles)

        if strictly_inside(a) or strictly_inside(b):
            return
        adj = build_full_graph([a, b], obs)
        g = nx.Graph()
        g.add_nodes_from(range(len(adj)))
        for i, nbrs in enumerate(adj):
            for j, w in nbrs.items():
                g.add_edge(i, j, weight=w)
        try:
            want = nx.dijkstra_path_length(g, 0, 1)
        except nx.NetworkXNoPath:
            want = math.inf
        got = obstructed_distance(a, b, obstacles)
        if math.isinf(want):
            assert math.isinf(got)
        else:
            assert math.isclose(got, want, rel_tol=1e-9)


class TestMetricProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_symmetry(self, seed):
        rng = random.Random(100 + seed)
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=7)
        pts, _obs2 = random_scene(rng, n_points=2, n_obstacles=0)
        a, b = pts[0][1], pts[1][1]
        d_ab = obstructed_distance(a, b, obstacles)
        d_ba = obstructed_distance(b, a, obstacles)
        assert (math.isinf(d_ab) and math.isinf(d_ba)) or \
            math.isclose(d_ab, d_ba, rel_tol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_lower_bounded_by_euclidean(self, seed):
        rng = random.Random(200 + seed)
        points, obstacles = random_scene(rng, n_points=4, n_obstacles=8)
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                a, b = points[i][1], points[j][1]
                d = obstructed_distance(a, b, obstacles)
                assert d >= dist(a, b) - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_triangle_inequality(self, seed):
        rng = random.Random(300 + seed)
        points, obstacles = random_scene(rng, n_points=3, n_obstacles=6)
        (a, b, c) = (p[1] for p in points)
        dab = obstructed_distance(a, b, obstacles)
        dbc = obstructed_distance(b, c, obstacles)
        dac = obstructed_distance(a, c, obstacles)
        if all(map(math.isfinite, (dab, dbc, dac))):
            assert dac <= dab + dbc + 1e-6

    def test_path_length_consistent(self):
        rng = random.Random(7)
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=8)
        a, b = (5, 5), (95, 95)
        d, path = obstructed_path(a, b, obstacles)
        if math.isfinite(d):
            total = sum(path[i].dist(path[i + 1]) for i in range(len(path) - 1))
            assert math.isclose(total, d, rel_tol=1e-9)
            assert (path[0].x, path[0].y) == a
            assert (path[-1].x, path[-1].y) == b

    def test_all_distances_batch(self):
        rng = random.Random(9)
        points, obstacles = random_scene(rng, n_points=5, n_obstacles=6)
        src = points[0][1]
        targets = [p[1] for p in points[1:]]
        batch = all_obstructed_distances(src, targets, obstacles)
        single = [obstructed_distance(src, t, obstacles) for t in targets]
        for g, w in zip(batch, single):
            assert (math.isinf(g) and math.isinf(w)) or \
                math.isclose(g, w, rel_tol=1e-9)
