"""Snapshot ONN queries and indexed pairwise obstructed distance."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines import naive_onn
from repro.core import ConnConfig, obstructed_distance_indexed, onn
from repro.obstacles import RectObstacle, SegmentObstacle, obstructed_distance
from tests.conftest import build_obstacle_tree, build_point_tree, random_scene


class TestONN:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_naive_oracle(self, seed):
        rng = random.Random(7000 + seed)
        points, obstacles = random_scene(rng, n_points=12, n_obstacles=8)
        qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
        k = rng.choice((1, 2, 4))
        got, _stats = onn(build_point_tree(points),
                          build_obstacle_tree(obstacles), qx, qy, k=k)
        want = naive_onn(points, obstacles, (qx, qy), k=k)
        assert len(got) == len(want)
        for (gp, gd), (wp, wd) in zip(got, want):
            assert gd == pytest.approx(wd, abs=1e-6)

    def test_distances_ascending(self, rng):
        points, obstacles = random_scene(rng, n_points=15)
        got, _ = onn(build_point_tree(points), build_obstacle_tree(obstacles),
                     50, 50, k=5)
        dists = [d for _p, d in got]
        assert dists == sorted(dists)

    def test_k1_is_true_obstructed_nn(self, rng):
        points, obstacles = random_scene(rng, n_points=10, n_obstacles=6)
        got, _ = onn(build_point_tree(points), build_obstacle_tree(obstacles),
                     30, 40, k=1)
        assert len(got) == 1
        payload, d = got[0]
        all_d = {pid: obstructed_distance(xy, (30, 40), obstacles)
                 for pid, xy in points}
        assert d == pytest.approx(min(all_d.values()), abs=1e-6)

    def test_obstacle_flips_winner(self):
        points = [(0, (10.0, 0.0)), (1, (0.0, -12.0))]
        wall = SegmentObstacle(5, -10, 5, 10)
        dt = build_point_tree(points)
        free, _ = onn(dt, build_obstacle_tree([]), 0, 0, k=1)
        assert free[0][0] == 0
        blocked, _ = onn(build_point_tree(points), build_obstacle_tree([wall]),
                         0, 0, k=1)
        assert blocked[0][0] == 1  # detour around the wall exceeds 12

    def test_k_exceeds_dataset(self, rng):
        points, obstacles = random_scene(rng, n_points=3)
        got, _ = onn(build_point_tree(points), build_obstacle_tree(obstacles),
                     50, 50, k=10)
        assert len(got) == 3

    def test_empty_dataset(self):
        got, stats = onn(build_point_tree([]), build_obstacle_tree([]), 5, 5)
        assert got == []
        assert stats.npe == 0

    def test_invalid_k(self, rng):
        points, obstacles = random_scene(rng)
        with pytest.raises(ValueError):
            onn(build_point_tree(points), build_obstacle_tree(obstacles),
                0, 0, k=0)

    def test_stats_counters(self, rng):
        points, obstacles = random_scene(rng, n_points=20)
        _got, stats = onn(build_point_tree(points),
                          build_obstacle_tree(obstacles), 50, 50, k=2)
        assert 1 <= stats.npe <= len(points)
        assert stats.io.logical_reads > 0

    def test_euclidean_pruning_sound(self, rng):
        """With pruning off, the result is identical (Lemma 2 analogue)."""
        points, obstacles = random_scene(rng, n_points=15, n_obstacles=8)
        dt = build_point_tree(points)
        ot = build_obstacle_tree(obstacles)
        fast, _ = onn(dt, ot, 25, 75, k=3)
        slow, _ = onn(dt, ot, 25, 75, k=3, config=ConnConfig(use_rlmax=False))
        assert [round(d, 6) for _p, d in fast] == [round(d, 6) for _p, d in slow]


class TestIndexedObstructedDistance:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_full_graph_reference(self, seed):
        rng = random.Random(8000 + seed)
        _points, obstacles = random_scene(rng, n_points=0, n_obstacles=9)
        pts, _ = random_scene(rng, n_points=2, n_obstacles=0)
        a, b = pts[0][1], pts[1][1]
        if any(isinstance(o, RectObstacle) and
               (o.rect.contains_point_open(*a) or o.rect.contains_point_open(*b))
               for o in obstacles):
            return
        tree = build_obstacle_tree(obstacles)
        got = obstructed_distance_indexed(a, b, tree)
        want = obstructed_distance(a, b, obstacles)
        assert (math.isinf(got) and math.isinf(want)) or \
            got == pytest.approx(want, abs=1e-6)

    def test_straight_line_when_clear(self):
        tree = build_obstacle_tree([RectObstacle(50, 50, 60, 60)])
        d = obstructed_distance_indexed((0, 0), (3, 4), tree)
        assert d == pytest.approx(5.0)

    def test_only_nearby_obstacles_touched(self):
        obstacles = [RectObstacle(4, 1, 6, 3)] + \
            [RectObstacle(1000 + i, 1000, 1002 + i, 1002) for i in range(20)]
        tree = build_obstacle_tree(obstacles)
        before = tree.tracker.stats.logical_reads
        d = obstructed_distance_indexed((0, 2), (10, 2), tree)
        assert d > 10.0
        # The far cluster should not be paged in beyond coarse node reads.
        assert tree.tracker.stats.logical_reads - before < tree.num_pages