""":class:`ShardedWorkspace` — spatial partitioning with border expansion.

One :class:`~repro.service.workspace.Workspace` is one region on one
snapshot; a :class:`ShardedWorkspace` is many regions serving together.
Sites and obstacles are partitioned into per-shard workspaces by a
:class:`~repro.shard.partition.Partitioner` (grid or Hilbert ranges —
the executor's locality orders, promoted to ownership); a router sends
each query to its owning shard(s); and a **border-expansion protocol**
keeps answers byte-identical to the unsharded workspace.

Why expansion is sound.  Sites are owned by exactly the shard containing
their location, and an obstacle is *replicated* into every shard whose
region its MBR overlaps.  Executing a query against a shard set ``S``
therefore sees every site inside ``region(S)`` and every obstacle
touching it.  An obstructed path of length ``L`` from the query footprint
stays inside the Euclidean ball of radius ``L`` around it — the same
influence-ball argument behind the monitor subsystem's affected-tests
(:func:`~repro.monitor.monitor.influence_radius`).  So once the ball of
the answer's influence radius ``R`` lies inside ``region(S)``:

* every path of length <= ``R`` valid under ``S``'s obstacles is valid
  under *all* obstacles (all obstacles intersecting the ball are in
  ``S``), and vice versa — distances at or below ``R`` are exact;
* every site outside ``region(S)`` is Euclidean-farther than ``R`` and
  cannot enter the answer.

The router runs the query on its footprint's home shard(s), computes
``R`` from the answer, and — whenever the ball still crosses a shard
edge — widens ``S`` with the neighbors the ball touches and re-executes
on the merged environment (neighbor margins + home, obstacles deduped by
identity).  The shard set grows monotonically, so the loop terminates,
and at the fixpoint the answer equals the unsharded one bit for bit
(asserted by the equivalence suite and the ``bench_shards`` guard).

Updates fan out through :meth:`ShardedWorkspace.apply` only to affected
shards; per-shard snapshot isolation falls out of each shard's
:meth:`~repro.service.workspace.Workspace.snapshot`; and
:meth:`execute_many` schedules shard-local batches across the thread /
fork worker pool machinery of :mod:`repro.query.parallel`.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.config import DEFAULT_CONFIG, ConnConfig
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..monitor.monitor import influence_radius
from ..obstacles.obstacle import Obstacle
from ..query.planner import DEFAULT_PLANNER, PlannerOptions, QueryPlan
from ..query.queries import (
    CoknnQuery,
    ConnQuery,
    OnnQuery,
    Query,
    RangeQuery,
    TrajectoryQuery,
    as_query_point,
    as_range_args,
)
from ..query.results import QueryResult
from ..routing.config import DEFAULT_ROUTING, RoutingConfig
from ..service.concurrency import ReadWriteLock, SnapshotExpired
from ..service.updates import (
    AddObstacle,
    AddSite,
    RemoveObstacle,
    RemoveSite,
    Update,
)
from ..service.workspace import QueryService, Workspace
from .partition import GridPartitioner, Partitioner, bounds_of
from .stats import ShardStats

MERGE_CACHE_CAP = 32
"""Cross-shard merged environments kept warm before the oldest is dropped."""


class ShardedWorkspace:
    """Many per-region workspaces serving as one, with exact borders.

    Build one with :meth:`from_points` (fresh indexes, partitioned) or
    :meth:`from_workspace` (re-shard an existing 2T workspace).  The
    execution surface mirrors :class:`~repro.service.workspace.Workspace`
    — ``plan`` / ``execute`` / ``execute_many`` / ``stream``, the classic
    shorthands, ``apply`` and the update helpers, ``monitors``,
    ``snapshot()`` — so call sites can swap one in unchanged.

    Args:
        shards: the per-shard workspaces, indexed by shard id.
        partitioner: the ownership map the shards were split by.
        config: default pruning configuration for queries.
        planner: planner options handed to every shard.
        routing: substrate configuration for merged border environments
            (engine, bulk build, removal repair); defaults to the first
            shard's routing so the border path runs on the same substrate
            as the home shards.
    """

    def __init__(self, shards: Sequence[Workspace],
                 partitioner: Partitioner, *,
                 config: ConnConfig = DEFAULT_CONFIG,
                 planner: PlannerOptions = DEFAULT_PLANNER,
                 routing: Optional[RoutingConfig] = None):
        if len(shards) != partitioner.num_shards:
            raise ValueError(
                f"partitioner expects {partitioner.num_shards} shards, "
                f"got {len(shards)}")
        for ws in shards:
            if ws.layout != "2T":
                raise ValueError("sharded workspaces require the 2T layout "
                                 "(per-shard obstacle trees)")
        self.shards = list(shards)
        self.partitioner = partitioner
        self.config = config
        self.planner = planner
        if routing is None:
            routing = (self.shards[0].routing_config if self.shards
                       else DEFAULT_ROUTING)
        self.routing_config = routing
        self.layout = "2T"
        self.version = 0
        """Mutation counter: bumped by every applied update (the sharded
        analogue of :attr:`Workspace.version`)."""
        self.stats = ShardStats()
        """Cumulative :class:`~repro.shard.stats.ShardStats` across every
        routed query and applied update."""
        self.snapshots_taken = 0
        self._rw = ReadWriteLock()
        self._stats_lock = threading.Lock()
        self._merge_lock = threading.Lock()
        self._merged: "OrderedDict[FrozenSet[int], Workspace]" = OrderedDict()
        self._monitors = None
        self._service = QueryService(self)
        self._page_size = max((ws.obstacle_tree.page_size for ws in shards),
                              default=4096)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_points(cls, points: Iterable[Tuple[Any, Tuple[float, float]]],
                    obstacles: Iterable[Obstacle], *,
                    shards: int = 4,
                    partitioner: Optional[Partitioner] = None,
                    page_size: int = 4096,
                    config: ConnConfig = DEFAULT_CONFIG,
                    planner: PlannerOptions = DEFAULT_PLANNER,
                    routing: RoutingConfig = DEFAULT_ROUTING,
                    overfetch: float = 1.0) -> "ShardedWorkspace":
        """Partition raw points and obstacles into per-shard workspaces.

        Args:
            shards: shard count for the default grid partitioner (cut into
                the most-square ``nx`` x ``ny`` grid: 2 -> 2x1, 9 -> 3x3);
                ignored when an explicit ``partitioner`` is given.
            partitioner: ownership map; default is
                :meth:`GridPartitioner.square` over the data's bounds.
        """
        points = list(points)
        obstacles = list(obstacles)
        if partitioner is None:
            partitioner = GridPartitioner.square(
                bounds_of((xy for _p, xy in points),
                          (o.mbr() for o in obstacles)),
                shards)
        site_lists: List[List[Tuple[Any, Tuple[float, float]]]] = [
            [] for _ in range(partitioner.num_shards)]
        obstacle_lists: List[List[Obstacle]] = [
            [] for _ in range(partitioner.num_shards)]
        replicas = 0
        for payload, (x, y) in points:
            site_lists[partitioner.shard_of(float(x), float(y))].append(
                (payload, (float(x), float(y))))
        for o in obstacles:
            owners = partitioner.shards_for_rect(o.mbr())
            replicas += len(owners) - 1
            for sid in owners:
                obstacle_lists[sid].append(o)
        built = [Workspace.from_points(site_lists[sid], obstacle_lists[sid],
                                       layout="2T", page_size=page_size,
                                       config=config, planner=planner,
                                       routing=routing, overfetch=overfetch)
                 for sid in range(partitioner.num_shards)]
        sws = cls(built, partitioner, config=config, planner=planner,
                  routing=routing)
        sws.stats.replicated_obstacles = replicas
        return sws

    @classmethod
    def from_workspace(cls, workspace: Workspace, *, shards: int = 4,
                       partitioner: Optional[Partitioner] = None
                       ) -> "ShardedWorkspace":
        """Re-shard an existing (2T) workspace's current contents."""
        if workspace.layout != "2T":
            raise ValueError("only 2T workspaces can be re-sharded")
        points = [(payload, (rect.xlo, rect.ylo))
                  for payload, rect in workspace.data_tree.items()]
        obstacles = [o for o, _mbr in workspace.obstacle_tree.items()]
        return cls.from_points(
            points, obstacles, shards=shards, partitioner=partitioner,
            page_size=workspace.obstacle_tree.page_size,
            config=workspace.config, planner=workspace.planner,
            routing=workspace.routing_config)

    # -------------------------------------------------------------- structure
    @property
    def num_shards(self) -> int:
        """Number of shards (== ``partitioner.num_shards``)."""
        return len(self.shards)

    @property
    def size(self) -> int:
        """Total sites across shards (sites are never replicated)."""
        return sum(ws.data_tree.size for ws in self.shards)

    def read_lock(self):
        """The sharded read hold (see :meth:`Workspace.read_lock`)."""
        return self._rw.read()

    def snapshot(self) -> "ShardedSnapshot":
        """Pin the current cross-shard version for isolated execution."""
        return ShardedSnapshot(self)

    @property
    def service(self) -> QueryService:
        """An async serving front (``serve`` / ``submit``) routing through
        this sharded workspace — the same
        :class:`~repro.service.workspace.QueryService` machinery single
        workspaces use."""
        return self._service

    # --------------------------------------------------------------- warm-up
    def prefetch(self, rect: Rect, margin: float = 0.0) -> int:
        """Warm the obstacle caches of every shard ``rect`` touches."""
        return sum(self.shards[sid].prefetch(rect, margin=margin)
                   for sid in sorted(self.partitioner.shards_for_rect(rect)))

    def prefetch_all(self) -> int:
        """Warm every shard's obstacle cache completely."""
        return sum(ws.prefetch_all() for ws in self.shards)

    # ---------------------------------------------------------------- routing
    def _initial_shards(self, query: Query) -> FrozenSet[int]:
        """Home shard set: everything the query footprint touches (all
        shards for non-spatial queries — the joins fan out globally)."""
        footprint = query.footprint()
        if footprint is None:
            return self.partitioner.all_shards()
        return self.partitioner.shards_for_rect(footprint)

    @staticmethod
    def _base_rect(query: Query) -> Optional[Rect]:
        """The query's *un-expanded* spatial anchor (``None`` = non-spatial).

        Unlike :meth:`Query.footprint`, a range query's anchor is the bare
        point — expansion adds the influence radius exactly once.
        """
        if isinstance(query, CoknnQuery):
            return Rect(*query.segment.bbox())
        if isinstance(query, (OnnQuery, RangeQuery)):
            return Rect.point(query.point.x, query.point.y)
        if isinstance(query, TrajectoryQuery):
            return Rect.from_points(query.waypoints)
        return None

    def _needed_shards(self, query: Query,
                       result: QueryResult) -> Optional[FrozenSet[int]]:
        """Shards the answer's influence ball touches (``None`` = no
        containment obligation — the query was already global)."""
        base = self._base_rect(query)
        if base is None:
            return None
        radius = influence_radius(query, result)
        if math.isinf(radius):
            return self.partitioner.all_shards()
        return self.partitioner.shards_for_rect(base.expanded(radius))

    def _environment(self, sids: FrozenSet[int]) -> Workspace:
        """The workspace answering for shard set ``sids``.

        A single shard answers directly; multi-shard sets get a merged
        workspace — member sites plus member obstacles deduped by obstacle
        identity (each boundary-straddling obstacle is replicated into
        every overlapping shard, so the union re-collapses to one copy) —
        cached and kept in sync by :meth:`apply` so repeated border
        crossings reuse one warm environment.
        """
        if len(sids) == 1:
            return self.shards[next(iter(sids))]
        key = frozenset(sids)
        with self._merge_lock:
            cached = self._merged.get(key)
            if cached is not None:
                self._merged.move_to_end(key)
                with self._stats_lock:
                    self.stats.merge_reuses += 1
                return cached
            points: List[Tuple[Any, Tuple[float, float]]] = []
            seen: Dict[Obstacle, None] = {}
            for sid in sorted(key):
                shard = self.shards[sid]
                points.extend((payload, (rect.xlo, rect.ylo))
                              for payload, rect in shard.data_tree.items())
                for obstacle, _mbr in shard.obstacle_tree.items():
                    seen.setdefault(obstacle)
            merged = Workspace.from_points(
                points, list(seen), layout="2T", page_size=self._page_size,
                config=self.config, planner=self.planner,
                routing=self.routing_config)
            # Warm the merged environment's shared graph eagerly: every
            # adjacency row over the member obstacles is cut in one bulk
            # pass now, so the border crossing that triggered this merge —
            # and every reuse after it — skips the per-settle cold start.
            merged.routing.warm(list(seen))
            self._merged[key] = merged
            if len(self._merged) > MERGE_CACHE_CAP:
                self._merged.popitem(last=False)
            with self._stats_lock:
                self.stats.merges_built += 1
            return merged

    def _route(self, query: Query | QueryPlan
               ) -> Tuple[QueryResult, ShardStats]:
        """Execute one query with border expansion; returns (result, block).

        The per-query :class:`ShardStats` block is attached to
        ``result.stats.shard`` but *not yet* merged into the cumulative
        workspace stats (callers differ: thread-mode execution merges here,
        fork-mode merges pickled blocks back in the parent).
        """
        backend = None
        if isinstance(query, QueryPlan):
            backend = query.backend_override
            query = query.query
        if not isinstance(query, Query):
            raise TypeError(
                f"expected a Query description, got {type(query)!r}")
        sids = self._initial_shards(query)
        expansions = 0
        env_t = route_t = reexec_t = 0.0
        clock = time.perf_counter
        while True:
            t0 = clock()
            env = self._environment(sids)
            t1 = clock()
            env_t += t1 - t0
            if backend is not None:
                result = env.execute(env.plan(query, backend=backend))
            else:
                result = env.execute(query)
            t2 = clock()
            if expansions:
                reexec_t += t2 - t1
            else:
                route_t += t2 - t1
            needed = self._needed_shards(query, result)
            if needed is None or needed <= sids:
                break
            sids = frozenset(sids | needed)
            expansions += 1
        block = ShardStats(queries=1,
                           by_shard={sid: 1 for sid in sorted(sids)},
                           border_expansions=expansions, fanout=len(sids),
                           route_time_s=route_t, reexec_time_s=reexec_t,
                           merge_build_time_s=env_t)
        result.stats.shard = block
        return result, block

    def _record(self, block: ShardStats) -> None:
        with self._stats_lock:
            self.stats.merge(block)

    # ------------------------------------------------- declarative interface
    def plan(self, query: Query, backend: Optional[str] = None) -> QueryPlan:
        """Plan ``query`` against its home shard set.

        The plan is built by the home environment's planner and annotated
        with the router's fan-out estimate: the shards the footprint
        touches, widened by the planner's retrieval-radius estimate —
        reported as ``est_shard_fanout`` and an extra ``explain()`` line.
        """
        with self._rw.read():
            sids = self._initial_shards(query)
            env = self._environment(sids)
            plan = env.plan(query, backend=backend)
            base = self._base_rect(query)
            predicted = sids
            if base is not None and math.isfinite(plan.est_radius):
                predicted = sids | self.partitioner.shards_for_rect(
                    base.expanded(plan.est_radius))
            plan.est_shard_fanout = len(predicted)
            plan.notes = plan.notes + (
                f"sharded: home shard(s) {sorted(sids)} of "
                f"{self.num_shards} ({self.partitioner.describe()}); "
                f"influence ball est. reaches {len(predicted)} shard(s)",)
            return plan

    def execute(self, query: Query | QueryPlan) -> QueryResult:
        """Execute one query through the border-expansion router.

        Answers are byte-identical to the unsharded workspace's; the
        routing that produced them is reported in ``result.stats.shard``.
        """
        with self._rw.read():
            result, block = self._route(query)
        self._record(block)
        return result

    def stream(self, queries: Iterable[Query]):
        """Lazily execute ``queries`` in submission order."""
        return (self.execute(q) for q in queries)

    def execute_many(self, queries: Iterable[Query], *,
                     workers: int = 1, mode: str = "thread"
                     ) -> List[QueryResult]:
        """Execute a batch as shard-local groups, optionally in parallel.

        Queries are grouped by home shard (the executor's locality
        scheduling, at shard granularity); each group runs through the
        router on one worker, so shard-local groups proceed concurrently
        while border-crossing queries still expand exactly as in
        :meth:`execute`.

        Args:
            workers: pool size; ``<= 1`` executes serially.
            mode: ``"thread"`` (share this process's shard caches through
                their locks) or ``"fork"`` (forked copy-on-write worker
                processes — true multi-core; POSIX only).

        Returns:
            Results in submission order, each with ``stats.shard`` filled.
        """
        import os

        from ..query.parallel import FORK, THREAD, effective_workers

        qs = list(queries)
        if mode not in (THREAD, FORK):
            raise ValueError(f"unknown mode {mode!r}; expected 'thread' "
                             "or 'fork'")
        if mode == FORK and not hasattr(os, "fork"):
            mode = THREAD  # pragma: no cover - non-POSIX hosts
        workers = effective_workers(workers, mode)
        with self._rw.read():
            if workers <= 1 or len(qs) <= 1:
                out: List[QueryResult] = []
                for q in qs:
                    result, block = self._route(q)
                    self._record(block)
                    out.append(result)
                return out
            groups, tail = self._shard_groups(qs)
            results: List[Optional[QueryResult]] = [None] * len(qs)
            if mode == THREAD:
                self._run_thread_groups(qs, groups, workers, results)
            else:
                self._run_fork_groups(qs, groups, workers, results)
            for i in tail:  # non-spatial queries: submission order, inline
                results[i], block = self._route(qs[i])
                self._record(block)
        return results  # type: ignore[return-value]

    def _shard_groups(self, qs: List[Query]
                      ) -> Tuple[List[List[int]], List[int]]:
        """Group query indices by home shard; non-spatial indices tail."""
        groups: Dict[int, List[int]] = {}
        tail: List[int] = []
        for i, q in enumerate(qs):
            footprint = q.footprint() if isinstance(q, Query) else None
            if footprint is None:
                tail.append(i)
                continue
            home = min(self.partitioner.shards_for_rect(footprint))
            groups.setdefault(home, []).append(i)
        return [groups[sid] for sid in sorted(groups)], tail

    def _run_thread_groups(self, qs: List[Query], groups: List[List[int]],
                           workers: int,
                           results: List[Optional[QueryResult]]) -> None:
        from concurrent.futures import ThreadPoolExecutor

        def run_group(group: List[int]) -> None:
            for i in group:
                results[i], block = self._route(qs[i])
                self._record(block)

        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="repro-shard") as pool:
            for future in [pool.submit(run_group, g) for g in groups]:
                future.result()

    def _run_fork_groups(self, qs: List[Query], groups: List[List[int]],
                         workers: int,
                         results: List[Optional[QueryResult]]) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from ..query.parallel import _shard_round_robin

        global _fork_sharded, _fork_shard_queries
        piles = _shard_round_robin(groups, workers)
        _fork_sharded, _fork_shard_queries = self, qs
        try:
            ctx = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=len(piles),
                                     mp_context=ctx) as pool:
                for future in [pool.submit(_fork_run_groups, pile)
                               for pile in piles]:
                    for i, result in future.result():
                        results[i] = result
                        # Child-process stats die with the child; merge the
                        # per-query block that rode back on the result.
                        self._record(result.stats.shard)
        finally:
            _fork_sharded = _fork_shard_queries = None

    # ------------------------------------------------------ legacy shortcuts
    def conn(self, query: Segment, config: Optional[ConnConfig] = None):
        """Continuous obstructed NN query (k = 1), routed across shards."""
        return self.execute(ConnQuery(query, config=config))

    def coknn(self, query: Segment, k: int = 1,
              config: Optional[ConnConfig] = None):
        """Continuous obstructed k-NN query, routed across shards."""
        return self.execute(CoknnQuery(query, k, config=config))

    def onn(self, x, y: Optional[float] = None, k: int = 1,
            config: Optional[ConnConfig] = None):
        """Snapshot obstructed k-NN at a point, routed across shards."""
        res = self.execute(OnnQuery(as_query_point(x, y), k, config=config))
        return res.tuples(), res.stats

    def range(self, x, y: Optional[float] = None,
              radius: Optional[float] = None):
        """Obstructed range query at a point, routed across shards."""
        point, r = as_range_args(x, y, radius)
        res = self.execute(RangeQuery(point, r))
        return res.tuples(), res.stats

    def trajectory(self, waypoints: Sequence[Tuple[float, float]],
                   k: int = 1, config: Optional[ConnConfig] = None):
        """Trajectory CONN/COkNN along a polyline, routed across shards."""
        return self.execute(TrajectoryQuery(tuple(waypoints), k,
                                            config=config))

    # -------------------------------------------------------------- mutation
    @property
    def monitors(self):
        """The sharded continuous-query registry (created on first access).

        Standing queries are pinned to their owning shard set and re-homed
        when a boundary-crossing update moves their influence ball; see
        :mod:`repro.shard.monitors`.
        """
        if self._monitors is None:
            from .monitors import ShardMonitorRegistry

            self._monitors = ShardMonitorRegistry(self)
        return self._monitors

    def add_site(self, payload: Any, x, y: Optional[float] = None) -> bool:
        """Insert a data point into its owning shard."""
        pt = as_query_point(x, y)
        return self._apply_one(AddSite(payload, pt.x, pt.y))

    def remove_site(self, payload: Any, x,
                    y: Optional[float] = None) -> bool:
        """Delete a data point from its owning shard."""
        pt = as_query_point(x, y)
        return self._apply_one(RemoveSite(payload, pt.x, pt.y))

    def add_obstacle(self, obstacle: Obstacle) -> bool:
        """Insert an obstacle into every shard its MBR overlaps."""
        return self._apply_one(AddObstacle(obstacle))

    def remove_obstacle(self, obstacle: Obstacle) -> bool:
        """Delete an obstacle (all replicas); True when it was found."""
        return self._apply_one(RemoveObstacle(obstacle))

    def apply(self, updates: Iterable[Update]) -> List[bool]:
        """Apply a batch of typed updates, fanning out to affected shards.

        Site updates route to the single owning shard; obstacle updates to
        every shard the obstacle's MBR overlaps (replicas stay in lock
        step).  Cached merged environments receive the same update once,
        so the border protocol keeps serving warm.  Registered sharded
        monitors refresh after each update, exactly like the unsharded
        registry.
        """
        return [self._apply_one(u) for u in updates]

    def _apply_one(self, update: Update) -> bool:
        with self._rw.write():
            if isinstance(update, (AddSite, RemoveSite)):
                sids = frozenset(
                    {self.partitioner.shard_of(update.x, update.y)})
            elif isinstance(update, (AddObstacle, RemoveObstacle)):
                sids = self.partitioner.shards_for_rect(
                    update.obstacle.mbr())
            else:
                raise TypeError(
                    f"unknown update type {type(update).__name__}")
            flags = [self.shards[sid]._apply_one(update)
                     for sid in sorted(sids)]
            applied = any(flags)
            if applied:
                if isinstance(update, AddObstacle):
                    self.stats.replicated_obstacles += len(sids) - 1
                elif isinstance(update, RemoveObstacle):
                    self.stats.replicated_obstacles -= sum(flags) - 1
                with self._merge_lock:
                    for key, merged in self._merged.items():
                        if key & sids:
                            merged._apply_one(update)
                self.version += 1
        if applied and self._monitors is not None:
            self._monitors.notify(update)
        return applied


# --------------------------------------------------------------- fork plumbing
_fork_sharded: Optional[ShardedWorkspace] = None
_fork_shard_queries: Optional[List[Query]] = None


def _fork_run_groups(pile: Sequence[Sequence[int]]
                     ) -> List[Tuple[int, QueryResult]]:
    """Run one pile of shard groups inside a forked worker.

    The sharded workspace and query list arrive through the fork (module
    globals set just before the pool was created); only indices go down
    and pickled results come back, each carrying its ``stats.shard``
    block for the parent to aggregate.
    """
    sws, qs = _fork_sharded, _fork_shard_queries
    out: List[Tuple[int, QueryResult]] = []
    for group in pile:
        for i in group:
            result, _block = sws._route(qs[i])
            out.append((i, result))
    return out


class ShardedSnapshot:
    """A pinned cross-shard version (see :class:`WorkspaceSnapshot`).

    Pins the sharded mutation counter plus every shard's own version;
    execution re-verifies under the sharded read hold and raises
    :class:`~repro.service.concurrency.SnapshotExpired` once any shard has
    moved on.  Cheap — a tuple of integers.
    """

    def __init__(self, sharded: ShardedWorkspace):
        self._sws = sharded
        with sharded.read_lock():
            self.version = sharded.version
            self.shard_versions: Tuple[int, ...] = tuple(
                ws.version for ws in sharded.shards)
        sharded.snapshots_taken += 1

    @property
    def workspace(self) -> ShardedWorkspace:
        """The live sharded workspace this snapshot pins."""
        return self._sws

    @property
    def expired(self) -> bool:
        """True once any shard mutated past the pinned version."""
        return (self._sws.version != self.version
                or tuple(ws.version for ws in self._sws.shards)
                != self.shard_versions)

    def verify(self) -> None:
        """Raise :class:`SnapshotExpired` when :attr:`expired`."""
        if self.expired:
            raise SnapshotExpired(
                f"sharded workspace moved from version {self.version} to "
                f"{self._sws.version}; take a fresh snapshot")

    def execute(self, query: Query | QueryPlan) -> QueryResult:
        """Execute one query against the pinned cross-shard version."""
        with self._sws.read_lock():
            self.verify()
            return self._sws.execute(query)

    def execute_many(self, queries: Iterable[Query], *,
                     workers: int = 1, mode: str = "thread"
                     ) -> List[QueryResult]:
        """Execute a batch against the pinned version (one read hold)."""
        with self._sws.read_lock():
            self.verify()
            return self._sws.execute_many(queries, workers=workers,
                                          mode=mode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "expired" if self.expired else "live"
        return (f"ShardedSnapshot(version={self.version}, "
                f"shards={self.shard_versions}, {state})")


__all__ = [
    "MERGE_CACHE_CAP",
    "ShardedSnapshot",
    "ShardedWorkspace",
]
