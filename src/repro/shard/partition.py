"""Spatial partitioners: who owns which region of the plane.

A partitioner is a pure, immutable function from locations to shard ids.
Two implementations:

* :class:`GridPartitioner` — a uniform ``nx`` x ``ny`` grid over a bounding
  rectangle.  Dead simple, O(1) point lookup, and the shard regions are
  axis-aligned rectangles, which makes the router's containment test ("does
  this influence ball stay inside the consulted shard set?") exact.
* :class:`HilbertPartitioner` — a fine cell grid walked in Hilbert order
  (the same :func:`~repro.query.executor.hilbert_index` the batch
  scheduler's locality buckets use) and cut into contiguous ranges of
  near-equal *site weight*.  Shards follow the data distribution instead of
  the area, at the cost of non-rectangular (but still cell-aligned) shard
  regions.

Both share one coordinate convention: the configured bounds tile the whole
plane — points outside are clamped to the nearest boundary cell, so edge
shards conceptually extend to infinity and every location has exactly one
owner.  That convention is what lets the router express "ball ⊆ consulted
regions" as plain cell-set containment: ``shards_for_rect(ball) <= sids``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..geometry.rectangle import Rect
from ..query.executor import hilbert_index


def _factor_pair(n: int) -> Tuple[int, int]:
    """The most-square ``(nx, ny)`` with ``nx * ny == n`` (nx >= ny)."""
    best = (n, 1)
    for ny in range(1, int(math.isqrt(n)) + 1):
        if n % ny == 0:
            best = (n // ny, ny)
    return best


class Partitioner:
    """Base partitioner: an immutable map from the plane onto shard ids.

    Subclasses implement the two lookups everything else derives from:
    :meth:`shard_of` (point ownership) and :meth:`shards_for_rect`
    (which shards a rectangle touches, after clamping to the bounds).
    """

    num_shards: int
    bounds: Rect

    def shard_of(self, x: float, y: float) -> int:
        """The shard owning location ``(x, y)`` (clamped to the bounds)."""
        raise NotImplementedError

    def shards_for_rect(self, rect: Rect) -> FrozenSet[int]:
        """Every shard whose region intersects ``rect`` (clamped)."""
        raise NotImplementedError

    def all_shards(self) -> FrozenSet[int]:
        """The full shard id set."""
        return frozenset(range(self.num_shards))

    def describe(self) -> str:
        """One-line human-readable description for ``explain()`` output."""
        return f"{type(self).__name__}({self.num_shards} shards)"


class _CellGrid:
    """Shared clamped-cell arithmetic over a bounding rectangle."""

    def __init__(self, bounds: Rect, nx: int, ny: int):
        if nx < 1 or ny < 1:
            raise ValueError("need at least one cell per axis")
        if not bounds.is_valid() or bounds.width <= 0 or bounds.height <= 0:
            raise ValueError(f"degenerate partition bounds {bounds!r}")
        self.bounds = bounds
        self.nx = nx
        self.ny = ny
        self._cw = bounds.width / nx
        self._ch = bounds.height / ny

    @staticmethod
    def _axis_cell(v: float, lo: float, step: float, n: int) -> int:
        if not math.isfinite(v):  # infinite extents clamp to the edge cell
            return 0 if v < 0 else n - 1
        return min(max(int((v - lo) / step), 0), n - 1)

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (self._axis_cell(x, self.bounds.xlo, self._cw, self.nx),
                self._axis_cell(y, self.bounds.ylo, self._ch, self.ny))

    def cells_for_rect(self, rect: Rect) -> Iterable[Tuple[int, int]]:
        clo = self.cell_of(rect.xlo, rect.ylo)
        chi = self.cell_of(rect.xhi, rect.yhi)
        for cx in range(clo[0], chi[0] + 1):
            for cy in range(clo[1], chi[1] + 1):
                yield (cx, cy)

    def cell_rect(self, cx: int, cy: int) -> Rect:
        b = self.bounds
        return Rect(b.xlo + cx * self._cw, b.ylo + cy * self._ch,
                    b.xlo + (cx + 1) * self._cw, b.ylo + (cy + 1) * self._ch)


class GridPartitioner(Partitioner):
    """A uniform ``nx`` x ``ny`` grid of rectangular shard regions.

    Args:
        bounds: the rectangle the grid tiles; locations outside are owned
            by the nearest edge shard (edge regions extend to infinity).
        nx, ny: cells per axis; ``num_shards = nx * ny``.  Shard ids run
            row-major: ``sid = cy * nx + cx``.
    """

    def __init__(self, bounds: Rect, nx: int, ny: int):
        self._grid = _CellGrid(bounds, nx, ny)
        self.bounds = bounds
        self.nx = nx
        self.ny = ny
        self.num_shards = nx * ny

    @classmethod
    def square(cls, bounds: Rect, shards: int) -> "GridPartitioner":
        """The most-square grid with exactly ``shards`` cells (2 -> 2x1,
        4 -> 2x2, 9 -> 3x3, a prime p -> p x 1)."""
        if shards < 1:
            raise ValueError("need at least one shard")
        nx, ny = _factor_pair(shards)
        return cls(bounds, nx, ny)

    def shard_of(self, x: float, y: float) -> int:
        cx, cy = self._grid.cell_of(x, y)
        return cy * self.nx + cx

    def shards_for_rect(self, rect: Rect) -> FrozenSet[int]:
        return frozenset(cy * self.nx + cx
                         for cx, cy in self._grid.cells_for_rect(rect))

    def region(self, sid: int) -> Rect:
        """The finite core rectangle of shard ``sid`` (edge shards own the
        unbounded strip beyond it as well)."""
        if not 0 <= sid < self.num_shards:
            raise ValueError(f"no shard {sid}")
        return self._grid.cell_rect(sid % self.nx, sid // self.nx)

    def describe(self) -> str:
        return f"grid {self.nx}x{self.ny} over {_fmt_rect(self.bounds)}"


class HilbertPartitioner(Partitioner):
    """Contiguous Hilbert ranges of a fine cell grid, balanced by weight.

    The bounds are cut into a ``side`` x ``side`` grid (``side`` a power of
    two), cells are ordered along the Hilbert curve — the executor's
    locality order — and the curve is sliced into ``num_shards`` contiguous
    ranges carrying near-equal total weight.  Weight is one unit per cell
    plus one per provided site, so dense regions get small shards and empty
    regions get large ones while every shard stays a connected run of the
    curve.

    Args:
        bounds: the rectangle the cell grid tiles (clamped like the grid
            partitioner's).
        shards: number of ranges to cut.
        sites: optional ``(x, y)`` locations whose density balances the
            cut; omit for pure area balancing.
        order: grid refinement; ``side = 2 ** order`` cells per axis.
    """

    def __init__(self, bounds: Rect, shards: int,
                 sites: Sequence[Tuple[float, float]] = (), order: int = 4):
        if shards < 1:
            raise ValueError("need at least one shard")
        if not 1 <= order <= 8:
            raise ValueError("order must be in [1, 8]")
        side = 1 << order
        if shards > side * side:
            raise ValueError(f"{shards} shards need a finer grid than "
                             f"{side}x{side} (raise order)")
        self._grid = _CellGrid(bounds, side, side)
        self.bounds = bounds
        self.side = side
        self.num_shards = shards

        weight = [1] * (side * side)
        for x, y in sites:
            cx, cy = self._grid.cell_of(float(x), float(y))
            weight[hilbert_index(side, cx, cy)] += 1
        total = sum(weight)
        # Walk the curve, cutting whenever the running weight passes the
        # next equal-share boundary but never leaving a later shard empty.
        self._shard_of_cell: List[int] = [0] * (side * side)
        sid, acc = 0, 0
        for h in range(side * side):
            remaining_cells = side * side - h
            if (sid < shards - 1
                    and (acc >= (sid + 1) * total / shards
                         or remaining_cells <= shards - 1 - sid)):
                sid += 1
            self._shard_of_cell[h] = sid
            acc += weight[h]

    def shard_of(self, x: float, y: float) -> int:
        cx, cy = self._grid.cell_of(x, y)
        return self._shard_of_cell[hilbert_index(self.side, cx, cy)]

    def shards_for_rect(self, rect: Rect) -> FrozenSet[int]:
        return frozenset(
            self._shard_of_cell[hilbert_index(self.side, cx, cy)]
            for cx, cy in self._grid.cells_for_rect(rect))

    def describe(self) -> str:
        return (f"hilbert ranges ({self.side}x{self.side} cells) over "
                f"{_fmt_rect(self.bounds)}")


def _fmt_rect(r: Rect) -> str:
    return f"[{r.xlo:g}, {r.xhi:g}] x [{r.ylo:g}, {r.yhi:g}]"


def bounds_of(points: Iterable[Tuple[float, float]],
              rects: Iterable[Rect] = ()) -> Rect:
    """A bounding rectangle over site locations and obstacle MBRs.

    Degenerate extents are padded so the partitioners always get a
    positive-area rectangle to tile.
    """
    xs: List[float] = []
    ys: List[float] = []
    for x, y in points:
        xs.append(float(x))
        ys.append(float(y))
    rlist = list(rects)
    for r in rlist:
        xs.extend((r.xlo, r.xhi))
        ys.extend((r.ylo, r.yhi))
    if not xs:
        return Rect(0.0, 0.0, 1.0, 1.0)
    rect = Rect(min(xs), min(ys), max(xs), max(ys))
    pad = 0.5 * max(rect.width, rect.height, 1e-6) * 1e-9
    if rect.width <= 0:
        rect = Rect(rect.xlo - 0.5, rect.ylo, rect.xhi + 0.5, rect.yhi)
    if rect.height <= 0:
        rect = Rect(rect.xlo, rect.ylo - 0.5, rect.xhi, rect.yhi + 0.5)
    return rect.expanded(pad)
