"""Sharded workspaces: spatial partitioning with exact cross-shard answers.

This package splits one logical dataset across several independent
:class:`~repro.service.workspace.Workspace` shards by location — a
:class:`GridPartitioner` (uniform rectangles) or :class:`HilbertPartitioner`
(weight-balanced contiguous ranges of the executor's locality curve) decides
ownership — and puts a router in front that keeps every answer
**byte-identical** to the unsharded workspace:

1. a query first runs against the shard(s) its footprint touches;
2. the answer's *influence ball* (the same bound the monitor subsystem's
   affected-tests use) is checked against the consulted shard regions;
3. while the ball leaks outside, the consulted set grows and the query
   re-runs on a merged environment — the **border-expansion protocol** —
   until the answer provably cannot depend on any unconsulted shard.

Updates fan out through :meth:`ShardedWorkspace.apply` to exactly the
shards they touch (boundary-straddling obstacles are replicated to every
overlapping shard and deduplicated on merge), standing monitors are pinned
to their owning shards and re-homed when updates move them, and
:meth:`ShardedWorkspace.execute_many` schedules shard-local batches across
the thread/fork worker pool.  Per-query routing behavior is reported as a
:class:`ShardStats` block on ``result.stats.shard`` and in ``explain()``.
"""

from .monitors import ShardMonitor, ShardMonitorRegistry
from .partition import (
    GridPartitioner,
    HilbertPartitioner,
    Partitioner,
    bounds_of,
)
from .sharded import MERGE_CACHE_CAP, ShardedSnapshot, ShardedWorkspace
from .stats import ShardStats

__all__ = [
    "GridPartitioner",
    "HilbertPartitioner",
    "MERGE_CACHE_CAP",
    "Partitioner",
    "ShardMonitor",
    "ShardMonitorRegistry",
    "ShardStats",
    "ShardedSnapshot",
    "ShardedWorkspace",
    "bounds_of",
]
