"""Standing queries over a sharded workspace: pinned, re-homed, exact.

A :class:`ShardMonitor` is the sharded analogue of
:class:`~repro.monitor.monitor.Monitor`: one registered query plus its
standing result, kept *pointwise exact* under every update applied through
:meth:`ShardedWorkspace.apply`.  The division of labor differs from the
unsharded registry:

* the monitor is **pinned** to the shard set its answer's influence ball
  currently touches (``monitor.home``) — the same set the router consulted
  to produce the standing result;
* the affected-test is the unsharded one (the influence-ball argument of
  :func:`~repro.monitor.monitor.influence_radius`): updates whose footprint
  stays Euclidean-farther than the influence radius are dismissed without
  touching any shard;
* an accepted update re-executes the query through the border-expansion
  router — which lands on the pinned set's cached merged environment when
  the ball has not moved, and **re-homes** the monitor (a
  ``stats.rehomes`` tick) when the update pushed the ball across a shard
  edge.

Result deltas are computed with the same
:func:`~repro.monitor.monitor.diff_intervals` /
:func:`~repro.monitor.monitor.diff_neighbors` machinery the unsharded
monitors use, so a sharded monitor's delta stream is identical to its
unsharded twin's (asserted by the equivalence suite).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from ..geometry.predicates import EPS
from ..monitor.monitor import (
    EMPTY_DELTA,
    NO_OP,
    RERUN,
    MonitorEvent,
    ResultDelta,
    diff_intervals,
    diff_neighbors,
    influence_radius,
)
from ..monitor.registry import MaintenanceStats
from ..query.queries import CoknnQuery, OnnQuery, Query, RangeQuery
from ..service.updates import RemoveSite, Update

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sharded import ShardedWorkspace


class ShardMonitor:
    """One standing query pinned to its owning shard set.

    Attributes:
        id: registry-assigned identity.
        query: the registered typed query description.
        result: the standing answer, always equal to a fresh execution on
            the current cross-shard dataset.
        home: the shard ids the standing answer currently depends on (the
            router's final set); updated on re-home.
        events: recent :class:`~repro.monitor.monitor.MonitorEvent`
            objects, oldest first, capped at :attr:`max_events`.
        callback: optional ``callable(event)`` invoked on each update.
    """

    max_events = 256
    """History bound for :attr:`events`; older events are dropped."""

    def __init__(self, sharded: "ShardedWorkspace", mid: int, query: Query,
                 callback: Optional[Callable[[MonitorEvent], None]] = None):
        self._sws = sharded
        self.id = mid
        self.query = query
        self.callback = callback
        self.events: List[MonitorEvent] = []
        self.active = True
        self.result = sharded.execute(query)
        self.home = frozenset(self.result.stats.shard.by_shard)

    def _quick_distance(self, update: Update) -> float:
        """Euclidean distance from the update footprint to the query."""
        footprint = update.footprint()
        if isinstance(self.query, CoknnQuery):
            s = self.query.segment
            return footprint.mindist_segment(s.ax, s.ay, s.bx, s.by)
        x, y = self.query.point
        return footprint.mindist_segment(x, y, x, y)

    def _delta(self, old_result) -> ResultDelta:
        if isinstance(self.query, CoknnQuery):
            return ResultDelta(intervals=diff_intervals(
                old_result.knn_intervals(), self.result.knn_intervals()))
        return diff_neighbors(old_result.tuples(), self.result.tuples())

    def refresh(self, update: Update) -> MonitorEvent:
        """Maintain the standing result for one applied update."""
        action, delta = self._refresh(update)
        event = MonitorEvent(self, update, action, (), delta,
                             self._sws.version)
        self.events.append(event)
        if len(self.events) > self.max_events:
            del self.events[:len(self.events) - self.max_events]
        if self.callback is not None:
            self.callback(event)
        return event

    def _refresh(self, update: Update):
        if isinstance(update, RemoveSite) and not isinstance(
                self.query, CoknnQuery):
            # Point monitors: removal only matters for current answers.
            if not any(payload == update.payload
                       for payload, _d in self.result.tuples()):
                return NO_OP, EMPTY_DELTA
        elif self._quick_distance(update) > \
                influence_radius(self.query, self.result) + EPS:
            return NO_OP, EMPTY_DELTA
        old = self.result
        self.result = self._sws.execute(self.query)
        new_home = frozenset(self.result.stats.shard.by_shard)
        if new_home != self.home:
            self._sws.stats.rehomes += 1
            self.home = new_home
        return RERUN, self._delta(old)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardMonitor(id={self.id}, home={sorted(self.home)}, "
                f"query={self.query.describe()})")


class ShardMonitorRegistry:
    """Registered continuous queries of one sharded workspace.

    Obtained via :attr:`ShardedWorkspace.monitors`; mirrors the unsharded
    :class:`~repro.monitor.registry.MonitorRegistry` surface (``register``
    / ``unregister`` / iteration / :class:`MaintenanceStats`), with
    :class:`ShardMonitor` instances doing the per-query bookkeeping.
    """

    def __init__(self, sharded: "ShardedWorkspace"):
        self._sws = sharded
        self._monitors: Dict[int, ShardMonitor] = {}
        self._ids = itertools.count(1)
        self.stats = MaintenanceStats()

    def register(self, query: Query,
                 callback: Optional[Callable[[MonitorEvent], None]] = None
                 ) -> ShardMonitor:
        """Register ``query`` for continuous cross-shard maintenance."""
        if not isinstance(query, (CoknnQuery, OnnQuery, RangeQuery)):
            raise ValueError(
                f"no monitor for query kind "
                f"{getattr(query, 'kind', type(query).__name__)!r}: "
                "register a ConnQuery, CoknnQuery, OnnQuery or RangeQuery")
        monitor = ShardMonitor(self._sws, next(self._ids), query, callback)
        self._monitors[monitor.id] = monitor
        return monitor

    def unregister(self, monitor: ShardMonitor | int) -> bool:
        """Stop maintaining a monitor; True when it was registered."""
        mid = monitor.id if isinstance(monitor, ShardMonitor) else monitor
        found = self._monitors.pop(mid, None)
        if found is None:
            return False
        found.active = False
        return True

    def __len__(self) -> int:
        return len(self._monitors)

    def __iter__(self) -> Iterator[ShardMonitor]:
        return iter(self._monitors.values())

    def notify(self, update: Update) -> List[MonitorEvent]:
        """Fan one applied update out to every monitor (workspace hook)."""
        self.stats.updates += 1
        events = []
        for monitor in list(self._monitors.values()):
            if not monitor.active:
                continue
            events.append(monitor.refresh(update))
        for event in events:
            if event.action == NO_OP:
                self.stats.noops += 1
            else:
                self.stats.reruns += 1
            if not event.delta.empty:
                self.stats.deltas += 1
        return events
