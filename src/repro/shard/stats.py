"""Shard observability counters (:class:`ShardStats`).

One :class:`ShardStats` block exists at two granularities:

* per query — the router attaches a block to ``result.stats.shard``
  describing what *that* query did: which shards it consulted, how many
  border expansions it took to prove its influence ball covered;
* per workspace — :attr:`ShardedWorkspace.stats` accumulates every routed
  query plus structural counters (replicated obstacles, merged
  environments built/reused, monitor re-homings).

The block is deliberately dependency-free so :class:`~repro.core.stats.
QueryStats` can carry one without importing the shard subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ShardStats:
    """What sharded routing did — for one query or cumulatively."""

    queries: int = 0
    """Queries routed through the sharded workspace."""

    by_shard: Dict[int, int] = field(default_factory=dict)
    """Per-shard consult counts: ``shard id -> queries that read it``.
    A query that fanned out to three shards counts once in each."""

    border_expansions: int = 0
    """Expansion rounds past the first execution — times a query's
    influence ball crossed out of its current shard set and forced a
    wider re-execution."""

    fanout: int = 0
    """Total shards consulted, summed over queries (drives
    :attr:`fanout_ratio`)."""

    replicated_obstacles: int = 0
    """Extra obstacle copies currently stored because an obstacle's MBR
    straddles shard boundaries (an obstacle living in three shards
    contributes two).  Workspace-level only; zero on per-query blocks."""

    merges_built: int = 0
    """Cross-shard merged environments materialized by the router."""

    merge_reuses: int = 0
    """Cross-shard executions served by an already-materialized merged
    environment."""

    rehomes: int = 0
    """Standing monitors moved to a different owning shard set by a
    boundary-crossing update.  Workspace-level only."""

    route_time_s: float = 0.0
    """Seconds spent in each query's *first* execution against its home
    environment — the cost sharding can never remove."""

    reexec_time_s: float = 0.0
    """Seconds spent re-executing queries on widened shard sets after a
    border expansion — the protocol's repeated-work overhead."""

    merge_build_time_s: float = 0.0
    """Seconds spent obtaining the executing environment, dominated by
    materializing cross-shard merged workspaces (cache hits and
    single-shard lookups cost microseconds)."""

    @property
    def fanout_ratio(self) -> float:
        """Mean shards consulted per query (1.0 = perfectly shard-local)."""
        return self.fanout / self.queries if self.queries else 0.0

    @property
    def expansion_rate(self) -> float:
        """Fraction of queries that needed at least one border expansion."""
        return self.border_expansions / self.queries if self.queries else 0.0

    def merge(self, other: "ShardStats") -> None:
        """Accumulate another block's counters into this one."""
        self.queries += other.queries
        for sid, n in other.by_shard.items():
            self.by_shard[sid] = self.by_shard.get(sid, 0) + n
        self.border_expansions += other.border_expansions
        self.fanout += other.fanout
        self.replicated_obstacles += other.replicated_obstacles
        self.merges_built += other.merges_built
        self.merge_reuses += other.merge_reuses
        self.rehomes += other.rehomes
        self.route_time_s += other.route_time_s
        self.reexec_time_s += other.reexec_time_s
        self.merge_build_time_s += other.merge_build_time_s

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.queries:
            return "no sharded queries yet"
        busiest = ", ".join(
            f"s{sid}:{n}" for sid, n in sorted(self.by_shard.items()))
        return (f"{self.queries} queries, fan-out {self.fanout_ratio:.2f}, "
                f"{self.border_expansions} border expansions, "
                f"{self.replicated_obstacles} replicated obstacles "
                f"[{busiest}]")
