"""Query service layer: cross-query obstacle caching behind a facade.

The core algorithms (:mod:`repro.core`) answer one query at a time, paying
incremental obstacle retrieval (IOR) from zero on every call.  This package
amortizes that cost across a workload:

* :class:`Workspace` — owns one dataset's indexes (2T or 1T) plus a
  per-dataset :class:`ObstacleCache`, warmable via ``prefetch``, and the
  execution target of the declarative API (``plan`` / ``execute`` /
  ``execute_many`` / ``stream``, see :mod:`repro.query`);
* :class:`QueryService` — ``conn`` / ``coknn`` / ``onn`` / ``range`` /
  ``batch`` / ``trajectory`` / join entry points (shims over
  ``Workspace.execute``) plus the ``_run_*`` execution backend that serves
  obstacle retrieval rounds from the cache whenever its coverage
  bookkeeping proves the cached set complete for the requested footprint;
* :class:`CachedObstacleView` — the per-query obstacle feed, a drop-in
  sibling of :class:`repro.core.ior.ObstacleRetriever`.

The free functions ``repro.conn`` / ``repro.coknn`` / ... are thin wrappers
over a one-shot workspace, so the cold path and the classic API coincide.
"""

from .cache import (
    CachedObstacleView,
    CacheReadView,
    CacheStats,
    Capsule,
    ObstacleCache,
)
from .concurrency import CountingRLock, ReadWriteLock, SnapshotExpired
from .snapshot import WorkspaceSnapshot
from .updates import (
    AddObstacle,
    AddSite,
    RemoveObstacle,
    RemoveSite,
    Update,
)
from .workspace import QueryService, Workspace

__all__ = [
    "AddObstacle",
    "AddSite",
    "CachedObstacleView",
    "CacheReadView",
    "CacheStats",
    "Capsule",
    "CountingRLock",
    "ObstacleCache",
    "QueryService",
    "ReadWriteLock",
    "RemoveObstacle",
    "RemoveSite",
    "SnapshotExpired",
    "Update",
    "Workspace",
    "WorkspaceSnapshot",
]
