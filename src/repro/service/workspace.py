"""The :class:`Workspace` facade and :class:`QueryService`.

A workspace owns the indexes of one dataset — the 2T layout's separate data
and obstacle R*-trees, or the 1T unified tree — plus a per-dataset
:class:`~repro.service.cache.ObstacleCache`, and hands out a
:class:`QueryService` whose entry points (``conn``, ``coknn``, ``onn``,
``range``, ``batch``, ``trajectory``, and the obstructed joins) reuse cached
obstacles instead of re-running incremental obstacle retrieval from zero.

The free functions of :mod:`repro.core` (``conn``, ``coknn``,
``conn_single_tree``, ``trajectory_conn``, ...) are thin wrappers over a
one-shot workspace, so their behavior — results *and* I/O pattern — is the
cold path of the same machinery.  Build a workspace yourself whenever more
than one query hits the same dataset::

    ws = Workspace.from_trees(data_tree, obstacle_tree)
    ws.prefetch(region_of_interest, margin=50.0)   # optional warm-up
    results = ws.batch(queries, k=3)
    print(ws.cache_stats.hit_rate, results[0].stats.obstacle_reads)
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..core.config import DEFAULT_CONFIG, ConnConfig
from ..core.conn_1t import UnifiedSource, build_unified_tree
from ..core.engine import ConnResult, TreeDataSource, run_query
from ..core.joins import (
    obstructed_closest_pair,
    obstructed_e_distance_join,
    obstructed_semi_join,
)
from ..core.onn import PointScan, run_onn_scan
from ..core.range_query import run_range_scan
from ..core.stats import QueryStats
from ..core.trajectory import TrajectoryResult
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..index.rstar import RStarTree
from ..obstacles.obstacle import Obstacle
from ..obstacles.visgraph import LocalVisibilityGraph
from .cache import CacheStats, ObstacleCache


class _CachingUnifiedSource(UnifiedSource):
    """1T source that harvests de-heaped obstacles into the workspace cache.

    The unified scan must traverse the tree for data points regardless, so
    the cache cannot skip 1T page reads; harvesting still makes the
    obstacles available to prefetch inspection and to any 2T-style consumers
    sharing the cache.
    """

    def __init__(self, tree: RStarTree, qseg: Segment,
                 vg: LocalVisibilityGraph, stats: QueryStats,
                 cache: ObstacleCache):
        super().__init__(tree, qseg, vg, stats)
        self._cache = cache

    def _route_obstacle(self, obstacle: Obstacle) -> int:
        self._cache.add(obstacle)
        return super()._route_obstacle(obstacle)


class Workspace:
    """Shared state for answering many queries over one dataset.

    Args:
        data_tree: R*-tree over data points (2T layout).
        obstacle_tree: R*-tree over obstacles (2T layout).
        unified_tree: one R*-tree holding both (1T layout); mutually
            exclusive with the pair above.
        config: default pruning configuration for queries.
        overfetch: obstacle-cache scan depth multiplier (see
            :class:`~repro.service.cache.ObstacleCache`); ``1.0`` keeps the
            cold I/O pattern bit-identical to the free functions.
    """

    def __init__(self, data_tree: Optional[RStarTree] = None,
                 obstacle_tree: Optional[RStarTree] = None,
                 unified_tree: Optional[RStarTree] = None, *,
                 config: ConnConfig = DEFAULT_CONFIG,
                 overfetch: float = 1.0):
        if unified_tree is not None:
            if data_tree is not None or obstacle_tree is not None:
                raise ValueError("pass either unified_tree or the "
                                 "data/obstacle tree pair, not both")
            self.layout = "1T"
        else:
            if data_tree is None or obstacle_tree is None:
                raise ValueError("the 2T layout needs both data_tree and "
                                 "obstacle_tree")
            self.layout = "2T"
        self.data_tree = data_tree
        self.obstacle_tree = obstacle_tree
        self.unified_tree = unified_tree
        self.config = config
        self.cache = ObstacleCache(
            obstacle_tree if obstacle_tree is not None else unified_tree,
            overfetch=overfetch)
        self._service = QueryService(self)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_trees(cls, data_tree: RStarTree, obstacle_tree: RStarTree,
                   **kwargs: Any) -> "Workspace":
        """A 2T workspace over existing trees."""
        return cls(data_tree=data_tree, obstacle_tree=obstacle_tree, **kwargs)

    @classmethod
    def from_unified(cls, tree: RStarTree, **kwargs: Any) -> "Workspace":
        """A 1T workspace over a tree built by ``build_unified_tree``."""
        return cls(unified_tree=tree, **kwargs)

    @classmethod
    def from_points(cls, points: Iterable[Tuple[Any, Tuple[float, float]]],
                    obstacles: Iterable[Obstacle], layout: str = "2T",
                    page_size: int = 4096, **kwargs: Any) -> "Workspace":
        """Bulk-load fresh indexes from raw points and obstacles.

        Args:
            points: iterable of ``(payload, (x, y))``.
            obstacles: iterable of :class:`~repro.obstacles.obstacle.Obstacle`.
            layout: ``"2T"`` (separate trees, the paper's default) or
                ``"1T"`` (one unified tree).
        """
        points = list(points)
        obstacles = list(obstacles)
        if layout == "1T":
            return cls.from_unified(
                build_unified_tree(points, obstacles, page_size=page_size),
                **kwargs)
        if layout != "2T":
            raise ValueError(f"unknown layout {layout!r}")
        data_tree = RStarTree.bulk_load(
            ((pid, Rect.point(x, y)) for pid, (x, y) in points),
            page_size=page_size)
        obstacle_tree = RStarTree.bulk_load(
            ((o, o.mbr()) for o in obstacles), page_size=page_size)
        return cls.from_trees(data_tree, obstacle_tree, **kwargs)

    # -------------------------------------------------------------- warm-up
    def prefetch(self, rect: Rect, margin: float = 0.0) -> int:
        """Warm the obstacle cache for a rectangular region of interest."""
        return self.cache.prefetch(rect, margin=margin)

    def prefetch_segment(self, segment: Segment, radius: float) -> int:
        """Warm the cache for everything within ``radius`` of ``segment``."""
        return self.cache.prefetch_segment(segment, radius)

    def prefetch_all(self) -> int:
        """Load the entire obstacle set; no query reads the tree afterwards."""
        return self.cache.prefetch_all()

    @property
    def cache_stats(self) -> CacheStats:
        """Cumulative obstacle-cache counters across every query so far."""
        return self.cache.stats

    # ------------------------------------------------------------- querying
    @property
    def service(self) -> "QueryService":
        """The query service bound to this workspace."""
        return self._service

    def conn(self, query: Segment,
             config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed NN query (k = 1) on this workspace."""
        return self._service.conn(query, config=config)

    def coknn(self, query: Segment, k: int = 1,
              config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed k-NN query on this workspace."""
        return self._service.coknn(query, k=k, config=config)

    def onn(self, x: float, y: float, k: int = 1,
            config: Optional[ConnConfig] = None
            ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """Snapshot obstructed k-NN at a point on this workspace."""
        return self._service.onn(x, y, k=k, config=config)

    def range(self, x: float, y: float, radius: float
              ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """Obstructed range query at a point on this workspace."""
        return self._service.range(x, y, radius)

    def batch(self, queries: Sequence[Segment], k: int = 1,
              config: Optional[ConnConfig] = None) -> List[ConnResult]:
        """Answer a batch of CONN/COkNN queries sharing cached obstacles."""
        return self._service.batch(queries, k=k, config=config)

    def trajectory(self, waypoints: Sequence[Tuple[float, float]], k: int = 1,
                   config: Optional[ConnConfig] = None) -> TrajectoryResult:
        """Trajectory CONN/COkNN; adjacent legs share retrieved obstacles."""
        return self._service.trajectory(waypoints, k=k, config=config)


class QueryService:
    """Query execution over a :class:`Workspace`'s shared obstacle cache.

    Every entry point matches the semantics of the corresponding free
    function of :mod:`repro.core` exactly — identical owners, split points
    and distances — while serving obstacle retrieval rounds from the
    workspace cache whenever a coverage capsule proves the cache complete
    for the requested footprint.  Per-query cache behavior is reported in
    ``result.stats`` (``cache_hits`` / ``cache_misses`` / ``cache_served`` /
    ``obstacle_reads``).
    """

    def __init__(self, workspace: Workspace):
        self._ws = workspace

    def _config(self, config: Optional[ConnConfig]) -> ConnConfig:
        return config if config is not None else self._ws.config

    def _open(self, anchor: Segment, vg: LocalVisibilityGraph,
              stats: QueryStats, data_source_factory):
        """Layout dispatch shared by every query kind.

        Returns ``(source, retriever, trackers, finish)`` where ``finish()``
        must run after the scan to charge the obstacle index's logical reads
        to ``stats.obstacle_reads`` (the unified tree's reads under 1T,
        where data and obstacle pages are not separable).
        """
        ws = self._ws
        if ws.layout == "2T":
            tracker = ws.obstacle_tree.tracker
            retriever = ws.cache.view(anchor, vg, stats)
            source = data_source_factory()
            trackers = (ws.data_tree.tracker, ws.obstacle_tree.tracker)
        else:
            tracker = ws.unified_tree.tracker
            source = retriever = _CachingUnifiedSource(
                ws.unified_tree, anchor, vg, stats, ws.cache)
            trackers = (ws.unified_tree.tracker,)
        snap = tracker.stats.snapshot()

        def finish() -> None:
            stats.obstacle_reads = tracker.stats.delta(snap).logical_reads

        return source, retriever, trackers, finish

    # ------------------------------------------------------------ conn/coknn
    def coknn(self, query: Segment, k: int = 1,
              config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed k-NN of every point of ``query``."""
        if query.is_degenerate():
            raise ValueError("query segment is degenerate; use onn() for "
                             "points")
        cfg = self._config(config)
        stats = QueryStats()
        vg = LocalVisibilityGraph(query)
        source, retriever, trackers, finish = self._open(
            query, vg, stats,
            lambda: TreeDataSource(self._ws.data_tree, query))
        result = run_query(source, retriever, vg, query, k, cfg, trackers,
                           stats)
        finish()
        return result

    def conn(self, query: Segment,
             config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed nearest-neighbor query (k = 1)."""
        return self.coknn(query, k=1, config=config)

    # --------------------------------------------------------------- points
    def onn(self, x: float, y: float, k: int = 1,
            config: Optional[ConnConfig] = None
            ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """The ``k`` obstructed nearest neighbors of point ``(x, y)``.

        Works on both layouts (the 1T path routes the unified scan's
        obstacles straight into the visibility graph).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        cfg = self._config(config)
        stats = QueryStats()
        anchor = Segment(x, y, x, y)
        vg = LocalVisibilityGraph(anchor)
        source, retriever, trackers, finish = self._open(
            anchor, vg, stats, lambda: PointScan(self._ws.data_tree, x, y))
        neighbors = run_onn_scan(source, retriever, vg, k, cfg, stats,
                                 trackers)
        finish()
        return neighbors, stats

    def range(self, x: float, y: float, radius: float
              ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """All points within obstructed distance ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        stats = QueryStats()
        anchor = Segment(x, y, x, y)
        vg = LocalVisibilityGraph(anchor)
        source, retriever, trackers, finish = self._open(
            anchor, vg, stats, lambda: PointScan(self._ws.data_tree, x, y))
        matches = run_range_scan(source, retriever, vg, radius, stats,
                                 trackers)
        finish()
        return matches, stats

    # ------------------------------------------------------------ composites
    def batch(self, queries: Sequence[Segment], k: int = 1,
              config: Optional[ConnConfig] = None) -> List[ConnResult]:
        """Answer many CONN/COkNN queries; later ones reuse cached obstacles."""
        return [self.coknn(q, k=k, config=config) for q in queries]

    def trajectory(self, waypoints: Sequence[Tuple[float, float]],
                   k: int = 1,
                   config: Optional[ConnConfig] = None) -> TrajectoryResult:
        """Trajectory CONN/COkNN along a polyline.

        Each leg runs the standard engine with its own visibility graph
        (keeping per-leg pruning radii tight), but all legs draw obstacles
        from the shared cache, so adjacent legs — whose retrieval footprints
        overlap around the common waypoint — stop re-reading the obstacle
        tree for obstacles the previous leg already fetched.
        """
        if len(waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        legs: List[ConnResult] = []
        for (ax, ay), (bx, by) in zip(waypoints, waypoints[1:]):
            seg = Segment(float(ax), float(ay), float(bx), float(by))
            if seg.is_degenerate():
                continue
            legs.append(self.coknn(seg, k=k, config=config))
        if not legs:
            raise ValueError("trajectory has no leg of positive length")
        return TrajectoryResult(waypoints, legs, k)

    # ----------------------------------------------------------------- joins
    def _require_2t(self, what: str) -> RStarTree:
        if self._ws.layout != "2T":
            raise ValueError(f"{what} needs the 2T layout (a dedicated "
                             "obstacle tree)")
        return self._ws.obstacle_tree

    def e_distance_join(self, tree_a: RStarTree, tree_b: RStarTree,
                        e: float) -> Tuple[List[Tuple[Any, Any, float]],
                                           QueryStats]:
        """All cross pairs within obstructed distance ``e`` (shared cache)."""
        obstacle_tree = self._require_2t("e_distance_join")
        return obstructed_e_distance_join(tree_a, tree_b, obstacle_tree, e,
                                          cache=self._ws.cache)

    def closest_pair(self, tree_a: RStarTree, tree_b: RStarTree
                     ) -> Tuple[Optional[Tuple[Any, Any, float]], QueryStats]:
        """The cross-set pair with the smallest obstructed distance."""
        obstacle_tree = self._require_2t("closest_pair")
        return obstructed_closest_pair(tree_a, tree_b, obstacle_tree,
                                       cache=self._ws.cache)

    def semi_join(self, tree_a: RStarTree, tree_b: RStarTree
                  ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
        """For each point of ``tree_a``: its obstructed NN in ``tree_b``."""
        obstacle_tree = self._require_2t("semi_join")
        return obstructed_semi_join(tree_a, tree_b, obstacle_tree,
                                    cache=self._ws.cache)
