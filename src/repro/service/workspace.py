"""The :class:`Workspace` facade and :class:`QueryService`.

A workspace owns the indexes of one dataset — the 2T layout's separate data
and obstacle R*-trees, or the 1T unified tree — plus a per-dataset
:class:`~repro.service.cache.ObstacleCache`, and is the execution target of
the declarative query API (:mod:`repro.query`):

* :meth:`Workspace.plan` turns a typed query description into a
  :class:`~repro.query.planner.QueryPlan` (algorithm + layout selection,
  capsule-based obstacle-I/O estimate, human-readable ``explain()``);
* :meth:`Workspace.execute` runs one query, :meth:`Workspace.stream` runs a
  lazy sequence, and :meth:`Workspace.execute_many` runs a batch reordered
  by spatial locality with capsule-driven prefetches — results always come
  back in submission order;
* the classic convenience methods (``conn``, ``coknn``, ``onn``, ``range``,
  ``batch``, ``trajectory``, the obstructed joins) and the free functions
  of :mod:`repro.core` are thin shims over ``execute()``, so the planner is
  the single code path for every query in the library.

Build a workspace whenever more than one query hits the same dataset::

    ws = Workspace.from_trees(data_tree, obstacle_tree)
    print(ws.plan(CoknnQuery(seg, knn=3)).explain())
    results = ws.execute_many([CoknnQuery(s) for s in segments])
    print(ws.cache_stats.hit_rate, results[0].stats.obstacle_reads)
"""

from __future__ import annotations

import threading

from typing import (
    Any,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


from ..core.config import DEFAULT_CONFIG, ConnConfig
from ..core.conn_1t import UnifiedSource, build_unified_tree
from ..core.engine import ConnResult, TreeDataSource, run_query
from ..core.joins import (
    _closest_pair_impl,
    _e_distance_join_impl,
    _semi_join_impl,
)
from ..core.onn import PointScan, run_onn_scan
from ..core.range_query import run_range_scan
from ..core.stats import QueryStats
from ..core.trajectory import TrajectoryResult
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..index.rstar import RStarTree
from ..obstacles.obstacle import Obstacle
from ..query.executor import execute as _execute
from ..query.executor import execute_many as _execute_many
from ..query.planner import DEFAULT_PLANNER, PlannerOptions, QueryPlan, build_plan
from ..query.queries import (
    ClosestPairQuery,
    CoknnQuery,
    ConnQuery,
    EDistanceJoinQuery,
    OnnQuery,
    Query,
    RangeQuery,
    SemiJoinQuery,
    TrajectoryQuery,
    as_query_point,
    as_range_args,
)
from ..query.results import QueryResult
from ..routing.config import DEFAULT_ROUTING, RoutingConfig
from ..routing.backends import (
    PER_QUERY_VG,
    SHARED_VG,
    ObstructedDistanceBackend,
    ObstructedGraph,
    PerQueryVGBackend,
    SharedVGBackend,
)
from .cache import CacheStats, ObstacleCache
from .concurrency import ReadWriteLock
from .snapshot import WorkspaceSnapshot
from .updates import (
    AddObstacle,
    AddSite,
    RemoveObstacle,
    RemoveSite,
    Update,
)


class _CachingUnifiedSource(UnifiedSource):
    """1T source that harvests de-heaped obstacles into the workspace cache.

    The unified scan must traverse the tree for data points regardless, so
    the cache cannot skip 1T page reads; harvesting still makes the
    obstacles available to prefetch inspection and to any 2T-style consumers
    sharing the cache.
    """

    def __init__(self, tree: RStarTree, qseg: Segment,
                 vg: ObstructedGraph, stats: QueryStats,
                 cache: ObstacleCache):
        super().__init__(tree, qseg, vg, stats)
        self._cache = cache

    def _route_obstacle(self, obstacle: Obstacle) -> int:
        self._cache.add(obstacle)
        return super()._route_obstacle(obstacle)


class Workspace:
    """Shared state for answering many queries over one dataset.

    Args:
        data_tree: R*-tree over data points (2T layout).
        obstacle_tree: R*-tree over obstacles (2T layout).
        unified_tree: one R*-tree holding both (1T layout); mutually
            exclusive with the pair above.
        config: default pruning configuration for queries.
        overfetch: obstacle-cache scan depth multiplier (see
            :class:`~repro.service.cache.ObstacleCache`); ``1.0`` keeps the
            cold I/O pattern bit-identical to the free functions.
        planner: :class:`~repro.query.planner.PlannerOptions` — algorithm
            fallback threshold and batch-scheduler knobs.
        routing: :class:`~repro.routing.RoutingConfig` — which substrate
            engine (array-native hot path vs scalar parity oracle) both
            distance backends run on.  Answers are byte-identical either
            way.
    """

    def __init__(self, data_tree: Optional[RStarTree] = None,
                 obstacle_tree: Optional[RStarTree] = None,
                 unified_tree: Optional[RStarTree] = None, *,
                 config: ConnConfig = DEFAULT_CONFIG,
                 overfetch: float = 1.0,
                 planner: PlannerOptions = DEFAULT_PLANNER,
                 routing: RoutingConfig = DEFAULT_ROUTING):
        if unified_tree is not None:
            if data_tree is not None or obstacle_tree is not None:
                raise ValueError("pass either unified_tree or the "
                                 "data/obstacle tree pair, not both")
            self.layout = "1T"
        else:
            if data_tree is None or obstacle_tree is None:
                raise ValueError("the 2T layout needs both data_tree and "
                                 "obstacle_tree")
            self.layout = "2T"
        self.data_tree = data_tree
        self.obstacle_tree = obstacle_tree
        self.unified_tree = unified_tree
        self.config = config
        self.planner = planner
        self.cache = ObstacleCache(
            obstacle_tree if obstacle_tree is not None else unified_tree,
            overfetch=overfetch)
        self.routing_config = routing
        """The substrate engine selection both backends were built with."""
        backing = obstacle_tree if obstacle_tree is not None else unified_tree
        self.routing = SharedVGBackend(backing, self.cache, routing=routing)
        """The workspace-shared obstructed-distance backend: one persistent
        visibility graph, patched by :meth:`apply` and selected by the
        planner for warm queries (see :mod:`repro.routing`)."""
        self.per_query_backend = PerQueryVGBackend(routing=routing)
        """The throwaway-graph backend cold one-shot queries run on."""
        self._service = QueryService(self)
        self.version = 0
        """Workspace mutation counter: bumped by every applied update.
        Prepared :class:`~repro.query.planner.QueryPlan` objects record the
        version they were planned at; the executor re-plans any plan whose
        recorded version no longer matches."""
        self._monitors = None
        self._rw = ReadWriteLock()
        self.snapshots_taken = 0
        """Snapshots handed out by :meth:`snapshot` (a concurrency-stats
        input)."""

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_trees(cls, data_tree: RStarTree, obstacle_tree: RStarTree,
                   **kwargs: Any) -> "Workspace":
        """A 2T workspace over existing trees."""
        return cls(data_tree=data_tree, obstacle_tree=obstacle_tree, **kwargs)

    @classmethod
    def from_unified(cls, tree: RStarTree, **kwargs: Any) -> "Workspace":
        """A 1T workspace over a tree built by ``build_unified_tree``."""
        return cls(unified_tree=tree, **kwargs)

    @classmethod
    def from_points(cls, points: Iterable[Tuple[Any, Tuple[float, float]]],
                    obstacles: Iterable[Obstacle], layout: str = "2T",
                    page_size: int = 4096, **kwargs: Any) -> "Workspace":
        """Bulk-load fresh indexes from raw points and obstacles.

        Args:
            points: iterable of ``(payload, (x, y))``.
            obstacles: iterable of :class:`~repro.obstacles.obstacle.Obstacle`.
            layout: ``"2T"`` (separate trees, the paper's default) or
                ``"1T"`` (one unified tree).
        """
        points = list(points)
        obstacles = list(obstacles)
        if layout == "1T":
            return cls.from_unified(
                build_unified_tree(points, obstacles, page_size=page_size),
                **kwargs)
        if layout != "2T":
            raise ValueError(f"unknown layout {layout!r}")
        data_tree = RStarTree.bulk_load(
            ((pid, Rect.point(x, y)) for pid, (x, y) in points),
            page_size=page_size)
        obstacle_tree = RStarTree.bulk_load(
            ((o, o.mbr()) for o in obstacles), page_size=page_size)
        return cls.from_trees(data_tree, obstacle_tree, **kwargs)

    # ------------------------------------------------------------ snapshots
    def read_lock(self):
        """The workspace's shared read hold (a context manager).

        Every query execution runs inside one; acquire it directly to pin
        the workspace across *several* operations — e.g. a parallel batch
        followed by a serial verification pass over the same state.
        Re-entrant per thread; updates (:meth:`apply`) wait until all read
        holds drain.
        """
        return self._rw.read()

    def snapshot(self) -> "WorkspaceSnapshot":
        """Pin the current workspace version for isolated execution.

        Cheap (a few integers; nothing is copied).  The returned
        :class:`~repro.service.snapshot.WorkspaceSnapshot` executes
        queries against exactly this version and raises
        :class:`~repro.service.concurrency.SnapshotExpired` once the
        workspace has moved on.
        """
        return WorkspaceSnapshot(self)

    @property
    def epoch_waits(self) -> int:
        """Times an update had to wait for in-flight snapshot queries."""
        return self._rw.write_waits

    # -------------------------------------------------------------- warm-up
    def prefetch(self, rect: Rect, margin: float = 0.0) -> int:
        """Warm the obstacle cache for a rectangular region of interest."""
        return self.cache.prefetch(rect, margin=margin)

    def prefetch_segment(self, segment: Segment, radius: float) -> int:
        """Warm the cache for everything within ``radius`` of ``segment``."""
        return self.cache.prefetch_segment(segment, radius)

    def prefetch_all(self) -> int:
        """Load the entire obstacle set; no query reads the tree afterwards."""
        return self.cache.prefetch_all()

    @property
    def cache_stats(self) -> CacheStats:
        """Cumulative obstacle-cache counters across every query so far."""
        return self.cache.stats

    # -------------------------------------------------------------- mutation
    @property
    def monitors(self):
        """The continuous-query registry bound to this workspace.

        Created on first access; see :mod:`repro.monitor`.  Registered
        monitors receive incremental repair on every applied update.
        """
        if self._monitors is None:
            from ..monitor.registry import MonitorRegistry

            self._monitors = MonitorRegistry(self)
        return self._monitors

    def add_site(self, payload: Any, x, y: Optional[float] = None) -> bool:
        """Insert a data point; accepts ``(payload, x, y)`` or a point-like."""
        pt = as_query_point(x, y)
        return self._apply_one(AddSite(payload, pt.x, pt.y))

    def remove_site(self, payload: Any, x,
                    y: Optional[float] = None) -> bool:
        """Delete a data point; True when it was found and removed."""
        pt = as_query_point(x, y)
        return self._apply_one(RemoveSite(payload, pt.x, pt.y))

    def add_obstacle(self, obstacle: Obstacle) -> bool:
        """Insert an obstacle, surgically patching the obstacle cache."""
        return self._apply_one(AddObstacle(obstacle))

    def remove_obstacle(self, obstacle: Obstacle) -> bool:
        """Delete an obstacle, evicting it from the obstacle cache.

        Returns:
            True when it was found and removed.
        """
        return self._apply_one(RemoveObstacle(obstacle))

    def apply(self, updates: Iterable[Update]) -> List[bool]:
        """Apply a batch of typed updates in order.

        Each update routes to the layout's R*-trees, maintains the obstacle
        cache surgically (insert patch / remove evict — never a silent
        stale serve), bumps :attr:`version`, and triggers incremental
        repair of every registered monitor.

        Returns:
            Per-update success flags (False only for removals that found
            nothing to remove).
        """
        return [self._apply_one(u) for u in updates]

    def _apply_one(self, update: Update) -> bool:
        """Route one update; returns False for a no-match removal.

        The index mutation, the cache/routing maintenance, and the version
        bump happen atomically under the workspace **write lock** — an
        update waits for in-flight snapshot queries to drain (an epoch
        wait) and no query can start until the trees, the obstacle cache,
        and the shared visibility graph have moved to the new version
        together.  Monitor repair runs *after* the write releases: repair
        executes queries of its own, which take read holds on the freshly
        published version.
        """
        with self._rw.write():
            if isinstance(update, (AddSite, RemoveSite)):
                tree = (self.data_tree if self.layout == "2T"
                        else self.unified_tree)
                if isinstance(update, AddSite):
                    tree.insert_point(update.payload, update.x, update.y)
                    applied = True
                else:
                    applied = tree.delete(update.payload,
                                          Rect.point(update.x, update.y))
                # On 1T the cache's backing tree just changed version, but
                # data points are invisible to obstacle coverage: adopt,
                # don't drop.
                if applied and self.layout == "1T":
                    self.cache.sync_tree_version()
                    self.routing.sync_tree_version()
            elif isinstance(update, (AddObstacle, RemoveObstacle)):
                tree = (self.obstacle_tree if self.layout == "2T"
                        else self.unified_tree)
                if isinstance(update, AddObstacle):
                    tree.insert(update.obstacle, update.obstacle.mbr())
                    self.cache.note_obstacle_insert(update.obstacle)
                    self.routing.note_obstacle_insert(update.obstacle)
                    applied = True
                else:
                    applied = tree.delete(update.obstacle,
                                          update.obstacle.mbr())
                    if applied:
                        self.cache.note_obstacle_remove(update.obstacle)
                        self.routing.note_obstacle_remove(update.obstacle)
            else:
                raise TypeError(
                    f"unknown update type {type(update).__name__}")
            if applied:
                self.version += 1
        if applied and self._monitors is not None:
            self._monitors.notify(update)
        return applied

    # ------------------------------------------------- declarative interface
    @property
    def service(self) -> "QueryService":
        """The query service bound to this workspace."""
        return self._service

    def backend_for(self, name: str) -> Optional[ObstructedDistanceBackend]:
        """Resolve a planned backend name to the workspace's instance.

        ``None`` for backends the engines do not attach (the joins'
        pairwise oracle manages its own graph).
        """
        if name == SHARED_VG:
            return self.routing
        if name == PER_QUERY_VG:
            return self.per_query_backend
        return None

    def plan(self, query: Query, backend: Optional[str] = None) -> QueryPlan:
        """Plan a typed query: algorithm, layout, backend, estimated I/O.

        The returned plan renders a human-readable transcript via
        ``plan.explain()`` and can be passed to :meth:`execute` to run
        exactly as planned.

        Args:
            backend: override the workspace's backend policy for this plan
                (``"shared"`` / ``"per-query"`` / ``"auto"``).
        """
        return build_plan(self, query, backend=backend)

    def execute(self, query: Query | QueryPlan) -> QueryResult:
        """Execute one typed query (or a prepared plan).

        Every result satisfies the unified protocol: ``.tuples()``,
        ``.stats``, and a ``.query`` back-reference to the submission.
        Execution runs inside a read hold, so a concurrent :meth:`apply`
        can never be observed mid-query.
        """
        with self._rw.read():
            return _execute(self, query)

    def execute_many(self, queries: Iterable[Query], *,
                     schedule: str = "locality", workers: int = 1,
                     mode: str = "thread") -> List[QueryResult]:
        """Execute a batch of typed queries, reordered for cache locality.

        With the default ``schedule="locality"`` the executor buckets
        queries by spatial proximity (grid + Hilbert order) and issues
        capsule-driven prefetches so cache hits compound across the batch;
        ``schedule="fifo"`` preserves submission order exactly.  Results
        are always returned in submission order.

        Args:
            workers: with ``workers > 1``, locality buckets are
                partitioned across a worker pool and executed in parallel
                against one snapshot of this workspace (results identical
                to serial execution; see :mod:`repro.query.parallel`).
            mode: ``"thread"`` (share this process's caches through their
                locks) or ``"fork"`` (fan out over forked worker
                processes — true multi-core parallelism; POSIX only).

        The whole batch runs under one read hold: concurrent updates wait
        for it to drain and every query of the batch sees the same
        workspace version.
        """
        if workers > 1:
            from ..query.parallel import execute_many_parallel

            # Snapshot *inside* the read hold: this entry point promises
            # plain thread-safety, so a concurrent apply() between pinning
            # and verification must wait for the batch rather than expire
            # it (explicit snapshots, which can expire, stay available via
            # WorkspaceSnapshot.execute_many).
            with self._rw.read():
                return execute_many_parallel(self.snapshot(), queries,
                                             schedule=schedule,
                                             workers=workers, mode=mode)
        with self._rw.read():
            return _execute_many(self, queries, schedule=schedule)

    def stream(self, queries: Iterable[Query]) -> Iterator[QueryResult]:
        """Lazily execute ``queries`` in submission order as an iterator.

        Each query takes its own read hold as the iterator advances —
        updates may interleave *between* queries of a stream (use
        :meth:`snapshot` + :meth:`~WorkspaceSnapshot.execute` to pin one
        version across a whole stream instead).
        """
        return (self.execute(q) for q in queries)

    # ------------------------------------------------------ legacy shortcuts
    def conn(self, query: Segment,
             config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed NN query (k = 1) on this workspace."""
        return self.execute(ConnQuery(query, config=config))

    def coknn(self, query: Segment, k: int = 1,
              config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed k-NN query on this workspace."""
        return self.execute(CoknnQuery(query, k, config=config))

    def onn(self, x, y: Optional[float] = None, k: int = 1,
            config: Optional[ConnConfig] = None
            ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """Snapshot obstructed k-NN at a point on this workspace.

        The point may be given as bare floats ``onn(x, y)``, as one tuple
        ``onn((x, y))``, or as a :class:`~repro.geometry.point.Point`.
        """
        res = self.execute(OnnQuery(as_query_point(x, y), k, config=config))
        return res.tuples(), res.stats

    def range(self, x, y: Optional[float] = None,
              radius: Optional[float] = None
              ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """Obstructed range query at a point on this workspace.

        Accepts ``range(x, y, radius)``, ``range((x, y), radius)``, or
        ``range(Point(x, y), radius)``.
        """
        point, r = as_range_args(x, y, radius)
        res = self.execute(RangeQuery(point, r))
        return res.tuples(), res.stats

    def batch(self, queries: Sequence[Segment], k: int = 1,
              config: Optional[ConnConfig] = None) -> List[ConnResult]:
        """Answer CONN/COkNN queries in submission order, sharing the cache.

        The legacy fifo batch; use :meth:`execute_many` for the
        locality-scheduled planner path.
        """
        return self.execute_many(
            [CoknnQuery(q, k, config=config) for q in queries],
            schedule="fifo")

    def trajectory(self, waypoints: Sequence[Tuple[float, float]], k: int = 1,
                   config: Optional[ConnConfig] = None) -> TrajectoryResult:
        """Trajectory CONN/COkNN; adjacent legs share retrieved obstacles."""
        return self.execute(TrajectoryQuery(tuple(waypoints), k,
                                            config=config))


class QueryService:
    """Query execution over a :class:`Workspace`'s shared obstacle cache.

    The public entry points are thin shims over the workspace's
    :meth:`~Workspace.execute` (so the planner stays the single code path);
    the private ``_run_*`` methods are the execution backend the
    :mod:`repro.query.executor` dispatches to.  Every entry point matches
    the semantics of the corresponding free function of :mod:`repro.core`
    exactly — identical owners, split points and distances — while serving
    obstacle retrieval rounds from the workspace cache whenever a coverage
    capsule proves the cache complete for the requested footprint.
    Per-query cache behavior is reported in ``result.stats``
    (``cache_hits`` / ``cache_misses`` / ``cache_served`` /
    ``obstacle_reads``).
    """

    def __init__(self, workspace: Workspace):
        self._ws = workspace
        self._pool = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()

    # --------------------------------------------------- async serving front
    def serve(self, workers: int = 2) -> "QueryService":
        """Start (or resize) the service's background worker pool.

        After ``serve``, :meth:`submit` dispatches queries to the pool and
        returns futures immediately.  Usable as a context manager::

            with ws.service.serve(workers=4) as svc:
                futures = [svc.submit(q) for q in queries]
                answers = [f.result() for f in futures]
        """
        from concurrent.futures import ThreadPoolExecutor

        with self._pool_lock:
            if self._pool is not None and self._pool_workers != workers:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serve")
                self._pool_workers = workers
        return self

    def submit(self, query: Query):
        """Submit one typed query for asynchronous execution.

        Returns:
            A :class:`concurrent.futures.Future` resolving to the query's
            unified result.  Each submitted query executes under its own
            read hold (one consistent workspace version per query);
            submissions may interleave freely with :meth:`Workspace.apply`
            from other threads.  Starts a default pool on first use if
            :meth:`serve` was not called.
        """
        from concurrent.futures import ThreadPoolExecutor

        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="repro-serve")
                self._pool_workers = 2
            return self._pool.submit(self._ws.execute, query)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the background pool (no-op when never started)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait)
                self._pool = None
                self._pool_workers = 0

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def _config(self, config: Optional[ConnConfig]) -> ConnConfig:
        return config if config is not None else self._ws.config

    def _backend(self, backend: Optional[ObstructedDistanceBackend]
                 ) -> ObstructedDistanceBackend:
        return (backend if backend is not None
                else self._ws.per_query_backend)

    def _open(self, anchor: Segment, vg: ObstructedGraph,
              stats: QueryStats, data_source_factory):
        """Layout dispatch shared by every query kind.

        Returns ``(source, retriever, trackers, finish)`` where ``finish()``
        must run after the scan to charge the obstacle index's logical reads
        to ``stats.obstacle_reads`` (the unified tree's reads under 1T,
        where data and obstacle pages are not separable).
        """
        ws = self._ws
        if ws.layout == "2T":
            tracker = ws.obstacle_tree.tracker
            retriever = ws.cache.view(anchor, vg, stats)
            source = data_source_factory()
            trackers = (ws.data_tree.tracker, ws.obstacle_tree.tracker)
        else:
            tracker = ws.unified_tree.tracker
            source = retriever = _CachingUnifiedSource(
                ws.unified_tree, anchor, vg, stats, ws.cache)
            trackers = (ws.unified_tree.tracker,)
        snap = tracker.local_stats.snapshot()

        def finish() -> None:
            stats.obstacle_reads = \
                tracker.local_stats.delta(snap).logical_reads

        return source, retriever, trackers, finish

    # ------------------------------------------------------------ conn/coknn
    def coknn(self, query: Segment, k: int = 1,
              config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed k-NN of every point of ``query``."""
        return self._ws.execute(CoknnQuery(query, k, config=config))

    def conn(self, query: Segment,
             config: Optional[ConnConfig] = None) -> ConnResult:
        """Continuous obstructed nearest-neighbor query (k = 1)."""
        return self._ws.execute(ConnQuery(query, config=config))

    def _run_coknn(self, query: Segment, k: int,
                   config: Optional[ConnConfig],
                   backend: Optional[ObstructedDistanceBackend] = None
                   ) -> ConnResult:
        cfg = self._config(config)
        stats = QueryStats()
        with self._backend(backend).attach_endpoints(query, stats) as vg:
            source, retriever, trackers, finish = self._open(
                query, vg, stats,
                lambda: TreeDataSource(self._ws.data_tree, query))
            result = run_query(source, retriever, vg, query, k, cfg,
                               trackers, stats)
        finish()
        return result

    # --------------------------------------------------------------- points
    def onn(self, x, y: Optional[float] = None, k: int = 1,
            config: Optional[ConnConfig] = None
            ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """The ``k`` obstructed nearest neighbors of a point.

        Works on both layouts (the 1T path routes the unified scan's
        obstacles straight into the visibility graph); accepts bare floats,
        an ``(x, y)`` tuple, or a :class:`~repro.geometry.point.Point`.
        """
        return self._ws.onn(x, y, k=k, config=config)

    def _run_onn(self, x: float, y: float, k: int,
                 config: Optional[ConnConfig],
                 backend: Optional[ObstructedDistanceBackend] = None
                 ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        cfg = self._config(config)
        stats = QueryStats()
        anchor = Segment(x, y, x, y)
        with self._backend(backend).attach_endpoints(anchor, stats) as vg:
            source, retriever, trackers, finish = self._open(
                anchor, vg, stats,
                lambda: PointScan(self._ws.data_tree, x, y))
            neighbors = run_onn_scan(source, retriever, vg, k, cfg, stats,
                                     trackers)
        finish()
        return neighbors, stats

    def range(self, x, y: Optional[float] = None,
              radius: Optional[float] = None
              ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        """All points within obstructed distance ``radius`` of a point."""
        return self._ws.range(x, y, radius)

    def _run_range(self, x: float, y: float, radius: float,
                   backend: Optional[ObstructedDistanceBackend] = None
                   ) -> Tuple[List[Tuple[Any, float]], QueryStats]:
        stats = QueryStats()
        anchor = Segment(x, y, x, y)
        with self._backend(backend).attach_endpoints(anchor, stats) as vg:
            source, retriever, trackers, finish = self._open(
                anchor, vg, stats,
                lambda: PointScan(self._ws.data_tree, x, y))
            matches = run_range_scan(source, retriever, vg, radius, stats,
                                     trackers)
        finish()
        return matches, stats

    # ------------------------------------------------------------ composites
    def batch(self, queries: Sequence[Segment], k: int = 1,
              config: Optional[ConnConfig] = None) -> List[ConnResult]:
        """Answer many CONN/COkNN queries; later ones reuse cached obstacles."""
        return self._ws.batch(queries, k=k, config=config)

    def trajectory(self, waypoints: Sequence[Tuple[float, float]],
                   k: int = 1,
                   config: Optional[ConnConfig] = None) -> TrajectoryResult:
        """Trajectory CONN/COkNN along a polyline.

        Each leg runs the standard engine with its own visibility graph
        (keeping per-leg pruning radii tight), but all legs draw obstacles
        from the shared cache, so adjacent legs — whose retrieval footprints
        overlap around the common waypoint — stop re-reading the obstacle
        tree for obstacles the previous leg already fetched.
        """
        return self._ws.trajectory(waypoints, k=k, config=config)

    def _run_trajectory(self, waypoints: Sequence[Tuple[float, float]],
                        k: int, config: Optional[ConnConfig],
                        backend: Optional[ObstructedDistanceBackend] = None
                        ) -> TrajectoryResult:
        segs = [Segment(float(ax), float(ay), float(bx), float(by))
                for (ax, ay), (bx, by) in zip(waypoints, waypoints[1:])]
        segs = [s for s in segs if not s.is_degenerate()]
        if not segs:
            raise ValueError("trajectory has no leg of positive length")
        workers = self._ws.planner.parallel_workers
        if workers > 1 and len(segs) > 1:
            # Legs are independent sub-queries over one frozen workspace
            # state (the caller's read hold covers every worker thread's
            # nested reads): run them on a throwaway pool, keep submission
            # order.  Identical answers; this is what the planner's
            # ``est_parallel_speedup`` prices.
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                    max_workers=min(workers, len(segs))) as pool:
                legs = list(pool.map(
                    lambda seg: self._run_coknn(seg, k, config, backend),
                    segs))
        else:
            legs = [self._run_coknn(seg, k, config, backend) for seg in segs]
        return TrajectoryResult(waypoints, legs, k)

    # ----------------------------------------------------------------- joins
    def e_distance_join(self, tree_a: RStarTree, tree_b: RStarTree,
                        e: float) -> Tuple[List[Tuple[Any, Any, float]],
                                           QueryStats]:
        """All cross pairs within obstructed distance ``e`` (shared cache)."""
        res = self._ws.execute(EDistanceJoinQuery(tree_a, tree_b, e))
        return res.tuples(), res.stats

    def _run_e_distance_join(self, tree_a: RStarTree, tree_b: RStarTree,
                             e: float) -> Tuple[List[Tuple[Any, Any, float]],
                                                QueryStats]:
        return _e_distance_join_impl(tree_a, tree_b, self._ws.obstacle_tree,
                                     e, cache=self._ws.cache)

    def closest_pair(self, tree_a: RStarTree, tree_b: RStarTree
                     ) -> Tuple[Optional[Tuple[Any, Any, float]], QueryStats]:
        """The cross-set pair with the smallest obstructed distance."""
        res = self._ws.execute(ClosestPairQuery(tree_a, tree_b))
        return res.pair, res.stats

    def _run_closest_pair(self, tree_a: RStarTree, tree_b: RStarTree
                          ) -> Tuple[Optional[Tuple[Any, Any, float]],
                                     QueryStats]:
        return _closest_pair_impl(tree_a, tree_b, self._ws.obstacle_tree,
                                  cache=self._ws.cache)

    def semi_join(self, tree_a: RStarTree, tree_b: RStarTree
                  ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
        """For each point of ``tree_a``: its obstructed NN in ``tree_b``."""
        res = self._ws.execute(SemiJoinQuery(tree_a, tree_b))
        return res.tuples(), res.stats

    def _run_semi_join(self, tree_a: RStarTree, tree_b: RStarTree
                       ) -> Tuple[List[Tuple[Any, Any, float]], QueryStats]:
        return _semi_join_impl(tree_a, tree_b, self._ws.obstacle_tree,
                               cache=self._ws.cache)
