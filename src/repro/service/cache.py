"""Cross-query obstacle caching: the heart of the service layer.

IOR (Algorithm 1) retrieves obstacles per query, so a workload of many
correlated queries over one dataset — continuous/moving queries, trajectory
legs, batches — pays the same obstacle-tree I/O over and over.
:class:`ObstacleCache` amortizes it across queries: every obstacle ever
pulled from the tree is kept, together with *coverage capsules* recording
which regions of the plane have been exhaustively fetched, and later
retrieval rounds whose footprint provably falls inside a recorded capsule
are served entirely from memory.

Soundness of the coverage test.  A capsule ``(spine s, radius r)`` asserts
"every obstacle of the dataset whose MBR lies within mindist ``r`` of ``s``
is cached".  A request ``(q, r')`` (all obstacles within ``r'`` of segment
``q``) is contained in that capsule when::

    max(dist(q.start, s), dist(q.end, s)) + r' <= r

because ``dist(., s)`` is convex along ``q``, so the endpoint maximum bounds
``dist(x, s)`` for every ``x`` within ``r'`` of ``q``.  When no capsule
contains the request, the per-query view falls back to a best-first tree
scan — exactly the cold path of :class:`~repro.core.ior.ObstacleRetriever` —
and the scanned footprint becomes a new capsule.

With ``overfetch > 1`` a miss scans ``overfetch`` times deeper than the
round needs; the extra obstacles enter the cache only (never the current
query's visibility graph, keeping per-query results and NOE bit-identical
to the cold algorithm), so nearby follow-up queries land inside the wider
capsule.

Staleness under index mutations.  A capsule is a statement about the
*dataset*, so any mutation of the obstacle tree can silently falsify it.
The cache therefore records the tree's mutation counter
(:attr:`~repro.index.rstar.RStarTree.version`) and re-checks it before
every coverage decision: an unannounced mutation triggers a guarded full
:meth:`~ObstacleCache.invalidate` — never silent staleness.  Mutations
routed through :meth:`Workspace.add_obstacle` /
:meth:`Workspace.remove_obstacle` instead announce themselves via
:meth:`~ObstacleCache.note_obstacle_insert` /
:meth:`~ObstacleCache.note_obstacle_remove`, which maintain the cache
*surgically*: an inserted obstacle is patched into the cached set (every
capsule that covers its footprint regains completeness), a removed one is
evicted, and any capsule whose completeness can no longer be proven is
dropped.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, NamedTuple, Sequence, Set, Tuple

from ..core.ior import TreeObstacleFetcher
from ..core.stats import QueryStats
from ..geometry.predicates import EPS
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..index.rstar import RStarTree
from ..obstacles.obstacle import Obstacle
from ..obstacles.visgraph import LocalVisibilityGraph
from .concurrency import CountingRLock


class Capsule(NamedTuple):
    """A coverage capsule: every obstacle within ``radius`` of the spine
    segment ``(ax, ay) - (bx, by)`` is resident in the cache."""

    ax: float
    ay: float
    bx: float
    by: float
    radius: float

    @property
    def spine(self) -> Segment:
        """The capsule's spine segment."""
        return Segment(self.ax, self.ay, self.bx, self.by)

    def contains(self, qseg: Segment, radius: float) -> bool:
        """Does this capsule contain the capsule ``(qseg, radius)``?"""
        da = self.spine.dist_point(qseg.ax, qseg.ay)
        db = self.spine.dist_point(qseg.bx, qseg.by)
        return max(da, db) + radius <= self.radius + EPS

    def covers_rect(self, rect: Rect) -> bool:
        """Does this capsule's region intersect ``rect``?

        True when an obstacle with MBR ``rect`` falls under the capsule's
        completeness claim (``mindist(rect, spine) <= radius``).
        """
        return (rect.mindist_segment(self.ax, self.ay, self.bx, self.by)
                <= self.radius + EPS)


_Capsule = Capsule
"""Backward-compatible alias for the pre-NamedTuple type name."""


def rect_capsule(rect: Rect, margin: float) -> Tuple[Segment, float]:
    """The capsule (spine, radius) covering ``rect`` grown by ``margin``.

    Spined along the rectangle's longer axis.  Shared by
    :meth:`ObstacleCache.prefetch` and the batch executor's covered-check,
    which must predict exactly which capsule a prefetch would record.
    """
    xlo, ylo = rect.xlo - margin, rect.ylo - margin
    xhi, yhi = rect.xhi + margin, rect.yhi + margin
    if xhi - xlo >= yhi - ylo:
        yc = 0.5 * (ylo + yhi)
        return Segment(xlo, yc, xhi, yc), 0.5 * (yhi - ylo)
    xc = 0.5 * (xlo + xhi)
    return Segment(xc, ylo, xc, yhi), 0.5 * (xhi - xlo)


@dataclass
class CacheStats:
    """Cumulative counters for one :class:`ObstacleCache` (all queries)."""

    hits: int = 0
    """Retrieval rounds served without touching the obstacle tree."""

    misses: int = 0
    """Retrieval rounds that had to scan the obstacle tree."""

    served: int = 0
    """Obstacles handed to visibility graphs straight from the cache."""

    fetched: int = 0
    """Entries popped from the obstacle tree (including re-pops of cached ones)."""

    inserted: int = 0
    """Distinct obstacles resident in the cache."""

    prefetch_calls: int = 0
    """Number of :meth:`ObstacleCache.prefetch`-family invocations."""

    prefetched: int = 0
    """Obstacles loaded into the cache by prefetching."""

    patched: int = 0
    """Obstacle-tree inserts patched into the cached set surgically."""

    evicted: int = 0
    """Obstacle-tree removals evicted from the cached set surgically."""

    invalidations: int = 0
    """Guarded full invalidations (unannounced obstacle-tree mutations)."""

    @property
    def hit_rate(self) -> float:
        """Fraction of retrieval rounds served from cache (0 when none ran)."""
        rounds = self.hits + self.misses
        return self.hits / rounds if rounds else 0.0


class ObstacleCache:
    """A per-dataset obstacle cache shared by every query of a workspace.

    Args:
        obstacle_tree: the obstacle R*-tree (2T) or the unified tree (1T —
            non-:class:`~repro.obstacles.obstacle.Obstacle` payloads are
            ignored when fetching).
        overfetch: miss-path scan depth multiplier (``>= 1``).  ``1.0``
            reproduces the cold algorithm's I/O exactly; larger values trade
            a deeper first scan for wider coverage capsules that turn nearby
            follow-up queries into pure cache hits.
        max_capsules: coverage-region bookkeeping bound; oldest capsules are
            evicted first (their obstacles stay cached — only the *proof of
            exhaustiveness* is dropped).
    """

    def __init__(self, obstacle_tree: RStarTree, overfetch: float = 1.0,
                 max_capsules: int = 128):
        if overfetch < 1.0:
            raise ValueError("overfetch must be >= 1")
        self.tree = obstacle_tree
        self.fetcher = TreeObstacleFetcher(obstacle_tree)
        self.overfetch = float(overfetch)
        self.stats = CacheStats()
        self.epoch = 0
        """Bumped on every insertion/eviction; views use it to refresh
        rankings."""
        self._seen: Set[Obstacle] = set()
        self._obstacles: List[Obstacle] = []
        self._mbrs: List[Rect] = []
        self._capsules: List[Capsule] = []
        self._max_capsules = max_capsules
        self._ranked_memo = None  # (qseg key, epoch, ranked list)
        self._tree_version = obstacle_tree.version
        self.lock = CountingRLock()
        """Guards every coverage decision and cached-set mutation.  Held
        for whole ``ensure`` rounds by :class:`CachedObstacleView`, so a
        round's covered-check, serving, and capsule recording are atomic
        with respect to concurrent queries; its ``contended`` counter
        feeds :class:`~repro.query.parallel.ConcurrencyStats`."""

    # ----------------------------------------------------------- maintenance
    def _validate(self) -> None:
        """Guard against unannounced tree mutations: invalidate on mismatch.

        Every coverage decision and every serving path funnels through this
        check, so a tree mutated behind the workspace's back can never be
        answered from stale capsules — the one-shot fallback is a full
        invalidation, after which every round is a (correct) cold miss.
        """
        if self.tree.version != self._tree_version:
            self.invalidate()

    def invalidate(self) -> None:
        """Drop every cached obstacle and every coverage capsule.

        Cached obstacles must go together with the capsules: a capsule
        recorded *after* a mutation would prove coverage over a cached set
        still containing obstacles deleted from the tree.
        """
        with self.lock:
            self._seen.clear()
            self._obstacles.clear()
            self._mbrs.clear()
            self._capsules.clear()
            self._ranked_memo = None
            self.epoch += 1
            self.stats.invalidations += 1
            self._tree_version = self.tree.version

    def sync_tree_version(self) -> None:
        """Adopt the tree's current version without invalidating.

        For mutations that provably cannot affect obstacle coverage — data
        point inserts/deletes on a 1T unified tree, where the cache's backing
        tree also indexes non-obstacle payloads.
        """
        with self.lock:
            self._tree_version = self.tree.version

    def _absorb_announced_mutation(self) -> bool:
        """Common version bookkeeping of the two ``note_obstacle_*`` hooks.

        Returns True when the surgical path may proceed; False when foreign
        (unannounced) mutations interleaved and a full invalidation already
        handled everything.
        """
        if self.tree.version != self._tree_version + 1:
            # More happened to the tree than the one announced mutation:
            # surgical repair cannot prove anything, fall back hard.
            self.invalidate()
            return False
        self._tree_version = self.tree.version
        return True

    def note_obstacle_insert(self, obstacle: Obstacle) -> None:
        """Announce that ``obstacle`` was just inserted into the tree.

        The obstacle is patched into the cached set, which keeps every
        recorded capsule valid: a capsule covering its footprint regains
        completeness the moment the obstacle is resident, and a capsule not
        covering it never claimed it.
        """
        with self.lock:
            if not self._absorb_announced_mutation():
                return
            if self.add(obstacle):
                self.stats.patched += 1

    def note_obstacle_remove(self, obstacle: Obstacle) -> None:
        """Announce that ``obstacle`` was just deleted from the tree.

        The obstacle is evicted from the cached set; capsules stay valid
        (their claim quantifies over the dataset, which shrank in lockstep
        with the cache).  If the obstacle was *not* resident yet its
        footprint lies under some capsule, that capsule's completeness was
        never real — those capsules are dropped.
        """
        with self.lock:
            if not self._absorb_announced_mutation():
                return
            mbr = obstacle.mbr()
            if any(item == obstacle for item in self.tree.range_search(mbr)):
                # A duplicate entry survived the delete: the dataset still
                # contains the obstacle, so the cached copy and every capsule
                # remain exactly right — evicting here would under-serve.
                return
            if self._evict(obstacle):
                return
            kept = [cap for cap in self._capsules
                    if not cap.covers_rect(mbr)]
            if len(kept) != len(self._capsules):
                self._capsules = kept

    def _evict(self, obstacle: Obstacle) -> bool:
        """Remove one obstacle from the cached set; True when it was there."""
        if obstacle not in self._seen:
            return False
        self._seen.discard(obstacle)
        idx = next(i for i, o in enumerate(self._obstacles) if o == obstacle)
        del self._obstacles[idx]
        del self._mbrs[idx]
        self._ranked_memo = None
        self.epoch += 1
        self.stats.evicted += 1
        return True

    # ------------------------------------------------------------ population
    def add(self, obstacle: Obstacle) -> bool:
        """Insert one obstacle; returns False when it was already cached."""
        with self.lock:
            if obstacle in self._seen:
                return False
            self._seen.add(obstacle)
            self._obstacles.append(obstacle)
            self._mbrs.append(obstacle.mbr())
            self.stats.inserted += 1
            self.epoch += 1
            return True

    def __len__(self) -> int:
        return len(self._obstacles)

    @property
    def obstacles(self) -> Sequence[Obstacle]:
        """Every obstacle currently resident in the cache (live list)."""
        return self._obstacles

    def resident(self) -> List[Obstacle]:
        """A point-in-time copy of the resident obstacle set.

        The concurrency-safe sibling of :attr:`obstacles` — callers that
        seed visibility graphs while other queries may be appending must
        copy under the cache lock.
        """
        with self.lock:
            return list(self._obstacles)

    # -------------------------------------------------------------- coverage
    def covered(self, qseg: Segment, radius: float) -> bool:
        """True when every obstacle within ``radius`` of ``qseg`` is cached."""
        with self.lock:
            self._validate()
            return any(cap.contains(qseg, radius) for cap in self._capsules)

    def record_coverage(self, qseg: Segment, radius: float) -> None:
        """Register that ``(qseg, radius)`` has been exhaustively fetched."""
        if radius <= 0.0:
            return
        with self.lock:
            new = Capsule(qseg.ax, qseg.ay, qseg.bx, qseg.by, float(radius))
            kept = [cap for cap in self._capsules
                    if not new.contains(cap.spine, cap.radius)]
            if not any(cap.contains(qseg, radius) for cap in kept):
                kept.append(new)
            self._capsules = kept[-self._max_capsules:]

    @property
    def coverage_regions(self) -> int:
        """Number of coverage capsules currently recorded."""
        with self.lock:
            self._validate()
            return len(self._capsules)

    @property
    def capsules(self) -> Tuple[Capsule, ...]:
        """The recorded coverage capsules as ``(ax, ay, bx, by, radius)``.

        Ordered oldest to newest; the query planner reads them to estimate
        obstacle I/O and the batch executor calibrates its prefetch margins
        from the newest one.
        """
        with self.lock:
            self._validate()
            return tuple(self._capsules)

    # --------------------------------------------------------------- serving
    def ranked(self, qseg: Segment) -> List[Tuple[float, Obstacle]]:
        """Cached obstacles keyed by ``mindist(MBR, qseg)``, ascending.

        The key function matches the tree scan's exactly (both evaluate
        ``Rect.mindist_segment`` on the obstacle's MBR), so a cache-served
        round admits precisely the obstacles a tree scan would have.  The
        last ranking is memoized, so a run of queries over one segment —
        the repeated-query workload the cache targets — ranks once, not
        once per view.
        """
        with self.lock:
            self._validate()
            ax, ay, bx, by = qseg.ax, qseg.ay, qseg.bx, qseg.by
            key = (ax, ay, bx, by)
            memo = self._ranked_memo
            if memo is not None and memo[0] == key and memo[1] == self.epoch:
                return memo[2]
            out = [(mbr.mindist_segment(ax, ay, bx, by), i)
                   for i, mbr in enumerate(self._mbrs)]
            out.sort()
            ranked = [(d, self._obstacles[i]) for d, i in out]
            self._ranked_memo = (key, self.epoch, ranked)
            return ranked

    def view(self, qseg: Segment, vg: LocalVisibilityGraph,
             stats: QueryStats) -> "CachedObstacleView":
        """Open a per-query obstacle feed over this cache."""
        with self.lock:
            self._validate()
        return CachedObstacleView(self, qseg, vg, stats)

    # ------------------------------------------------------------ prefetching
    def prefetch_segment(self, qseg: Segment, radius: float) -> int:
        """Warm the cache with every obstacle within ``radius`` of ``qseg``.

        Returns:
            Number of obstacles newly inserted.
        """
        with self.lock:
            self._validate()
            self.stats.prefetch_calls += 1
            scan = self.fetcher.open_scan(qseg)
            added = 0
            while True:
                key = scan.peek_key()
                if math.isinf(key) or key > radius:
                    break
                _d, payload, _rect = scan.pop()
                self.stats.fetched += 1
                if isinstance(payload, Obstacle) and self.add(payload):
                    added += 1
            self.record_coverage(qseg, radius)
            self.stats.prefetched += added
            return added

    def prefetch(self, rect: Rect, margin: float = 0.0) -> int:
        """Warm the cache for a rectangular region of interest.

        The rectangle (grown by ``margin`` on every side) is covered by a
        capsule spined along its longer axis, so any later query whose
        retrieval footprint stays inside the capsule never touches the
        obstacle tree.

        Returns:
            Number of obstacles newly inserted.
        """
        spine, radius = rect_capsule(rect, margin)
        return self.prefetch_segment(spine, radius)

    def prefetch_all(self) -> int:
        """Drain the whole obstacle tree into the cache.

        Records an infinite coverage capsule, after which *no* query of the
        workspace ever reads the obstacle tree again.
        """
        return self.prefetch_segment(Segment(0.0, 0.0, 0.0, 0.0), math.inf)

    # ------------------------------------------------------------- snapshots
    def read_view(self) -> "CacheReadView":
        """A point-in-time descriptor of the cache's serving state.

        Pinned by :class:`~repro.service.snapshot.WorkspaceSnapshot`: the
        epoch and tree version say exactly which cached set a snapshot's
        queries were answered from, without copying the obstacles
        themselves.
        """
        with self.lock:
            return CacheReadView(self.epoch, len(self._obstacles),
                                 len(self._capsules), self._tree_version)


class CacheReadView(NamedTuple):
    """A frozen descriptor of one :class:`ObstacleCache` serving state."""

    epoch: int
    """Cache mutation epoch at pin time."""

    resident: int
    """Obstacles resident at pin time."""

    capsules: int
    """Coverage capsules recorded at pin time."""

    tree_version: int
    """The backing obstacle tree's mutation counter at pin time."""


class CachedObstacleView:
    """Per-query obstacle feed over a shared :class:`ObstacleCache`.

    Implements the :class:`~repro.core.ior.ObstacleSource` protocol
    (``radius`` + ``ensure``), so it plugs into ``ior_fixpoint`` and the
    engine's coverage validation exactly like the cold
    :class:`~repro.core.ior.ObstacleRetriever`.  Each ``ensure`` round is
    served from the cache when a coverage capsule contains it, and from a
    lazily opened persistent tree scan otherwise.
    """

    def __init__(self, cache: ObstacleCache, qseg: Segment,
                 vg: LocalVisibilityGraph, stats: QueryStats):
        self._cache = cache
        self._qseg = qseg
        self._vg = vg
        self._stats = stats
        self.radius = 0.0
        self._scan = None
        self._ranked: List[Tuple[float, Obstacle]] = []
        self._cursor = 0
        self._epoch = -1
        # Overfetched pops (mindist beyond the round's radius), ascending:
        # cached only, still owed to the graph once the radius reaches them.
        self._overflow: Deque[Tuple[float, Obstacle]] = deque()

    def _refresh_ranked(self) -> None:
        """Re-rank cached obstacles if the cache grew since the last hit.

        Entries at or below the already-ensured radius are skipped: the
        ``ensure`` invariant guarantees they are in the graph (and the graph
        deduplicates regardless).  ``radius == 0`` means no round ran yet —
        nothing may be skipped then, or obstacles touching the query segment
        (``mindist == 0``) would never be served.
        """
        if self._epoch == self._cache.epoch:
            return
        self._ranked = self._cache.ranked(self._qseg)
        self._epoch = self._cache.epoch
        self._cursor = 0
        if self.radius > 0.0:
            while (self._cursor < len(self._ranked) and
                   self._ranked[self._cursor][0] <= self.radius):
                self._cursor += 1

    def ensure(self, radius: float) -> int:
        """Grow coverage to ``radius``; return number of obstacles added.

        The whole round runs under the cache lock, so the covered-check,
        the serving (or tree scan), and the capsule recording are one
        atomic step with respect to concurrent queries — a parallel
        neighbor can never observe a capsule whose obstacles are still in
        flight.  Engine compute (Dijkstra, envelope merging) happens
        outside ``ensure``, so only retrieval rounds serialize.
        """
        if radius <= self.radius:
            return 0
        with self._cache.lock:
            return self._ensure_locked(radius)

    def _ensure_locked(self, radius: float) -> int:
        cache = self._cache
        if cache.covered(self._qseg, radius):
            self._stats.cache_hits += 1
            cache.stats.hits += 1
            self._refresh_ranked()
            batch: List[Obstacle] = []
            while (self._cursor < len(self._ranked) and
                   self._ranked[self._cursor][0] <= radius):
                batch.append(self._ranked[self._cursor][1])
                self._cursor += 1
            added = self._vg.add_obstacles(batch)
            self._stats.cache_served += added
            cache.stats.served += added
        else:
            self._stats.cache_misses += 1
            cache.stats.misses += 1
            if self._scan is None:
                self._scan = cache.fetcher.open_scan(self._qseg)
            deep = radius if math.isinf(radius) else radius * cache.overfetch
            batch = []
            # Overfetched pops from earlier rounds now inside the radius are
            # owed to the graph first: the scan has moved past them, so they
            # would otherwise never be inserted.  (Hit rounds serve them via
            # the ranked cache instead.)
            while self._overflow and self._overflow[0][0] <= radius:
                batch.append(self._overflow.popleft()[1])
            while True:
                key = self._scan.peek_key()
                if math.isinf(key) or key > deep:
                    break
                d, payload, _rect = self._scan.pop()
                cache.stats.fetched += 1
                if isinstance(payload, Obstacle):
                    cache.add(payload)
                    if d <= radius:
                        batch.append(payload)
                    else:
                        self._overflow.append((d, payload))
            added = self._vg.add_obstacles(batch)
            cache.record_coverage(self._qseg, deep)
        self._stats.noe += added
        self.radius = radius
        return added
