"""Immutable workspace snapshots: the unit of isolation for serving.

A :class:`WorkspaceSnapshot` pins one version of a workspace — the
workspace mutation counter, the backing trees' mutation counters, an
obstacle-cache read view, and the shared visibility graph's generation —
and executes queries *against exactly that version*:

* every execution entry point first enters the workspace's read lock
  (updates drain and block for the duration — the epoch guard), then
  verifies the pinned versions still match; a workspace that moved on
  raises :class:`~repro.service.concurrency.SnapshotExpired` instead of
  silently answering for a dataset the caller no longer holds;
* :meth:`execute_many` fans a batch out over a worker pool (see
  :mod:`repro.query.parallel`) under **one** read hold, so every query of
  the batch observes the same frozen state no matter how updates and
  batches interleave across threads.

Snapshots are cheap — a handful of integers and one capsule count, no
copying — because the heavy structures (R*-trees, obstacle cache, shared
graph) are only ever mutated under the write lock, which a snapshot's read
hold excludes.  The paper's CONN/COkNN answers are pure functions of the
(sites, obstacles) state, so "pin versions + exclude writers" *is*
snapshot isolation for this workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..query.planner import QueryPlan, tree_versions
from ..query.queries import Query
from ..query.results import QueryResult
from .cache import CacheReadView
from .concurrency import SnapshotExpired

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .workspace import Workspace


class WorkspaceSnapshot:
    """A frozen, executable view of one workspace version.

    Obtained from :meth:`Workspace.snapshot`.  All read-side workspace
    surface (``layout``, trees, ``cache``, ``config``, ``planner``,
    ``service``, ``backend_for``) is exposed unchanged, so planner,
    executor, and engines run against a snapshot exactly as they would
    against the live workspace — the snapshot's job is pinning *when* they
    run (inside a read hold) and refusing to run once the pinned version
    is gone.
    """

    def __init__(self, workspace: "Workspace"):
        self._ws = workspace
        with workspace.read_lock():
            self.workspace_version: int = workspace.version
            self.tree_versions: Tuple[int, ...] = tree_versions(workspace)
            self.cache_view: CacheReadView = workspace.cache.read_view()
            self.vg_generation: int = workspace.routing.generation
        workspace.snapshots_taken += 1

    # ------------------------------------------------------------ delegation
    @property
    def workspace(self) -> "Workspace":
        """The live workspace this snapshot pins."""
        return self._ws

    def __getattr__(self, name: str):
        # Read-side delegation: trees, cache, config, planner, service,
        # layout, backend_for, routing...  Mutating entry points are
        # explicitly blocked below.
        if name in ("apply", "add_site", "remove_site", "add_obstacle",
                    "remove_obstacle"):
            raise AttributeError(
                f"snapshots are immutable: apply {name!r} on the workspace")
        return getattr(self._ws, name)

    # ------------------------------------------------------------ lifecycle
    @property
    def expired(self) -> bool:
        """True once the workspace mutated past the pinned version."""
        ws = self._ws
        return (ws.version != self.workspace_version
                or tree_versions(ws) != self.tree_versions)

    def verify(self) -> None:
        """Raise :class:`SnapshotExpired` when :attr:`expired`.

        Call under the read lock: the verdict is then stable for the whole
        hold (writers are excluded), not merely for the calling instant.
        """
        if self.expired:
            raise SnapshotExpired(
                f"workspace moved from version {self.workspace_version} to "
                f"{self._ws.version} (trees {self.tree_versions} -> "
                f"{tree_versions(self._ws)}); take a fresh snapshot")

    # ------------------------------------------------------------- execution
    def plan(self, query: Query, backend: Optional[str] = None) -> QueryPlan:
        """Plan ``query`` against the pinned version."""
        with self._ws.read_lock():
            self.verify()
            return self._ws.plan(query, backend=backend)

    def execute(self, query: Query | QueryPlan) -> QueryResult:
        """Execute one query against the pinned version.

        Raises:
            SnapshotExpired: the workspace mutated since :meth:`__init__`.
        """
        from ..query.executor import execute as _execute

        with self._ws.read_lock():
            self.verify()
            return _execute(self._ws, query)

    def execute_many(self, queries: Iterable[Query], *,
                     schedule: str = "locality", workers: int = 1,
                     mode: str = "thread") -> List[QueryResult]:
        """Execute a batch against the pinned version, optionally parallel.

        With ``workers > 1`` the batch's locality buckets are partitioned
        across a worker pool (``mode="thread"`` shares this process's
        caches; ``mode="fork"`` fans out over forked worker processes —
        each a literal memory snapshot).  One read hold covers the whole
        batch, results come back in submission order, and the aggregated
        :class:`~repro.query.parallel.ConcurrencyStats` is available on
        the executor used by :meth:`Workspace.execute_many`.
        """
        from ..query.parallel import execute_many_parallel

        return execute_many_parallel(self, queries, schedule=schedule,
                                     workers=workers, mode=mode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "expired" if self.expired else "live"
        return (f"WorkspaceSnapshot(version={self.workspace_version}, "
                f"trees={self.tree_versions}, cache_epoch="
                f"{self.cache_view.epoch}, vg_gen={self.vg_generation}, "
                f"{state})")
