"""Concurrency primitives of the service layer.

The workspace's isolation model is *single writer, many snapshot readers*:

* every query (and every batch of queries) executes inside a **read hold**
  on the workspace's :class:`ReadWriteLock`, so it observes one frozen
  version of the indexes, the obstacle cache, and the shared visibility
  graph for its whole lifetime;
* every :meth:`~repro.service.workspace.Workspace.apply` mutation takes the
  **write side**, which waits for in-flight readers to drain (an *epoch
  wait*) and blocks new queries until the indexes, cache, and routing graph
  have moved to the next version together — a reader can never see half an
  update.

The lock is deliberately **reader-preferring**: a reader is admitted
whenever no writer *holds* the lock, even while writers wait.  Writer
preference would deadlock the layered read paths this library is built
from — a parallel batch holds one read while its worker threads open
nested reads (monitor repairs, trajectory legs, service shims), and those
nested readers must never queue behind a writer that is itself waiting for
the batch to finish.  Update starvation is bounded in practice by query
latency; the ``write_waits`` counter reports how often writers actually
had to wait.

:class:`CountingRLock` wraps :class:`threading.RLock` with a contention
counter so :class:`~repro.query.parallel.ConcurrencyStats` can report how
often parallel workers actually collided on the shared caches instead of
guessing from wall clock.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator
from contextlib import contextmanager


class SnapshotExpired(RuntimeError):
    """The workspace mutated after this snapshot was taken.

    Raised by :class:`~repro.service.snapshot.WorkspaceSnapshot` execution
    entry points instead of silently serving answers for a dataset version
    the caller no longer holds; take a fresh snapshot and retry.
    """


class CountingRLock:
    """A re-entrant lock that counts contended acquisitions.

    ``contended`` increments whenever an ``acquire`` could not be satisfied
    immediately (another thread held the lock), which is exactly the
    "parallel workers serialized here" signal concurrency stats want.
    """

    __slots__ = ("_lock", "contended", "acquisitions")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.contended = 0
        self.acquisitions = 0

    def acquire(self) -> None:
        if not self._lock.acquire(blocking=False):
            self.contended += 1
            self._lock.acquire()
        self.acquisitions += 1

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "CountingRLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class ReadWriteLock:
    """A re-entrant, reader-preferring readers-writer lock.

    Semantics:

    * any number of threads may hold the read side concurrently;
    * the write side is exclusive against readers and other writers;
    * both sides are re-entrant per thread, and a thread holding the
      *write* side may freely enter the read side (the monitor layer
      executes repair queries from maintenance code paths);
    * readers are admitted while writers are merely *waiting* (see the
      module docstring for why reader preference is load-bearing).

    Counters (read without locking; approximate under heavy contention):

    Attributes:
        write_waits: times a writer found readers (or another writer)
            in flight and had to block — the snapshot layer's "epoch
            waits".
        read_waits: times a reader had to block on a write in progress.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # owning thread id
        self._write_depth = 0
        self._tls = threading.local()
        self.write_waits = 0
        self.read_waits = 0

    # ------------------------------------------------------------- read side
    def _read_depth(self) -> int:
        return getattr(self._tls, "read_depth", 0)

    def _virtual_reads(self) -> int:
        return getattr(self._tls, "virtual_reads", 0)

    def acquire_read(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            # Read-under-own-write: covered by the exclusive hold; never
            # touches the shared reader count (the write may even be
            # released first without corrupting it).
            self._tls.virtual_reads = self._virtual_reads() + 1
            return
        if self._read_depth() > 0:
            self._tls.read_depth = self._read_depth() + 1
            return
        with self._cond:
            if self._writer is not None:
                self.read_waits += 1
                while self._writer is not None:
                    self._cond.wait()
            self._readers += 1
        self._tls.read_depth = 1

    def release_read(self) -> None:
        if self._virtual_reads() > 0:
            self._tls.virtual_reads = self._virtual_reads() - 1
            return
        depth = self._read_depth()
        if depth <= 0:
            raise RuntimeError("release_read without acquire_read")
        self._tls.read_depth = depth - 1
        if depth > 1:
            return
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """Context manager form of the read side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------ write side
    def acquire_write(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            self._write_depth += 1
            return
        if self._read_depth() > 0:
            raise RuntimeError(
                "cannot upgrade a read hold to a write hold; apply updates "
                "outside of snapshot execution")
        with self._cond:
            if self._readers > 0 or self._writer is not None:
                self.write_waits += 1
            while self._readers > 0 or self._writer is not None:
                self._cond.wait()
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        if self._writer != threading.get_ident():
            raise RuntimeError("release_write by a non-owning thread")
        self._write_depth -= 1
        if self._write_depth > 0:
            return
        with self._cond:
            self._writer = None
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Context manager form of the write side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------ inspection
    @property
    def readers(self) -> int:
        """Threads currently holding the read side (approximate)."""
        return self._readers

    @property
    def write_held(self) -> bool:
        """True while some thread holds the write side."""
        return self._writer is not None
