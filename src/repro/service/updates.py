"""Typed workspace update descriptions — the mutation analogue of queries.

Just as :mod:`repro.query.queries` describes *reads* as frozen dataclasses,
this module describes *writes*: site (data point) inserts/deletes and
obstacle inserts/deletes.  ``Workspace.apply`` consumes a sequence of them,
and the continuous-query layer (:mod:`repro.monitor`) receives each applied
update to decide — via its footprint — which registered monitors can be
left untouched, locally repaired, or must re-run.

Every update exposes ``footprint()``: the axis-aligned region of the plane
the mutation touches (a degenerate rectangle for a point site, the MBR for
an obstacle).  The affected-tests of the cache and monitor layers reason
about that footprint only, so they apply uniformly to all four kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple, Union

from ..geometry.rectangle import Rect
from ..obstacles.obstacle import Obstacle


@dataclass(frozen=True)
class SiteUpdate:
    """Base of the data-point mutations: a payload at a location."""

    payload: Any
    x: float
    y: float

    kind = "site"

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", float(self.x))
        object.__setattr__(self, "y", float(self.y))

    @property
    def xy(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def footprint(self) -> Rect:
        """The degenerate rectangle at the site's location."""
        return Rect.point(self.x, self.y)


@dataclass(frozen=True)
class AddSite(SiteUpdate):
    """Insert a data point ``payload`` at ``(x, y)``."""

    kind = "add-site"


@dataclass(frozen=True)
class RemoveSite(SiteUpdate):
    """Delete the data point ``payload`` at ``(x, y)``."""

    kind = "remove-site"


@dataclass(frozen=True)
class ObstacleUpdate:
    """Base of the obstacle mutations."""

    obstacle: Obstacle

    kind = "obstacle"

    def __post_init__(self) -> None:
        if not isinstance(self.obstacle, Obstacle):
            raise TypeError(f"expected an Obstacle, got "
                            f"{type(self.obstacle).__name__}")

    def footprint(self) -> Rect:
        """The obstacle's MBR."""
        return self.obstacle.mbr()


@dataclass(frozen=True)
class AddObstacle(ObstacleUpdate):
    """Insert an obstacle into the workspace's obstacle index."""

    kind = "add-obstacle"


@dataclass(frozen=True)
class RemoveObstacle(ObstacleUpdate):
    """Delete an obstacle from the workspace's obstacle index."""

    kind = "remove-obstacle"


Update = Union[AddSite, RemoveSite, AddObstacle, RemoveObstacle]
"""Anything :meth:`Workspace.apply` accepts."""
