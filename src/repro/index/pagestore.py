"""Simulated paged storage with I/O accounting.

The paper evaluates algorithms by number of R-tree pages accessed and charges
10 ms of I/O time per page fault (Section 5.1).  Trees here live in memory,
but every node visit is routed through a :class:`PageTracker`, which consults
an optional LRU buffer pool and tallies logical reads vs. faults so the
benchmark harness can report the same metrics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .buffer import LRUBuffer

IO_MS_PER_FAULT = 10.0
"""Milliseconds charged per page fault, matching the paper's cost model."""


@dataclass
class IOStats:
    """Counters for one tree (or one query, after :meth:`snapshot` deltas)."""

    logical_reads: int = 0
    page_faults: int = 0
    pages_allocated: int = 0

    def io_time_ms(self) -> float:
        """Charged I/O time in milliseconds."""
        return self.page_faults * IO_MS_PER_FAULT

    def reset(self) -> None:
        self.logical_reads = 0
        self.page_faults = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.logical_reads, self.page_faults, self.pages_allocated)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Stats accumulated since ``earlier`` was snapshotted."""
        return IOStats(self.logical_reads - earlier.logical_reads,
                       self.page_faults - earlier.page_faults,
                       self.pages_allocated)


@dataclass
class PageTracker:
    """Allocates page ids and records accesses against an optional buffer pool.

    With no buffer attached (the paper's default, ``bs = 0``), every logical
    read is a page fault.

    Two counter views are maintained: :attr:`stats` (cumulative across every
    thread that ever touched the tree — what benchmark totals read) and
    :attr:`local_stats` (this thread's share).  Per-query attribution must
    snapshot/delta the *thread-local* view: a parallel executor runs several
    queries against one tree at once, and deltas over the shared counters
    would charge each query with its concurrent neighbors' page reads.
    """

    buffer: LRUBuffer | None = None
    stats: IOStats = field(default_factory=IOStats)
    _next_page: int = 0
    _tls: threading.local = field(default_factory=threading.local,
                                  repr=False, compare=False)

    @property
    def local_stats(self) -> IOStats:
        """The calling thread's private read/fault counters.

        Lazily created per thread; bumped by every :meth:`access` alongside
        the shared :attr:`stats`.  ``pages_allocated`` stays global-only
        (allocation happens on the mutation path, under the workspace's
        write lock).
        """
        stats = getattr(self._tls, "stats", None)
        if stats is None:
            stats = self._tls.stats = IOStats()
        return stats

    def allocate(self) -> int:
        """Allocate a fresh page id."""
        pid = self._next_page
        self._next_page += 1
        self.stats.pages_allocated += 1
        return pid

    def free(self, page_id: int) -> None:
        """Release a page (buffer entry is dropped; id is not reused)."""
        self.stats.pages_allocated -= 1
        if self.buffer is not None:
            self.buffer.evict(page_id)

    def access(self, page_id: int) -> None:
        """Record one logical read of ``page_id``."""
        local = self.local_stats
        self.stats.logical_reads += 1
        local.logical_reads += 1
        if self.buffer is None or not self.buffer.access(page_id):
            self.stats.page_faults += 1
            local.page_faults += 1

    def attach_buffer(self, buffer: LRUBuffer | None) -> None:
        """Attach (or detach with ``None``) a buffer pool."""
        self.buffer = buffer

    @property
    def num_pages(self) -> int:
        return self.stats.pages_allocated
