"""LRU buffer pool for simulated pages.

Capacity is in pages.  A capacity of zero degenerates to "no buffer": every
access misses, reproducing the paper's default of a zero-sized LRU buffer.
"""

from __future__ import annotations

from collections import OrderedDict


class LRUBuffer:
    """A fixed-capacity page cache with least-recently-used eviction."""

    __slots__ = ("capacity", "_pages", "hits", "misses")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self.capacity = capacity
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: int) -> bool:
        """Touch ``page_id``; return True on a buffer hit, False on a fault.

        On a fault the page is brought in, evicting the least recently used
        page when full.
        """
        if self.capacity == 0:
            self.misses += 1
            return False
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
        self._pages[page_id] = None
        return False

    def evict(self, page_id: int) -> None:
        """Drop ``page_id`` from the pool if present."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (keeps hit/miss counters)."""
        self._pages.clear()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def hit_rate(self) -> float:
        """Fraction of accesses that hit, 0.0 when unused."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
