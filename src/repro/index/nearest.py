"""Best-first incremental nearest-entry traversal.

Implements the optimal distance-browsing strategy of Hjaltason & Samet over
an :class:`~repro.index.rstar.RStarTree`: a min-heap holds visited entries
keyed by ``mindist`` to the query geometry; popping yields objects in
non-decreasing distance order without ever knowing ``k`` in advance.

The CONN algorithms need two capabilities beyond a plain generator:

* :meth:`IncrementalNearest.peek_key` — Lemma 2 terminates the scan when the
  heap head's key exceeds ``RLMAX`` *without* consuming the entry;
* distance to a *segment* (the query line segment ``q``), not only a point —
  callers pass any lower-bound function on rectangles.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from ..geometry.rectangle import Rect
from .rstar import RStarTree


class IncrementalNearest:
    """Incrementally pops ``(dist, payload, rect)`` in ascending ``dist`` order.

    Args:
        tree: the R*-tree to traverse.
        mindist: lower-bound distance from a rectangle to the query geometry
            (must satisfy ``mindist(mbr) <= min over contents``, which any
            geometric mindist does).
    """

    def __init__(self, tree: RStarTree, mindist: Callable[[Rect], float]):
        self._tree = tree
        self._mindist = mindist
        self._counter = itertools.count()
        self._heap: List[Tuple[float, int, bool, Any, Rect | None]] = []
        root = tree.root
        if root.entries:
            heapq.heappush(self._heap,
                           (0.0, next(self._counter), True, root, None))

    def _settle(self) -> None:
        """Expand internal nodes until the head is an object (or heap empty)."""
        heap = self._heap
        while heap and heap[0][2]:
            _d, _c, _is_node, node, _r = heapq.heappop(heap)
            self._tree.tracker.access(node.page_id)
            for e in node.entries:
                d = self._mindist(e.rect)
                if node.is_leaf:
                    heapq.heappush(heap, (d, next(self._counter), False, e.item, e.rect))
                else:
                    heapq.heappush(heap, (d, next(self._counter), True, e.item, None))

    def peek_key(self) -> float:
        """Distance key of the next object, or ``inf`` when exhausted."""
        self._settle()
        return self._heap[0][0] if self._heap else math.inf

    def pop(self) -> Optional[Tuple[float, Any, Rect]]:
        """The next ``(dist, payload, rect)``, or ``None`` when exhausted."""
        self._settle()
        if not self._heap:
            return None
        d, _c, _is_node, payload, rect = heapq.heappop(self._heap)
        return (d, payload, rect)

    def __iter__(self):
        while True:
            item = self.pop()
            if item is None:
                return
            yield item


def knn(tree: RStarTree, x: float, y: float, k: int) -> List[Tuple[float, Any]]:
    """The ``k`` nearest payloads to point ``(x, y)`` by Euclidean mindist."""
    if k <= 0:
        return []
    scan = IncrementalNearest(tree, lambda r: r.mindist_point(x, y))
    out: List[Tuple[float, Any]] = []
    for d, payload, _rect in scan:
        out.append((d, payload))
        if len(out) == k:
            break
    return out


def nearest_to_segment(tree: RStarTree, ax: float, ay: float,
                       bx: float, by: float) -> IncrementalNearest:
    """Incremental scan ordered by mindist to the segment ``[a, b]``."""
    return IncrementalNearest(tree, lambda r: r.mindist_segment(ax, ay, bx, by))
