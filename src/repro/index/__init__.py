"""Disk-page R*-tree index substrate with I/O accounting."""

from .buffer import LRUBuffer
from .nearest import IncrementalNearest, knn, nearest_to_segment
from .node import Entry, Node
from .pagestore import IO_MS_PER_FAULT, IOStats, PageTracker
from .rstar import DEFAULT_PAGE_SIZE, RStarTree
from .storage import load_tree, save_tree

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "Entry",
    "IncrementalNearest",
    "IOStats",
    "IO_MS_PER_FAULT",
    "LRUBuffer",
    "Node",
    "PageTracker",
    "RStarTree",
    "knn",
    "load_tree",
    "nearest_to_segment",
    "save_tree",
]
