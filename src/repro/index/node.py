"""R-tree nodes and entries.

A node maps to exactly one simulated disk page.  Leaf entries carry opaque
payloads (data-point ids, obstacle objects, ...); internal entries carry
child nodes.  Entry rectangles are the usual MBRs.
"""

from __future__ import annotations

from typing import Any, List, NamedTuple

from ..geometry.rectangle import Rect


class Entry(NamedTuple):
    """One slot of a node: an MBR plus either a child node or a leaf payload."""

    rect: Rect
    item: Any  # Node for internal entries, payload for leaf entries


class Node:
    """An R-tree node occupying one page.

    ``level`` is 0 for leaves and grows toward the root, so an entry of a
    node at level ``k > 0`` points to a node at level ``k - 1``.
    """

    __slots__ = ("level", "entries", "page_id")

    def __init__(self, level: int, page_id: int, entries: List[Entry] | None = None):
        self.level = level
        self.page_id = page_id
        self.entries: List[Entry] = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """Tight bounding rectangle over all entries.

        Raises:
            ValueError: for an empty node (only the root may be empty, and
                callers special-case it).
        """
        if not self.entries:
            raise ValueError("empty node has no MBR")
        r = self.entries[0].rect
        for e in self.entries[1:]:
            r = r.union(e.rect)
        return r

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"node@{self.level}"
        return f"<{kind} page={self.page_id} entries={len(self.entries)}>"
