"""Disk persistence for R*-trees: page-aligned binary images.

The simulated pages become real: :func:`save_tree` writes each node as one
``page_size``-byte block (a header page first), :func:`load_tree` rebuilds
the tree with the same page ids, so I/O accounting and buffer behavior are
reproducible across sessions.

Payload codec
-------------
Leaf payloads are serialized as JSON with one extension: the obstacle
classes round-trip through a tagged encoding, so both data trees (int/str
ids) and obstacle trees (:class:`RectObstacle` / :class:`SegmentObstacle` /
:class:`PolygonObstacle` payloads) persist.  Anything JSON-serializable
works; other objects raise ``TypeError`` at save time.

Format (little endian)::

    header page:  magic "RPRO" | version u32 | page_size u32 | max u32 |
                  min u32 | size u64 | node_count u64 | root_page u64
    node image:   page_id u64 | page_count u32 | level u32 | entry_count u32 |
                  entries..., padded to page_count * page_size
    entry:        xlo f64 | ylo f64 | xhi f64 | yhi f64 |
                  (leaf)   payload_len u32 | payload JSON bytes
                  (inner)  child_page u64

A node whose serialized entries outgrow one page spills into *continuation
pages* (``page_count > 1``) — the standard treatment of oversized tuples —
so arbitrary JSON payload sizes remain storable while the common case stays
one node per page.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Tuple

from ..geometry.rectangle import Rect
from ..obstacles.obstacle import (
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
)
from .node import Entry, Node
from .pagestore import PageTracker
from .rstar import RStarTree

_MAGIC = b"RPRO"
_VERSION = 1
_HEADER = struct.Struct("<4sIIIIQQQ")
_NODE_HEADER = struct.Struct("<QIII")
_RECT = struct.Struct("<dddd")
_CHILD = struct.Struct("<Q")
_PAYLOAD_LEN = struct.Struct("<I")


def _encode_payload(payload: Any) -> bytes:
    if isinstance(payload, RectObstacle):
        r = payload.rect
        doc = {"__obstacle__": "rect", "oid": payload.oid,
               "coords": [r.xlo, r.ylo, r.xhi, r.yhi]}
    elif isinstance(payload, SegmentObstacle):
        s = payload.seg
        doc = {"__obstacle__": "segment", "oid": payload.oid,
               "coords": [s.ax, s.ay, s.bx, s.by]}
    elif isinstance(payload, PolygonObstacle):
        doc = {"__obstacle__": "polygon", "oid": payload.oid,
               "coords": [c for p in payload.points for c in p]}
    else:
        doc = {"v": payload}
    try:
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")
    except TypeError as exc:
        raise TypeError(
            f"payload {payload!r} is not persistable (JSON or obstacle)"
        ) from exc


def _decode_payload(blob: bytes) -> Any:
    doc = json.loads(blob.decode("utf-8"))
    kind = doc.get("__obstacle__")
    if kind is None:
        return doc["v"]
    coords = doc["coords"]
    if kind == "rect":
        return RectObstacle(*coords, oid=doc["oid"])
    if kind == "segment":
        return SegmentObstacle(*coords, oid=doc["oid"])
    if kind == "polygon":
        pairs = list(zip(coords[0::2], coords[1::2]))
        return PolygonObstacle(pairs, oid=doc["oid"])
    raise ValueError(f"unknown obstacle tag {kind!r}")


def _serialize_node(node: Node, page_size: int) -> bytes:
    body_parts = []
    for e in node.entries:
        body_parts.append(
            _RECT.pack(e.rect.xlo, e.rect.ylo, e.rect.xhi, e.rect.yhi))
        if node.is_leaf:
            blob = _encode_payload(e.item)
            body_parts.append(_PAYLOAD_LEN.pack(len(blob)))
            body_parts.append(blob)
        else:
            body_parts.append(_CHILD.pack(e.item.page_id))
    body = b"".join(body_parts)
    total = _NODE_HEADER.size + len(body)
    page_count = max(1, -(-total // page_size))
    header = _NODE_HEADER.pack(node.page_id, page_count, node.level,
                               len(node.entries))
    return (header + body).ljust(page_count * page_size, b"\0")


def save_tree(tree: RStarTree, path: str | Path) -> int:
    """Write the tree as a page-aligned binary file.

    Returns:
        Number of bytes written — ``(node_count + 1) * page_size`` plus any
        continuation pages for nodes with oversized payloads.
    """
    path = Path(path)
    nodes: List[Node] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if not node.is_leaf:
            stack.extend(e.item for e in node.entries)
    with path.open("wb") as fh:
        header = _HEADER.pack(_MAGIC, _VERSION, tree.page_size,
                              tree.max_entries, tree.min_entries,
                              tree.size, len(nodes), tree.root.page_id)
        fh.write(header.ljust(tree.page_size, b"\0"))
        for node in nodes:
            fh.write(_serialize_node(node, tree.page_size))
        return fh.tell()


def _read_node(fh: BinaryIO, page_size: int) -> Tuple[Node, List[int]]:
    """Read one node image (1+ pages); returns it plus child page ids."""
    image = fh.read(page_size)
    if len(image) < page_size:
        raise ValueError("truncated page")
    page_id, page_count, level, count = _NODE_HEADER.unpack_from(image, 0)
    if page_count > 1:
        rest = fh.read((page_count - 1) * page_size)
        if len(rest) < (page_count - 1) * page_size:
            raise ValueError("truncated continuation pages")
        image += rest
    offset = _NODE_HEADER.size
    node = Node(level=level, page_id=page_id)
    child_pages: List[int] = []
    for _ in range(count):
        xlo, ylo, xhi, yhi = _RECT.unpack_from(image, offset)
        offset += _RECT.size
        rect = Rect(xlo, ylo, xhi, yhi)
        if level == 0:
            (blob_len,) = _PAYLOAD_LEN.unpack_from(image, offset)
            offset += _PAYLOAD_LEN.size
            payload = _decode_payload(image[offset:offset + blob_len])
            offset += blob_len
            node.entries.append(Entry(rect, payload))
        else:
            (child_page,) = _CHILD.unpack_from(image, offset)
            offset += _CHILD.size
            child_pages.append(child_page)
            node.entries.append(Entry(rect, child_page))  # patched below
    return node, child_pages


def load_tree(path: str | Path) -> RStarTree:
    """Reconstruct a tree saved by :func:`save_tree`.

    The rebuilt tree keeps the stored page ids (so buffer/I/O traces are
    comparable) and starts with a fresh :class:`PageTracker`.
    """
    path = Path(path)
    with path.open("rb") as fh:
        head = fh.read(_HEADER.size)
        magic, version, page_size, max_e, min_e, size, node_count, root_page = \
            _HEADER.unpack(head)
        if magic != _MAGIC:
            raise ValueError(f"{path} is not an R*-tree image")
        if version != _VERSION:
            raise ValueError(f"unsupported version {version}")
        fh.seek(page_size)
        nodes: Dict[int, Node] = {}
        pending: Dict[int, List[int]] = {}
        for _ in range(node_count):
            node, child_pages = _read_node(fh, page_size)
            nodes[node.page_id] = node
            if child_pages:
                pending[node.page_id] = child_pages
    # Patch child page ids into node references.
    for page_id, child_pages in pending.items():
        node = nodes[page_id]
        node.entries = [Entry(e.rect, nodes[cp])
                        for e, cp in zip(node.entries, child_pages)]
    tracker = PageTracker()
    # Reserve ids so future allocations do not collide with stored pages.
    max_page = max(nodes) if nodes else 0
    tracker._next_page = max_page + 1
    tracker.stats.pages_allocated = len(nodes)
    tree = RStarTree.__new__(RStarTree)
    tree.page_size = page_size
    tree.max_entries = max_e
    tree.min_entries = min_e
    tree.tracker = tracker
    tree.root = nodes[root_page]
    tree.size = size
    tree.version = 0
    tree._reinserted_levels = set()
    return tree
