"""A paged R*-tree (Beckmann et al., SIGMOD 1990).

This is the data-partitioning index the paper assumes for both the data set
``P`` and the obstacle set ``O``.  It implements the full R* insertion
machinery — ChooseSubtree with overlap-minimizing leaf choice, forced
reinsertion of the 30 % farthest entries on first overflow per level, and the
topological (margin-driven) split — plus deletion with tree condensation and
an STR bulk loader for building large indexes quickly.

Every node occupies one simulated page; all traversals are charged through
the tree's :class:`~repro.index.pagestore.PageTracker` so benchmarks can
report logical reads, page faults, and the paper's 10 ms-per-fault I/O time.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, List, Tuple

from ..geometry.rectangle import Rect
from .buffer import LRUBuffer
from .node import Entry, Node
from .pagestore import PageTracker

DEFAULT_PAGE_SIZE = 4096
"""Page size in bytes (the paper fixes 4 KB pages)."""

ENTRY_BYTES = 40
"""Four 8-byte coordinates plus an 8-byte pointer/id per entry."""

NODE_HEADER_BYTES = 16
"""Per-node bookkeeping (level, count, ...)."""

REINSERT_FRACTION = 0.3
"""R* forced-reinsert fraction ``p`` (30 % of M+1 entries)."""

CHOOSE_SUBTREE_CANDIDATES = 32
"""R* optimization: cap on entries examined for overlap enlargement."""


class RStarTree:
    """An R*-tree over ``(payload, Rect)`` items.

    Args:
        page_size: simulated page size in bytes; determines fan-out.
        min_fill: minimum node fill as a fraction of the maximum fan-out.
        tracker: shared page tracker; a fresh one is created when omitted
            (pass a shared tracker to model several trees on one disk).
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, min_fill: float = 0.4,
                 tracker: PageTracker | None = None):
        if page_size < NODE_HEADER_BYTES + 4 * ENTRY_BYTES:
            raise ValueError("page size too small for a sensible fan-out")
        self.max_entries = (page_size - NODE_HEADER_BYTES) // ENTRY_BYTES
        self.min_entries = max(2, int(self.max_entries * min_fill))
        self.page_size = page_size
        self.tracker = tracker if tracker is not None else PageTracker()
        self.root = Node(level=0, page_id=self.tracker.allocate())
        self.size = 0
        self.version = 0
        """Mutation counter: bumped by every :meth:`insert` and successful
        :meth:`delete`.  Derived structures (the service layer's
        ``ObstacleCache``, prepared query plans) compare it against the
        value they were built at to detect that the indexed set changed
        underneath them."""
        self._reinserted_levels: set[int] = set()

    # ------------------------------------------------------------ public API
    def insert(self, payload: Any, rect: Rect) -> None:
        """Insert one item with the given MBR."""
        if not rect.is_valid():
            raise ValueError(f"invalid rectangle {rect!r}")
        self._reinserted_levels.clear()
        self._insert_entry(Entry(rect, payload), level=0)
        self.size += 1
        self.version += 1

    def insert_point(self, payload: Any, x: float, y: float) -> None:
        """Insert a point item (degenerate MBR)."""
        self.insert(payload, Rect.point(x, y))

    def delete(self, payload: Any, rect: Rect) -> bool:
        """Delete one item matching ``payload`` whose MBR intersects ``rect``.

        Returns:
            True when an item was found and removed.
        """
        found = self._find_leaf(self.root, payload, rect, [])
        if found is None:
            return False
        path, index = found
        leaf = path[-1]
        del leaf.entries[index]
        self.size -= 1
        self.version += 1
        self._condense(path)
        return True

    def range_search(self, rect: Rect) -> List[Any]:
        """All payloads whose MBR intersects ``rect``."""
        out: List[Any] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.tracker.access(node.page_id)
            for e in node.entries:
                if e.rect.intersects(rect):
                    if node.is_leaf:
                        out.append(e.item)
                    else:
                        stack.append(e.item)
        return out

    def items(self) -> Iterator[Tuple[Any, Rect]]:
        """Iterate all ``(payload, rect)`` pairs (no I/O accounting)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            for e in node.entries:
                if node.is_leaf:
                    yield (e.item, e.rect)
                else:
                    stack.append(e.item)

    def attach_buffer(self, buffer: LRUBuffer | None) -> None:
        """Attach an LRU buffer pool (``None`` detaches)."""
        self.tracker.attach_buffer(buffer)

    @property
    def bounds(self) -> Rect | None:
        """MBR of the whole indexed set (``None`` for an empty tree).

        Computed from the root's entries without touching pages below the
        root, so it is safe to call on every query plan.
        """
        if not self.root.entries:
            return None
        return self.root.mbr()

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        return self.root.level + 1

    @property
    def num_pages(self) -> int:
        """Number of allocated pages (= number of nodes)."""
        return self._count_nodes(self.root)

    def _count_nodes(self, node: Node) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(e.item) for e in node.entries)

    # --------------------------------------------------------------- insert
    def _insert_entry(self, entry: Entry, level: int) -> None:
        path = self._choose_path(entry.rect, level)
        path[-1].entries.append(entry)
        self._refresh_path_rects(path)
        self._handle_overflow(path)

    def _choose_path(self, rect: Rect, level: int) -> List[Node]:
        """Descend from the root to a node at ``level``, recording the path."""
        node = self.root
        path = [node]
        while node.level > level:
            self.tracker.access(node.page_id)
            node = self._choose_subtree(node, rect)
            path.append(node)
        self.tracker.access(node.page_id)
        return path

    def _choose_subtree(self, node: Node, rect: Rect) -> Node:
        entries = node.entries
        if node.level == 1:
            # Children are leaves: minimize overlap enlargement among the
            # CHOOSE_SUBTREE_CANDIDATES entries with least area enlargement.
            ranked = sorted(range(len(entries)),
                            key=lambda i: entries[i].rect.enlargement(rect))
            candidates = ranked[:CHOOSE_SUBTREE_CANDIDATES]
            best = None
            best_key = None
            for i in candidates:
                ri = entries[i].rect
                grown = ri.union(rect)
                overlap_delta = 0.0
                for j, ej in enumerate(entries):
                    if j == i:
                        continue
                    overlap_delta += (grown.intersection_area(ej.rect) -
                                      ri.intersection_area(ej.rect))
                key = (overlap_delta, ri.enlargement(rect), ri.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best = entries[i].item
            return best
        best = None
        best_key = None
        for e in entries:
            key = (e.rect.enlargement(rect), e.rect.area())
            if best_key is None or key < best_key:
                best_key = key
                best = e.item
        return best

    def _refresh_path_rects(self, path: List[Node]) -> None:
        """Recompute parent entry MBRs along ``path`` bottom-up."""
        for i in range(len(path) - 2, -1, -1):
            parent = path[i]
            child = path[i + 1]
            for j, e in enumerate(parent.entries):
                if e.item is child:
                    parent.entries[j] = Entry(child.mbr(), child)
                    break

    def _handle_overflow(self, path: List[Node]) -> None:
        level_index = len(path) - 1
        while level_index >= 0:
            node = path[level_index]
            if len(node.entries) <= self.max_entries:
                break
            is_root = node is self.root
            if (not is_root and node.level not in self._reinserted_levels):
                self._reinserted_levels.add(node.level)
                self._force_reinsert(node, path[:level_index + 1])
                # Reinsertion restarts insertion paths; nothing further to
                # propagate along this (now stale) path.
                return
            self._split_node(node, path[:level_index + 1])
            level_index -= 1

    def _force_reinsert(self, node: Node, path: List[Node]) -> None:
        center = node.mbr().center()
        order = sorted(node.entries,
                       key=lambda e: e.rect.center().dist_sq(center),
                       reverse=True)
        p = max(1, int(round(REINSERT_FRACTION * len(node.entries))))
        removed = order[:p]
        node.entries = order[p:]
        self._refresh_path_rects(path)
        # Close reinsert: nearest evicted entries first.
        for entry in reversed(removed):
            self._insert_entry(entry, node.level)

    def _split_node(self, node: Node, path: List[Node]) -> None:
        group1, group2 = _rstar_split(node.entries, self.min_entries)
        node.entries = group1
        sibling = Node(node.level, self.tracker.allocate(), group2)
        if node is self.root:
            new_root = Node(node.level + 1, self.tracker.allocate())
            new_root.entries = [Entry(node.mbr(), node), Entry(sibling.mbr(), sibling)]
            self.root = new_root
            return
        parent = path[-2]
        for j, e in enumerate(parent.entries):
            if e.item is node:
                parent.entries[j] = Entry(node.mbr(), node)
                break
        parent.entries.append(Entry(sibling.mbr(), sibling))
        self._refresh_path_rects(path[:-1])

    # --------------------------------------------------------------- delete
    def _find_leaf(self, node: Node, payload: Any, rect: Rect,
                   path: List[Node]):
        path.append(node)
        self.tracker.access(node.page_id)
        if node.is_leaf:
            for i, e in enumerate(node.entries):
                if e.item == payload and e.rect.intersects(rect):
                    return (list(path), i)
        else:
            for e in node.entries:
                if e.rect.intersects(rect):
                    found = self._find_leaf(e.item, payload, rect, path)
                    if found is not None:
                        return found
        path.pop()
        return None

    def _condense(self, path: List[Node]) -> None:
        orphans: List[Tuple[Entry, int]] = []
        for i in range(len(path) - 1, 0, -1):
            node = path[i]
            parent = path[i - 1]
            if len(node.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e.item is not node]
                for e in node.entries:
                    orphans.append((e, node.level))
                self.tracker.free(node.page_id)
            else:
                self._refresh_path_rects(path[:i + 1])
        self._refresh_path_rects([path[0]])
        self._reinserted_levels.clear()
        for entry, level in orphans:
            self._insert_entry(entry, level)
        # Shrink the root while it is an internal node with a single child.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            old = self.root
            self.root = self.root.entries[0].item
            self.tracker.free(old.page_id)
        if not self.root.is_leaf and not self.root.entries:  # pragma: no cover
            self.root = Node(0, self.root.page_id)

    # ------------------------------------------------------------ bulk load
    @classmethod
    def bulk_load(cls, items: Iterable[Tuple[Any, Rect]],
                  page_size: int = DEFAULT_PAGE_SIZE, fill: float = 0.7,
                  tracker: PageTracker | None = None) -> "RStarTree":
        """Build a tree bottom-up with Sort-Tile-Recursive packing.

        Args:
            items: iterable of ``(payload, rect)``.
            fill: target leaf fill as a fraction of maximum fan-out; partial
                fill mimics the occupancy of an insertion-built R*-tree.
        """
        tree = cls(page_size=page_size, tracker=tracker)
        entries = [Entry(rect, payload) for payload, rect in items]
        tree.size = len(entries)
        if not entries:
            return tree
        capacity = max(2, int(tree.max_entries * fill))
        level = 0
        nodes = tree._pack_level(entries, capacity, level)
        while len(nodes) > 1:
            level += 1
            upper = [Entry(n.mbr(), n) for n in nodes]
            nodes = tree._pack_level(upper, capacity, level)
        tree.tracker.free(tree.root.page_id)
        tree.root = nodes[0]
        return tree

    def _pack_level(self, entries: List[Entry], capacity: int, level: int) -> List[Node]:
        n = len(entries)
        pages = math.ceil(n / capacity)
        slices = max(1, math.ceil(math.sqrt(pages)))
        per_slice = slices * capacity
        entries = sorted(entries, key=lambda e: (e.rect.xlo + e.rect.xhi))
        nodes: List[Node] = []
        start = 0
        for width in _chunk_sizes(n, per_slice, self.min_entries):
            chunk = sorted(entries[start:start + width],
                           key=lambda e: (e.rect.ylo + e.rect.yhi))
            start += width
            k = 0
            for size in _chunk_sizes(len(chunk), capacity, self.min_entries):
                node = Node(level, self.tracker.allocate(), chunk[k:k + size])
                nodes.append(node)
                k += size
        return nodes

    # ------------------------------------------------------------ validation
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation (test hook)."""
        leaf_levels: set[int] = set()
        count = self._check_node(self.root, is_root=True, leaf_levels=leaf_levels)
        assert count == self.size, f"size mismatch: counted {count}, recorded {self.size}"
        assert leaf_levels <= {0}, f"leaves at nonzero levels: {leaf_levels}"

    def _check_node(self, node: Node, is_root: bool, leaf_levels: set[int]) -> int:
        if node.is_leaf:
            leaf_levels.add(node.level)
        if not is_root:
            assert len(node.entries) >= self.min_entries, (
                f"underfull node at level {node.level}: {len(node.entries)}")
        assert len(node.entries) <= self.max_entries, (
            f"overfull node at level {node.level}: {len(node.entries)}")
        if node.is_leaf:
            return len(node.entries)
        total = 0
        for e in node.entries:
            child = e.item
            assert child.level == node.level - 1, "level discontinuity"
            assert e.rect == child.mbr(), (
                f"stale MBR at level {node.level}: {e.rect} != {child.mbr()}")
            total += self._check_node(child, is_root=False, leaf_levels=leaf_levels)
        return total


def _chunk_sizes(n: int, capacity: int, minimum: int) -> List[int]:
    """Partition ``n`` items into chunks of at most ``capacity``.

    Every chunk except a lone final one is at least ``minimum`` long: when the
    natural remainder would fall short, items are stolen from the previous
    chunk, keeping bulk-loaded nodes within R*-tree fill bounds.
    """
    sizes: List[int] = []
    remaining = n
    while remaining > 0:
        if remaining <= capacity:
            sizes.append(remaining)
            break
        if 0 < remaining - capacity < minimum:
            first = min(capacity, remaining - minimum)
            sizes.append(first)
            remaining -= first
        else:
            sizes.append(capacity)
            remaining -= capacity
    return sizes


def _rstar_split(entries: List[Entry], min_entries: int) -> Tuple[List[Entry], List[Entry]]:
    """The R* topological split of an overflowing entry list.

    Chooses the split axis by minimum margin sum over all candidate
    distributions, then the distribution on that axis with minimum overlap
    (ties broken by total area).
    """
    m = min_entries
    total = len(entries)

    def distributions(sorted_entries: List[Entry]):
        prefix: List[Rect] = []
        r = None
        for e in sorted_entries:
            r = e.rect if r is None else r.union(e.rect)
            prefix.append(r)
        suffix: List[Rect] = [None] * total  # type: ignore[list-item]
        r = None
        for i in range(total - 1, -1, -1):
            r = sorted_entries[i].rect if r is None else r.union(sorted_entries[i].rect)
            suffix[i] = r
        for k in range(m, total - m + 1):
            yield k, prefix[k - 1], suffix[k]

    best_axis = None
    axis_sorts = {}
    for axis in (0, 1):
        if axis == 0:
            by_lo = sorted(entries, key=lambda e: (e.rect.xlo, e.rect.xhi))
            by_hi = sorted(entries, key=lambda e: (e.rect.xhi, e.rect.xlo))
        else:
            by_lo = sorted(entries, key=lambda e: (e.rect.ylo, e.rect.yhi))
            by_hi = sorted(entries, key=lambda e: (e.rect.yhi, e.rect.ylo))
        margin_sum = 0.0
        for ordering in (by_lo, by_hi):
            for _k, bb1, bb2 in distributions(ordering):
                margin_sum += bb1.margin() + bb2.margin()
        axis_sorts[axis] = (by_lo, by_hi)
        if best_axis is None or margin_sum < best_axis[0]:
            best_axis = (margin_sum, axis)

    _margin, axis = best_axis  # type: ignore[misc]
    best = None
    best_key = None
    for ordering in axis_sorts[axis]:
        for k, bb1, bb2 in distributions(ordering):
            key = (bb1.intersection_area(bb2), bb1.area() + bb2.area())
            if best_key is None or key < best_key:
                best_key = key
                best = (ordering, k)
    ordering, k = best  # type: ignore[misc]
    return list(ordering[:k]), list(ordering[k:])


MinDistFn = Callable[[Rect], float]
