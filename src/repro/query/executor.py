"""The query executor: single dispatch, lazy streams, scheduled batches.

:func:`execute` runs one :class:`~repro.query.planner.QueryPlan` (planning
first when handed a bare query description) and attaches the submitted
query to the result (the ``.query`` back-reference of the unified result
protocol).

:func:`execute_many` is the batch path the service layer's cache was built
for.  Submission order is rarely the cheapest execution order: correlated
workloads (fleets of moving queries, periodic monitors) interleave queries
from distant regions, so consecutive queries share no obstacle footprint
and every one pays its own tree scan.  The scheduler therefore

1. buckets queries by a locality grid over their footprints and orders the
   buckets along a Hilbert curve (so consecutive buckets are spatially
   adjacent too),
2. executes each bucket's first query cold, reads the coverage capsule that
   query recorded, and uses its radius to size one *prefetch* covering the
   whole bucket — after which the bucket's remaining queries are served
   from the cache, and
3. returns results in submission order regardless of execution order.

Non-spatial queries (the joins) keep their relative submission order and
run after the spatial ones.  Results are bit-identical to submission-order
execution — scheduling only changes who pays which page read.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple

from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from .planner import NAIVE_PRELOAD, QueryPlan, build_plan, tree_versions
from .queries import (
    ClosestPairQuery,
    CoknnQuery,
    EDistanceJoinQuery,
    OnnQuery,
    Query,
    RangeQuery,
    SemiJoinQuery,
    TrajectoryQuery,
)
from .results import ClosestPairResult, JoinResult, NeighborsResult, QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.workspace import Workspace


def execute(workspace: "Workspace", query) -> QueryResult:
    """Run one query (or a prepared plan) and return its unified result.

    A prepared plan is version-checked against the workspace *and* its
    backing trees: when updates were applied after planning — through the
    workspace or directly on a tree — the plan is rebuilt from its query.
    Its algorithm choice and estimates describe a dataset that no longer
    exists, and executing it blindly could (e.g.) preload an obstacle set
    that has grown far past the naive threshold.
    """
    if isinstance(query, QueryPlan):
        plan = query
        if (plan.workspace_version != workspace.version
                or plan.tree_versions != tree_versions(workspace)):
            plan = build_plan(workspace, plan.query,
                              backend=plan.backend_override)
    else:
        plan = build_plan(workspace, query)
    return _run_plan(workspace, plan)


def _run_plan(ws: "Workspace", plan: QueryPlan) -> QueryResult:
    q = plan.query
    svc = ws.service
    backend = ws.backend_for(plan.backend)
    if plan.algorithm == NAIVE_PRELOAD and not ws.cache.covered(
            Segment(0.0, 0.0, 0.0, 0.0), math.inf):
        ws.cache.prefetch_all()
    if isinstance(q, TrajectoryQuery):
        result = svc._run_trajectory(q.waypoints, q.k, plan.config, backend)
        result.query = q
        return result
    if isinstance(q, CoknnQuery):  # covers ConnQuery too
        result = svc._run_coknn(q.segment, q.k, plan.config, backend)
        result.query = q
        return result
    if isinstance(q, OnnQuery):
        neighbors, stats = svc._run_onn(q.point.x, q.point.y, q.k,
                                        plan.config, backend)
        return NeighborsResult(neighbors, stats, q)
    if isinstance(q, RangeQuery):
        matches, stats = svc._run_range(q.point.x, q.point.y, q.radius,
                                        backend)
        return NeighborsResult(matches, stats, q)
    if isinstance(q, SemiJoinQuery):
        rows, stats = svc._run_semi_join(q.left, q.right)
        return JoinResult(rows, stats, q)
    if isinstance(q, EDistanceJoinQuery):
        rows, stats = svc._run_e_distance_join(q.left, q.right, q.e)
        return JoinResult(rows, stats, q)
    if isinstance(q, ClosestPairQuery):
        pair, stats = svc._run_closest_pair(q.left, q.right)
        return ClosestPairResult(pair, stats, q)
    raise TypeError(f"no executor for query type {type(q).__name__}")


def stream(workspace: "Workspace", queries: Iterable[Query]
           ) -> Iterator[QueryResult]:
    """Lazily execute ``queries`` one by one, in submission order.

    The lazy sibling of :func:`execute_many`: nothing runs until the
    iterator is advanced, results are yielded as they complete, and memory
    stays O(1) in the number of queries.  No reordering is performed (a
    stream's consumer controls the pace, so the scheduler cannot batch
    ahead), but every query still shares the workspace obstacle cache.
    """
    for q in queries:
        yield execute(workspace, q)


def execute_many(workspace: "Workspace", queries: Iterable[Query], *,
                 schedule: str = "locality") -> List[QueryResult]:
    """Execute a batch, optionally reordered for cache locality.

    Args:
        schedule: ``"locality"`` (default) buckets queries on a spatial
            grid, walks buckets in Hilbert order, and issues one
            capsule-calibrated prefetch per bucket; ``"fifo"`` preserves
            submission order exactly (the legacy ``batch`` behavior).

    Returns:
        Results in **submission order**, each carrying ``.query``.
    """
    qs = list(queries)
    if schedule not in ("locality", "fifo"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if schedule == "fifo" or len(qs) <= 2:
        return [execute(workspace, q) for q in qs]

    results: List[QueryResult] = [None] * len(qs)  # type: ignore[list-item]
    spatial: List[Tuple[int, Rect]] = []
    other: List[int] = []
    for i, q in enumerate(qs):
        fp = q.footprint() if isinstance(q, Query) else None
        if fp is not None:
            spatial.append((i, fp))
        else:
            other.append(i)

    for bucket in _locality_buckets(workspace, spatial):
        _execute_bucket(workspace, qs, bucket, results)
    for i in other:
        results[i] = execute(workspace, qs[i])
    return results


# --------------------------------------------------------------- scheduling
def _locality_buckets(ws: "Workspace",
                      spatial: List[Tuple[int, Rect]]) -> List[List[int]]:
    """Grid-bucket spatial queries and order buckets along a Hilbert curve."""
    if not spatial:
        return []
    xlo = min(fp.xlo for _i, fp in spatial)
    ylo = min(fp.ylo for _i, fp in spatial)
    xhi = max(fp.xhi for _i, fp in spatial)
    yhi = max(fp.yhi for _i, fp in spatial)
    span = max(xhi - xlo, yhi - ylo)
    if span <= 0.0:
        return [[i for i, _fp in spatial]]
    diags = sorted(math.hypot(fp.width, fp.height) for _i, fp in spatial)
    median_diag = diags[len(diags) // 2]
    # Aim for a handful of queries per bucket (so each bucket amortizes its
    # prefetch), capped by the configured grid resolution; point queries
    # have zero-size footprints, so occupancy — not footprint size — must
    # drive the cell size.
    occupancy_cells = max(1, round(math.sqrt(len(spatial) / 4.0)))
    cells = max(1, min(ws.planner.grid_cells, occupancy_cells))
    cell = max(2.0 * median_diag, span / cells, 1e-9)
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for i, fp in spatial:
        cx, cy = fp.center()
        key = (int((cx - xlo) / cell), int((cy - ylo) / cell))
        buckets.setdefault(key, []).append(i)
    side = 1
    max_coord = max(max(k[0] for k in buckets), max(k[1] for k in buckets))
    while side <= max_coord:
        side *= 2
    ordered = sorted(buckets.items(),
                     key=lambda kv: hilbert_index(side, kv[0][0], kv[0][1]))
    return [sorted(idxs) for _key, idxs in ordered]


def hilbert_index(side: int, x: int, y: int) -> int:
    """Hilbert-curve index of cell ``(x, y)`` on a ``side`` x ``side`` grid.

    The locality order behind both the batch scheduler's bucket walk and
    the shard subsystem's :class:`~repro.shard.partition.HilbertPartitioner`
    ranges.
    """
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def _execute_bucket(ws: "Workspace", qs: List[Query], bucket: List[int],
                    results: List[QueryResult]) -> None:
    """Run one locality bucket: cold lead query, calibrated prefetch, rest.

    The lead query's retrieval records a coverage capsule whose radius is a
    measured proxy for what its neighbors will need; one prefetch over the
    bucket's union footprint with that margin turns the remaining queries
    into cache hits (2T layout; on 1T prefetching cannot skip the unified
    scan, so the bucket just runs in locality order).
    """
    # Function-level import: the service package imports this module.
    from ..service.cache import rect_capsule

    lead = bucket[0]
    plan = build_plan(ws, qs[lead])
    before = ws.cache.capsules
    results[lead] = _run_plan(ws, plan)
    if len(bucket) > 1 and ws.layout == "2T":
        capsules = ws.cache.capsules
        # record_coverage may replace superseded capsules, so compare the
        # newest capsule itself, not the count.
        if capsules and (not before or capsules[-1] != before[-1]):
            observed = capsules[-1].radius
        else:  # lead was a pure cache hit; fall back to the plan estimate
            observed = plan.est_radius
        margin = observed * ws.planner.prefetch_margin_factor
        union = qs[bucket[0]].footprint()
        for i in bucket[1:]:
            union = union.union(qs[i].footprint())
        if math.isfinite(margin) and margin > 0.0:
            spine, radius = rect_capsule(union, margin)
            if not ws.cache.covered(spine, radius):
                ws.cache.prefetch(union, margin=margin)
    for i in bucket[1:]:
        results[i] = execute(ws, qs[i])
