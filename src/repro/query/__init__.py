"""Declarative query API: typed queries, a planner, a batch executor.

This package is the submission surface the rest of the library funnels
through.  Clients describe *what* they want as frozen dataclasses
(:class:`ConnQuery`, :class:`CoknnQuery`, :class:`OnnQuery`,
:class:`RangeQuery`, :class:`TrajectoryQuery`, :class:`SemiJoinQuery`,
:class:`EDistanceJoinQuery`, :class:`ClosestPairQuery`); the planner decides
*how* (algorithm, tree layout, obstacle-I/O estimate, rendered by
:meth:`QueryPlan.explain`); and the executor decides *when and in what
order* (single ``execute``, lazy ``stream``, or a locality-scheduled
``execute_many`` whose reordering and capsule-driven prefetches make cache
hits compound across a batch).

The classic entry points — ``repro.conn(...)``, ``Workspace.coknn(...)``
and friends — are thin shims over this machinery, so every query in the
library flows through one plannable code path::

    from repro import CoknnQuery, Segment, Workspace

    ws = Workspace.from_points(points, obstacles)
    q = CoknnQuery(Segment(0, 50, 100, 50), knn=3, label="patrol")
    print(ws.plan(q).explain())            # algorithm, layout, est. I/O
    result = ws.execute(q)                 # same answer as ws.coknn(...)
    results = ws.execute_many(batch)       # locality-scheduled, same order
"""

from .executor import execute, execute_many, stream
from .parallel import (
    ConcurrencyStats,
    execute_many_parallel,
    last_batch_stats,
)
from .planner import (
    DEFAULT_PLANNER,
    NAIVE_PRELOAD,
    PlannerOptions,
    QueryPlan,
    build_plan,
)
from .queries import (
    ClosestPairQuery,
    CoknnQuery,
    ConnQuery,
    EDistanceJoinQuery,
    OnnQuery,
    Query,
    RangeQuery,
    SemiJoinQuery,
    TrajectoryQuery,
    as_query_point,
    as_range_args,
)
from .results import (
    ClosestPairResult,
    JoinResult,
    NeighborsResult,
    QueryResult,
)

__all__ = [
    "ClosestPairQuery",
    "ClosestPairResult",
    "CoknnQuery",
    "ConcurrencyStats",
    "ConnQuery",
    "DEFAULT_PLANNER",
    "EDistanceJoinQuery",
    "JoinResult",
    "NAIVE_PRELOAD",
    "NeighborsResult",
    "OnnQuery",
    "PlannerOptions",
    "Query",
    "QueryPlan",
    "QueryResult",
    "RangeQuery",
    "SemiJoinQuery",
    "TrajectoryQuery",
    "as_query_point",
    "as_range_args",
    "build_plan",
    "execute",
    "execute_many",
    "execute_many_parallel",
    "last_batch_stats",
    "stream",
]
