"""The query planner: algorithm + layout selection and ``explain()``.

``Workspace.plan(query)`` turns a typed query description into a
:class:`QueryPlan` — the algorithm the executor will run, the tree layout it
runs on, and an obstacle-I/O estimate derived from the workspace cache's
coverage capsules.  The plan renders itself as a human-readable transcript
via :meth:`QueryPlan.explain`, the declarative API's answer to SQL's
``EXPLAIN``.

Algorithm selection is deliberately simple and deterministic:

* CONN / COkNN / trajectory / ONN / range run the paper's engine on the
  workspace layout (``"2T"`` separate trees or ``"1T"`` unified tree);
* on the 2T layout a workspace may opt into a *naive fallback*
  (:attr:`PlannerOptions.naive_max_points`): for tiny datasets the plan
  drains the whole obstacle tree into the cache once and serves every
  retrieval round from memory — identical results, no incremental
  retrieval machinery;
* the obstructed joins require the 2T layout (they need a dedicated
  obstacle tree), so planning them on 1T fails fast.

The I/O estimate is honest about being an estimate: when a coverage capsule
proves the query's predicted footprint cached, the plan reports a warm hit
(zero obstacle-tree reads on 2T); otherwise it scales the obstacle tree's
leaf count by the footprint's share of the indexed area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..core.config import ConnConfig
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..index.rstar import RStarTree
from ..routing.backends import PER_QUERY_VG, SHARED_VG
from .queries import (
    ClosestPairQuery,
    CoknnQuery,
    EDistanceJoinQuery,
    OnnQuery,
    Query,
    RangeQuery,
    SemiJoinQuery,
    TrajectoryQuery,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.workspace import Workspace


NAIVE_PRELOAD = "naive-preload"
"""Algorithm name of the tiny-dataset fallback (exhaustive obstacle preload)."""

PAIRWISE_VG = "pairwise-vg"
"""Backend name reported for the joins' anchored pairwise oracle."""


def _resolve_backend(workspace: "Workspace", override: Optional[str],
                     warm: bool, spines: List[Segment]) -> str:
    """Pick the obstructed-distance backend for an engine query.

    ``auto`` prefers the workspace-shared graph whenever the workspace is
    demonstrably warm for this query: the plan's full-radius coverage
    check passed, the shared graph is already resident, or every spine of
    the query lies inside a recorded coverage capsule (its neighborhood
    was exhaustively fetched by an earlier query, so the shared skeleton
    has the obstacles that matter and the repeat amortizes the build).
    Cold one-shots keep the throwaway per-query graph, whose build they
    would have to pay anyway.
    """
    choice = override if override is not None else workspace.planner.backend
    if choice == "auto":
        if warm or workspace.routing.ready:
            return SHARED_VG
        revisit = bool(spines) and all(
            workspace.cache.covered(s, 0.0) for s in spines)
        return SHARED_VG if revisit else PER_QUERY_VG
    alias = {"shared": SHARED_VG, SHARED_VG: SHARED_VG,
             "per-query": PER_QUERY_VG, PER_QUERY_VG: PER_QUERY_VG}
    if choice not in alias:
        raise ValueError(f"unknown backend {choice!r}; expected 'auto', "
                         f"'shared' or 'per-query'")
    return alias[choice]


@dataclass(frozen=True)
class PlannerOptions:
    """Workspace-level planner knobs.

    Attributes:
        naive_max_points: datasets whose data tree holds at most this many
            points plan the :data:`NAIVE_PRELOAD` fallback on the 2T layout
            (0 — the default — never; the incremental engine is always
            used).  Results are identical either way; only the I/O pattern
            changes.
        grid_cells: granularity of the batch executor's locality grid (the
            space is cut into roughly ``grid_cells`` cells per axis).
        prefetch_margin_factor: safety factor applied to the capsule-derived
            prefetch margin in scheduled batches.
        backend: obstructed-distance backend policy — ``"auto"`` (default:
            the workspace-shared graph when the query plans warm or the
            shared graph is already built, a per-query graph for cold
            one-shots), ``"shared"`` / ``"per-query"`` to force one.
            Results are identical either way (asserted by the backend
            equivalence suite); only where the visibility-test and
            graph-build work lands changes.
        parallel_workers: the worker-pool size the planner prices
            parallelism against (``QueryPlan.est_parallel_speedup``) and
            the trajectory executor uses for independent legs.  ``1``
            (default) keeps every execution path strictly serial.
    """

    naive_max_points: int = 0
    grid_cells: int = 16
    prefetch_margin_factor: float = 1.25
    backend: str = "auto"
    parallel_workers: int = 1


DEFAULT_PLANNER = PlannerOptions()


@dataclass
class QueryPlan:
    """An executable plan for one typed query on one workspace.

    Produced by :meth:`Workspace.plan`; pass it to :meth:`Workspace.execute`
    to run exactly this plan, or call :meth:`explain` for the transcript.
    """

    query: Query
    algorithm: str
    layout: str
    k: int
    config: ConnConfig
    footprint: Optional[Rect]
    est_radius: float
    """Estimated obstacle-retrieval radius (heuristic; exact for range)."""
    warm: bool
    """Whether a coverage capsule proves the estimated footprint cached."""
    est_obstacle_io: int
    """Estimated obstacle-tree page reads (0 for a warm 2T plan)."""
    cached_obstacles: int
    capsules: int
    notes: Tuple[str, ...] = field(default_factory=tuple)
    backend: str = PER_QUERY_VG
    """The obstructed-distance backend the executor will attach
    (``"shared-vg"``, ``"per-query-vg"``, or ``"pairwise-vg"`` for the
    joins' anchored oracle)."""
    backend_override: Optional[str] = None
    """The explicit backend override this plan was built with (``None``
    when the workspace policy decided).  Preserved so a stale prepared
    plan re-plans under the same pin instead of silently reverting to the
    workspace default."""
    est_graph_builds: int = 1
    """Full visibility-graph builds this query is priced to pay (0 when the
    workspace-shared graph is already resident)."""
    engine: str = "array"
    """The substrate engine (:class:`~repro.routing.RoutingConfig`) the
    chosen backend runs on: ``"array"`` (batched kernels, flat adjacency,
    array Dijkstra) or ``"scalar"`` (the parity oracle)."""
    backend_batch_calls: int = 0
    """Cumulative batched visibility-kernel launches on the chosen backend
    at plan time (see ``BackendStats.batch_visibility_calls``)."""
    backend_batched_edges: int = 0
    """Cumulative edge x primitive pairs those launches evaluated
    (``BackendStats.batched_edges_tested``)."""
    backend_pruned_edges: int = 0
    """Cumulative edge x primitive pairs the bbox prefilter skipped on the
    chosen backend (``BackendStats.kernel_pruned_edges``)."""
    backend_bulk_pushes: int = 0
    """Cumulative relaxed rows bulk-pushed into the sequence heap on the
    chosen backend (``BackendStats.heap_bulk_pushes``)."""
    backend_array_traversals: int = 0
    """Cumulative array-engine traversals on the chosen backend at plan
    time (``BackendStats.array_traversals``)."""
    backend_bulk_rows: int = 0
    """Cumulative adjacency rows the chosen backend materialized through
    the bulk path (``BackendStats.rows_bulk_materialized``)."""
    backend_bulk_launches: int = 0
    """Cumulative bulk pair launches on the chosen backend
    (``BackendStats.bulk_pair_launches``)."""
    backend_removal_repairs: int = 0
    """Cumulative surgical removal repairs absorbed by the chosen backend
    (``BackendStats.removal_repairs``)."""
    backend_repair_retests: int = 0
    """Cumulative absent pairs re-tested by those repairs
    (``BackendStats.repair_retested_pairs``)."""
    est_parallel_speedup: float = 1.0
    """Estimated wall-clock speedup of executing this plan on the
    workspace's configured worker pool
    (:attr:`PlannerOptions.parallel_workers`): the query's independent
    execution units (trajectory legs; single-segment queries have one)
    divided by the pool rounds needed to drain them.  ``1.0`` means the
    plan is inherently serial — parallelism then only pays across queries
    (``execute_many(..., workers=N)``), not inside this one."""
    workspace_version: int = 0
    """The :attr:`Workspace.version` this plan was built at.  The executor
    re-plans automatically when the workspace has been mutated since — a
    stale plan's algorithm choice and estimates describe a dataset that no
    longer exists."""
    tree_versions: Tuple[int, ...] = ()
    """Mutation counters of the workspace's backing trees at plan time.
    Catches mutations applied to a tree directly (bypassing the workspace),
    which leave ``workspace_version`` untouched."""
    est_shard_fanout: int = 0
    """Shards a :class:`~repro.shard.ShardedWorkspace` router predicts this
    query will consult (home shards plus the estimated influence ball's
    spill-over).  ``0`` for plans built on an unsharded workspace."""

    def explain(self) -> str:
        """Human-readable plan transcript (the declarative ``EXPLAIN``)."""
        cfg = self.config
        flags = (f"lemma1={'on' if cfg.use_lemma1 else 'off'} "
                 f"lemma5={'on' if cfg.use_lemma5 else 'off'} "
                 f"lemma6={'on' if cfg.use_lemma6 else 'off'} "
                 f"lemma7={'on' if cfg.use_lemma7 else 'off'} "
                 f"rlmax={'on' if cfg.use_rlmax else 'off'} "
                 f"validate={'on' if cfg.validate_coverage else 'off'}")
        if self.footprint is not None:
            fp = (f"[{self.footprint.xlo:g}, {self.footprint.xhi:g}] x "
                  f"[{self.footprint.ylo:g}, {self.footprint.yhi:g}]")
        else:
            fp = "(non-spatial)"
        temp = "warm" if self.warm else "cold"
        lines = [
            f"QueryPlan: {self.algorithm} (layout {self.layout}, k={self.k})",
            f"  query     : {self.query.describe()}"
            + (f"  [label={self.query.label!r}]" if self.query.label else ""),
            f"  footprint : {fp}  (est. retrieval radius "
            f"{self.est_radius:.3g})",
            f"  cache     : {self.cached_obstacles} obstacles, "
            f"{self.capsules} capsules -> {temp} "
            f"(est. {self.est_obstacle_io} obstacle-tree page reads)",
            f"  backend   : {self.backend} "
            f"(est. {self.est_graph_builds} visibility-graph "
            f"build{'' if self.est_graph_builds == 1 else 's'})",
            f"  engine    : {self.engine} "
            f"({self.backend_batch_calls} batch visibility calls, "
            f"{self.backend_batched_edges} batched edges tested, "
            f"{self.backend_pruned_edges} bbox-pruned, "
            f"{self.backend_bulk_pushes} bulk heap pushes, "
            f"{self.backend_array_traversals} array traversals so far)",
            f"  cold/churn: {self.backend_bulk_rows} bulk rows in "
            f"{self.backend_bulk_launches} bulk pair launches, "
            f"{self.backend_removal_repairs} removal repairs "
            f"({self.backend_repair_retests} pairs retested so far)",
            f"  parallel  : est. {self.est_parallel_speedup:.2f}x speedup "
            f"on this plan's independent units",
            f"  config    : {flags}",
        ]
        if self.est_shard_fanout > 0:
            lines.insert(-1, f"  shards    : est. fan-out "
                         f"{self.est_shard_fanout}")
        for note in self.notes:
            lines.append(f"  note      : {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


def _root_mbr(tree: RStarTree) -> Optional[Rect]:
    return tree.bounds


def tree_versions(workspace: "Workspace") -> Tuple[int, ...]:
    """Current mutation counters of the workspace's backing trees."""
    if workspace.layout == "2T":
        return (workspace.data_tree.version, workspace.obstacle_tree.version)
    return (workspace.unified_tree.version,)


def _nn_radius_estimate(data_tree: Optional[RStarTree], k: int) -> float:
    """Heuristic k-NN distance: mean point spacing scaled by ``sqrt(k)``.

    Derived from a uniform-density model of the indexed points; only used
    for plan estimates, never for correctness.
    """
    if data_tree is None or data_tree.size == 0:
        return 0.0
    mbr = _root_mbr(data_tree)
    if mbr is None:
        return 0.0
    area = max(mbr.area(), 1e-12)
    spacing = math.sqrt(area / max(data_tree.size, 1))
    return 2.0 * spacing * math.sqrt(k)


def _spines(query: Query) -> List[Segment]:
    """Retrieval-footprint spines for the coverage check."""
    if isinstance(query, CoknnQuery):
        return [query.segment]
    if isinstance(query, (OnnQuery, RangeQuery)):
        x, y = query.point
        return [Segment(x, y, x, y)]
    if isinstance(query, TrajectoryQuery):
        out = []
        for (ax, ay), (bx, by) in zip(query.waypoints, query.waypoints[1:]):
            seg = Segment(ax, ay, bx, by)
            if not seg.is_degenerate():
                out.append(seg)
        return out
    return []


def _estimate_pages(obstacle_tree: RStarTree, footprint: Optional[Rect],
                    est_radius: float) -> int:
    """Footprint-scaled estimate of obstacle-tree pages a cold scan reads."""
    if obstacle_tree.size == 0:
        return 0
    fill = max(int(0.7 * obstacle_tree.max_entries), 1)
    leaf_pages = max(1, math.ceil(obstacle_tree.size / fill))
    frac = 1.0
    root = _root_mbr(obstacle_tree)
    if footprint is not None and root is not None and root.area() > 0:
        grown = footprint.expanded(est_radius)
        frac = min(1.0, max(grown.area(), 1e-12) / root.area())
    return obstacle_tree.height + max(1, math.ceil(leaf_pages * frac))


def _engine_fields(ws: "Workspace", chosen: str) -> dict:
    """The plan's substrate-engine fields: selection + counter snapshot."""
    cfg = getattr(ws, "routing_config", None)
    stats = (ws.routing.stats if chosen == SHARED_VG
             else ws.per_query_backend.stats)
    return {
        "engine": cfg.engine if cfg is not None else "array",
        "backend_batch_calls": stats.batch_visibility_calls,
        "backend_batched_edges": stats.batched_edges_tested,
        "backend_pruned_edges": stats.kernel_pruned_edges,
        "backend_bulk_pushes": stats.heap_bulk_pushes,
        "backend_array_traversals": stats.array_traversals,
        "backend_bulk_rows": stats.rows_bulk_materialized,
        "backend_bulk_launches": stats.bulk_pair_launches,
        "backend_removal_repairs": stats.removal_repairs,
        "backend_repair_retests": stats.repair_retested_pairs,
    }


def build_plan(workspace: "Workspace", query: Query,
               backend: Optional[str] = None) -> QueryPlan:
    """Select algorithm + layout + backend and estimate I/O for ``query``.

    Args:
        backend: optional per-plan override of
            :attr:`PlannerOptions.backend` (``"shared"`` / ``"per-query"``
            / ``"auto"``); the monitor subsystem uses it to pin repair
            sub-queries onto the workspace-shared graph.
    """
    if not isinstance(query, Query):
        raise TypeError(f"expected a Query description, got {type(query)!r}")
    ws = workspace
    cfg = query.config if query.config is not None else ws.config
    k = query.k
    layout = ws.layout
    notes: List[str] = []

    if isinstance(query, (SemiJoinQuery, EDistanceJoinQuery,
                          ClosestPairQuery)):
        if layout != "2T":
            raise ValueError(f"{query.kind} needs the 2T layout (a dedicated "
                             "obstacle tree)")
        algorithm = query.kind
        obstacle_tree = ws.obstacle_tree
        footprint = None
        # Join retrieval is anchored at one reference point; a full-cache
        # capsule is the only coverage proof that applies a priori.
        warm = ws.cache.covered(Segment(0.0, 0.0, 0.0, 0.0), math.inf)
        est_radius = math.inf
        est_io = 0 if warm else _estimate_pages(obstacle_tree, None, 0.0)
        notes.append("pairwise oracle anchored at the first candidate; "
                     "Euclidean lower bound prunes exact evaluations")
        return QueryPlan(query, algorithm, layout, k, cfg, footprint,
                         est_radius, warm, est_io, len(ws.cache),
                         ws.cache.coverage_regions, tuple(notes),
                         backend=PAIRWISE_VG, est_graph_builds=1,
                         backend_override=backend,
                         workspace_version=ws.version,
                         tree_versions=tree_versions(ws),
                         **_engine_fields(ws, PAIRWISE_VG))

    if not isinstance(query, (CoknnQuery, OnnQuery, RangeQuery,
                              TrajectoryQuery)):
        raise TypeError(f"no plan for query type {type(query).__name__}")

    base = {"conn": "coknn", "coknn": "coknn", "onn": "onn-scan",
            "range": "range-scan", "trajectory": "trajectory-coknn"}[
                query.kind]
    if query.kind == "conn":
        notes.append("CONN is COkNN with k = 1 (shared engine)")

    opts = ws.planner
    obstacle_tree = (ws.obstacle_tree if layout == "2T"
                     else ws.unified_tree)
    naive = (layout == "2T" and opts.naive_max_points > 0
             and ws.data_tree.size <= opts.naive_max_points)
    if naive:
        algorithm = NAIVE_PRELOAD
        notes.append(f"dataset is tiny ({ws.data_tree.size} points <= "
                     f"naive_max_points={opts.naive_max_points}): preload "
                     "the whole obstacle set, skip incremental retrieval")
    else:
        algorithm = f"{base}-{layout.lower()}"

    if isinstance(query, RangeQuery):
        est_radius = query.radius
    else:
        data_tree = ws.data_tree if layout == "2T" else ws.unified_tree
        est_radius = _nn_radius_estimate(data_tree, k)

    spines = _spines(query)
    warm = bool(spines) and all(
        ws.cache.covered(s, est_radius) for s in spines)
    footprint = query.footprint()

    if warm and layout == "2T":
        est_io = 0
    elif isinstance(query, TrajectoryQuery):
        # Per-leg footprints, not the whole-polyline bbox times leg count:
        # adjacent legs overlap, and each leg scans only its own region.
        est_io = sum(
            _estimate_pages(obstacle_tree, Rect(*s.bbox()), est_radius)
            for s in spines)
    else:
        est_io = _estimate_pages(obstacle_tree, footprint, est_radius)
    if layout == "1T":
        notes.append("1T unified scan reads data and obstacle pages "
                     "together; cache hits cannot skip them")

    workers = max(1, opts.parallel_workers)
    units = len(spines) if isinstance(query, TrajectoryQuery) else 1
    # Units drain in ceil(units / workers) pool rounds; a serial pool (or a
    # single-unit plan) gets exactly 1.0.
    est_speedup = (units / math.ceil(units / workers)
                   if workers > 1 and units > 1 else 1.0)
    if est_speedup > 1.0:
        notes.append(f"{units} independent legs over {workers} workers "
                     "(see est_parallel_speedup)")

    chosen = _resolve_backend(ws, backend, warm, spines)
    if chosen == SHARED_VG:
        builds = 0 if ws.routing.ready else 1
        if ws.routing.ready:
            notes.append(f"shared graph resident "
                         f"({ws.routing.resident_obstacles} obstacles): "
                         "visibility-graph build amortized to zero")
        else:
            notes.append("shared graph cold: built once from the obstacle "
                         "cache, then reused by every later query")
    else:
        legs = len(spines) if isinstance(query, TrajectoryQuery) else 1
        builds = max(1, legs)

    return QueryPlan(query, algorithm, layout, k, cfg, footprint, est_radius,
                     warm, est_io, len(ws.cache), ws.cache.coverage_regions,
                     tuple(notes), backend=chosen, est_graph_builds=builds,
                     est_parallel_speedup=est_speedup,
                     backend_override=backend, workspace_version=ws.version,
                     tree_versions=tree_versions(ws),
                     **_engine_fields(ws, chosen))
