"""Parallel batch execution over immutable workspace snapshots.

:func:`execute_many_parallel` is :func:`repro.query.executor.execute_many`
for machines with cores to spare: the batch's Hilbert-ordered locality
buckets — already the unit of cache affinity — become the unit of work,
partitioned across a worker pool while one read hold pins the workspace
version for the whole batch.  Results are returned in submission order and
are identical to serial execution (asserted by the concurrency test suite
and the ``bench_concurrent`` CI smoke); parallelism only changes *when*
each bucket runs and who pays which page read.

Two pool modes:

* ``mode="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing this process's obstacle cache and routing backend through their
  locks.  Retrieval rounds serialize on the cache lock (counted as *lock
  contention*), engine compute runs concurrently where the interpreter
  allows.  This is the mode that composes with everything else in the
  process: monitors, the async :meth:`QueryService.submit` front, the
  stress suite's interleaved updates.
* ``mode="fork"`` — forked worker processes (POSIX only).  A fork *is* a
  workspace snapshot: each worker inherits the parent's warmed caches and
  graphs by copy-on-write and runs fully independently, so CPU-bound
  workloads scale with cores regardless of the GIL.  Results travel back
  by pickle.  Fork while other threads run is unsafe (CPython caveat);
  the bench and batch paths fork before spawning any worker thread.

:class:`ConcurrencyStats` aggregates what the batch did to the shared
machinery: snapshots pinned, epoch waits updates suffered, lock contention
on the caches, and how evenly the worker pool was utilized.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..geometry.rectangle import Rect
from .executor import _execute_bucket, _locality_buckets, execute
from .queries import Query
from .results import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.snapshot import WorkspaceSnapshot
    from ..service.workspace import Workspace

THREAD = "thread"
"""Pool mode: worker threads over this process's shared caches."""

FORK = "fork"
"""Pool mode: forked worker processes (copy-on-write snapshots)."""


@dataclass
class ConcurrencyStats:
    """What one parallel batch did to the workspace's shared machinery."""

    workers: int = 1
    """Worker pool size the batch ran with."""

    mode: str = THREAD
    """Pool mode (``"thread"`` or ``"fork"``)."""

    queries: int = 0
    """Queries executed by the batch."""

    tasks: int = 0
    """Work units dispatched to the pool (locality buckets + non-spatial
    tail)."""

    snapshots_taken: int = 0
    """Workspace snapshots pinned for this batch (1, plus any retries the
    caller performed)."""

    epoch_waits: int = 0
    """Updates that blocked on this batch's read hold (delta of the
    workspace lock's ``write_waits``)."""

    lock_contention: int = 0
    """Contended acquisitions of the obstacle-cache lock while the batch
    ran — how often parallel workers actually serialized on shared state."""

    wall_time_s: float = 0.0
    """Wall-clock time of the parallel section."""

    busy_time_s: float = 0.0
    """Summed per-task execution time across workers."""

    graph_clones: int = 0
    """Shared-graph skeleton clones pre-provisioned for the pool."""

    per_task_s: List[float] = field(default_factory=list, repr=False)
    """Per-task wall times (diagnostic; drives :attr:`worker_utilization`)."""

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's capacity the batch kept busy.

        ``busy_time / (workers * wall_time)`` — 1.0 means every worker
        computed for the whole parallel section; low values mean the
        bucket partition was skewed or the batch too small for the pool.
        """
        cap = self.workers * self.wall_time_s
        return self.busy_time_s / cap if cap > 0 else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.queries} queries / {self.tasks} tasks on "
                f"{self.workers} {self.mode} workers: "
                f"wall {self.wall_time_s * 1e3:.1f} ms, "
                f"utilization {self.worker_utilization:.0%}, "
                f"{self.epoch_waits} epoch waits, "
                f"{self.lock_contention} contended lock acquisitions")


# --------------------------------------------------------------- fork plumbing
_fork_workspace: Optional["Workspace"] = None
_fork_queries: Optional[List[Query]] = None


def _fork_run_shard(shard: Sequence[Sequence[int]]
                    ) -> List[Tuple[int, QueryResult, float]]:
    """Run one shard of buckets inside a forked worker.

    The workspace and query list arrive through the fork (module globals
    set just before the pool was created), so only bucket indices go down
    and pickled results come back.
    """
    ws, qs = _fork_workspace, _fork_queries
    out: List[Tuple[int, QueryResult, float]] = []
    for bucket in shard:
        t0 = time.perf_counter()
        results: List[Optional[QueryResult]] = [None] * len(qs)
        _execute_bucket(ws, qs, list(bucket), results)
        dt = time.perf_counter() - t0
        for i in bucket:
            out.append((i, results[i], dt / len(bucket)))
    return out


def _shard_round_robin(buckets: List[List[int]],
                       shards: int) -> List[List[List[int]]]:
    """Deal buckets across ``shards`` piles, largest first, lightest pile
    next — a greedy balance good enough for coarse bucket work units."""
    piles: List[List[List[int]]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for bucket in sorted(buckets, key=len, reverse=True):
        i = loads.index(min(loads))
        piles[i].append(bucket)
        loads[i] += len(bucket)
    return [p for p in piles if p]


def effective_workers(workers: int, mode: str = THREAD) -> int:
    """Clamp a requested pool size to something the host can honor."""
    if workers <= 1:
        return 1
    if mode == FORK:
        return min(workers, max(1, os.cpu_count() or 1))
    return workers


def execute_many_parallel(snapshot: "WorkspaceSnapshot",
                          queries: Iterable[Query], *,
                          schedule: str = "locality", workers: int = 4,
                          mode: str = THREAD) -> List[QueryResult]:
    """Execute a batch against one snapshot on a worker pool.

    Args:
        snapshot: the pinned workspace version to execute against (take
            one with :meth:`Workspace.snapshot`); verified under the read
            hold, so a batch either runs entirely on its version or raises
            :class:`~repro.service.concurrency.SnapshotExpired` upfront.
        schedule: ``"locality"`` partitions by the Hilbert locality grid
            (the parallel unit of work); ``"fifo"`` round-robins single
            queries (no bucket prefetch amortization — use it to force
            maximum interleaving in stress tests).
        workers: pool size; ``<= 1`` falls back to the serial executor
            under the same snapshot semantics.
        mode: ``"thread"`` or ``"fork"`` (see the module docstring).

    Returns:
        Results in submission order, each carrying ``.query``.  The
        batch's :class:`ConcurrencyStats` is attached to the returned list
        as the ``concurrency`` attribute of :func:`last_batch_stats`.
    """
    from ..service.workspace import Workspace

    if isinstance(snapshot, Workspace):  # courtesy: accept a live workspace
        snapshot = snapshot.snapshot()
    ws = snapshot.workspace
    qs = list(queries)
    if schedule not in ("locality", "fifo"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if mode not in (THREAD, FORK):
        raise ValueError(f"unknown mode {mode!r}; expected 'thread' "
                         "or 'fork'")
    if mode == FORK and not hasattr(os, "fork"):
        mode = THREAD  # pragma: no cover - non-POSIX hosts
    workers = effective_workers(workers, mode)

    stats = ConcurrencyStats(workers=workers, mode=mode, queries=len(qs),
                             snapshots_taken=1)
    epoch0 = ws._rw.write_waits
    contention0 = ws.cache.lock.contended

    with ws.read_lock():
        snapshot.verify()
        if workers <= 1 or len(qs) <= 1:
            t0 = time.perf_counter()
            results = [execute(ws, q) for q in qs]
            stats.tasks = len(qs)
            stats.wall_time_s = stats.busy_time_s = time.perf_counter() - t0
        else:
            results = _run_pool(ws, qs, schedule, workers, mode, stats)
    stats.epoch_waits = ws._rw.write_waits - epoch0
    stats.lock_contention = ws.cache.lock.contended - contention0
    _LAST_BATCH.stats = stats
    return results


def _partition(ws: "Workspace", qs: List[Query],
               schedule: str) -> Tuple[List[List[int]], List[int]]:
    """Spatial buckets plus the non-spatial tail, in executor order."""
    spatial: List[Tuple[int, Rect]] = []
    other: List[int] = []
    for i, q in enumerate(qs):
        fp = q.footprint() if isinstance(q, Query) else None
        if fp is not None:
            spatial.append((i, fp))
        else:
            other.append(i)
    if schedule == "fifo":
        return [[i] for i, _fp in spatial], other
    return _locality_buckets(ws, spatial), other


def _run_pool(ws: "Workspace", qs: List[Query], schedule: str, workers: int,
              mode: str, stats: ConcurrencyStats) -> List[QueryResult]:
    buckets, other = _partition(ws, qs, schedule)
    results: List[Optional[QueryResult]] = [None] * len(qs)
    t0 = time.perf_counter()
    if mode == THREAD:
        stats.graph_clones = ws.routing.prepare_sessions(workers)
        _run_threads(ws, qs, buckets, workers, results, stats)
    else:
        _run_forks(ws, qs, buckets, workers, results, stats)
    # Non-spatial queries (the joins) run on the coordinating thread, in
    # submission order — exactly the serial executor's tail behavior.
    for i in other:
        t1 = time.perf_counter()
        results[i] = execute(ws, qs[i])
        stats.per_task_s.append(time.perf_counter() - t1)
        stats.tasks += 1
    stats.wall_time_s = time.perf_counter() - t0
    stats.busy_time_s = math.fsum(stats.per_task_s)
    return results  # type: ignore[return-value]


def _run_threads(ws: "Workspace", qs: List[Query], buckets: List[List[int]],
                 workers: int, results: List[Optional[QueryResult]],
                 stats: ConcurrencyStats) -> None:
    from concurrent.futures import ThreadPoolExecutor

    record_lock = threading.Lock()

    def run_bucket(bucket: List[int]) -> None:
        t1 = time.perf_counter()
        # Buckets write disjoint result slots; _execute_bucket's cache
        # interactions are serialized by the cache lock.
        _execute_bucket(ws, qs, bucket, results)
        dt = time.perf_counter() - t1
        with record_lock:
            stats.per_task_s.append(dt)
            stats.tasks += 1

    with ThreadPoolExecutor(max_workers=workers,
                            thread_name_prefix="repro-batch") as pool:
        # Workers run the lock-free executor entry points; the
        # coordinator's read hold (our caller) is what excludes writers
        # for the whole pool, so workers never queue behind a waiting
        # writer mid-batch.
        for future in [pool.submit(run_bucket, b) for b in buckets]:
            future.result()


def _run_forks(ws: "Workspace", qs: List[Query], buckets: List[List[int]],
               workers: int, results: List[Optional[QueryResult]],
               stats: ConcurrencyStats) -> None:
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    global _fork_workspace, _fork_queries
    shards = _shard_round_robin(buckets, workers)
    _fork_workspace, _fork_queries = ws, qs
    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=len(shards),
                                 mp_context=ctx) as pool:
            for future in [pool.submit(_fork_run_shard, shard)
                           for shard in shards]:
                for i, result, dt in future.result():
                    results[i] = result
                    stats.per_task_s.append(dt)
            stats.tasks += len(shards)
    finally:
        _fork_workspace = _fork_queries = None


class _LastBatch(threading.local):
    stats: Optional[ConcurrencyStats] = None


_LAST_BATCH = _LastBatch()


def last_batch_stats() -> Optional[ConcurrencyStats]:
    """The :class:`ConcurrencyStats` of this thread's most recent parallel
    batch (``None`` before any ran)."""
    return _LAST_BATCH.stats
