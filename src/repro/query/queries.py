"""Typed, immutable query descriptions — the declarative submission surface.

Every query the library can answer is describable as a frozen dataclass:
what to search (a segment, a point, a polyline, a pair of trees), how many
neighbors, and optional per-query overrides (``config``, ``label``).  A
description carries no algorithm choice — the planner
(:func:`repro.query.planner.build_plan`) picks the algorithm and tree layout
when the query meets a :class:`~repro.service.Workspace`, which is what lets
the executor reorder, batch, and prefetch behind one uniform API.

Descriptions validate eagerly: a degenerate CONN segment, ``k < 1``, or a
negative range radius raise ``ValueError`` at construction time, before any
index is touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional, Tuple

from ..core.config import ConnConfig
from ..geometry.point import Point, as_point
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..index.rstar import RStarTree


def as_query_point(x: Any, y: Optional[float] = None) -> Point:
    """Coerce a query location into a :class:`~repro.geometry.point.Point`.

    Accepts the three spellings the public entry points allow::

        as_query_point(3.0, 4.0)       # bare floats
        as_query_point((3.0, 4.0))     # (x, y) tuple
        as_query_point(Point(3, 4))    # Point

    Raises:
        TypeError: when ``x`` is a point-like and ``y`` is also given (the
            call is ambiguous — pass ``k``/``radius`` by keyword instead).
    """
    if isinstance(x, (int, float)) and not isinstance(x, bool):
        if y is None:
            raise TypeError("missing y coordinate (or pass one (x, y) pair)")
        return Point(float(x), float(y))
    if y is not None:
        raise TypeError("got both a point-like first argument and a second "
                        "coordinate; pass trailing options by keyword")
    return as_point(x)


def as_range_args(x: Any, y: Optional[float] = None,
                  radius: Optional[float] = None) -> Tuple[Point, float]:
    """Normalize ``range``-style arguments: floats, tuple, or Point + radius.

    Supports ``(x, y, radius)``, ``((x, y), radius)`` and
    ``(Point, radius)`` spellings (``radius`` positional or by keyword).
    """
    if isinstance(x, (int, float)) and not isinstance(x, bool):
        if y is None or radius is None:
            raise TypeError("range needs x, y and radius (or a point-like "
                            "and radius)")
        return Point(float(x), float(y)), float(radius)
    if radius is None:
        radius = y
    elif y is not None:
        raise TypeError("got both a point-like first argument and a second "
                        "coordinate; pass radius once")
    if radius is None:
        raise TypeError("range needs a radius")
    return as_query_point(x), float(radius)


def _as_segment(segment: Any) -> Segment:
    if isinstance(segment, Segment):
        return segment
    ax, ay, bx, by = segment
    return Segment(float(ax), float(ay), float(bx), float(by))


@dataclass(frozen=True, kw_only=True)
class Query:
    """Base of every typed query description.

    Attributes:
        label: free-form tag echoed through plans and results (handy for
            correlating batch submissions with their answers).
        config: per-query :class:`~repro.core.config.ConnConfig` override;
            ``None`` uses the workspace default.
    """

    label: Optional[str] = None
    config: Optional[ConnConfig] = None

    kind: ClassVar[str] = "query"

    @property
    def k(self) -> int:
        """Number of neighbors requested (1 for non-kNN queries)."""
        return 1

    def footprint(self) -> Optional[Rect]:
        """Spatial extent of the query, for locality scheduling.

        ``None`` for non-spatial queries (the joins), which the batch
        scheduler leaves in submission order.
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description for ``explain()`` output."""
        return repr(self)


@dataclass(frozen=True)
class CoknnQuery(Query):
    """Continuous obstructed k-NN of every point of ``segment`` (COkNN)."""

    segment: Segment
    knn: int = 1

    kind: ClassVar[str] = "coknn"

    def __post_init__(self) -> None:
        object.__setattr__(self, "segment", _as_segment(self.segment))
        if self.segment.is_degenerate():
            raise ValueError("query segment is degenerate; use OnnQuery for "
                             "points")
        if self.knn < 1:
            raise ValueError("k must be at least 1")

    @property
    def k(self) -> int:
        return self.knn

    def footprint(self) -> Rect:
        return Rect(*self.segment.bbox())

    def describe(self) -> str:
        s = self.segment
        return (f"{self.kind}(({s.ax:g}, {s.ay:g}) -> ({s.bx:g}, {s.by:g}), "
                f"k={self.k})")


@dataclass(frozen=True)
class ConnQuery(CoknnQuery):
    """Continuous obstructed nearest-neighbor query (COkNN with k = 1)."""

    kind: ClassVar[str] = "conn"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.knn != 1:
            raise ValueError("ConnQuery is k = 1 by definition; use "
                             "CoknnQuery for k > 1")


@dataclass(frozen=True)
class OnnQuery(Query):
    """Snapshot obstructed k-NN at a single point."""

    point: Point
    knn: int = 1

    kind: ClassVar[str] = "onn"

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", as_query_point(self.point))
        if self.knn < 1:
            raise ValueError("k must be at least 1")

    @property
    def k(self) -> int:
        return self.knn

    def footprint(self) -> Rect:
        return Rect.point(self.point.x, self.point.y)

    def describe(self) -> str:
        return f"onn(({self.point.x:g}, {self.point.y:g}), k={self.k})"


@dataclass(frozen=True)
class RangeQuery(Query):
    """All data points within obstructed distance ``radius`` of ``point``."""

    point: Point
    radius: float = 0.0

    kind: ClassVar[str] = "range"

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", as_query_point(self.point))
        object.__setattr__(self, "radius", float(self.radius))
        if self.radius < 0:
            raise ValueError("radius must be non-negative")

    def footprint(self) -> Rect:
        return Rect.point(self.point.x, self.point.y).expanded(self.radius)

    def describe(self) -> str:
        return (f"range(({self.point.x:g}, {self.point.y:g}), "
                f"radius={self.radius:g})")


@dataclass(frozen=True)
class TrajectoryQuery(Query):
    """Continuous obstructed k-NN along a polyline of waypoints."""

    waypoints: Tuple[Tuple[float, float], ...]
    knn: int = 1

    kind: ClassVar[str] = "trajectory"

    def __post_init__(self) -> None:
        pts = tuple((float(x), float(y)) for x, y in self.waypoints)
        object.__setattr__(self, "waypoints", pts)
        if len(pts) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if all(Segment(ax, ay, bx, by).is_degenerate()
               for (ax, ay), (bx, by) in zip(pts, pts[1:])):
            raise ValueError("trajectory has no leg of positive length")
        if self.knn < 1:
            raise ValueError("k must be at least 1")

    @property
    def k(self) -> int:
        return self.knn

    def footprint(self) -> Rect:
        return Rect.from_points(self.waypoints)

    def describe(self) -> str:
        return f"trajectory({len(self.waypoints)} waypoints, k={self.k})"


@dataclass(frozen=True)
class _JoinQuery(Query):
    """Base of the obstructed-join queries (require the 2T layout)."""

    left: RStarTree = None  # type: ignore[assignment]
    right: RStarTree = None  # type: ignore[assignment]

    kind: ClassVar[str] = "join"

    def __post_init__(self) -> None:
        if self.left is None or self.right is None:
            raise ValueError(f"{type(self).__name__} needs two point trees")

    def describe(self) -> str:
        return (f"{self.kind}({self.left.size} x {self.right.size} points)")


@dataclass(frozen=True)
class SemiJoinQuery(_JoinQuery):
    """For each point of ``left``: its obstructed NN in ``right``."""

    kind: ClassVar[str] = "semi-join"


@dataclass(frozen=True)
class EDistanceJoinQuery(_JoinQuery):
    """All cross pairs within obstructed distance ``e``."""

    e: float = 0.0

    kind: ClassVar[str] = "e-distance-join"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "e", float(self.e))
        if self.e < 0:
            raise ValueError("e must be non-negative")

    def describe(self) -> str:
        return (f"{self.kind}({self.left.size} x {self.right.size} points, "
                f"e={self.e:g})")


@dataclass(frozen=True)
class ClosestPairQuery(_JoinQuery):
    """The cross-set pair with the smallest obstructed distance."""

    kind: ClassVar[str] = "closest-pair"
