"""Unified result protocol for the declarative query API.

Every value returned by :meth:`Workspace.execute` satisfies one contract —
the :class:`QueryResult` protocol:

* ``.tuples()`` — the primary answer as a list of tuples (result intervals
  for continuous queries, ``(payload, distance)`` pairs for point queries,
  join rows for joins);
* ``.stats`` — the per-query :class:`~repro.core.stats.QueryStats`;
* ``.query`` — a back-reference to the submitted query description.

:class:`~repro.core.engine.ConnResult` and
:class:`~repro.core.trajectory.TrajectoryResult` already satisfy it; this
module adds the wrappers for answers that used to be bare
``(list, stats)`` pairs: :class:`NeighborsResult` (ONN / range),
:class:`JoinResult` (semi-join / e-distance join) and
:class:`ClosestPairResult`.
"""

from __future__ import annotations

from typing import (
    Any,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.stats import QueryStats
from .queries import Query


@runtime_checkable
class QueryResult(Protocol):
    """The contract every :meth:`Workspace.execute` return value satisfies."""

    stats: QueryStats
    query: Optional[Query]

    def tuples(self) -> List[tuple]:
        """The primary answer as a list of tuples."""
        ...  # pragma: no cover - protocol


class _SequenceResult(Sequence):
    """List-like result carrier: rows plus ``stats`` and ``query``."""

    __slots__ = ("_rows", "stats", "query")

    def __init__(self, rows: List[tuple], stats: QueryStats,
                 query: Optional[Query] = None):
        self._rows = list(rows)
        self.stats = stats
        self.query = query

    def tuples(self) -> List[tuple]:
        """The rows as a plain list."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        return self._rows[index]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _SequenceResult):
            return self._rows == other._rows
        if isinstance(other, list):
            return self._rows == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({len(self._rows)} rows)"


class NeighborsResult(_SequenceResult):
    """Answer of an ONN or obstructed-range query.

    Behaves as a sequence of ``(payload, obstructed_distance)`` pairs in
    ascending distance order, with ``.stats`` and ``.query`` attached.
    """

    @property
    def neighbors(self) -> List[Tuple[Any, float]]:
        """The ``(payload, distance)`` pairs (alias of :meth:`tuples`)."""
        return list(self._rows)


class JoinResult(_SequenceResult):
    """Answer of an obstructed semi-join or e-distance join.

    A sequence of ``(payload_a, payload_b, distance)`` rows (``payload_b``
    is ``None`` for unreachable outer points in a semi-join).
    """

    @property
    def rows(self) -> List[Tuple[Any, Any, float]]:
        """The join rows (alias of :meth:`tuples`)."""
        return list(self._rows)


class ClosestPairResult:
    """Answer of an obstructed closest-pair query."""

    __slots__ = ("pair", "stats", "query")

    def __init__(self, pair: Optional[Tuple[Any, Any, float]],
                 stats: QueryStats, query: Optional[Query] = None):
        self.pair = pair
        self.stats = stats
        self.query = query

    def tuples(self) -> List[Tuple[Any, Any, float]]:
        """``[(payload_a, payload_b, distance)]``, or ``[]`` when no pair."""
        return [self.pair] if self.pair is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClosestPairResult({self.pair!r})"
