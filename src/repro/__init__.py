"""repro — Continuous Obstructed Nearest Neighbor queries in spatial databases.

A complete, from-scratch reproduction of Gao & Zheng, *Continuous Obstructed
Nearest Neighbor Queries in Spatial Databases* (SIGMOD 2009): the CONN and
COkNN query processing algorithms, the substrates they stand on (paged
R*-tree, local visibility graphs, exact visible regions), a
:class:`~repro.service.Workspace` service layer that amortizes obstacle
retrieval across query workloads, a declarative query API
(:mod:`repro.query`) — typed query descriptions, a planner with
``explain()``, and a locality-aware batch executor — and the baselines,
dataset generators and benchmarks needed to regenerate the paper's
evaluation.

See the repository's ``README.md`` for installation, the full quickstart and
a map of the package layout.  The short version::

    from repro import CoknnQuery, Segment, Workspace

    ws = Workspace.from_points(points, obstacles)      # or .from_trees(...)
    result = ws.conn(Segment(0, 50, 100, 50))          # classic shorthand
    for owner, (lo, hi) in result.tuples():
        print(f"point {owner} is the obstructed NN on [{lo:.1f}, {hi:.1f}]")

    q = CoknnQuery(Segment(0, 50, 100, 50), knn=3)     # declarative form
    print(ws.plan(q).explain())                        # algorithm + est. I/O
    results = ws.execute_many([q, *more_queries])      # locality-scheduled
"""

from .baselines import (
    GlobalVisibilityGraph,
    cknn_euclidean,
    cnn_euclidean,
    full_vertex_count,
    naive_coknn,
    naive_conn,
    naive_onn,
)
from .core import (
    DEFAULT_CONFIG,
    ConnConfig,
    ConnResult,
    PiecewiseDistance,
    QueryStats,
    TrajectoryResult,
    build_unified_tree,
    coknn,
    coknn_single_tree,
    conn,
    conn_single_tree,
    obstructed_closest_pair,
    obstructed_distance_indexed,
    obstructed_e_distance_join,
    obstructed_range,
    obstructed_semi_join,
    onn,
    trajectory_coknn,
    trajectory_conn,
    vknn,
)
from .geometry import IntervalSet, Point, Rect, Segment
from .index import IncrementalNearest, LRUBuffer, PageTracker, RStarTree
from .query import (
    ClosestPairQuery,
    ClosestPairResult,
    CoknnQuery,
    ConcurrencyStats,
    ConnQuery,
    EDistanceJoinQuery,
    JoinResult,
    NeighborsResult,
    OnnQuery,
    PlannerOptions,
    Query,
    QueryPlan,
    QueryResult,
    RangeQuery,
    SemiJoinQuery,
    TrajectoryQuery,
)
from .monitor import (
    Monitor,
    MonitorEvent,
    MonitorRegistry,
    ResultDelta,
)
from .routing import (
    BackendStats,
    DEFAULT_ROUTING,
    ObstructedDistanceBackend,
    PerQueryVGBackend,
    RoutingConfig,
    SCALAR_ROUTING,
    SharedVGBackend,
    VGSession,
)
from .service import (
    AddObstacle,
    AddSite,
    CachedObstacleView,
    CacheReadView,
    CacheStats,
    Capsule,
    ObstacleCache,
    QueryService,
    ReadWriteLock,
    RemoveObstacle,
    RemoveSite,
    SnapshotExpired,
    Workspace,
    WorkspaceSnapshot,
)
from .shard import (
    GridPartitioner,
    HilbertPartitioner,
    ShardedSnapshot,
    ShardedWorkspace,
    ShardStats,
)
from .obstacles import (
    LocalVisibilityGraph,
    Obstacle,
    ObstacleSet,
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
    obstructed_distance,
    obstructed_path,
    visible_region,
)

__version__ = "1.9.0"

__all__ = [
    "AddObstacle",
    "AddSite",
    "BackendStats",
    "DEFAULT_ROUTING",
    "RoutingConfig",
    "SCALAR_ROUTING",
    "CacheReadView",
    "CacheStats",
    "Capsule",
    "CachedObstacleView",
    "ConcurrencyStats",
    "ClosestPairQuery",
    "ClosestPairResult",
    "CoknnQuery",
    "ConnConfig",
    "ConnQuery",
    "ConnResult",
    "DEFAULT_CONFIG",
    "EDistanceJoinQuery",
    "GlobalVisibilityGraph",
    "GridPartitioner",
    "HilbertPartitioner",
    "IncrementalNearest",
    "IntervalSet",
    "JoinResult",
    "LRUBuffer",
    "LocalVisibilityGraph",
    "Monitor",
    "MonitorEvent",
    "MonitorRegistry",
    "NeighborsResult",
    "Obstacle",
    "ObstacleCache",
    "ObstacleSet",
    "ObstructedDistanceBackend",
    "OnnQuery",
    "PageTracker",
    "PerQueryVGBackend",
    "PlannerOptions",
    "PolygonObstacle",
    "PiecewiseDistance",
    "Point",
    "Query",
    "QueryPlan",
    "QueryResult",
    "QueryService",
    "QueryStats",
    "RStarTree",
    "ReadWriteLock",
    "RangeQuery",
    "Rect",
    "RectObstacle",
    "RemoveObstacle",
    "RemoveSite",
    "ResultDelta",
    "Segment",
    "SegmentObstacle",
    "SemiJoinQuery",
    "ShardStats",
    "ShardedSnapshot",
    "ShardedWorkspace",
    "SharedVGBackend",
    "SnapshotExpired",
    "TrajectoryQuery",
    "TrajectoryResult",
    "VGSession",
    "Workspace",
    "WorkspaceSnapshot",
    "build_unified_tree",
    "cknn_euclidean",
    "cnn_euclidean",
    "coknn",
    "coknn_single_tree",
    "conn",
    "conn_single_tree",
    "full_vertex_count",
    "naive_coknn",
    "naive_conn",
    "naive_onn",
    "obstructed_distance",
    "obstructed_closest_pair",
    "obstructed_distance_indexed",
    "obstructed_e_distance_join",
    "obstructed_path",
    "obstructed_range",
    "obstructed_semi_join",
    "onn",
    "trajectory_coknn",
    "trajectory_conn",
    "visible_region",
    "vknn",
    "__version__",
]
