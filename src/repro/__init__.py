"""repro — Continuous Obstructed Nearest Neighbor queries in spatial databases.

A complete, from-scratch reproduction of Gao & Zheng, *Continuous Obstructed
Nearest Neighbor Queries in Spatial Databases* (SIGMOD 2009): the CONN and
COkNN query processing algorithms (IOR, CPLC, RLU, control points, the
quadratic split-point method), the substrates they stand on (a paged R*-tree
with LRU buffering and best-first traversal, local visibility graphs, exact
visible-region computation), and the baselines and dataset generators needed
to regenerate every figure of the paper's evaluation.

Quickstart::

    import random
    from repro import (RStarTree, Rect, Segment, RectObstacle, conn)

    rng = random.Random(0)
    data = RStarTree()
    for i in range(100):
        data.insert_point(i, rng.uniform(0, 100), rng.uniform(0, 100))
    obstacles = RStarTree()
    for o in [RectObstacle(40, 40, 60, 60)]:
        obstacles.insert(o, o.mbr())

    result = conn(data, obstacles, Segment(0, 50, 100, 50))
    for owner, (lo, hi) in result.tuples():
        print(f"point {owner} is the obstructed NN on [{lo:.1f}, {hi:.1f}]")
"""

from .baselines import (
    GlobalVisibilityGraph,
    cknn_euclidean,
    cnn_euclidean,
    full_vertex_count,
    naive_coknn,
    naive_conn,
    naive_onn,
)
from .core import (
    DEFAULT_CONFIG,
    ConnConfig,
    ConnResult,
    PiecewiseDistance,
    QueryStats,
    build_unified_tree,
    coknn,
    coknn_single_tree,
    conn,
    conn_single_tree,
    obstructed_closest_pair,
    obstructed_distance_indexed,
    obstructed_e_distance_join,
    obstructed_range,
    obstructed_semi_join,
    onn,
    trajectory_coknn,
    trajectory_conn,
    vknn,
)
from .geometry import IntervalSet, Point, Rect, Segment
from .index import IncrementalNearest, LRUBuffer, PageTracker, RStarTree
from .obstacles import (
    LocalVisibilityGraph,
    Obstacle,
    ObstacleSet,
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
    obstructed_distance,
    obstructed_path,
    visible_region,
)

__version__ = "1.0.0"

__all__ = [
    "ConnConfig",
    "ConnResult",
    "DEFAULT_CONFIG",
    "GlobalVisibilityGraph",
    "IncrementalNearest",
    "IntervalSet",
    "LRUBuffer",
    "LocalVisibilityGraph",
    "Obstacle",
    "ObstacleSet",
    "PageTracker",
    "PolygonObstacle",
    "PiecewiseDistance",
    "Point",
    "QueryStats",
    "RStarTree",
    "Rect",
    "RectObstacle",
    "Segment",
    "SegmentObstacle",
    "build_unified_tree",
    "cknn_euclidean",
    "cnn_euclidean",
    "coknn",
    "coknn_single_tree",
    "conn",
    "conn_single_tree",
    "full_vertex_count",
    "naive_coknn",
    "naive_conn",
    "naive_onn",
    "obstructed_distance",
    "obstructed_closest_pair",
    "obstructed_distance_indexed",
    "obstructed_e_distance_join",
    "obstructed_path",
    "obstructed_range",
    "obstructed_semi_join",
    "onn",
    "trajectory_coknn",
    "trajectory_conn",
    "visible_region",
    "vknn",
    "__version__",
]
