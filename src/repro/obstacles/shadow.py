"""Shadow intervals and visible regions (Definition 2 of the paper).

The *visible region* ``VR_{v,q}`` of a viewpoint ``v`` over the query segment
``q`` is the set of parameters ``t`` whose sight line ``[v, q(t)]`` no
obstacle blocks.  Each convex obstacle blocks a single parameter interval —
its *shadow* — because the shadow volume of a convex body under a point light
source is convex, and a convex region meets a line in an interval.

Both computations find the shadow exactly by the candidate-line method: the
blocked predicate can only switch value at parameters where the sight line
passes through an obstacle vertex or where ``q`` itself crosses an obstacle's
supporting line.  We collect those candidate parameters, classify each
elementary gap by testing its midpoint, and take the blocked span.

Scalar versions are the readable reference; the numpy versions batch over
whole obstacle arrays and are what the visibility graph actually calls.  The
test suite checks they agree and that both agree with dense sampling.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..geometry.interval import IntervalSet
from ..geometry.predicates import (
    EPS,
    segment_crosses_rect_interior,
    segments_properly_cross,
)
from ..geometry.segment import Segment
from ..geometry.vectorized import (
    crosses_convex_polygon,
    crosses_rect_interior,
    proper_cross_segments,
)
from .obstacle import (
    Obstacle,
    ObstacleSet,
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
)

_WIDTH_EPS = 1e-9


# --------------------------------------------------------------------- scalar
def _line_param(qseg: Segment, vx: float, vy: float, cx: float, cy: float):
    """Arc-length parameter where line ``v -> c`` meets the line of ``q``."""
    ln = qseg.length
    ux = (qseg.bx - qseg.ax) / ln
    uy = (qseg.by - qseg.ay) / ln
    dx = cx - vx
    dy = cy - vy
    denom = ux * dy - uy * dx
    scale = max(abs(dx) + abs(dy), 1.0)
    if abs(denom) <= EPS * scale:
        return None
    num = (vx - qseg.ax) * dy - (vy - qseg.ay) * dx
    return num / denom


def _classify_blocked(qseg: Segment, vx: float, vy: float,
                      candidates: List[float], blocked_at) -> List[Tuple[float, float]]:
    """Merge elementary gaps between ``candidates`` whose midpoint is blocked."""
    ln = qseg.length
    ts = sorted({min(max(t, 0.0), ln) for t in candidates} | {0.0, ln})
    out: List[Tuple[float, float]] = []
    for lo, hi in zip(ts, ts[1:]):
        if hi - lo <= _WIDTH_EPS:
            continue
        mid = qseg.point_at((lo + hi) * 0.5)
        if blocked_at(mid.x, mid.y):
            if out and abs(out[-1][1] - lo) <= _WIDTH_EPS:
                out[-1] = (out[-1][0], hi)
            else:
                out.append((lo, hi))
    return out


def shadow_intervals_scalar(vx: float, vy: float, qseg: Segment,
                            obstacle: Obstacle) -> List[Tuple[float, float]]:
    """Blocked parameter intervals of one obstacle, scalar reference version."""
    candidates: List[float] = []
    if isinstance(obstacle, RectObstacle):
        r = obstacle.rect
        for cx, cy in r.corners():
            t = _line_param(qseg, vx, vy, cx, cy)
            if t is not None:
                candidates.append(t)
        ln = qseg.length
        ux = (qseg.bx - qseg.ax) / ln
        uy = (qseg.by - qseg.ay) / ln
        if abs(ux) > EPS:
            candidates.append((r.xlo - qseg.ax) / ux)
            candidates.append((r.xhi - qseg.ax) / ux)
        if abs(uy) > EPS:
            candidates.append((r.ylo - qseg.ay) / uy)
            candidates.append((r.yhi - qseg.ay) / uy)

        def blocked_at(mx: float, my: float) -> bool:
            return segment_crosses_rect_interior(vx, vy, mx, my,
                                                 r.xlo, r.ylo, r.xhi, r.yhi)
    elif isinstance(obstacle, SegmentObstacle):
        s = obstacle.seg
        for cx, cy in ((s.ax, s.ay), (s.bx, s.by)):
            t = _line_param(qseg, vx, vy, cx, cy)
            if t is not None:
                candidates.append(t)
        t = qseg.line_intersection_param(s.ax, s.ay, s.bx, s.by)
        if t is not None:
            candidates.append(t)

        def blocked_at(mx: float, my: float) -> bool:
            return segments_properly_cross(vx, vy, mx, my, s.ax, s.ay, s.bx, s.by)
    elif isinstance(obstacle, PolygonObstacle):
        arr = obstacle.as_array()
        n = arr.shape[0]
        for i in range(n):
            t = _line_param(qseg, vx, vy, arr[i, 0], arr[i, 1])
            if t is not None:
                candidates.append(t)
            j = (i + 1) % n
            t = qseg.line_intersection_param(arr[i, 0], arr[i, 1],
                                             arr[j, 0], arr[j, 1])
            if t is not None:
                candidates.append(t)

        def blocked_at(mx: float, my: float) -> bool:
            return bool(crosses_convex_polygon(vx, vy, mx, my, arr))
    else:
        raise TypeError(f"unsupported obstacle type {type(obstacle).__name__}")
    return _classify_blocked(qseg, vx, vy, candidates, blocked_at)


def visible_region_scalar(vx: float, vy: float, qseg: Segment,
                          obstacles: ObstacleSet) -> IntervalSet:
    """Visible region via the scalar path (reference / small inputs)."""
    blocked: List[Tuple[float, float]] = []
    for o in obstacles:
        blocked.extend(shadow_intervals_scalar(vx, vy, qseg, o))
    return IntervalSet.full(0.0, qseg.length).subtract(IntervalSet(blocked))


# ----------------------------------------------------------------- vectorized
def shadow_intervals_rects(vx: float, vy: float, qseg: Segment,
                           rects: np.ndarray) -> List[Tuple[float, float]]:
    """Blocked intervals contributed by each rectangle in ``rects`` (N, 4)."""
    n = rects.shape[0]
    if n == 0:
        return []
    ln = qseg.length
    sx, sy = qseg.ax, qseg.ay
    ux = (qseg.bx - sx) / ln
    uy = (qseg.by - sy) / ln
    xlo, ylo, xhi, yhi = rects[:, 0], rects[:, 1], rects[:, 2], rects[:, 3]

    # Candidate parameters from the four corner sight lines.
    corner_x = np.stack([xlo, xhi, xhi, xlo], axis=1)  # (N, 4)
    corner_y = np.stack([ylo, ylo, yhi, yhi], axis=1)
    dx = corner_x - vx
    dy = corner_y - vy
    denom = ux * dy - uy * dx
    num = (vx - sx) * dy - (vy - sy) * dx
    scale = np.maximum(np.abs(dx) + np.abs(dy), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_corner = np.where(np.abs(denom) > EPS * scale, num / denom, 0.0)

    # Candidate parameters where q crosses the rectangles' supporting lines.
    cols = []
    if abs(ux) > EPS:
        cols.append((xlo - sx) / ux)
        cols.append((xhi - sx) / ux)
    if abs(uy) > EPS:
        cols.append((ylo - sy) / uy)
        cols.append((yhi - sy) / uy)
    if cols:
        t_edges = np.stack(cols, axis=1)
        cand = np.concatenate([t_corner, t_edges], axis=1)
    else:  # pragma: no cover - a segment always has a nonzero direction
        cand = t_corner
    cand = np.clip(np.nan_to_num(cand, nan=0.0, posinf=ln, neginf=0.0), 0.0, ln)
    zeros = np.zeros((n, 1))
    fulls = np.full((n, 1), ln)
    cand = np.sort(np.concatenate([zeros, cand, fulls], axis=1), axis=1)

    lows = cand[:, :-1]
    highs = cand[:, 1:]
    mids = 0.5 * (lows + highs)
    wide = (highs - lows) > _WIDTH_EPS
    mx = sx + mids * ux
    my = sy + mids * uy
    blocked = crosses_rect_interior(
        vx, vy, mx, my,
        xlo[:, None], ylo[:, None], xhi[:, None], yhi[:, None],
    ) & wide

    any_blocked = blocked.any(axis=1)
    if not any_blocked.any():
        return []
    lo = np.where(blocked, lows, np.inf).min(axis=1)
    hi = np.where(blocked, highs, -np.inf).max(axis=1)
    return [(float(l), float(h))
            for l, h, keep in zip(lo, hi, any_blocked) if keep]


def shadow_intervals_segs(vx: float, vy: float, qseg: Segment,
                          segs: np.ndarray) -> List[Tuple[float, float]]:
    """Blocked intervals contributed by each segment obstacle in ``segs`` (M, 4)."""
    m = segs.shape[0]
    if m == 0:
        return []
    ln = qseg.length
    sx, sy = qseg.ax, qseg.ay
    ux = (qseg.bx - sx) / ln
    uy = (qseg.by - sy) / ln

    endpoint_x = segs[:, [0, 2]]  # (M, 2)
    endpoint_y = segs[:, [1, 3]]
    dx = endpoint_x - vx
    dy = endpoint_y - vy
    denom = ux * dy - uy * dx
    num = (vx - sx) * dy - (vy - sy) * dx
    scale = np.maximum(np.abs(dx) + np.abs(dy), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_ends = np.where(np.abs(denom) > EPS * scale, num / denom, 0.0)

    # Where q crosses the obstacle's own supporting line.
    wx = segs[:, 2] - segs[:, 0]
    wy = segs[:, 3] - segs[:, 1]
    denom2 = ux * wy - uy * wx
    num2 = (segs[:, 0] - sx) * wy - (segs[:, 1] - sy) * wx
    scale2 = np.maximum(np.abs(wx) + np.abs(wy), 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_own = np.where(np.abs(denom2) > EPS * scale2, num2 / denom2, 0.0)

    cand = np.concatenate([t_ends, t_own[:, None]], axis=1)
    cand = np.clip(np.nan_to_num(cand, nan=0.0, posinf=ln, neginf=0.0), 0.0, ln)
    zeros = np.zeros((m, 1))
    fulls = np.full((m, 1), ln)
    cand = np.sort(np.concatenate([zeros, cand, fulls], axis=1), axis=1)

    lows = cand[:, :-1]
    highs = cand[:, 1:]
    mids = 0.5 * (lows + highs)
    wide = (highs - lows) > _WIDTH_EPS
    mx = sx + mids * ux
    my = sy + mids * uy
    blocked = proper_cross_segments(
        vx, vy, mx, my,
        segs[:, 0][:, None], segs[:, 1][:, None],
        segs[:, 2][:, None], segs[:, 3][:, None],
    ) & wide

    any_blocked = blocked.any(axis=1)
    if not any_blocked.any():
        return []
    lo = np.where(blocked, lows, np.inf).min(axis=1)
    hi = np.where(blocked, highs, -np.inf).max(axis=1)
    return [(float(l), float(h))
            for l, h, keep in zip(lo, hi, any_blocked) if keep]


def shadow_intervals_polys(vx: float, vy: float, qseg: Segment,
                           polys) -> List[Tuple[float, float]]:
    """Blocked intervals of convex polygon obstacles (scalar per polygon)."""
    blocked: List[Tuple[float, float]] = []
    for poly in polys:
        blocked.extend(shadow_intervals_scalar(vx, vy, qseg, poly))
    return blocked


def shadow_set(vx: float, vy: float, qseg: Segment,
               rects: np.ndarray, segs: np.ndarray,
               polys=()) -> IntervalSet:
    """Union of all shadows from viewpoint ``v`` as an :class:`IntervalSet`."""
    blocked = shadow_intervals_rects(vx, vy, qseg, rects)
    blocked.extend(shadow_intervals_segs(vx, vy, qseg, segs))
    blocked.extend(shadow_intervals_polys(vx, vy, qseg, polys))
    return IntervalSet(blocked)


def visible_region(vx: float, vy: float, qseg: Segment,
                   obstacles: ObstacleSet) -> IntervalSet:
    """Visible region ``VR_{v,q}`` (vectorized)."""
    shadows = shadow_set(vx, vy, qseg, obstacles.rects, obstacles.segs,
                         obstacles.polys)
    return IntervalSet.full(0.0, qseg.length).subtract(shadows)
