"""Obstacle substrate: obstacle model, shadows, visibility graphs, distances."""

from .obstacle import (
    Obstacle,
    ObstacleSet,
    PolygonObstacle,
    RectObstacle,
    SegmentObstacle,
)
from .obstructed import (
    all_obstructed_distances,
    build_full_graph,
    obstructed_distance,
    obstructed_path,
)
from .shadow import (
    shadow_intervals_rects,
    shadow_intervals_scalar,
    shadow_intervals_segs,
    shadow_set,
    visible_region,
    visible_region_scalar,
)
from .visgraph import LocalVisibilityGraph

__all__ = [
    "LocalVisibilityGraph",
    "Obstacle",
    "ObstacleSet",
    "PolygonObstacle",
    "RectObstacle",
    "SegmentObstacle",
    "all_obstructed_distances",
    "build_full_graph",
    "obstructed_distance",
    "obstructed_path",
    "shadow_intervals_rects",
    "shadow_intervals_scalar",
    "shadow_intervals_segs",
    "shadow_set",
    "visible_region",
    "visible_region_scalar",
]
