"""Reference obstructed-distance computation (Definitions 3-4 of the paper).

``obstructed_distance`` builds the *full* visibility graph over the supplied
obstacles — the classic computational-geometry approach the paper reviews in
Section 2.4 — and runs Dijkstra.  It is deliberately simple: quadratic in the
number of vertices, no pruning.  The CONN machinery never calls it; it exists
as the public pairwise-distance API, as the correctness oracle for the local
visibility graph, and as the engine of the naive baselines.

The adjacency construction stays independent of the engine's lazy
visibility graph (so the oracle remains a genuinely independent check of
the sight-line predicates), but the shortest-path traversal itself runs on
the library's single Dijkstra implementation
(:mod:`repro.routing.dijkstra`) — the same expansion loop the engines use.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..geometry.point import Point
from ..geometry.vectorized import visibility_mask
from ..routing.dijkstra import dijkstra_all
from .obstacle import Obstacle, ObstacleSet


def build_full_graph(points: Sequence[Tuple[float, float]],
                     obstacles: ObstacleSet) -> List[dict]:
    """Adjacency of the full visibility graph over ``points`` + all vertices.

    Node ids: ``0 .. len(points)-1`` are the supplied points, followed by all
    obstacle vertices in obstacle order.
    """
    coords: List[Tuple[float, float]] = [(float(x), float(y)) for x, y in points]
    for o in obstacles:
        for vx, vy in o.vertices():
            coords.append((vx, vy))
    n = len(coords)
    adj: List[dict] = [{} for _ in range(n)]
    if n <= 1:
        return adj
    arr = np.asarray(coords, dtype=np.float64)
    rects = obstacles.rects
    segs = obstacles.segs
    polys = [poly.as_array() for poly in obstacles.polys]
    for i in range(n - 1):
        targets = arr[i + 1:]
        mask = visibility_mask(coords[i][0], coords[i][1], targets, rects,
                               segs, polys)
        for off, visible in enumerate(mask):
            if visible:
                j = i + 1 + off
                w = math.hypot(coords[i][0] - coords[j][0],
                               coords[i][1] - coords[j][1])
                adj[i][j] = w
                adj[j][i] = w
    return adj


def _dijkstra(adj: List[dict], source: int) -> Tuple[List[float], List[int]]:
    """Single-source shortest paths over a materialized adjacency.

    A thin adapter over the library-wide traversal
    (:func:`repro.routing.dijkstra.dijkstra_all`); kept under its
    historical name for the baselines that import it.
    """
    return dijkstra_all(adj, source)


def obstructed_distance(a: Tuple[float, float], b: Tuple[float, float],
                        obstacles: Iterable[Obstacle]) -> float:
    """Length of the shortest obstacle-avoiding path from ``a`` to ``b``.

    Returns ``inf`` when every route is sealed off.
    """
    dist, _path = obstructed_path(a, b, obstacles)
    return dist


def obstructed_path(a: Tuple[float, float], b: Tuple[float, float],
                    obstacles: Iterable[Obstacle]) -> Tuple[float, List[Point]]:
    """Shortest obstacle-avoiding path: ``(length, polyline)``.

    The polyline runs from ``a`` to ``b`` and bends only at obstacle
    vertices (Section 2.4); it is empty when unreachable.
    """
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    adj = build_full_graph([a, b], obs)
    dist, pred = _dijkstra(adj, 0)
    if math.isinf(dist[1]):
        return math.inf, []
    coords: List[Tuple[float, float]] = [(float(a[0]), float(a[1])),
                                         (float(b[0]), float(b[1]))]
    for o in obs:
        for vx, vy in o.vertices():
            coords.append((vx, vy))
    chain = [1]
    while chain[-1] != 0:
        chain.append(pred[chain[-1]])
    chain.reverse()
    return dist[1], [Point(*coords[i]) for i in chain]


def all_obstructed_distances(source: Tuple[float, float],
                             targets: Sequence[Tuple[float, float]],
                             obstacles: Iterable[Obstacle]) -> List[float]:
    """Obstructed distances from ``source`` to each of ``targets`` in one sweep."""
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    pts = [source, *targets]
    adj = build_full_graph(pts, obs)
    dist, _pred = _dijkstra(adj, 0)
    return [dist[i] for i in range(1, 1 + len(targets))]
