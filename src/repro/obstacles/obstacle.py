"""Obstacle model.

The paper assumes rectangular obstacles in its evaluation but uses line
segments in its running examples (Section 4: "we use line segments, but not
rectangles, to represent obstacles ... while the ideas can be easily extended
to rectangles").  We support both:

* :class:`RectObstacle` — blocks sight lines that cross its *open* interior;
* :class:`SegmentObstacle` — blocks sight lines that *properly* cross it.

Grazing contact (touching a vertex, running along an edge) never blocks,
because shortest obstructed paths bend exactly at obstacle vertices.

:class:`ObstacleSet` is the batch container the visibility graph works with:
it mirrors the obstacles into numpy arrays so sight-line tests vectorize.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..geometry.point import Point
from ..geometry.predicates import (
    segment_crosses_rect_interior,
    segments_properly_cross,
)
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..geometry.vectorized import blocked_by_rects, blocked_by_segments

_obstacle_ids = itertools.count()


class Obstacle:
    """Base class: an opaque planar obstacle with vertices and an MBR."""

    __slots__ = ("oid",)

    def __init__(self, oid: int | None = None):
        self.oid = next(_obstacle_ids) if oid is None else oid

    # Subclass responsibilities -------------------------------------------
    def vertices(self) -> Tuple[Point, ...]:
        raise NotImplementedError

    def mbr(self) -> Rect:
        raise NotImplementedError

    def blocks(self, ax: float, ay: float, bx: float, by: float) -> bool:
        """Scalar test: does this obstacle block sight line ``[a, b]``?"""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(oid={self.oid}, mbr={self.mbr()})"

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.oid))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Obstacle) and other.oid == self.oid and \
            type(other) is type(self)


class RectObstacle(Obstacle):
    """A solid axis-aligned rectangular obstacle."""

    __slots__ = ("rect",)

    def __init__(self, xlo: float, ylo: float, xhi: float, yhi: float,
                 oid: int | None = None):
        super().__init__(oid)
        if xhi < xlo or yhi < ylo:
            raise ValueError("rectangle highs must not be below lows")
        self.rect = Rect(float(xlo), float(ylo), float(xhi), float(yhi))

    @classmethod
    def from_rect(cls, rect: Rect, oid: int | None = None) -> "RectObstacle":
        return cls(rect.xlo, rect.ylo, rect.xhi, rect.yhi, oid)

    def vertices(self) -> Tuple[Point, ...]:
        return self.rect.corners()

    def mbr(self) -> Rect:
        return self.rect

    def blocks(self, ax: float, ay: float, bx: float, by: float) -> bool:
        r = self.rect
        return segment_crosses_rect_interior(ax, ay, bx, by,
                                             r.xlo, r.ylo, r.xhi, r.yhi)

    def contains_interior(self, x: float, y: float) -> bool:
        """True iff ``(x, y)`` is strictly inside (data points may not be)."""
        return self.rect.contains_point_open(x, y)


class PolygonObstacle(Obstacle):
    """A solid *convex* polygon obstacle.

    The paper assumes rectangles "although an obstacle can be in any shape"
    (footnote 1); this class supplies that generality.  Convexity is required
    — it is what makes an obstacle's shadow on the query segment a single
    interval (the property the visible-region machinery relies on).
    Non-convex shapes can be composed from convex pieces.
    """

    __slots__ = ("points", "_arr")

    def __init__(self, points, oid: int | None = None):
        super().__init__(oid)
        pts = [(float(x), float(y)) for x, y in points]
        if len(pts) < 3:
            raise ValueError("a polygon needs at least three vertices")
        # Normalize to counter-clockwise order.
        area2 = sum(pts[i][0] * pts[(i + 1) % len(pts)][1] -
                    pts[(i + 1) % len(pts)][0] * pts[i][1]
                    for i in range(len(pts)))
        if area2 == 0.0:
            raise ValueError("degenerate polygon (zero area)")
        if area2 < 0.0:
            pts.reverse()
        n = len(pts)
        for i in range(n):
            ax, ay = pts[i]
            bx, by = pts[(i + 1) % n]
            cx, cy = pts[(i + 2) % n]
            cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
            if cross < -1e-9 * max(abs(bx - ax) + abs(by - ay), 1.0):
                raise ValueError("polygon must be convex")
        self.points = tuple(Point(x, y) for x, y in pts)
        self._arr = np.asarray(pts, dtype=np.float64)

    def vertices(self) -> Tuple[Point, ...]:
        return self.points

    def as_array(self) -> np.ndarray:
        """Vertices as an (V, 2) float array in counter-clockwise order."""
        return self._arr

    def mbr(self) -> Rect:
        return Rect(float(self._arr[:, 0].min()), float(self._arr[:, 1].min()),
                    float(self._arr[:, 0].max()), float(self._arr[:, 1].max()))

    def contains_interior(self, x: float, y: float, eps: float = 1e-9) -> bool:
        """True iff ``(x, y)`` lies strictly inside the polygon."""
        pts = self._arr
        n = len(pts)
        for i in range(n):
            ax, ay = pts[i]
            bx, by = pts[(i + 1) % n]
            cross = (bx - ax) * (y - ay) - (by - ay) * (x - ax)
            scale = max(abs(bx - ax) + abs(by - ay), 1.0)
            if cross <= eps * scale:
                return False
        return True

    def blocks(self, ax: float, ay: float, bx: float, by: float) -> bool:
        from ..geometry.vectorized import crosses_convex_polygon

        return bool(crosses_convex_polygon(ax, ay, np.asarray([bx]),
                                           np.asarray([by]), self._arr)[0])


class SegmentObstacle(Obstacle):
    """A thin wall: a line-segment obstacle."""

    __slots__ = ("seg",)

    def __init__(self, ax: float, ay: float, bx: float, by: float,
                 oid: int | None = None):
        super().__init__(oid)
        self.seg = Segment(float(ax), float(ay), float(bx), float(by))

    @classmethod
    def from_points(cls, a: tuple, b: tuple, oid: int | None = None) -> "SegmentObstacle":
        (ax, ay), (bx, by) = a, b
        return cls(ax, ay, bx, by, oid)

    def vertices(self) -> Tuple[Point, ...]:
        return (self.seg.start, self.seg.end)

    def mbr(self) -> Rect:
        xlo, ylo, xhi, yhi = self.seg.bbox()
        return Rect(xlo, ylo, xhi, yhi)

    def blocks(self, ax: float, ay: float, bx: float, by: float) -> bool:
        s = self.seg
        return segments_properly_cross(ax, ay, bx, by, s.ax, s.ay, s.bx, s.by)


class ObstacleSet:
    """A growable collection of obstacles mirrored into numpy arrays.

    The arrays (``rects`` of shape (N, 4) and ``segs`` of shape (M, 4)) back
    every vectorized sight-line test.  The growth pattern is append-only —
    exactly what incremental obstacle retrieval (IOR) produces — with one
    surgical exception: :meth:`remove` deletes a single obstacle so the
    visibility graph's removal repair can shrink its obstacle set in place
    instead of rebuilding it.
    """

    def __init__(self, obstacles: Iterable[Obstacle] = ()):
        self._obstacles: List[Obstacle] = []
        self._rect_rows: List[Tuple[float, float, float, float]] = []
        self._seg_rows: List[Tuple[float, float, float, float]] = []
        self._poly_list: List[PolygonObstacle] = []
        self._rects = np.empty((0, 4), dtype=np.float64)
        self._segs = np.empty((0, 4), dtype=np.float64)
        self._dirty = False
        self.add_many(obstacles)

    # ----------------------------------------------------------- population
    def add(self, obstacle: Obstacle) -> None:
        self._obstacles.append(obstacle)
        if isinstance(obstacle, RectObstacle):
            r = obstacle.rect
            self._rect_rows.append((r.xlo, r.ylo, r.xhi, r.yhi))
        elif isinstance(obstacle, SegmentObstacle):
            s = obstacle.seg
            self._seg_rows.append((s.ax, s.ay, s.bx, s.by))
        elif isinstance(obstacle, PolygonObstacle):
            self._poly_list.append(obstacle)
        else:
            raise TypeError(f"unsupported obstacle type {type(obstacle).__name__}")
        self._dirty = True

    def add_many(self, obstacles: Iterable[Obstacle]) -> None:
        for o in obstacles:
            self.add(o)

    def remove(self, obstacle: Obstacle) -> bool:
        """Delete one obstacle (and its primitive row); False when absent.

        Callers holding count-keyed watermarks over the primitive arrays
        must re-key them: removal shifts the rows above the deleted slot
        down, so counts stop being monotone (the visibility graph's
        removal repair normalizes every cached row's watermark for exactly
        this reason).
        """
        try:
            i = self._obstacles.index(obstacle)
        except ValueError:
            return False
        kind_index = sum(1 for o in self._obstacles[:i]
                         if type(o) is type(obstacle))
        del self._obstacles[i]
        if isinstance(obstacle, RectObstacle):
            del self._rect_rows[kind_index]
        elif isinstance(obstacle, SegmentObstacle):
            del self._seg_rows[kind_index]
        else:
            del self._poly_list[kind_index]
        self._dirty = True
        return True

    def _refresh(self) -> None:
        if self._dirty:
            self._rects = np.asarray(self._rect_rows, dtype=np.float64).reshape(-1, 4)
            self._segs = np.asarray(self._seg_rows, dtype=np.float64).reshape(-1, 4)
            self._dirty = False

    # ------------------------------------------------------------ accessors
    @property
    def rects(self) -> np.ndarray:
        self._refresh()
        return self._rects

    @property
    def segs(self) -> np.ndarray:
        self._refresh()
        return self._segs

    @property
    def polys(self) -> Sequence["PolygonObstacle"]:
        """Convex polygon obstacles (kept as objects, not arrays)."""
        return self._poly_list

    @property
    def obstacles(self) -> Sequence[Obstacle]:
        return self._obstacles

    def __len__(self) -> int:
        return len(self._obstacles)

    def __iter__(self):
        return iter(self._obstacles)

    def vertex_count(self) -> int:
        """Total obstacle vertices (4/rectangle, 2/segment, V/polygon)."""
        return (4 * len(self._rect_rows) + 2 * len(self._seg_rows) +
                sum(len(p.points) for p in self._poly_list))

    # ------------------------------------------------------------ predicates
    def blocked(self, ax: float, ay: float, bx: float, by: float) -> bool:
        """True iff any obstacle blocks sight line ``[a, b]``."""
        if blocked_by_rects(ax, ay, bx, by, self.rects).any():
            return True
        if blocked_by_segments(ax, ay, bx, by, self.segs).any():
            return True
        return any(p.blocks(ax, ay, bx, by) for p in self._poly_list)

    def all_vertices(self) -> List[Point]:
        out: List[Point] = []
        for o in self._obstacles:
            out.extend(o.vertices())
        return out
