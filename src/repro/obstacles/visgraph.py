"""The local visibility graph (Sections 1 and 4.1 of the paper).

Rather than materializing the global visibility graph over all obstacles
(``O(n^2)`` space, poor scalability — the paper's "FULL" yardstick), CONN
processing grows a *local* graph containing only the query segment endpoints,
the data point currently under evaluation, and the vertices of the obstacles
retrieved so far by IOR.

Two design points keep it fast at benchmark scale:

* **Lazy adjacency rows.**  The sight-line edges of a node are computed only
  when Dijkstra first settles it, with one vectorized pass over all nodes and
  all retrieved obstacles, and are then cached for every later traversal
  (the obstacle skeleton is shared by all evaluated data points).  Most
  obstacle vertices are never settled by any traversal, so most of the
  ``O(|VG|^2)`` edge work never happens.
* **Incremental repair.**  When IOR inserts obstacles, cached rows are
  repaired in place: entries blocked by the new obstacles are dropped (one
  vectorized test per batch) and sight lines to the new vertices are added
  (one pairwise kernel per batch).  Transient data points participate through
  the same rows and are unlinked on removal via a mentions index.

The graph also caches each node's visible region ``VR_{v,q}`` with an
obstacle watermark, so a cached region is lazily narrowed by exactly the
shadows of obstacles added since it was computed.

Traversals run on the library-wide resumable Dijkstra
(:class:`repro.routing.dijkstra.Traversal`) and are memoized per source:
a repeated ``dijkstra_order`` / ``shortest_path`` / ``shortest_distances``
call over an unchanged graph replays the settled shortest-path tree and
resumes the frontier instead of restarting from scratch.  Any mutation
(node added, obstacle inserted, transient point removed) bumps the graph's
generation and lazily invalidates the memo.

A graph may also be built *unanchored* (``qseg=None``): no endpoint nodes
exist until :meth:`bind` attaches a query segment's endpoints as transient
nodes, and :meth:`unbind` detaches them again.  This is the mode the
workspace-shared backend of :mod:`repro.routing` uses to keep one obstacle
skeleton alive across many queries.
"""

from __future__ import annotations

import bisect
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from ..geometry.interval import IntervalSet
from ..geometry.point import Point
from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..geometry.vectorized import (
    BATCH_TILE_ELEMS,
    blocked_batch,
    crosses_convex_polygon,
    crosses_rect_interior,
    primitive_bounds,
    proper_cross_segments,
)
from ..routing.config import ARRAY_ENGINE, SCALAR_ENGINE
from ..routing.dijkstra import ArrayTraversal, Traversal
from .obstacle import Obstacle, ObstacleSet
from .shadow import shadow_set, visible_region

_MAX_TRAVERSAL_MEMO = 64
"""Memoized shortest-path trees kept per graph (oldest dropped first)."""


def _segment_hits_box(vx: float, vy: float, tx, ty,
                      xlo: float, ylo: float, xhi: float, yhi: float):
    """Slab clip: do segments ``(vx, vy) -> (tx[i], ty[i])`` cross the box?

    ``tx`` / ``ty`` broadcast (arrays or scalars); returns a boolean of
    their shape.  Used by removal repair to keep only absent pairs the
    removed obstacle could actually have been blocking: a blocking
    decision implies the sight segment runs through the obstacle, hence
    through its mbr — and the box arrives pre-padded by the kernel
    tolerance bound, which also dominates this clip's own rounding.  Zero
    direction components are replaced by a denormal so the slab division
    yields correctly signed infinities instead of NaNs.
    """
    dx = tx - vx
    dy = ty - vy
    dxs = np.where(dx == 0.0, 1e-300, dx)
    dys = np.where(dy == 0.0, 1e-300, dy)
    t1 = (xlo - vx) / dxs
    t2 = (xhi - vx) / dxs
    u1 = (ylo - vy) / dys
    u2 = (yhi - vy) / dys
    lo = np.maximum(np.minimum(t1, t2), np.minimum(u1, u2))
    hi = np.minimum(np.maximum(t1, t2), np.maximum(u1, u2))
    return np.maximum(lo, 0.0) <= np.minimum(hi, 1.0)


class LocalVisibilityGraph:
    """An incrementally grown visibility graph tied to one query segment.

    Args:
        qseg: the query segment the graph is anchored to, or ``None`` for
            an unanchored skeleton that queries :meth:`bind` to later.
        obstacles: optional already-retrieved obstacle skeleton to seed the
            graph with (e.g. from a :class:`~repro.service.ObstacleCache`);
            equivalent to calling :meth:`add_obstacles` right after
            construction.
        engine: ``"array"`` (default) stores adjacency as flat CSR-style
            arrays — one pooled ``indices``/``weights`` slab plus a
            per-node span map — materializes rows through the batched
            visibility kernel, and traverses on the array-backed Dijkstra;
            ``"scalar"`` keeps the original dict-of-dict rows and scalar
            traversal as the byte-identical parity oracle.
        prefetch: frontier-prefetch wave width.  When an array traversal
            settles a node whose row is missing, up to this many frontier
            rows (nearest first) materialize in one batched pass via
            :meth:`materialize_rows`; ``0``/``1`` keeps one launch per
            settle.  Row content and settle order are unchanged.
    """

    def __init__(self, qseg: Optional[Segment] = None,
                 obstacles: Optional[Iterable[Obstacle]] = None,
                 engine: str = ARRAY_ENGINE, prefetch: int = 0,
                 bulk_build: bool = True):
        if engine not in (ARRAY_ENGINE, SCALAR_ENGINE):
            raise ValueError(f"unknown visibility-graph engine {engine!r}")
        self.engine = engine
        self.frontier_prefetch = prefetch
        # Eager warmups (build_all) cut all missing rows in one batched
        # pass when set; cleared, they walk the per-node path — the
        # parity oracle the bulk path must match byte-for-byte.
        self.bulk_build = bulk_build
        self.qseg = qseg
        self.obstacles = ObstacleSet()
        self._obstacle_keys: Set[Obstacle] = set()
        # obstacle -> the node ids its vertices registered as, so removal
        # repair can delete exactly that obstacle's own nodes.
        self._obstacle_nodes: Dict[Obstacle, List[int]] = {}
        self._xy: List[Tuple[float, float]] = []
        self._alive: List[bool] = []
        self._transient: List[bool] = []
        # Scalar engine: lazily computed adjacency rows, node ->
        # {neighbor: weight}.  Both engines stamp each row with a staleness
        # watermark (rect rows, seg rows, polys, node count).
        self._rows: Dict[int, Dict[int, float]] = {}
        self._row_marks: Dict[int, Tuple[int, int, int, int]] = {}
        # Epoch stamps backing the O(1) staleness checks of the hot paths:
        # _struct_epoch advances on every structural insertion (obstacles,
        # permanent nodes) and never on transient bind/unbind churn, so a
        # row or visible region whose recorded epoch matches is current
        # without rebuilding and comparing count tuples.
        self._struct_epoch = 0
        self._row_epochs: Dict[int, int] = {}
        # Array engine: the same rows as spans into one pooled flat slab —
        # but *permanent* targets only.  A row's entries sit at
        # _indices[s:e] / _weights[s:e] with (s, e) = _indptr[node];
        # shrinks happen in place, growth relocates the row to the end of
        # the pool (compact() repacks).  Edges to the short-lived transient
        # nodes never enter the slab: they are appended at read time from
        # the per-transient visibility columns, so binding a query's
        # endpoints/data point does not invalidate a single cached row.
        self._indices = np.empty(0, dtype=np.int64)
        self._weights = np.empty(0, dtype=np.float64)
        self._pool_used = 0
        self._indptr: Dict[int, Tuple[int, int]] = {}
        # Array engine: per-transient-node visibility/weight columns —
        # blocked(v -> p) and weight(v, p) for every slot v, one batched
        # kernel call per column — so a transient's edges cost a lookup
        # per row read, not a kernel launch.
        self._cols: Dict[int, Tuple[np.ndarray, np.ndarray,
                                    Tuple[int, int, int]]] = {}
        # Permanent-node slot ids in insertion order: the array engine's
        # row watermark counts these (transients never invalidate rows).
        self._perm_ids: List[int] = []
        # Currently-bound transient slot ids in binding order.
        self._live_transients: List[int] = []
        # (generation, ids, blocked-matrix, weight-matrix, any-blocked) stack
        # of the live transients' columns, so a row read appends transient
        # edges with a couple of vector ops instead of a per-transient cache
        # probe.
        self._tblock: Optional[Tuple[int, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]] = None
        # Numpy mirrors of _xy/_alive/_transient (capacity-doubling, first
        # len(_xy) entries valid) feeding the batch kernels.
        self._coords_np = np.empty((16, 2), dtype=np.float64)
        self._alive_np = np.zeros(16, dtype=bool)
        self._transient_np = np.zeros(16, dtype=bool)
        # For transient nodes: which cached rows mention them.
        self._mentions: Dict[int, Set[int]] = {}
        # node -> (visible region, (rect rows, seg rows, polys) watermark,
        # struct epoch at which that watermark was recorded)
        self._vr_cache: Dict[int, Tuple[IntervalSet, Tuple[int, int, int],
                                        int]] = {}
        # Per-node Euclidean distance to the bound query segment, the
        # admissible heuristic behind bounded-traversal pruning.  Lazily
        # extended as nodes appear; reset when the anchor segment changes
        # (identity check) or coordinates are remapped by compact().
        self._h_np = np.empty(0, dtype=np.float64)
        self._h_len = 0
        self._h_qseg: Optional[Segment] = None
        self.visibility_tests = 0
        self.dijkstra_runs = 0
        self.dijkstra_replays = 0
        self.nodes_settled = 0
        self.batch_visibility_calls = 0
        self.batched_edges_tested = 0
        self.kernel_pruned_edges = 0
        self.heap_bulk_pushes = 0
        self.array_traversals = 0
        self.rows_bulk_materialized = 0
        self.bulk_pair_launches = 0
        self.removal_repairs = 0
        self.repair_retested_pairs = 0
        # (rect rows, seg rows) watermark -> primitive-bounds slabs for the
        # batch kernel's bbox prefilter; obstacle arrays are append-only,
        # so the count pair keys validity.
        self._bounds_cache: Optional[Tuple[int, int, np.ndarray,
                                           np.ndarray]] = None
        self._generation = 0
        self._traversals: Dict[int, Traversal] = {}
        self.S = -1
        self.E = -1
        if qseg is not None:
            self.S = self._new_node(qseg.ax, qseg.ay, transient=False)
            self.E = self._new_node(qseg.bx, qseg.by, transient=False)
        if obstacles is not None:
            self.add_obstacles(obstacles)

    # -------------------------------------------------------------- binding
    def bind(self, qseg: Segment) -> None:
        """Anchor an unanchored graph to one query segment.

        The endpoints enter as *transient* nodes, so a workspace-shared
        skeleton serves a sequence of queries by bind/unbind pairs without
        accumulating permanent per-query state.  Cached visible regions are
        dropped (they are relative to the previous anchor).
        """
        if self.qseg is not None:
            raise RuntimeError("graph is already bound to a query segment; "
                               "unbind() first")
        self.qseg = qseg
        self._vr_cache.clear()
        self.S = self.add_point(qseg.ax, qseg.ay)
        self.E = self.add_point(qseg.bx, qseg.by)

    def unbind(self) -> None:
        """Detach the endpoints attached by :meth:`bind`."""
        if self.qseg is None:
            raise RuntimeError("graph is not bound")
        if not self._transient[self.S]:
            raise RuntimeError("graph was anchored at construction; only "
                               "bind()-attached endpoints can be detached")
        self.remove_point(self.E)
        self.remove_point(self.S)
        self.S = self.E = -1
        self.qseg = None
        self._vr_cache.clear()

    # ---------------------------------------------------------------- nodes
    def _new_node(self, x: float, y: float, transient: bool) -> int:
        node = len(self._xy)
        self._xy.append((x, y))
        self._alive.append(True)
        self._transient.append(transient)
        if transient:
            self._live_transients.append(node)
        else:
            self._perm_ids.append(node)
            self._struct_epoch += 1
        if node >= self._alive_np.size:
            self._grow_mirrors(2 * self._alive_np.size)
        self._coords_np[node, 0] = x
        self._coords_np[node, 1] = y
        self._alive_np[node] = True
        self._transient_np[node] = transient
        self._generation += 1
        return node

    def _grow_mirrors(self, cap: int) -> None:
        coords = np.empty((cap, 2), dtype=np.float64)
        coords[:self._coords_np.shape[0]] = self._coords_np
        self._coords_np = coords
        alive = np.zeros(cap, dtype=bool)
        alive[:self._alive_np.size] = self._alive_np
        self._alive_np = alive
        transient = np.zeros(cap, dtype=bool)
        transient[:self._transient_np.size] = self._transient_np
        self._transient_np = transient

    def _rebuild_mirrors(self) -> None:
        n = len(self._xy)
        cap = max(16, n)
        self._coords_np = np.empty((cap, 2), dtype=np.float64)
        if n:
            self._coords_np[:n] = np.asarray(self._xy, dtype=np.float64)
        self._alive_np = np.zeros(cap, dtype=bool)
        self._alive_np[:n] = self._alive
        self._transient_np = np.zeros(cap, dtype=bool)
        self._transient_np[:n] = self._transient

    def _alive_view(self) -> np.ndarray:
        """The current alive mask (array engine's ``skip`` equivalent)."""
        return self._alive_np[:len(self._xy)]

    def _alive_ids(self) -> List[int]:
        return [i for i in range(len(self._xy)) if self._alive[i]]

    def node_point(self, node: int) -> Point:
        x, y = self._xy[node]
        return Point(x, y)

    def add_point(self, x: float, y: float) -> int:
        """Add a transient data point; pair with :meth:`remove_point`.

        No edges are computed here: the point's own row materializes when a
        traversal first settles it, and other rows pick the point up through
        their node watermarks on next access.
        """
        return self._new_node(x, y, transient=True)

    def remove_point(self, node: int) -> None:
        """Remove a transient node added by :meth:`add_point`."""
        if not self._transient[node]:
            raise ValueError(f"node {node} is not transient")
        for holder in self._mentions.pop(node, ()):
            row = self._rows.get(holder)
            if row is not None:
                row.pop(node, None)
            span = self._indptr.get(holder)
            if span is not None:
                s, e = span
                ids = self._indices[s:e]
                keep = ids != node
                k = int(keep.sum())
                if k != e - s:
                    self._indices[s:s + k] = ids[keep]
                    self._weights[s:s + k] = self._weights[s:e][keep]
                    self._indptr[holder] = (s, s + k)
        self._rows.pop(node, None)
        self._indptr.pop(node, None)
        self._row_marks.pop(node, None)
        self._row_epochs.pop(node, None)
        self._cols.pop(node, None)
        try:
            self._live_transients.remove(node)
        except ValueError:
            pass
        self._alive[node] = False
        self._alive_np[node] = False
        self._vr_cache.pop(node, None)
        self._generation += 1

    @property
    def num_nodes(self) -> int:
        """Alive node count (S, E, obstacle vertices, transient points)."""
        return sum(self._alive)

    @property
    def dead_slots(self) -> int:
        """Node slots held by removed transient nodes (compaction candidates)."""
        return len(self._xy) - sum(self._alive)

    def compact(self) -> int:
        """Reclaim dead node slots, remapping live node ids.

        Transient removal (:meth:`remove_point`, :meth:`unbind`) leaves
        dead append-only slots behind; a long-lived shared graph serving
        thousands of queries would otherwise grow without bound and scan
        the dead history on every fresh adjacency row.  Compaction remaps
        the alive nodes onto a dense prefix while *keeping every cached
        adjacency row* — the expensive pairwise sight-line tests survive;
        only traversal memos and visible-region caches are dropped.

        Caller contract: all node ids held outside the graph (session
        endpoints, transient data points) are invalidated — only call
        between queries, with no transient nodes attached.

        Returns:
            Number of slots reclaimed (0 when already dense).
        """
        dead = self.dead_slots
        if dead == 0:
            return 0
        old_len = len(self._xy)
        remap: Dict[int, int] = {}
        alive_ids: List[int] = []
        for i, alive in enumerate(self._alive):
            if alive:
                remap[i] = len(alive_ids)
                alive_ids.append(i)
        self._xy = [self._xy[i] for i in alive_ids]
        self._alive = [True] * len(alive_ids)
        self._transient = [self._transient[i] for i in alive_ids]
        # Rows only ever reference alive nodes (removal scrubs mentions),
        # so remapping entries is total.  A row's node-count watermark
        # records how many nodes it has wired; under the order-preserving
        # remap that becomes the number of *alive* ids below the old mark.
        self._rows = {remap[v]: {remap[u]: w for u, w in row.items()}
                      for v, row in self._rows.items()}
        if self.engine == ARRAY_ENGINE:
            # Array marks count permanent insertions, which compaction
            # never removes — only the row's key needs remapping.
            self._row_marks = {remap[v]: m
                               for v, m in self._row_marks.items()}
        else:
            self._row_marks = {
                remap[v]: (r, s, p, bisect.bisect_left(alive_ids, n_nodes))
                for v, (r, s, p, n_nodes) in self._row_marks.items()}
        self._row_epochs = {remap[v]: e
                            for v, e in self._row_epochs.items()}
        self._perm_ids = [remap[i] for i in self._perm_ids]
        self._live_transients = [remap[t] for t in self._live_transients
                                 if t in remap]
        # Repack the flat slab densely in one pass: rows only reference
        # alive nodes, so the vectorized id remap is total.
        if self._indptr:
            remap_np = np.full(old_len, -1, dtype=np.int64)
            remap_np[np.asarray(alive_ids, dtype=np.int64)] = \
                np.arange(len(alive_ids), dtype=np.int64)
            total = sum(e - s for s, e in self._indptr.values())
            new_idx = np.empty(total, dtype=np.int64)
            new_w = np.empty(total, dtype=np.float64)
            new_ptr: Dict[int, Tuple[int, int]] = {}
            pos = 0
            for v, (s, e) in self._indptr.items():
                k = e - s
                new_idx[pos:pos + k] = remap_np[self._indices[s:e]]
                new_w[pos:pos + k] = self._weights[s:e]
                new_ptr[remap[v]] = (pos, pos + k)
                pos += k
            self._indices, self._weights = new_idx, new_w
            self._pool_used = pos
            self._indptr = new_ptr
        else:
            self._indices = np.empty(0, dtype=np.int64)
            self._weights = np.empty(0, dtype=np.float64)
            self._pool_used = 0
        self._cols.clear()
        # A holder may itself have been removed since it was recorded (its
        # row died with it, so the stale entry is inert) — drop those.
        self._mentions = {remap[v]: {remap[u] for u in holders if u in remap}
                          for v, holders in self._mentions.items()}
        self._obstacle_nodes = {o: [remap[i] for i in ids]
                                for o, ids in self._obstacle_nodes.items()}
        if self.S >= 0:
            self.S = remap[self.S]
            self.E = remap[self.E]
        self._vr_cache.clear()
        self._traversals.clear()
        self._h_len = 0  # node ids moved; heuristic values recompute lazily
        self._rebuild_mirrors()
        self._generation += 1
        return dead

    @property
    def svg_size(self) -> int:
        """|SVG|: vertices of the local visibility graph (paper's metric)."""
        return sum(1 for a, t in zip(self._alive, self._transient) if a and not t)

    def clone_skeleton(self) -> "LocalVisibilityGraph":
        """Replicate this graph's obstacle skeleton into a fresh graph.

        The clone carries the obstacles, the node table, *and every cached
        adjacency row* — the expensive pairwise sight-line tests — but none
        of the per-anchor state (visible-region caches, traversal memos,
        endpoint binding).  This is how the shared routing backend
        pre-provisions per-worker graphs for a parallel batch: each worker
        binds its own endpoints to its own clone and traverses without
        ever touching another worker's graph.

        Caller contract: the graph must be unbound (no query endpoints
        attached); the source is compacted first, so node ids held outside
        the graph are invalidated exactly as :meth:`compact` documents.
        """
        if self.qseg is not None:
            raise RuntimeError("clone_skeleton needs an unbound graph; "
                               "unbind() first")
        self.compact()
        clone = LocalVisibilityGraph(engine=self.engine,
                                     prefetch=self.frontier_prefetch,
                                     bulk_build=self.bulk_build)
        clone.obstacles = ObstacleSet(self.obstacles)
        clone._obstacle_keys = set(self._obstacle_keys)
        clone._obstacle_nodes = {o: list(ids)
                                 for o, ids in self._obstacle_nodes.items()}
        clone._xy = list(self._xy)
        clone._alive = list(self._alive)
        clone._transient = list(self._transient)
        clone._rows = {v: dict(row) for v, row in self._rows.items()}
        clone._indices = self._indices[:self._pool_used].copy()
        clone._weights = self._weights[:self._pool_used].copy()
        clone._pool_used = self._pool_used
        clone._indptr = dict(self._indptr)
        clone._row_marks = dict(self._row_marks)
        clone._row_epochs = dict(self._row_epochs)
        clone._struct_epoch = self._struct_epoch
        clone._perm_ids = list(self._perm_ids)
        clone._live_transients = list(self._live_transients)
        clone._mentions = {v: set(h) for v, h in self._mentions.items()}
        clone._rebuild_mirrors()
        return clone

    # ------------------------------------------------------------ obstacles
    def add_obstacles(self, batch: Iterable[Obstacle]) -> int:
        """Insert obstacles and register their vertices as graph nodes.

        Cached adjacency rows are *not* repaired here; each row repairs
        itself lazily on next access (see :meth:`neighbors`), so obstacle
        insertion costs nothing for the (typically large) majority of rows
        no later traversal touches again.

        Obstacles already present are skipped, so caching layers may re-offer
        a mixed batch freely without double-inserting vertices.

        Returns:
            Number of obstacles actually inserted (duplicates excluded).
        """
        batch = [o for o in batch if o not in self._obstacle_keys]
        if not batch:
            return 0
        self._obstacle_keys.update(batch)
        self.obstacles.add_many(batch)
        self._struct_epoch += 1
        for o in batch:
            self._obstacle_nodes[o] = [
                self._new_node(vx, vy, transient=False)
                for vx, vy in o.vertices()]
        return len(batch)

    def remove_obstacle(self, obstacle: Obstacle) -> Optional[int]:
        """Surgically delete ``obstacle``, repairing cached state in place.

        Removal only *adds* visibility: a cached row entry was visible
        despite the obstacle, so it stays visible without it — nothing
        currently cached becomes wrong.  The only repair needed is
        re-opening sight lines the obstacle alone was blocking, and every
        such absent pair's segment must overlap the obstacle's bbox padded
        by the kernels' tolerance bound (a blocking decision implies a
        crossing point on the segment inside the padded box — the same
        bound the batch kernel's bbox prefilter relies on).  So the repair

        1. brings stale cached rows current (obstacle counts are still
           monotone until the deletion lands),
        2. deletes the obstacle's own vertices (their rows, columns and
           mentions die with them) and scrubs them from surviving rows,
        3. re-tests, in one batched launch, exactly the absent
           (row, candidate) pairs whose sight segment's bbox overlaps the
           removed obstacle's padded bbox, appending the newly visible
           ones, and
        4. normalizes every surviving row's watermark to the post-removal
           counts (removal breaks count monotonicity; normalization
           restores it for everything cached).

        Count-keyed side caches that cannot be normalized in place
        (visible regions — lazy narrowing cannot widen — transient
        visibility columns, primitive bounds) are dropped and recompute
        lazily.  Memoized traversals survive when the repair re-opened
        nothing and they never reached a deleted node; everything else
        invalidates via the generation bump.

        Returns:
            The number of absent pairs re-tested, or ``None`` when the
            obstacle is not resident (nothing referenced it; the graph is
            already correct without repair).
        """
        if obstacle not in self._obstacle_keys:
            return None
        # (1) Stale rows must repair against the *pre-removal* obstacle
        # arrays: their recorded counts index into those arrays.
        if self.engine == ARRAY_ENGINE:
            self._refresh_rows_bulk()
        else:
            for v in list(self._rows):
                if self._alive[v]:
                    self.neighbors(v)
        mbr = obstacle.mbr()
        removed = self._obstacle_nodes.pop(obstacle, [])
        removed_set = set(removed)
        self._obstacle_keys.discard(obstacle)
        self.obstacles.remove(obstacle)
        # (2) The obstacle's own nodes die; their cached state goes with
        # them.  Stale holder ids left behind in _mentions are inert (the
        # dead row is never read), same as compact() documents.
        for nid in removed:
            self._alive[nid] = False
            self._alive_np[nid] = False
            self._rows.pop(nid, None)
            self._indptr.pop(nid, None)
            self._row_marks.pop(nid, None)
            self._row_epochs.pop(nid, None)
            self._mentions.pop(nid, None)
            self._traversals.pop(nid, None)
        if removed_set:
            self._perm_ids = [i for i in self._perm_ids
                              if i not in removed_set]
        self._cols.clear()
        self._tblock = None
        self._vr_cache.clear()
        self._bounds_cache = None
        # (3) + (4)
        generation_was = self._generation
        retested, reopened = self._reopen_rows(removed_set, mbr)
        self.removal_repairs += 1
        self.repair_retested_pairs += retested
        # A memoized traversal's tree is untouched iff no sight line
        # re-opened (edge set of survivors unchanged) and it never relaxed
        # a now-deleted node (dist through one would be stale).
        survivors: List[Traversal] = []
        if reopened == 0:
            for src, t in self._traversals.items():
                if t.stamp != generation_was:
                    continue
                if isinstance(t, ArrayTraversal):
                    ids = [r for r in removed_set if r < t.dist.size]
                    reached = bool(ids) and bool(
                        np.isfinite(t.dist[np.asarray(ids)]).any())
                else:
                    reached = any(r in t.dist for r in removed_set)
                if not reached:
                    survivors.append(t)
        self._struct_epoch += 1
        epoch = self._struct_epoch
        for v in (self._indptr if self.engine == ARRAY_ENGINE
                  else self._rows):
            self._row_epochs[v] = epoch
        self._generation += 1
        for t in survivors:
            t.stamp = self._generation
        return retested

    def _reopen_rows(self, removed_set: Set[int],
                     mbr) -> Tuple[int, int]:
        """Scrub deleted nodes from cached rows and re-open sight lines.

        Every cached row is already current (pre-removal counts); this
        re-tests, against the post-removal obstacle set, the absent pairs
        whose sight segment actually crosses ``mbr`` padded by the kernel
        tolerance bound (a slab clip, not just bbox overlap — a pair the
        removed obstacle blocked must run through its padded box, while
        most absent pairs in a dense scene merely *span* it), and stamps
        all rows with the post-removal watermark.

        Returns:
            ``(pairs re-tested, pairs re-opened)``.
        """
        n = len(self._xy)
        if n == 0:
            return 0, 0
        coords = self._coords_np[:n]
        # The pad must dominate the kernels' tolerant comparisons for any
        # pair we filter; a scale over *all* alive coordinates bounds every
        # per-pair scale blocked_batch would have used.
        alive = self._alive_np[:n]
        scale = 1.0
        if alive.any():
            scale += float(np.abs(coords[alive]).max())
        pad = 8.0 * EPS * scale
        xlo, ylo = mbr.xlo - pad, mbr.ylo - pad
        xhi, yhi = mbr.xhi + pad, mbr.yhi + pad
        mark_now = (self._array_mark() if self.engine == ARRAY_ENGINE
                    else self._current_mark())
        hypot = math.hypot
        xy = self._xy
        if self.engine == ARRAY_ENGINE:
            removed_np = (np.fromiter(removed_set, dtype=np.int64)
                          if removed_set else np.empty(0, dtype=np.int64))
            cand_all = np.nonzero(alive & ~self._transient_np[:n])[0]
            rows_list = list(self._indptr)
            nrows = len(rows_list)
            if nrows == 0:
                return 0, 0
            rows_arr = np.asarray(rows_list, dtype=np.int64)

            def _slab_snapshot():
                spans = np.asarray([self._indptr[v] for v in rows_list],
                                   dtype=np.int64).reshape(nrows, 2)
                lens = spans[:, 1] - spans[:, 0]
                if int(lens.sum()):
                    ids = np.concatenate(
                        [self._indices[s:e] for s, e in spans])
                else:
                    ids = np.empty(0, dtype=np.int64)
                return lens, ids

            lens, idsall = _slab_snapshot()
            # Scrub deleted targets: one membership pass over the whole
            # slab finds the rows that lost entries; only those compact.
            if removed_np.size and idsall.size:
                gone = np.isin(idsall, removed_np)
                if gone.any():
                    row_rep = np.repeat(np.arange(nrows), lens)
                    lost = np.bincount(row_rep[gone], minlength=nrows)
                    starts = np.zeros(nrows + 1, dtype=np.int64)
                    np.cumsum(lens, out=starts[1:])
                    for ri in np.nonzero(lost)[0].tolist():
                        v = rows_list[ri]
                        s, e = self._indptr[v]
                        keep = ~gone[starts[ri]:starts[ri + 1]]
                        k = int(keep.sum())
                        self._indices[s:s + k] = self._indices[s:e][keep]
                        self._weights[s:s + k] = self._weights[s:e][keep]
                        self._indptr[v] = (s, s + k)
                    lens, idsall = _slab_snapshot()
            # Absent pairs in one scatter: presence[r, c] marks cached
            # entries, the row's own id and non-candidates are masked, the
            # rest is exactly the setdiff the per-row path computed —
            # row-major nonzero keeps each row's candidates ascending,
            # matching the sorted order setdiff1d produced.
            pres = np.zeros((nrows, n), dtype=bool)
            if idsall.size:
                pres[np.repeat(np.arange(nrows), lens), idsall] = True
            base = np.zeros(n, dtype=bool)
            base[cand_all] = True
            absent = ~pres
            absent &= base[None, :]
            absent[np.arange(nrows), rows_arr] = False
            ri, ci = np.nonzero(absent)
            # Keep only pairs whose sight segment crosses the removed
            # obstacle's padded box (the slab clip); everything else
            # cannot have been blocked by it alone.
            if ri.size:
                hit = _segment_hits_box(coords[rows_arr[ri], 0],
                                        coords[rows_arr[ri], 1],
                                        coords[ci, 0], coords[ci, 1],
                                        xlo, ylo, xhi, yhi)
                ri, ci = ri[hit], ci[hit]
            for v in rows_list:
                self._row_marks[v] = mark_now
            retested = int(ri.size)
            reopened = 0
            if retested:
                # Early-terminating bulk launch: most retested pairs are
                # still blocked by some surviving obstacle and drop out
                # after the first chunk or two.  (_blocked_bulk ticks the
                # batch counters itself.)
                blocked = self._blocked_bulk(coords[rows_arr[ri]],
                                             coords[ci])
                self.bulk_pair_launches += 1
                ok = ~blocked
                ri2, ci2 = ri[ok], ci[ok]
                reopened = int(ri2.size)
                if reopened:
                    edges = np.searchsorted(ri2, np.arange(nrows + 1))
                    for rix in np.unique(ri2).tolist():
                        v = rows_list[rix]
                        vis = ci2[edges[rix]:edges[rix + 1]]
                        vx, vy = xy[v]
                        add_w = np.empty(vis.size, dtype=np.float64)
                        for j, i in enumerate(vis.tolist()):
                            tx, ty = xy[i]
                            add_w[j] = hypot(vx - tx, vy - ty)
                        s, e = self._indptr[v]
                        self._row_write(
                            v,
                            np.concatenate([self._indices[s:e],
                                            vis.astype(np.int64,
                                                       copy=False)]),
                            np.concatenate([self._weights[s:e], add_w]))
            return retested, reopened
        # Scalar oracle: same repair, dict rows (transient targets join the
        # candidate set — scalar rows carry them inline).
        retested = reopened = 0
        srcs: List[int] = []
        tgts: List[int] = []
        for v in list(self._rows):
            row = self._rows[v]
            for r in removed_set:
                row.pop(r, None)
            vx, vy = xy[v]
            for u in range(n):
                if (u == v or not self._alive[u] or u in row):
                    continue
                tx, ty = xy[u]
                if bool(_segment_hits_box(vx, vy, np.float64(tx),
                                          np.float64(ty),
                                          xlo, ylo, xhi, yhi)):
                    srcs.append(v)
                    tgts.append(u)
            self._row_marks[v] = mark_now
        retested = len(srcs)
        if retested:
            tgt_idx = np.asarray(tgts, dtype=np.int64)
            tally = {}
            blocked = blocked_batch(
                coords[np.asarray(srcs, dtype=np.int64)], coords[tgt_idx],
                self.obstacles.rects, self.obstacles.segs,
                self.obstacles.polys,
                bounds=self._prim_bounds(), tally=tally)
            self._count_batch(retested, self._prims_now(), tally)
            self.bulk_pair_launches += 1
            for v, u, dead in zip(srcs, tgts, blocked.tolist()):
                if not dead:
                    reopened += 1
                    vx, vy = xy[v]
                    tx, ty = xy[u]
                    self._rows[v][u] = hypot(vx - tx, vy - ty)
                    if self._transient[u]:
                        self._mentions.setdefault(u, set()).add(v)
        return retested, reopened

    # ------------------------------------------------------------ adjacency
    def _current_mark(self) -> Tuple[int, int, int, int]:
        return (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                len(self.obstacles.polys), len(self._xy))

    def _array_mark(self) -> Tuple[int, int, int, int]:
        """Array-row watermark: node component counts *permanent* nodes only,
        so bind/unbind churn never invalidates a cached flat row."""
        return (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                len(self.obstacles.polys), len(self._perm_ids))

    def _visible_from(self, x: float, y: float, targets: np.ndarray,
                      chunk: int = 64) -> np.ndarray:
        """Visibility of ``targets`` (K, 2) from ``(x, y)``, early-terminating.

        Obstacles are tested nearest-first in chunks; targets already proven
        blocked drop out of later chunks.  Because a sight line is almost
        always cut by an obstacle near its source, most targets die in the
        first chunk and the effective cost is far below ``K x N``.
        """
        k = targets.shape[0]
        alive = np.ones(k, dtype=bool)
        if k == 0:
            return alive
        tx = targets[:, 0]
        ty = targets[:, 1]
        rects = self.obstacles.rects
        if rects.size:
            cdist = np.hypot((rects[:, 0] + rects[:, 2]) * 0.5 - x,
                             (rects[:, 1] + rects[:, 3]) * 0.5 - y)
            order = np.argsort(cdist)
            for start in range(0, order.size, chunk):
                idx = np.nonzero(alive)[0]
                if idx.size == 0:
                    return alive
                batch = rects[order[start:start + chunk]]
                blocked = crosses_rect_interior(
                    x, y, tx[idx][:, None], ty[idx][:, None],
                    batch[None, :, 0], batch[None, :, 1],
                    batch[None, :, 2], batch[None, :, 3],
                ).any(axis=1)
                self.visibility_tests += idx.size * batch.shape[0]
                alive[idx[blocked]] = False
        segs = self.obstacles.segs
        if segs.size:
            cdist = np.hypot((segs[:, 0] + segs[:, 2]) * 0.5 - x,
                             (segs[:, 1] + segs[:, 3]) * 0.5 - y)
            order = np.argsort(cdist)
            for start in range(0, order.size, chunk):
                idx = np.nonzero(alive)[0]
                if idx.size == 0:
                    return alive
                batch = segs[order[start:start + chunk]]
                blocked = proper_cross_segments(
                    x, y, tx[idx][:, None], ty[idx][:, None],
                    batch[None, :, 0], batch[None, :, 1],
                    batch[None, :, 2], batch[None, :, 3],
                ).any(axis=1)
                self.visibility_tests += idx.size * batch.shape[0]
                alive[idx[blocked]] = False
        for poly in self.obstacles.polys:
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                return alive
            arr = poly.as_array()
            blocked = crosses_convex_polygon(x, y, tx[idx], ty[idx], arr)
            self.visibility_tests += idx.size
            alive[idx[blocked]] = False
        return alive

    def _add_edges_to(self, node: int, row: Dict[int, float],
                      candidate_ids: List[int]) -> None:
        """Add visible ``candidate_ids`` to ``row`` (tested vs all obstacles)."""
        if not candidate_ids:
            return
        x, y = self._xy[node]
        targets = np.asarray([self._xy[i] for i in candidate_ids],
                             dtype=np.float64)
        mask = self._visible_from(x, y, targets)
        for i, visible in zip(candidate_ids, mask):
            if visible:
                tx, ty = self._xy[i]
                row[i] = math.hypot(x - tx, y - ty)
                if self._transient[i]:
                    self._mentions.setdefault(i, set()).add(node)

    # ----------------------------------------------------- adjacency (flat)
    def _prims_now(self) -> int:
        return (self.obstacles.rects.shape[0] + self.obstacles.segs.shape[0]
                + len(self.obstacles.polys))

    def _prim_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached primitive-bounds slabs for the batch kernel's prefilter."""
        rects = self.obstacles.rects
        segs = self.obstacles.segs
        key = (rects.shape[0], segs.shape[0])
        cached = self._bounds_cache
        if cached is None or (cached[0], cached[1]) != key:
            rb, sb = primitive_bounds(rects, segs)
            cached = (key[0], key[1], rb, sb)
            self._bounds_cache = cached
        return cached[2], cached[3]

    def _count_batch(self, edges: int, prims: int,
                     tally: Optional[dict] = None) -> None:
        self.batch_visibility_calls += 1
        if tally is not None:
            tested = tally["tested"]
            self.kernel_pruned_edges += tally["pruned"]
        else:
            tested = edges * prims
        self.batched_edges_tested += tested
        self.visibility_tests += tested

    def _count_bulk_push(self) -> None:
        self.heap_bulk_pushes += 1

    def _row_write(self, node: int, idx: np.ndarray, w: np.ndarray) -> None:
        """Place a row in the slab: in place when it fits, else appended."""
        span = self._indptr.get(node)
        n = idx.size
        if span is not None and n <= span[1] - span[0]:
            s = span[0]
        else:
            if self._pool_used + n > self._indices.size:
                cap = max(256, self._pool_used + n, 2 * self._indices.size)
                grown_i = np.empty(cap, dtype=np.int64)
                grown_i[:self._pool_used] = self._indices[:self._pool_used]
                grown_w = np.empty(cap, dtype=np.float64)
                grown_w[:self._pool_used] = self._weights[:self._pool_used]
                self._indices, self._weights = grown_i, grown_w
            s = self._pool_used
            self._pool_used += n
        self._indices[s:s + n] = idx
        self._weights[s:s + n] = w
        self._indptr[node] = (s, s + n)

    def _column(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(blocked(v -> p), weight(v, p))`` for every node slot v.

        One batched kernel call per transient instead of one per
        (row, transient) pair; orientation matches the scalar repair path
        (source = the row's owner, target = the transient).  Weights go
        through ``math.hypot`` exactly like materialized rows, so a
        transient edge read from the column is bit-identical to one the
        scalar engine computes.  Cached per obstacle watermark; dead slots
        compute junk that no live row ever looks up.
        """
        omark = (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                 len(self.obstacles.polys))
        n = len(self._xy)
        px, py = self._xy[p]
        hypot = math.hypot
        cached = self._cols.get(p)
        m = 0
        col = wcol = None
        if cached is not None and cached[2] == omark:
            col, wcol = cached[0], cached[1]
            if col.size >= n:
                return col, wcol
            # Still valid, just short: slots were added since the column
            # was cut (e.g. another bind's transients).  Extend by testing
            # only the new slots, not the whole graph again.
            m = col.size
        targets = np.empty((n - m, 2), dtype=np.float64)
        targets[:, 0] = px
        targets[:, 1] = py
        tally: dict = {}
        tail = blocked_batch(self._coords_np[m:n], targets,
                             self.obstacles.rects, self.obstacles.segs,
                             self.obstacles.polys,
                             bounds=self._prim_bounds(), tally=tally)
        self._count_batch(n - m, self._prims_now(), tally)
        wtail = np.empty(n - m, dtype=np.float64)
        for j in range(m, n):
            vx, vy = self._xy[j]
            wtail[j - m] = hypot(vx - px, vy - py)
        if m:
            col = np.concatenate([col, tail])
            wcol = np.concatenate([wcol, wtail])
        else:
            col, wcol = tail, wtail
        self._cols[p] = (col, wcol, omark)
        return col, wcol

    def _transient_block(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray]:
        """The live transients' columns stacked: ids/blocked/weights/any.

        ``blocked[v, j]`` / ``weights[v, j]`` describe the edge between slot
        ``v`` and the j-th bound transient; ``any_blocked[v]`` collapses the
        blocked row so readers with nothing to filter (the vast majority —
        most graph nodes see every bound endpoint) take a mask-free path.
        Rebuilt lazily whenever the graph changes (generation bump);
        between changes every row read shares the same stack.
        """
        cached = self._tblock
        if cached is not None and cached[0] == self._generation:
            return cached[1], cached[2], cached[3], cached[4]
        ts = self._live_transients
        n = len(self._xy)
        tarr = np.asarray(ts, dtype=np.int64)
        bm = np.empty((n, len(ts)), dtype=bool)
        wm = np.empty((n, len(ts)), dtype=np.float64)
        for j, t in enumerate(ts):
            col, wcol = self._column(t)
            bm[:, j] = col[:n]
            wm[:, j] = wcol[:n]
        anyb = bm.any(axis=1)
        self._tblock = (self._generation, tarr, bm, wm, anyb)
        return tarr, bm, wm, anyb

    def _materialize_row(self, node: int,
                         mark_now: Tuple[int, int, int, int]
                         ) -> Tuple[np.ndarray, np.ndarray]:
        x, y = self._xy[node]
        n = len(self._xy)
        # Rows hold *permanent* endpoints only; transient edges are appended
        # at read time from the shared visibility columns (row_arrays), so
        # bind/unbind churn never touches the slab.
        mask = self._alive_np[:n] & ~self._transient_np[:n]
        mask[node] = False
        cand = np.nonzero(mask)[0]
        if cand.size:
            sources = np.empty((cand.size, 2), dtype=np.float64)
            sources[:, 0] = x
            sources[:, 1] = y
            tally: dict = {}
            blocked = blocked_batch(sources, self._coords_np[cand],
                                    self.obstacles.rects, self.obstacles.segs,
                                    self.obstacles.polys,
                                    bounds=self._prim_bounds(), tally=tally)
            self._count_batch(cand.size, self._prims_now(), tally)
            vis = cand[~blocked]
        else:
            vis = cand
        idx = vis.astype(np.int64, copy=False)
        # Weights go through math.hypot, not np.hypot: the two differ in
        # the last ulp on ~0.5% of inputs, and engine parity is bit-exact.
        w = np.empty(idx.size, dtype=np.float64)
        xy = self._xy
        for j, i in enumerate(idx.tolist()):
            tx, ty = xy[i]
            w[j] = math.hypot(x - tx, y - ty)
        self._row_marks[node] = mark_now
        self._row_write(node, idx, w)
        s, e = self._indptr[node]
        return self._indices[s:e], self._weights[s:e]

    def _repair_row(self, node: int,
                    mark_now: Tuple[int, int, int, int]) -> None:
        n_rects, n_segs, n_polys, n_perm = self._row_marks[node]
        s, e = self._indptr[node]
        x, y = self._xy[node]
        xy = self._xy
        # Drop entries blocked by obstacles added since the row was cut.
        new_rects = self.obstacles.rects[n_rects:]
        new_segs = self.obstacles.segs[n_segs:]
        new_polys = self.obstacles.polys[n_polys:]
        if e > s and (new_rects.size or new_segs.size or new_polys):
            ids = self._indices[s:e]
            sources = np.empty((ids.size, 2), dtype=np.float64)
            sources[:, 0] = x
            sources[:, 1] = y
            rb, sb = self._prim_bounds()
            tally: dict = {}
            blocked = blocked_batch(sources, self._coords_np[ids],
                                    new_rects, new_segs, new_polys,
                                    bounds=(rb[n_rects:], sb[n_segs:]),
                                    tally=tally)
            self._count_batch(ids.size, new_rects.shape[0]
                              + new_segs.shape[0] + len(new_polys), tally)
            if blocked.any():
                keep = ~blocked
                k = int(keep.sum())
                self._indices[s:s + k] = ids[keep]
                self._weights[s:s + k] = self._weights[s:e][keep]
                e = s + k
                self._indptr[node] = (s, e)
        # Wire up permanent vertices added since the row was cut, in one
        # batched call.  Transients never enter the slab — row_arrays
        # appends them at read time from the shared visibility columns —
        # so per-query bind/unbind churn never triggers a repair at all.
        perm = [i for i in self._perm_ids[n_perm:] if i != node]
        if perm:
            add_ids: List[int] = []
            add_w: List[float] = []
            tgt = self._coords_np[np.asarray(perm, dtype=np.int64)]
            sources = np.empty((len(perm), 2), dtype=np.float64)
            sources[:, 0] = x
            sources[:, 1] = y
            tally = {}
            blocked = blocked_batch(sources, tgt, self.obstacles.rects,
                                    self.obstacles.segs,
                                    self.obstacles.polys,
                                    bounds=self._prim_bounds(), tally=tally)
            self._count_batch(len(perm), self._prims_now(), tally)
            for i, dead in zip(perm, blocked.tolist()):
                if not dead:
                    tx, ty = xy[i]
                    add_ids.append(i)
                    add_w.append(math.hypot(x - tx, y - ty))
            if add_ids:
                merged_idx = np.concatenate(
                    [self._indices[s:e], np.asarray(add_ids, dtype=np.int64)])
                merged_w = np.concatenate(
                    [self._weights[s:e], np.asarray(add_w, dtype=np.float64)])
                self._row_write(node, merged_idx, merged_w)
        self._row_marks[node] = mark_now

    # ------------------------------------------------------- adjacency (bulk)
    def _blocked_bulk(self, sources: np.ndarray,
                      targets: np.ndarray) -> np.ndarray:
        """Early-terminating bulk visibility: blocked mask over M pairs.

        The bulk counterpart of one full :func:`blocked_batch` launch,
        organized for dense scenes: primitives are processed in chunks
        ordered nearest-the-pair-cloud-first, and pairs already proven
        blocked drop out of every later chunk.  A sight line crossed by
        many obstacles — the common case in a lattice — is decided by the
        first chunk or two instead of being broadcast against the whole
        primitive set, so the effective element count is far below
        ``M x N``.  Blocking is a union over primitives and the kernels
        are elementwise, so the mask is bit-identical to the unchunked
        launch; chunking (like tiling) only changes the cost.

        Accounts one batched-call tick with everything not evaluated by a
        kernel (bbox-pruned or dropped by early termination) counted as
        pruned.  Callers still tick :attr:`bulk_pair_launches` once per
        logical bulk pass.
        """
        m = sources.shape[0]
        blocked = np.zeros(m, dtype=bool)
        if m == 0:
            return blocked
        rects = self.obstacles.rects
        segs = self.obstacles.segs
        polys = self.obstacles.polys
        rb, sb = self._prim_bounds()
        n_r = rects.shape[0] if rects.size else 0
        n_s = segs.shape[0] if segs.size else 0
        sx_all = np.ascontiguousarray(sources[:, 0])
        sy_all = np.ascontiguousarray(sources[:, 1])
        tx_all = np.ascontiguousarray(targets[:, 0])
        ty_all = np.ascontiguousarray(targets[:, 1])
        # Pair bboxes and the prune pad are computed once up front; the
        # per-chunk work below is only the overlap join, the gather, and
        # the kernel itself.  The pad scales eps by the whole batch's
        # coordinate magnitude, which bounds every per-pair scale, so the
        # prune stays sound (same argument as blocked_batch's own).
        exlo = np.minimum(sx_all, tx_all)
        exhi = np.maximum(sx_all, tx_all)
        eylo = np.minimum(sy_all, ty_all)
        eyhi = np.maximum(sy_all, ty_all)
        scale = 1.0 + max(float(np.abs(sources).max()),
                          float(np.abs(targets).max()))
        pad = 8.0 * EPS * scale
        cx = 0.5 * (float(sx_all.mean()) + float(tx_all.mean()))
        cy = 0.5 * (float(sy_all.mean()) + float(ty_all.mean()))

        def _near_first(pb: np.ndarray) -> np.ndarray:
            px = 0.5 * (pb[:, 0] + pb[:, 2])
            py = 0.5 * (pb[:, 1] + pb[:, 3])
            return np.argsort((px - cx) ** 2 + (py - cy) ** 2,
                              kind="stable")

        kinds = []
        if n_r:
            kinds.append((crosses_rect_interior, rects, rb,
                          _near_first(rb[:n_r])))
        if n_s:
            kinds.append((proper_cross_segments, segs, sb,
                          _near_first(sb[:n_s])))
        alive = np.arange(m)
        tested = 0
        for kernel, prims, pb, order in kinds:
            pos = 0
            axlo = exlo[:, None]
            axhi = exhi[:, None]
            aylo = eylo[:, None]
            ayhi = eyhi[:, None]
            while pos < order.size and alive.size:
                if alive.size < m:
                    axlo = exlo[alive, None]
                    axhi = exhi[alive, None]
                    aylo = eylo[alive, None]
                    ayhi = eyhi[alive, None]
                chunk = max(8, BATCH_TILE_ELEMS // alive.size)
                sel = order[pos:pos + chunk]
                pos += chunk
                boxes = pb[sel]
                overlap = axlo <= boxes[None, :, 2] + pad
                overlap &= axhi >= boxes[None, :, 0] - pad
                overlap &= aylo <= boxes[None, :, 3] + pad
                overlap &= ayhi >= boxes[None, :, 1] - pad
                ei, oi = overlap.nonzero()
                if not ei.size:
                    continue
                tested += ei.size
                pi = alive[ei]
                sub = prims[sel[oi]]
                pair_hit = kernel(sx_all[pi], sy_all[pi],
                                  tx_all[pi], ty_all[pi],
                                  sub[:, 0], sub[:, 1],
                                  sub[:, 2], sub[:, 3], EPS)
                if pair_hit.any():
                    blocked[pi[pair_hit]] = True
                    alive = alive[~blocked[alive]]
        for poly in polys:
            if not alive.size:
                break
            arr = (poly.as_array() if hasattr(poly, "as_array")
                   else np.asarray(poly))
            # Same padded-AABB prune per polygon: a pair whose box misses
            # the hull's box cannot cross it, so skipping it (or the whole
            # polygon) leaves the mask unchanged.
            near = ((exlo[alive] <= float(arr[:, 0].max()) + pad) &
                    (exhi[alive] >= float(arr[:, 0].min()) - pad) &
                    (eylo[alive] <= float(arr[:, 1].max()) + pad) &
                    (eyhi[alive] >= float(arr[:, 1].min()) - pad))
            cand = alive[near]
            if not cand.size:
                continue
            hit = crosses_convex_polygon(
                sx_all[cand], sy_all[cand], tx_all[cand], ty_all[cand],
                arr, EPS)
            tested += cand.size
            if hit.any():
                blocked[cand[hit]] = True
                alive = alive[~blocked[alive]]
        full = m * (n_r + n_s + len(polys))
        self._count_batch(m, self._prims_now(),
                          {"tested": tested, "pruned": full - tested})
        return blocked

    def materialize_rows(self, nodes: Iterable[int]) -> int:
        """Cut the missing adjacency rows of ``nodes`` in one batched pass.

        The cold-path counterpart of :meth:`_materialize_row`: the
        candidate (source, target) pairs of every still-unmaterialized row
        are concatenated and decided by a single tiled
        :func:`~repro.geometry.vectorized.blocked_batch` launch (bbox
        prefilter included) instead of one launch per row.  The per-pair
        kernels are elementwise — decisions are independent of how pairs
        are batched — and weights go through the same ``math.hypot``, so
        each resulting row is byte-identical (ids, order, weights, marks)
        to what the per-node path would have produced.

        Rows already materialized (even stale ones — they repair lazily on
        access, as always) and dead nodes are skipped.  On the scalar
        engine this falls back to per-node materialization: the oracle
        stays the reference implementation.

        Returns:
            Number of rows materialized.
        """
        if self.engine != ARRAY_ENGINE:
            made = 0
            for v in dict.fromkeys(nodes):
                if self._alive[v] and v not in self._rows:
                    self.neighbors(v)
                    made += 1
            return made
        todo = [v for v in dict.fromkeys(nodes)
                if self._alive[v] and v not in self._indptr]
        if not todo:
            return 0
        mark_now = self._array_mark()
        epoch = self._struct_epoch
        n = len(self._xy)
        base = self._alive_np[:n] & ~self._transient_np[:n]
        cand_all = np.nonzero(base)[0]
        m = cand_all.size
        todo_arr = np.asarray(todo, dtype=np.int64)
        # Row-major candidate ids: every row sees cand_all minus itself.
        # cand_all is ascending (nonzero order), so one searchsorted finds
        # each row's own slot; np.delete drops them all in one allocation
        # instead of one boolean-mask pass per row.
        if m:
            pos_v = np.searchsorted(cand_all, todo_arr)
            present = cand_all[np.minimum(pos_v, m - 1)] == todo_arr
            tgt_idx = np.tile(cand_all, len(todo))
            drop = np.arange(len(todo), dtype=np.int64)[present] * m \
                + pos_v[present]
            if drop.size:
                tgt_idx = np.delete(tgt_idx, drop)
            counts = np.full(len(todo), m, dtype=np.int64) - present
        else:
            tgt_idx = np.zeros(0, dtype=np.int64)
            counts = np.zeros(len(todo), dtype=np.int64)
        total = int(tgt_idx.size)
        blocked = np.zeros(0, dtype=bool)
        if total:
            sources = np.repeat(self._coords_np[todo_arr], counts, axis=0)
            blocked = self._blocked_bulk(sources, self._coords_np[tgt_idx])
            self.bulk_pair_launches += 1
        # One pass builds every row's visible-id block and weight block in
        # flat arrays; rows then slab-write slices of them.  Weights go
        # element-by-element through math.hypot — np.hypot rounds the last
        # ulp differently on ~0.5% of inputs, which would break the
        # byte-identity contract with the per-node path.
        visall = ~blocked if total else np.zeros(0, dtype=bool)
        vis_idx_all = tgt_idx[visall] if total else tgt_idx
        src_rep = np.repeat(np.arange(len(todo), dtype=np.int64), counts)
        row_vis = np.bincount(src_rep[visall], minlength=len(todo))
        w_all = np.empty(vis_idx_all.size, dtype=np.float64)
        hypot = math.hypot
        xy = self._xy
        vis_list = vis_idx_all.tolist()
        pos = 0
        for v, c in zip(todo, row_vis.tolist()):
            x, y = xy[v]
            for j in range(pos, pos + c):
                tx, ty = xy[vis_list[j]]
                w_all[j] = hypot(x - tx, y - ty)
            self._row_marks[v] = mark_now
            self._row_write(v, vis_idx_all[pos:pos + c], w_all[pos:pos + c])
            self._row_epochs[v] = epoch
            pos += c
        self.rows_bulk_materialized += len(todo)
        return len(todo)

    def _repair_rows_bulk(self, rows: List[int],
                          mark: Tuple[int, int, int, int],
                          mark_now: Tuple[int, int, int, int]) -> None:
        """Repair cached rows sharing one watermark in two batched launches.

        Exactly :meth:`_repair_row`'s two phases — drop entries blocked by
        obstacles added since ``mark``, wire up permanent vertices added
        since ``mark`` — but over the concatenated pairs of every row, so
        a refresh of R stale rows costs 2 launches instead of 2R.  Kernel
        decisions are elementwise, hence per-row results are identical.
        """
        n_rects, n_segs, n_polys, n_perm = mark
        new_rects = self.obstacles.rects[n_rects:]
        new_segs = self.obstacles.segs[n_segs:]
        new_polys = self.obstacles.polys[n_polys:]
        hypot = math.hypot
        xy = self._xy
        if new_rects.size or new_segs.size or new_polys:
            holders: List[int] = []
            spans: List[Tuple[int, int]] = []
            for v in rows:
                s, e = self._indptr[v]
                if e > s:
                    holders.append(v)
                    spans.append((s, e))
            if holders:
                tgt_idx = np.concatenate(
                    [self._indices[s:e] for s, e in spans])
                counts = [e - s for s, e in spans]
                sources = np.repeat(
                    self._coords_np[np.asarray(holders, dtype=np.int64)],
                    counts, axis=0)
                rb, sb = self._prim_bounds()
                tally: dict = {}
                blocked = blocked_batch(sources, self._coords_np[tgt_idx],
                                        new_rects, new_segs, new_polys,
                                        bounds=(rb[n_rects:], sb[n_segs:]),
                                        tally=tally)
                self._count_batch(tgt_idx.size, new_rects.shape[0]
                                  + new_segs.shape[0] + len(new_polys), tally)
                self.bulk_pair_launches += 1
                pos = 0
                for v, (s, e) in zip(holders, spans):
                    dead = blocked[pos:pos + (e - s)]
                    pos += e - s
                    if dead.any():
                        ids = self._indices[s:e]
                        keep = ~dead
                        k = int(keep.sum())
                        self._indices[s:s + k] = ids[keep]
                        self._weights[s:s + k] = self._weights[s:e][keep]
                        self._indptr[v] = (s, s + k)
        perm_tail = self._perm_ids[n_perm:]
        if perm_tail:
            srcs: List[int] = []
            per_row: List[List[int]] = []
            for v in rows:
                fresh = [i for i in perm_tail if i != v]
                per_row.append(fresh)
                srcs.extend([v] * len(fresh))
            total = len(srcs)
            if total:
                tgt_idx = np.asarray(
                    [i for fresh in per_row for i in fresh], dtype=np.int64)
                tally = {}
                blocked = blocked_batch(
                    self._coords_np[np.asarray(srcs, dtype=np.int64)],
                    self._coords_np[tgt_idx],
                    self.obstacles.rects, self.obstacles.segs,
                    self.obstacles.polys,
                    bounds=self._prim_bounds(), tally=tally)
                self._count_batch(total, self._prims_now(), tally)
                self.bulk_pair_launches += 1
                pos = 0
                for v, fresh in zip(rows, per_row):
                    x, y = xy[v]
                    add_ids: List[int] = []
                    add_w: List[float] = []
                    for i, dead in zip(fresh,
                                       blocked[pos:pos + len(fresh)].tolist()):
                        if not dead:
                            tx, ty = xy[i]
                            add_ids.append(i)
                            add_w.append(hypot(x - tx, y - ty))
                    pos += len(fresh)
                    if add_ids:
                        s, e = self._indptr[v]
                        merged_idx = np.concatenate(
                            [self._indices[s:e],
                             np.asarray(add_ids, dtype=np.int64)])
                        merged_w = np.concatenate(
                            [self._weights[s:e],
                             np.asarray(add_w, dtype=np.float64)])
                        self._row_write(v, merged_idx, merged_w)
        for v in rows:
            self._row_marks[v] = mark_now

    def _refresh_rows_bulk(self) -> int:
        """Bring every cached slab row current, grouped by watermark.

        Rows stale against different watermarks (possible when inserts
        landed between accesses) repair in separate grouped launches; rows
        sharing a watermark — the overwhelmingly common case — share one
        pair of launches.  Returns the number of rows repaired.
        """
        mark_now = self._array_mark()
        epoch = self._struct_epoch
        groups: Dict[Tuple[int, int, int, int], List[int]] = {}
        for v in self._indptr:
            if not self._alive[v]:
                continue
            m = self._row_marks.get(v)
            if m != mark_now:
                groups.setdefault(m, []).append(v)
        for mark, vs in groups.items():
            self._repair_rows_bulk(vs, mark, mark_now)
            for v in vs:
                self._row_epochs[v] = epoch
        return sum(len(vs) for vs in groups.values())

    def build_all(self) -> int:
        """Eagerly materialize (and refresh) every alive node's row.

        The bulk warm-up behind cold shared-backend builds, clone spare
        provisioning and merged shard environments: missing rows cut in
        one batched launch, stale rows repaired in grouped launches.  On
        the scalar oracle it walks :meth:`neighbors` per node (reference
        semantics), and with :attr:`bulk_build` cleared the array engine
        does the same one-row-one-launch walk — the baseline the bulk
        pass is benchmarked against and must match byte-for-byte.
        Returns the number of rows freshly materialized.
        """
        ids = self._alive_ids()
        if self.engine != ARRAY_ENGINE:
            made = sum(1 for v in ids if v not in self._rows)
            for v in ids:
                self.neighbors(v)
            return made
        if not self.bulk_build:
            made = sum(1 for v in ids if v not in self._indptr)
            for v in ids:
                self.row_arrays(v)
            return made
        made = self.materialize_rows(ids)
        self._refresh_rows_bulk()
        return made

    def _prefetch_rows(self, node: int,
                       frontier: "Callable[[], List[int]]") -> None:
        """Array-traversal hook: bulk-materialize a frontier wave.

        Invoked before each settle's row read; a no-op unless ``node``'s
        row is actually missing, so the frontier gather (a sort of the
        heap contents) is only paid once per wave, not once per settle.
        """
        width = self.frontier_prefetch
        if width <= 1 or node in self._indptr or not self._alive[node]:
            return
        wave = [node]
        for nb in frontier():
            if len(wave) >= width:
                break
            if nb != node and nb not in self._indptr and self._alive[nb]:
                wave.append(nb)
        self.materialize_rows(wave)

    def row_arrays(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """The flat adjacency row of ``node``: ``(ids, weights)``.

        The array engine's counterpart of :meth:`neighbors`: same lazy
        materialization, same two-step incremental repair, but each step
        is one batched kernel call instead of one per candidate edge, and
        the result feeds the array traversal without building a dict.

        The slab row covers permanent endpoints only and is keyed on a
        watermark that ignores transients, so steady-state query traffic
        (bind endpoints, route, unbind) never repairs a row.  Edges to the
        currently bound transients are appended here at read time from
        their shared visibility columns; when none are bound the returned
        arrays are zero-copy slab views.
        """
        epoch = self._struct_epoch
        span = self._indptr.get(node)
        if span is None:
            idx, w = self._materialize_row(node, self._array_mark())
            self._row_epochs[node] = epoch
        else:
            if self._row_epochs.get(node) != epoch:
                # Epoch moved since the row was cut; the count watermark
                # decides whether anything this row covers actually grew.
                mark_now = self._array_mark()
                if self._row_marks[node] != mark_now:
                    self._repair_row(node, mark_now)
                    span = self._indptr[node]
                self._row_epochs[node] = epoch
            s, e = span
            idx, w = self._indices[s:e], self._weights[s:e]
        if self._live_transients:
            tb = self._tblock
            if tb is not None and tb[0] == self._generation:
                _, tarr, bm, wm, anyb = tb
            else:
                tarr, bm, wm, anyb = self._transient_block()
            if not self._transient[node] and not anyb[node]:
                # Permanent reader, every bound endpoint visible: append
                # the whole stack without building a keep mask (the vast
                # majority of settles on an open corridor).
                return (np.concatenate([idx, tarr]),
                        np.concatenate([w, wm[node]]))
            keep = ~bm[node]
            if self._transient[node]:
                # Only a transient reader can appear in the transient id
                # list; permanent rows skip the self-exclusion pass.
                keep &= tarr != node
            if keep.all():
                add_i, add_w = tarr, wm[node]
            else:
                add_i, add_w = tarr[keep], wm[node][keep]
            if add_i.size:
                idx = np.concatenate([idx, add_i])
                w = np.concatenate([w, add_w])
        return idx, w

    def neighbors(self, node: int) -> Dict[int, float]:
        """The adjacency row of ``node``, computed/repaired lazily.

        A cached row records the obstacle and node counts it is current for.
        On access after growth, exactly two incremental fixes run: existing
        entries are retested against the *new* obstacles only, and sight
        lines to the *new* nodes only are added (tested against all
        obstacles).  Rows are therefore always current when returned.

        On the array engine the row lives in the flat slab; the dict view
        here is built on demand for the non-hot-path consumers (tests,
        the session surface, :func:`num_edges`).
        """
        if self.engine == ARRAY_ENGINE:
            idx, w = self.row_arrays(node)
            return dict(zip(idx.tolist(), w.tolist()))
        row = self._rows.get(node)
        mark_now = self._current_mark()
        if row is not None:
            n_rects, n_segs, n_polys, n_nodes = self._row_marks[node]
            if (n_rects, n_segs, n_polys, n_nodes) == mark_now:
                return row
            # Drop entries blocked by obstacles added since the row was cut.
            new_rects = self.obstacles.rects[n_rects:]
            new_segs = self.obstacles.segs[n_segs:]
            new_polys = self.obstacles.polys[n_polys:]
            if row and (new_rects.size or new_segs.size or new_polys):
                x, y = self._xy[node]
                ids = list(row.keys())
                arr = np.asarray([self._xy[i] for i in ids], dtype=np.float64)
                blocked = np.zeros(len(ids), dtype=bool)
                if new_rects.size:
                    blocked |= crosses_rect_interior(
                        x, y, arr[:, 0][:, None], arr[:, 1][:, None],
                        new_rects[None, :, 0], new_rects[None, :, 1],
                        new_rects[None, :, 2], new_rects[None, :, 3],
                    ).any(axis=1)
                if new_segs.size:
                    blocked |= proper_cross_segments(
                        x, y, arr[:, 0][:, None], arr[:, 1][:, None],
                        new_segs[None, :, 0], new_segs[None, :, 1],
                        new_segs[None, :, 2], new_segs[None, :, 3],
                    ).any(axis=1)
                for poly in new_polys:
                    blocked |= crosses_convex_polygon(
                        x, y, arr[:, 0], arr[:, 1], poly.as_array())
                self.visibility_tests += len(ids)
                for i, dead in zip(ids, blocked):
                    if dead:
                        del row[i]
            # Wire up nodes added since the row was cut.
            fresh = [i for i in range(n_nodes, len(self._xy))
                     if self._alive[i] and i != node]
            self._add_edges_to(node, row, fresh)
            self._row_marks[node] = mark_now
            return row
        row = {}
        self._rows[node] = row
        self._row_marks[node] = mark_now
        self._add_edges_to(node, row,
                           [i for i in self._alive_ids() if i != node])
        return row

    def num_edges(self, materialize: bool = False) -> int:
        """Count sight-line edges (cached rows only, unless ``materialize``)."""
        if materialize:
            # Bulk path: one batched launch for all missing rows instead of
            # one kernel launch per node (diagnostics used to dominate
            # small-benchmark profiles through exactly this loop).
            self.build_all()
        seen = set()
        if self.engine == ARRAY_ENGINE:
            for v, (s, e) in self._indptr.items():
                if not self._alive[v]:
                    continue
                for n in self._indices[s:e].tolist():
                    seen.add((v, n) if v < n else (n, v))
            # Slab rows cover permanent endpoints only; fold in the bound
            # transients' edges from their visibility columns.
            for t in self._live_transients:
                col, _ = self._column(t)
                for v in self._alive_ids():
                    if v != t and not col[v]:
                        seen.add((v, t) if v < t else (t, v))
            return len(seen)
        for v, row in self._rows.items():
            if not self._alive[v]:
                continue
            for n in row:
                seen.add((min(v, n), max(v, n)))
        return len(seen)

    # ------------------------------------------------------ visible regions
    def visible_region_of(self, node: int) -> IntervalSet:
        """Cached ``VR_{node,q}``, narrowed lazily as obstacles arrive."""
        epoch = self._struct_epoch
        cached = self._vr_cache.get(node)
        if cached is not None and cached[2] == epoch:
            return cached[0]
        rects = self.obstacles.rects
        segs = self.obstacles.segs
        polys = self.obstacles.polys
        watermark_now = (rects.shape[0], segs.shape[0], len(polys))
        if cached is not None:
            vr, watermark, _ = cached
            if watermark != watermark_now:
                x, y = self._xy[node]
                vr = vr.subtract(shadow_set(x, y, self.qseg,
                                            rects[watermark[0]:],
                                            segs[watermark[1]:],
                                            polys[watermark[2]:]))
            self._vr_cache[node] = (vr, watermark_now, epoch)
            return vr
        x, y = self._xy[node]
        vr = visible_region(x, y, self.qseg, self.obstacles)
        self._vr_cache[node] = (vr, watermark_now, epoch)
        return vr

    # -------------------------------------------------------------- dijkstra
    def _segment_heuristic(self) -> np.ndarray:
        """Per-node Euclidean distance to the bound query segment.

        The admissible heuristic behind bounded-traversal pruning.  Values
        are produced by the very same scalar ``qseg.dist_point`` that CPLC's
        Euclidean prefilter calls, so the traversal's prune test and CPLC's
        ``dist + dist(v, q) >= bound`` skip agree bit for bit — a node the
        traversal declines to relax is guaranteed to be skipped (not
        trusted) downstream.  Extended lazily as nodes appear; dead slots
        keep stale values harmlessly (their coordinates never change).
        """
        q = self.qseg
        n = len(self._xy)
        if self._h_qseg is not q:
            self._h_qseg = q
            self._h_len = 0
        if self._h_len < n:
            if self._h_np.size < n:
                grown = np.empty(max(n, 2 * self._h_np.size, 64),
                                 dtype=np.float64)
                grown[:self._h_len] = self._h_np[:self._h_len]
                self._h_np = grown
            dp = q.dist_point
            xy = self._xy
            h = self._h_np
            for i in range(self._h_len, n):
                x, y = xy[i]
                h[i] = dp(x, y)
            self._h_len = n
        return self._h_np

    def _traversal(self, source: int,
                   prune_bound: float = math.inf) -> Traversal:
        """The memoized traversal for ``source``, rebuilt when stale.

        A traversal is valid exactly while the graph is unchanged since it
        started (generation match): node insertion can open shorter paths,
        obstacle insertion can cut edges, and transient removal can kill
        settled nodes — any of which falsifies the recorded tree.  A pruned
        traversal additionally only serves requests with an equal or
        *smaller* bound (it settles a superset of their safe set); a larger
        bound forces a rebuild.
        """
        if prune_bound < math.inf and self.qseg is None:
            prune_bound = math.inf  # no segment, no heuristic to prune with
        t = self._traversals.get(source)
        if t is not None and t.stamp == self._generation \
                and t.prune_bound >= prune_bound:
            self.dijkstra_replays += 1
            return t
        if len(self._traversals) >= _MAX_TRAVERSAL_MEMO:
            gen = self._generation
            self._traversals = {s: tr for s, tr in self._traversals.items()
                                if tr.stamp == gen}
            while len(self._traversals) >= _MAX_TRAVERSAL_MEMO:
                self._traversals.pop(next(iter(self._traversals)))
        heur = (self._segment_heuristic() if prune_bound < math.inf
                else None)
        if self.engine == ARRAY_ENGINE:
            t = ArrayTraversal(self.row_arrays, source, len(self._xy),
                               alive=self._alive_view,
                               prune_bound=prune_bound, heur=heur,
                               on_bulk_push=self._count_bulk_push,
                               stamp=self._generation,
                               prefetch=(self._prefetch_rows
                                         if self.frontier_prefetch > 1
                                         else None))
            self.array_traversals += 1
        else:
            t = Traversal(self.neighbors, source,
                          skip=lambda n: not self._alive[n],
                          prune_bound=prune_bound, heur=heur,
                          stamp=self._generation)
        self._traversals[source] = t
        self.dijkstra_runs += 1
        return t

    def dijkstra_order(self, source: int, prune_bound: float = math.inf
                       ) -> Iterator[Tuple[float, int, Optional[int]]]:
        """Yield ``(dist, node, predecessor)`` in ascending settled order.

        This is the traversal CPLC consumes; the caller breaks out when
        Lemma 7's cutoff fires.  Predecessor is the node visited right before
        on the shortest path (``u`` of Lemma 5), ``None`` for the source.
        Only settled nodes ever compute their adjacency rows, and repeated
        traversals from one source over an unchanged graph replay the
        memoized shortest-path tree instead of restarting (the cost that
        used to make ``shortest_path`` re-run a full Dijkstra per call).

        ``prune_bound`` enables goal-directed relaxation pruning toward the
        bound query segment (see :class:`~repro.routing.dijkstra.Traversal`):
        yielded nodes with ``dist + dist(node, qseg) < prune_bound`` are
        exact — distance, predecessor and position — while anything beyond
        may arrive late, inflated, or not at all, so callers must discard
        contributions at or past the bound (CPLC's global-bound skip does).
        """
        t = self._traversal(source, prune_bound)
        return t.order(on_advance=self._count_settle)

    def settled_traversal(self, source: int, prune_bound: float = math.inf):
        """The raw resumable traversal behind :meth:`dijkstra_order`.

        Returns ``(traversal, on_settle)``: hot consumers (CPLC's main
        loop) walk ``traversal.settled`` / call ``traversal.advance()``
        directly — same entries in the same order as the generator, minus
        one generator resume per settled node — and must invoke
        ``on_settle(entry)`` once per *fresh* advance so the graph's
        ``nodes_settled`` counter stays identical to the generator path.
        """
        return self._traversal(source, prune_bound), self._count_settle

    def _count_settle(self, _entry: Tuple[float, int, Optional[int]]) -> None:
        self.nodes_settled += 1

    def shortest_distances(self, source: int, targets: Iterable[int],
                           cutoff: float = math.inf,
                           prune_bound: float = math.inf) -> Dict[int, float]:
        """Early-terminating Dijkstra: distances to ``targets`` (inf if cut off).

        ``cutoff`` additionally stops the traversal once settled distances
        exceed it; targets not yet settled report ``inf``.  The underlying
        traversal stays resumable, so a later call with a larger cutoff
        continues where this one stopped.

        ``prune_bound`` opts into goal-directed relaxation pruning (see
        :meth:`dijkstra_order`): only safe for targets *on* the query
        segment (IOR's S and E, whose heuristic is zero) — their reported
        distance is exact whenever it is below the bound, and any target
        cut off by pruning necessarily reports at or above it.
        """
        remaining = set(targets)
        out = {t: math.inf for t in remaining}
        # Consume the traversal directly rather than through the
        # dijkstra_order generator: this loop touches every settled entry
        # of every warm-corridor Dijkstra, and the generator resume per
        # entry profiled at several percent of the arm.  Replay-cursor
        # discipline matches _ReplayCore.order, including the re-check
        # after an exhausted advance (a concurrent consumer may have
        # settled the tail between the length check and the locked
        # advance).
        tr = self._traversal(source, prune_bound)
        settled = tr.settled
        i = 0
        while True:
            if i < len(settled):
                d, node, _pred = settled[i]
                i += 1
            else:
                if tr.advance() is None:
                    if i < len(settled):
                        continue
                    break
                self.nodes_settled += 1
                continue
            if d > cutoff:
                break
            if node in remaining:
                out[node] = d
                remaining.discard(node)
                if not remaining:
                    break
        return out

    def shortest_path(self, source: int, target: int) -> Tuple[float, List[int]]:
        """Distance and node path from ``source`` to ``target`` (inf, [] if none)."""
        preds: Dict[int, Optional[int]] = {}
        for d, node, pred in self.dijkstra_order(source):
            preds[node] = pred
            if node == target:
                path = [node]
                while preds[path[-1]] is not None:
                    path.append(preds[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return d, path
        return math.inf, []
