"""The local visibility graph (Sections 1 and 4.1 of the paper).

Rather than materializing the global visibility graph over all obstacles
(``O(n^2)`` space, poor scalability — the paper's "FULL" yardstick), CONN
processing grows a *local* graph containing only the query segment endpoints,
the data point currently under evaluation, and the vertices of the obstacles
retrieved so far by IOR.

Two design points keep it fast at benchmark scale:

* **Lazy adjacency rows.**  The sight-line edges of a node are computed only
  when Dijkstra first settles it, with one vectorized pass over all nodes and
  all retrieved obstacles, and are then cached for every later traversal
  (the obstacle skeleton is shared by all evaluated data points).  Most
  obstacle vertices are never settled by any traversal, so most of the
  ``O(|VG|^2)`` edge work never happens.
* **Incremental repair.**  When IOR inserts obstacles, cached rows are
  repaired in place: entries blocked by the new obstacles are dropped (one
  vectorized test per batch) and sight lines to the new vertices are added
  (one pairwise kernel per batch).  Transient data points participate through
  the same rows and are unlinked on removal via a mentions index.

The graph also caches each node's visible region ``VR_{v,q}`` with an
obstacle watermark, so a cached region is lazily narrowed by exactly the
shadows of obstacles added since it was computed.

Traversals run on the library-wide resumable Dijkstra
(:class:`repro.routing.dijkstra.Traversal`) and are memoized per source:
a repeated ``dijkstra_order`` / ``shortest_path`` / ``shortest_distances``
call over an unchanged graph replays the settled shortest-path tree and
resumes the frontier instead of restarting from scratch.  Any mutation
(node added, obstacle inserted, transient point removed) bumps the graph's
generation and lazily invalidates the memo.

A graph may also be built *unanchored* (``qseg=None``): no endpoint nodes
exist until :meth:`bind` attaches a query segment's endpoints as transient
nodes, and :meth:`unbind` detaches them again.  This is the mode the
workspace-shared backend of :mod:`repro.routing` uses to keep one obstacle
skeleton alive across many queries.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..geometry.interval import IntervalSet
from ..geometry.point import Point
from ..geometry.segment import Segment
from ..geometry.vectorized import (
    crosses_convex_polygon,
    crosses_rect_interior,
    proper_cross_segments,
)
from ..routing.dijkstra import Traversal
from .obstacle import Obstacle, ObstacleSet
from .shadow import shadow_set, visible_region

_MAX_TRAVERSAL_MEMO = 64
"""Memoized shortest-path trees kept per graph (oldest dropped first)."""


class LocalVisibilityGraph:
    """An incrementally grown visibility graph tied to one query segment.

    Args:
        qseg: the query segment the graph is anchored to, or ``None`` for
            an unanchored skeleton that queries :meth:`bind` to later.
        obstacles: optional already-retrieved obstacle skeleton to seed the
            graph with (e.g. from a :class:`~repro.service.ObstacleCache`);
            equivalent to calling :meth:`add_obstacles` right after
            construction.
    """

    def __init__(self, qseg: Optional[Segment] = None,
                 obstacles: Optional[Iterable[Obstacle]] = None):
        self.qseg = qseg
        self.obstacles = ObstacleSet()
        self._obstacle_keys: Set[Obstacle] = set()
        self._xy: List[Tuple[float, float]] = []
        self._alive: List[bool] = []
        self._transient: List[bool] = []
        # Lazily computed adjacency rows: node -> {neighbor: weight}, plus a
        # staleness watermark (rect rows, seg rows, polys, node count) per row.
        self._rows: Dict[int, Dict[int, float]] = {}
        self._row_marks: Dict[int, Tuple[int, int, int, int]] = {}
        # For transient nodes: which cached rows mention them.
        self._mentions: Dict[int, Set[int]] = {}
        # node -> (visible region, (rect rows, seg rows, polys) watermark)
        self._vr_cache: Dict[int, Tuple[IntervalSet, Tuple[int, int, int]]] = {}
        self._coords_cache: Optional[np.ndarray] = None
        self.visibility_tests = 0
        self.dijkstra_runs = 0
        self.dijkstra_replays = 0
        self.nodes_settled = 0
        self._generation = 0
        self._traversals: Dict[int, Traversal] = {}
        self.S = -1
        self.E = -1
        if qseg is not None:
            self.S = self._new_node(qseg.ax, qseg.ay, transient=False)
            self.E = self._new_node(qseg.bx, qseg.by, transient=False)
        if obstacles is not None:
            self.add_obstacles(obstacles)

    # -------------------------------------------------------------- binding
    def bind(self, qseg: Segment) -> None:
        """Anchor an unanchored graph to one query segment.

        The endpoints enter as *transient* nodes, so a workspace-shared
        skeleton serves a sequence of queries by bind/unbind pairs without
        accumulating permanent per-query state.  Cached visible regions are
        dropped (they are relative to the previous anchor).
        """
        if self.qseg is not None:
            raise RuntimeError("graph is already bound to a query segment; "
                               "unbind() first")
        self.qseg = qseg
        self._vr_cache.clear()
        self.S = self.add_point(qseg.ax, qseg.ay)
        self.E = self.add_point(qseg.bx, qseg.by)

    def unbind(self) -> None:
        """Detach the endpoints attached by :meth:`bind`."""
        if self.qseg is None:
            raise RuntimeError("graph is not bound")
        if not self._transient[self.S]:
            raise RuntimeError("graph was anchored at construction; only "
                               "bind()-attached endpoints can be detached")
        self.remove_point(self.E)
        self.remove_point(self.S)
        self.S = self.E = -1
        self.qseg = None
        self._vr_cache.clear()

    # ---------------------------------------------------------------- nodes
    def _new_node(self, x: float, y: float, transient: bool) -> int:
        node = len(self._xy)
        self._xy.append((x, y))
        self._alive.append(True)
        self._transient.append(transient)
        self._coords_cache = None
        self._generation += 1
        return node

    def _alive_ids(self) -> List[int]:
        return [i for i in range(len(self._xy)) if self._alive[i]]

    def node_point(self, node: int) -> Point:
        x, y = self._xy[node]
        return Point(x, y)

    def add_point(self, x: float, y: float) -> int:
        """Add a transient data point; pair with :meth:`remove_point`.

        No edges are computed here: the point's own row materializes when a
        traversal first settles it, and other rows pick the point up through
        their node watermarks on next access.
        """
        return self._new_node(x, y, transient=True)

    def remove_point(self, node: int) -> None:
        """Remove a transient node added by :meth:`add_point`."""
        if not self._transient[node]:
            raise ValueError(f"node {node} is not transient")
        for holder in self._mentions.pop(node, ()):
            row = self._rows.get(holder)
            if row is not None:
                row.pop(node, None)
        self._rows.pop(node, None)
        self._row_marks.pop(node, None)
        self._alive[node] = False
        self._vr_cache.pop(node, None)
        self._coords_cache = None
        self._generation += 1

    @property
    def num_nodes(self) -> int:
        """Alive node count (S, E, obstacle vertices, transient points)."""
        return sum(self._alive)

    @property
    def dead_slots(self) -> int:
        """Node slots held by removed transient nodes (compaction candidates)."""
        return len(self._xy) - sum(self._alive)

    def compact(self) -> int:
        """Reclaim dead node slots, remapping live node ids.

        Transient removal (:meth:`remove_point`, :meth:`unbind`) leaves
        dead append-only slots behind; a long-lived shared graph serving
        thousands of queries would otherwise grow without bound and scan
        the dead history on every fresh adjacency row.  Compaction remaps
        the alive nodes onto a dense prefix while *keeping every cached
        adjacency row* — the expensive pairwise sight-line tests survive;
        only traversal memos and visible-region caches are dropped.

        Caller contract: all node ids held outside the graph (session
        endpoints, transient data points) are invalidated — only call
        between queries, with no transient nodes attached.

        Returns:
            Number of slots reclaimed (0 when already dense).
        """
        dead = self.dead_slots
        if dead == 0:
            return 0
        remap: Dict[int, int] = {}
        alive_ids: List[int] = []
        for i, alive in enumerate(self._alive):
            if alive:
                remap[i] = len(alive_ids)
                alive_ids.append(i)
        self._xy = [self._xy[i] for i in alive_ids]
        self._alive = [True] * len(alive_ids)
        self._transient = [self._transient[i] for i in alive_ids]
        # Rows only ever reference alive nodes (removal scrubs mentions),
        # so remapping entries is total.  A row's node-count watermark
        # records how many nodes it has wired; under the order-preserving
        # remap that becomes the number of *alive* ids below the old mark.
        self._rows = {remap[v]: {remap[u]: w for u, w in row.items()}
                      for v, row in self._rows.items()}
        self._row_marks = {
            remap[v]: (r, s, p, bisect.bisect_left(alive_ids, n_nodes))
            for v, (r, s, p, n_nodes) in self._row_marks.items()}
        # A holder may itself have been removed since it was recorded (its
        # row died with it, so the stale entry is inert) — drop those.
        self._mentions = {remap[v]: {remap[u] for u in holders if u in remap}
                          for v, holders in self._mentions.items()}
        if self.S >= 0:
            self.S = remap[self.S]
            self.E = remap[self.E]
        self._vr_cache.clear()
        self._traversals.clear()
        self._coords_cache = None
        self._generation += 1
        return dead

    @property
    def svg_size(self) -> int:
        """|SVG|: vertices of the local visibility graph (paper's metric)."""
        return sum(1 for a, t in zip(self._alive, self._transient) if a and not t)

    def clone_skeleton(self) -> "LocalVisibilityGraph":
        """Replicate this graph's obstacle skeleton into a fresh graph.

        The clone carries the obstacles, the node table, *and every cached
        adjacency row* — the expensive pairwise sight-line tests — but none
        of the per-anchor state (visible-region caches, traversal memos,
        endpoint binding).  This is how the shared routing backend
        pre-provisions per-worker graphs for a parallel batch: each worker
        binds its own endpoints to its own clone and traverses without
        ever touching another worker's graph.

        Caller contract: the graph must be unbound (no query endpoints
        attached); the source is compacted first, so node ids held outside
        the graph are invalidated exactly as :meth:`compact` documents.
        """
        if self.qseg is not None:
            raise RuntimeError("clone_skeleton needs an unbound graph; "
                               "unbind() first")
        self.compact()
        clone = LocalVisibilityGraph()
        clone.obstacles = ObstacleSet(self.obstacles)
        clone._obstacle_keys = set(self._obstacle_keys)
        clone._xy = list(self._xy)
        clone._alive = list(self._alive)
        clone._transient = list(self._transient)
        clone._rows = {v: dict(row) for v, row in self._rows.items()}
        clone._row_marks = dict(self._row_marks)
        clone._mentions = {v: set(h) for v, h in self._mentions.items()}
        return clone

    # ------------------------------------------------------------ obstacles
    def add_obstacles(self, batch: Iterable[Obstacle]) -> int:
        """Insert obstacles and register their vertices as graph nodes.

        Cached adjacency rows are *not* repaired here; each row repairs
        itself lazily on next access (see :meth:`neighbors`), so obstacle
        insertion costs nothing for the (typically large) majority of rows
        no later traversal touches again.

        Obstacles already present are skipped, so caching layers may re-offer
        a mixed batch freely without double-inserting vertices.

        Returns:
            Number of obstacles actually inserted (duplicates excluded).
        """
        batch = [o for o in batch if o not in self._obstacle_keys]
        if not batch:
            return 0
        self._obstacle_keys.update(batch)
        self.obstacles.add_many(batch)
        for o in batch:
            for vx, vy in o.vertices():
                self._new_node(vx, vy, transient=False)
        return len(batch)

    # ------------------------------------------------------------ adjacency
    def _current_mark(self) -> Tuple[int, int, int, int]:
        return (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                len(self.obstacles.polys), len(self._xy))

    def _visible_from(self, x: float, y: float, targets: np.ndarray,
                      chunk: int = 64) -> np.ndarray:
        """Visibility of ``targets`` (K, 2) from ``(x, y)``, early-terminating.

        Obstacles are tested nearest-first in chunks; targets already proven
        blocked drop out of later chunks.  Because a sight line is almost
        always cut by an obstacle near its source, most targets die in the
        first chunk and the effective cost is far below ``K x N``.
        """
        k = targets.shape[0]
        alive = np.ones(k, dtype=bool)
        if k == 0:
            return alive
        tx = targets[:, 0]
        ty = targets[:, 1]
        rects = self.obstacles.rects
        if rects.size:
            cdist = np.hypot((rects[:, 0] + rects[:, 2]) * 0.5 - x,
                             (rects[:, 1] + rects[:, 3]) * 0.5 - y)
            order = np.argsort(cdist)
            for start in range(0, order.size, chunk):
                idx = np.nonzero(alive)[0]
                if idx.size == 0:
                    return alive
                batch = rects[order[start:start + chunk]]
                blocked = crosses_rect_interior(
                    x, y, tx[idx][:, None], ty[idx][:, None],
                    batch[None, :, 0], batch[None, :, 1],
                    batch[None, :, 2], batch[None, :, 3],
                ).any(axis=1)
                self.visibility_tests += idx.size * batch.shape[0]
                alive[idx[blocked]] = False
        segs = self.obstacles.segs
        if segs.size:
            cdist = np.hypot((segs[:, 0] + segs[:, 2]) * 0.5 - x,
                             (segs[:, 1] + segs[:, 3]) * 0.5 - y)
            order = np.argsort(cdist)
            for start in range(0, order.size, chunk):
                idx = np.nonzero(alive)[0]
                if idx.size == 0:
                    return alive
                batch = segs[order[start:start + chunk]]
                blocked = proper_cross_segments(
                    x, y, tx[idx][:, None], ty[idx][:, None],
                    batch[None, :, 0], batch[None, :, 1],
                    batch[None, :, 2], batch[None, :, 3],
                ).any(axis=1)
                self.visibility_tests += idx.size * batch.shape[0]
                alive[idx[blocked]] = False
        for poly in self.obstacles.polys:
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                return alive
            arr = poly.as_array()
            blocked = crosses_convex_polygon(x, y, tx[idx], ty[idx], arr)
            self.visibility_tests += idx.size
            alive[idx[blocked]] = False
        return alive

    def _add_edges_to(self, node: int, row: Dict[int, float],
                      candidate_ids: List[int]) -> None:
        """Add visible ``candidate_ids`` to ``row`` (tested vs all obstacles)."""
        if not candidate_ids:
            return
        x, y = self._xy[node]
        targets = np.asarray([self._xy[i] for i in candidate_ids],
                             dtype=np.float64)
        mask = self._visible_from(x, y, targets)
        for i, visible in zip(candidate_ids, mask):
            if visible:
                tx, ty = self._xy[i]
                row[i] = math.hypot(x - tx, y - ty)
                if self._transient[i]:
                    self._mentions.setdefault(i, set()).add(node)

    def neighbors(self, node: int) -> Dict[int, float]:
        """The adjacency row of ``node``, computed/repaired lazily.

        A cached row records the obstacle and node counts it is current for.
        On access after growth, exactly two incremental fixes run: existing
        entries are retested against the *new* obstacles only, and sight
        lines to the *new* nodes only are added (tested against all
        obstacles).  Rows are therefore always current when returned.
        """
        row = self._rows.get(node)
        mark_now = self._current_mark()
        if row is not None:
            n_rects, n_segs, n_polys, n_nodes = self._row_marks[node]
            if (n_rects, n_segs, n_polys, n_nodes) == mark_now:
                return row
            # Drop entries blocked by obstacles added since the row was cut.
            new_rects = self.obstacles.rects[n_rects:]
            new_segs = self.obstacles.segs[n_segs:]
            new_polys = self.obstacles.polys[n_polys:]
            if row and (new_rects.size or new_segs.size or new_polys):
                x, y = self._xy[node]
                ids = list(row.keys())
                arr = np.asarray([self._xy[i] for i in ids], dtype=np.float64)
                blocked = np.zeros(len(ids), dtype=bool)
                if new_rects.size:
                    blocked |= crosses_rect_interior(
                        x, y, arr[:, 0][:, None], arr[:, 1][:, None],
                        new_rects[None, :, 0], new_rects[None, :, 1],
                        new_rects[None, :, 2], new_rects[None, :, 3],
                    ).any(axis=1)
                if new_segs.size:
                    blocked |= proper_cross_segments(
                        x, y, arr[:, 0][:, None], arr[:, 1][:, None],
                        new_segs[None, :, 0], new_segs[None, :, 1],
                        new_segs[None, :, 2], new_segs[None, :, 3],
                    ).any(axis=1)
                for poly in new_polys:
                    blocked |= crosses_convex_polygon(
                        x, y, arr[:, 0], arr[:, 1], poly.as_array())
                self.visibility_tests += len(ids)
                for i, dead in zip(ids, blocked):
                    if dead:
                        del row[i]
            # Wire up nodes added since the row was cut.
            fresh = [i for i in range(n_nodes, len(self._xy))
                     if self._alive[i] and i != node]
            self._add_edges_to(node, row, fresh)
            self._row_marks[node] = mark_now
            return row
        row = {}
        self._rows[node] = row
        self._row_marks[node] = mark_now
        self._add_edges_to(node, row,
                           [i for i in self._alive_ids() if i != node])
        return row

    def num_edges(self, materialize: bool = False) -> int:
        """Count sight-line edges (cached rows only, unless ``materialize``)."""
        if materialize:
            for node in self._alive_ids():
                self.neighbors(node)
        seen = set()
        for v, row in self._rows.items():
            if not self._alive[v]:
                continue
            for n in row:
                seen.add((min(v, n), max(v, n)))
        return len(seen)

    # ------------------------------------------------------ visible regions
    def visible_region_of(self, node: int) -> IntervalSet:
        """Cached ``VR_{node,q}``, narrowed lazily as obstacles arrive."""
        rects = self.obstacles.rects
        segs = self.obstacles.segs
        polys = self.obstacles.polys
        watermark_now = (rects.shape[0], segs.shape[0], len(polys))
        cached = self._vr_cache.get(node)
        if cached is not None:
            vr, watermark = cached
            if watermark != watermark_now:
                x, y = self._xy[node]
                vr = vr.subtract(shadow_set(x, y, self.qseg,
                                            rects[watermark[0]:],
                                            segs[watermark[1]:],
                                            polys[watermark[2]:]))
                self._vr_cache[node] = (vr, watermark_now)
            return vr
        x, y = self._xy[node]
        vr = visible_region(x, y, self.qseg, self.obstacles)
        self._vr_cache[node] = (vr, watermark_now)
        return vr

    # -------------------------------------------------------------- dijkstra
    def _traversal(self, source: int) -> Traversal:
        """The memoized traversal for ``source``, rebuilt when stale.

        A traversal is valid exactly while the graph is unchanged since it
        started (generation match): node insertion can open shorter paths,
        obstacle insertion can cut edges, and transient removal can kill
        settled nodes — any of which falsifies the recorded tree.
        """
        t = self._traversals.get(source)
        if t is not None and t.stamp == self._generation:
            self.dijkstra_replays += 1
            return t
        if len(self._traversals) >= _MAX_TRAVERSAL_MEMO:
            gen = self._generation
            self._traversals = {s: tr for s, tr in self._traversals.items()
                                if tr.stamp == gen}
            while len(self._traversals) >= _MAX_TRAVERSAL_MEMO:
                self._traversals.pop(next(iter(self._traversals)))
        t = Traversal(self.neighbors, source,
                      skip=lambda n: not self._alive[n],
                      stamp=self._generation)
        self._traversals[source] = t
        self.dijkstra_runs += 1
        return t

    def dijkstra_order(self, source: int) -> Iterator[Tuple[float, int, Optional[int]]]:
        """Yield ``(dist, node, predecessor)`` in ascending settled order.

        This is the traversal CPLC consumes; the caller breaks out when
        Lemma 7's cutoff fires.  Predecessor is the node visited right before
        on the shortest path (``u`` of Lemma 5), ``None`` for the source.
        Only settled nodes ever compute their adjacency rows, and repeated
        traversals from one source over an unchanged graph replay the
        memoized shortest-path tree instead of restarting (the cost that
        used to make ``shortest_path`` re-run a full Dijkstra per call).
        """
        t = self._traversal(source)
        return t.order(on_advance=self._count_settle)

    def _count_settle(self, _entry: Tuple[float, int, Optional[int]]) -> None:
        self.nodes_settled += 1

    def shortest_distances(self, source: int,
                           targets: Iterable[int]) -> Dict[int, float]:
        """Early-terminating Dijkstra: distances to ``targets`` (inf if cut off)."""
        remaining = set(targets)
        out = {t: math.inf for t in remaining}
        for d, node, _pred in self.dijkstra_order(source):
            if node in remaining:
                out[node] = d
                remaining.discard(node)
                if not remaining:
                    break
        return out

    def shortest_path(self, source: int, target: int) -> Tuple[float, List[int]]:
        """Distance and node path from ``source`` to ``target`` (inf, [] if none)."""
        preds: Dict[int, Optional[int]] = {}
        for d, node, pred in self.dijkstra_order(source):
            preds[node] = pred
            if node == target:
                path = [node]
                while preds[path[-1]] is not None:
                    path.append(preds[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return d, path
        return math.inf, []
