"""The local visibility graph (Sections 1 and 4.1 of the paper).

Rather than materializing the global visibility graph over all obstacles
(``O(n^2)`` space, poor scalability — the paper's "FULL" yardstick), CONN
processing grows a *local* graph containing only the query segment endpoints,
the data point currently under evaluation, and the vertices of the obstacles
retrieved so far by IOR.

Two design points keep it fast at benchmark scale:

* **Lazy adjacency rows.**  The sight-line edges of a node are computed only
  when Dijkstra first settles it, with one vectorized pass over all nodes and
  all retrieved obstacles, and are then cached for every later traversal
  (the obstacle skeleton is shared by all evaluated data points).  Most
  obstacle vertices are never settled by any traversal, so most of the
  ``O(|VG|^2)`` edge work never happens.
* **Incremental repair.**  When IOR inserts obstacles, cached rows are
  repaired in place: entries blocked by the new obstacles are dropped (one
  vectorized test per batch) and sight lines to the new vertices are added
  (one pairwise kernel per batch).  Transient data points participate through
  the same rows and are unlinked on removal via a mentions index.

The graph also caches each node's visible region ``VR_{v,q}`` with an
obstacle watermark, so a cached region is lazily narrowed by exactly the
shadows of obstacles added since it was computed.

Traversals run on the library-wide resumable Dijkstra
(:class:`repro.routing.dijkstra.Traversal`) and are memoized per source:
a repeated ``dijkstra_order`` / ``shortest_path`` / ``shortest_distances``
call over an unchanged graph replays the settled shortest-path tree and
resumes the frontier instead of restarting from scratch.  Any mutation
(node added, obstacle inserted, transient point removed) bumps the graph's
generation and lazily invalidates the memo.

A graph may also be built *unanchored* (``qseg=None``): no endpoint nodes
exist until :meth:`bind` attaches a query segment's endpoints as transient
nodes, and :meth:`unbind` detaches them again.  This is the mode the
workspace-shared backend of :mod:`repro.routing` uses to keep one obstacle
skeleton alive across many queries.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..geometry.interval import IntervalSet
from ..geometry.point import Point
from ..geometry.segment import Segment
from ..geometry.vectorized import (
    blocked_batch,
    crosses_convex_polygon,
    crosses_rect_interior,
    primitive_bounds,
    proper_cross_segments,
)
from ..routing.config import ARRAY_ENGINE, SCALAR_ENGINE
from ..routing.dijkstra import ArrayTraversal, Traversal
from .obstacle import Obstacle, ObstacleSet
from .shadow import shadow_set, visible_region

_MAX_TRAVERSAL_MEMO = 64
"""Memoized shortest-path trees kept per graph (oldest dropped first)."""


class LocalVisibilityGraph:
    """An incrementally grown visibility graph tied to one query segment.

    Args:
        qseg: the query segment the graph is anchored to, or ``None`` for
            an unanchored skeleton that queries :meth:`bind` to later.
        obstacles: optional already-retrieved obstacle skeleton to seed the
            graph with (e.g. from a :class:`~repro.service.ObstacleCache`);
            equivalent to calling :meth:`add_obstacles` right after
            construction.
        engine: ``"array"`` (default) stores adjacency as flat CSR-style
            arrays — one pooled ``indices``/``weights`` slab plus a
            per-node span map — materializes rows through the batched
            visibility kernel, and traverses on the array-backed Dijkstra;
            ``"scalar"`` keeps the original dict-of-dict rows and scalar
            traversal as the byte-identical parity oracle.
    """

    def __init__(self, qseg: Optional[Segment] = None,
                 obstacles: Optional[Iterable[Obstacle]] = None,
                 engine: str = ARRAY_ENGINE):
        if engine not in (ARRAY_ENGINE, SCALAR_ENGINE):
            raise ValueError(f"unknown visibility-graph engine {engine!r}")
        self.engine = engine
        self.qseg = qseg
        self.obstacles = ObstacleSet()
        self._obstacle_keys: Set[Obstacle] = set()
        self._xy: List[Tuple[float, float]] = []
        self._alive: List[bool] = []
        self._transient: List[bool] = []
        # Scalar engine: lazily computed adjacency rows, node ->
        # {neighbor: weight}.  Both engines stamp each row with a staleness
        # watermark (rect rows, seg rows, polys, node count).
        self._rows: Dict[int, Dict[int, float]] = {}
        self._row_marks: Dict[int, Tuple[int, int, int, int]] = {}
        # Epoch stamps backing the O(1) staleness checks of the hot paths:
        # _struct_epoch advances on every structural insertion (obstacles,
        # permanent nodes) and never on transient bind/unbind churn, so a
        # row or visible region whose recorded epoch matches is current
        # without rebuilding and comparing count tuples.
        self._struct_epoch = 0
        self._row_epochs: Dict[int, int] = {}
        # Array engine: the same rows as spans into one pooled flat slab —
        # but *permanent* targets only.  A row's entries sit at
        # _indices[s:e] / _weights[s:e] with (s, e) = _indptr[node];
        # shrinks happen in place, growth relocates the row to the end of
        # the pool (compact() repacks).  Edges to the short-lived transient
        # nodes never enter the slab: they are appended at read time from
        # the per-transient visibility columns, so binding a query's
        # endpoints/data point does not invalidate a single cached row.
        self._indices = np.empty(0, dtype=np.int64)
        self._weights = np.empty(0, dtype=np.float64)
        self._pool_used = 0
        self._indptr: Dict[int, Tuple[int, int]] = {}
        # Array engine: per-transient-node visibility/weight columns —
        # blocked(v -> p) and weight(v, p) for every slot v, one batched
        # kernel call per column — so a transient's edges cost a lookup
        # per row read, not a kernel launch.
        self._cols: Dict[int, Tuple[np.ndarray, np.ndarray,
                                    Tuple[int, int, int]]] = {}
        # Permanent-node slot ids in insertion order: the array engine's
        # row watermark counts these (transients never invalidate rows).
        self._perm_ids: List[int] = []
        # Currently-bound transient slot ids in binding order.
        self._live_transients: List[int] = []
        # (generation, ids, blocked-matrix, weight-matrix, any-blocked) stack
        # of the live transients' columns, so a row read appends transient
        # edges with a couple of vector ops instead of a per-transient cache
        # probe.
        self._tblock: Optional[Tuple[int, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]] = None
        # Numpy mirrors of _xy/_alive/_transient (capacity-doubling, first
        # len(_xy) entries valid) feeding the batch kernels.
        self._coords_np = np.empty((16, 2), dtype=np.float64)
        self._alive_np = np.zeros(16, dtype=bool)
        self._transient_np = np.zeros(16, dtype=bool)
        # For transient nodes: which cached rows mention them.
        self._mentions: Dict[int, Set[int]] = {}
        # node -> (visible region, (rect rows, seg rows, polys) watermark,
        # struct epoch at which that watermark was recorded)
        self._vr_cache: Dict[int, Tuple[IntervalSet, Tuple[int, int, int],
                                        int]] = {}
        # Per-node Euclidean distance to the bound query segment, the
        # admissible heuristic behind bounded-traversal pruning.  Lazily
        # extended as nodes appear; reset when the anchor segment changes
        # (identity check) or coordinates are remapped by compact().
        self._h_np = np.empty(0, dtype=np.float64)
        self._h_len = 0
        self._h_qseg: Optional[Segment] = None
        self.visibility_tests = 0
        self.dijkstra_runs = 0
        self.dijkstra_replays = 0
        self.nodes_settled = 0
        self.batch_visibility_calls = 0
        self.batched_edges_tested = 0
        self.kernel_pruned_edges = 0
        self.heap_bulk_pushes = 0
        self.array_traversals = 0
        # (rect rows, seg rows) watermark -> primitive-bounds slabs for the
        # batch kernel's bbox prefilter; obstacle arrays are append-only,
        # so the count pair keys validity.
        self._bounds_cache: Optional[Tuple[int, int, np.ndarray,
                                           np.ndarray]] = None
        self._generation = 0
        self._traversals: Dict[int, Traversal] = {}
        self.S = -1
        self.E = -1
        if qseg is not None:
            self.S = self._new_node(qseg.ax, qseg.ay, transient=False)
            self.E = self._new_node(qseg.bx, qseg.by, transient=False)
        if obstacles is not None:
            self.add_obstacles(obstacles)

    # -------------------------------------------------------------- binding
    def bind(self, qseg: Segment) -> None:
        """Anchor an unanchored graph to one query segment.

        The endpoints enter as *transient* nodes, so a workspace-shared
        skeleton serves a sequence of queries by bind/unbind pairs without
        accumulating permanent per-query state.  Cached visible regions are
        dropped (they are relative to the previous anchor).
        """
        if self.qseg is not None:
            raise RuntimeError("graph is already bound to a query segment; "
                               "unbind() first")
        self.qseg = qseg
        self._vr_cache.clear()
        self.S = self.add_point(qseg.ax, qseg.ay)
        self.E = self.add_point(qseg.bx, qseg.by)

    def unbind(self) -> None:
        """Detach the endpoints attached by :meth:`bind`."""
        if self.qseg is None:
            raise RuntimeError("graph is not bound")
        if not self._transient[self.S]:
            raise RuntimeError("graph was anchored at construction; only "
                               "bind()-attached endpoints can be detached")
        self.remove_point(self.E)
        self.remove_point(self.S)
        self.S = self.E = -1
        self.qseg = None
        self._vr_cache.clear()

    # ---------------------------------------------------------------- nodes
    def _new_node(self, x: float, y: float, transient: bool) -> int:
        node = len(self._xy)
        self._xy.append((x, y))
        self._alive.append(True)
        self._transient.append(transient)
        if transient:
            self._live_transients.append(node)
        else:
            self._perm_ids.append(node)
            self._struct_epoch += 1
        if node >= self._alive_np.size:
            self._grow_mirrors(2 * self._alive_np.size)
        self._coords_np[node, 0] = x
        self._coords_np[node, 1] = y
        self._alive_np[node] = True
        self._transient_np[node] = transient
        self._generation += 1
        return node

    def _grow_mirrors(self, cap: int) -> None:
        coords = np.empty((cap, 2), dtype=np.float64)
        coords[:self._coords_np.shape[0]] = self._coords_np
        self._coords_np = coords
        alive = np.zeros(cap, dtype=bool)
        alive[:self._alive_np.size] = self._alive_np
        self._alive_np = alive
        transient = np.zeros(cap, dtype=bool)
        transient[:self._transient_np.size] = self._transient_np
        self._transient_np = transient

    def _rebuild_mirrors(self) -> None:
        n = len(self._xy)
        cap = max(16, n)
        self._coords_np = np.empty((cap, 2), dtype=np.float64)
        if n:
            self._coords_np[:n] = np.asarray(self._xy, dtype=np.float64)
        self._alive_np = np.zeros(cap, dtype=bool)
        self._alive_np[:n] = self._alive
        self._transient_np = np.zeros(cap, dtype=bool)
        self._transient_np[:n] = self._transient

    def _alive_view(self) -> np.ndarray:
        """The current alive mask (array engine's ``skip`` equivalent)."""
        return self._alive_np[:len(self._xy)]

    def _alive_ids(self) -> List[int]:
        return [i for i in range(len(self._xy)) if self._alive[i]]

    def node_point(self, node: int) -> Point:
        x, y = self._xy[node]
        return Point(x, y)

    def add_point(self, x: float, y: float) -> int:
        """Add a transient data point; pair with :meth:`remove_point`.

        No edges are computed here: the point's own row materializes when a
        traversal first settles it, and other rows pick the point up through
        their node watermarks on next access.
        """
        return self._new_node(x, y, transient=True)

    def remove_point(self, node: int) -> None:
        """Remove a transient node added by :meth:`add_point`."""
        if not self._transient[node]:
            raise ValueError(f"node {node} is not transient")
        for holder in self._mentions.pop(node, ()):
            row = self._rows.get(holder)
            if row is not None:
                row.pop(node, None)
            span = self._indptr.get(holder)
            if span is not None:
                s, e = span
                ids = self._indices[s:e]
                keep = ids != node
                k = int(keep.sum())
                if k != e - s:
                    self._indices[s:s + k] = ids[keep]
                    self._weights[s:s + k] = self._weights[s:e][keep]
                    self._indptr[holder] = (s, s + k)
        self._rows.pop(node, None)
        self._indptr.pop(node, None)
        self._row_marks.pop(node, None)
        self._row_epochs.pop(node, None)
        self._cols.pop(node, None)
        try:
            self._live_transients.remove(node)
        except ValueError:
            pass
        self._alive[node] = False
        self._alive_np[node] = False
        self._vr_cache.pop(node, None)
        self._generation += 1

    @property
    def num_nodes(self) -> int:
        """Alive node count (S, E, obstacle vertices, transient points)."""
        return sum(self._alive)

    @property
    def dead_slots(self) -> int:
        """Node slots held by removed transient nodes (compaction candidates)."""
        return len(self._xy) - sum(self._alive)

    def compact(self) -> int:
        """Reclaim dead node slots, remapping live node ids.

        Transient removal (:meth:`remove_point`, :meth:`unbind`) leaves
        dead append-only slots behind; a long-lived shared graph serving
        thousands of queries would otherwise grow without bound and scan
        the dead history on every fresh adjacency row.  Compaction remaps
        the alive nodes onto a dense prefix while *keeping every cached
        adjacency row* — the expensive pairwise sight-line tests survive;
        only traversal memos and visible-region caches are dropped.

        Caller contract: all node ids held outside the graph (session
        endpoints, transient data points) are invalidated — only call
        between queries, with no transient nodes attached.

        Returns:
            Number of slots reclaimed (0 when already dense).
        """
        dead = self.dead_slots
        if dead == 0:
            return 0
        old_len = len(self._xy)
        remap: Dict[int, int] = {}
        alive_ids: List[int] = []
        for i, alive in enumerate(self._alive):
            if alive:
                remap[i] = len(alive_ids)
                alive_ids.append(i)
        self._xy = [self._xy[i] for i in alive_ids]
        self._alive = [True] * len(alive_ids)
        self._transient = [self._transient[i] for i in alive_ids]
        # Rows only ever reference alive nodes (removal scrubs mentions),
        # so remapping entries is total.  A row's node-count watermark
        # records how many nodes it has wired; under the order-preserving
        # remap that becomes the number of *alive* ids below the old mark.
        self._rows = {remap[v]: {remap[u]: w for u, w in row.items()}
                      for v, row in self._rows.items()}
        if self.engine == ARRAY_ENGINE:
            # Array marks count permanent insertions, which compaction
            # never removes — only the row's key needs remapping.
            self._row_marks = {remap[v]: m
                               for v, m in self._row_marks.items()}
        else:
            self._row_marks = {
                remap[v]: (r, s, p, bisect.bisect_left(alive_ids, n_nodes))
                for v, (r, s, p, n_nodes) in self._row_marks.items()}
        self._row_epochs = {remap[v]: e
                            for v, e in self._row_epochs.items()}
        self._perm_ids = [remap[i] for i in self._perm_ids]
        self._live_transients = [remap[t] for t in self._live_transients
                                 if t in remap]
        # Repack the flat slab densely in one pass: rows only reference
        # alive nodes, so the vectorized id remap is total.
        if self._indptr:
            remap_np = np.full(old_len, -1, dtype=np.int64)
            remap_np[np.asarray(alive_ids, dtype=np.int64)] = \
                np.arange(len(alive_ids), dtype=np.int64)
            total = sum(e - s for s, e in self._indptr.values())
            new_idx = np.empty(total, dtype=np.int64)
            new_w = np.empty(total, dtype=np.float64)
            new_ptr: Dict[int, Tuple[int, int]] = {}
            pos = 0
            for v, (s, e) in self._indptr.items():
                k = e - s
                new_idx[pos:pos + k] = remap_np[self._indices[s:e]]
                new_w[pos:pos + k] = self._weights[s:e]
                new_ptr[remap[v]] = (pos, pos + k)
                pos += k
            self._indices, self._weights = new_idx, new_w
            self._pool_used = pos
            self._indptr = new_ptr
        else:
            self._indices = np.empty(0, dtype=np.int64)
            self._weights = np.empty(0, dtype=np.float64)
            self._pool_used = 0
        self._cols.clear()
        # A holder may itself have been removed since it was recorded (its
        # row died with it, so the stale entry is inert) — drop those.
        self._mentions = {remap[v]: {remap[u] for u in holders if u in remap}
                          for v, holders in self._mentions.items()}
        if self.S >= 0:
            self.S = remap[self.S]
            self.E = remap[self.E]
        self._vr_cache.clear()
        self._traversals.clear()
        self._h_len = 0  # node ids moved; heuristic values recompute lazily
        self._rebuild_mirrors()
        self._generation += 1
        return dead

    @property
    def svg_size(self) -> int:
        """|SVG|: vertices of the local visibility graph (paper's metric)."""
        return sum(1 for a, t in zip(self._alive, self._transient) if a and not t)

    def clone_skeleton(self) -> "LocalVisibilityGraph":
        """Replicate this graph's obstacle skeleton into a fresh graph.

        The clone carries the obstacles, the node table, *and every cached
        adjacency row* — the expensive pairwise sight-line tests — but none
        of the per-anchor state (visible-region caches, traversal memos,
        endpoint binding).  This is how the shared routing backend
        pre-provisions per-worker graphs for a parallel batch: each worker
        binds its own endpoints to its own clone and traverses without
        ever touching another worker's graph.

        Caller contract: the graph must be unbound (no query endpoints
        attached); the source is compacted first, so node ids held outside
        the graph are invalidated exactly as :meth:`compact` documents.
        """
        if self.qseg is not None:
            raise RuntimeError("clone_skeleton needs an unbound graph; "
                               "unbind() first")
        self.compact()
        clone = LocalVisibilityGraph(engine=self.engine)
        clone.obstacles = ObstacleSet(self.obstacles)
        clone._obstacle_keys = set(self._obstacle_keys)
        clone._xy = list(self._xy)
        clone._alive = list(self._alive)
        clone._transient = list(self._transient)
        clone._rows = {v: dict(row) for v, row in self._rows.items()}
        clone._indices = self._indices[:self._pool_used].copy()
        clone._weights = self._weights[:self._pool_used].copy()
        clone._pool_used = self._pool_used
        clone._indptr = dict(self._indptr)
        clone._row_marks = dict(self._row_marks)
        clone._row_epochs = dict(self._row_epochs)
        clone._struct_epoch = self._struct_epoch
        clone._perm_ids = list(self._perm_ids)
        clone._live_transients = list(self._live_transients)
        clone._mentions = {v: set(h) for v, h in self._mentions.items()}
        clone._rebuild_mirrors()
        return clone

    # ------------------------------------------------------------ obstacles
    def add_obstacles(self, batch: Iterable[Obstacle]) -> int:
        """Insert obstacles and register their vertices as graph nodes.

        Cached adjacency rows are *not* repaired here; each row repairs
        itself lazily on next access (see :meth:`neighbors`), so obstacle
        insertion costs nothing for the (typically large) majority of rows
        no later traversal touches again.

        Obstacles already present are skipped, so caching layers may re-offer
        a mixed batch freely without double-inserting vertices.

        Returns:
            Number of obstacles actually inserted (duplicates excluded).
        """
        batch = [o for o in batch if o not in self._obstacle_keys]
        if not batch:
            return 0
        self._obstacle_keys.update(batch)
        self.obstacles.add_many(batch)
        self._struct_epoch += 1
        for o in batch:
            for vx, vy in o.vertices():
                self._new_node(vx, vy, transient=False)
        return len(batch)

    # ------------------------------------------------------------ adjacency
    def _current_mark(self) -> Tuple[int, int, int, int]:
        return (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                len(self.obstacles.polys), len(self._xy))

    def _array_mark(self) -> Tuple[int, int, int, int]:
        """Array-row watermark: node component counts *permanent* nodes only,
        so bind/unbind churn never invalidates a cached flat row."""
        return (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                len(self.obstacles.polys), len(self._perm_ids))

    def _visible_from(self, x: float, y: float, targets: np.ndarray,
                      chunk: int = 64) -> np.ndarray:
        """Visibility of ``targets`` (K, 2) from ``(x, y)``, early-terminating.

        Obstacles are tested nearest-first in chunks; targets already proven
        blocked drop out of later chunks.  Because a sight line is almost
        always cut by an obstacle near its source, most targets die in the
        first chunk and the effective cost is far below ``K x N``.
        """
        k = targets.shape[0]
        alive = np.ones(k, dtype=bool)
        if k == 0:
            return alive
        tx = targets[:, 0]
        ty = targets[:, 1]
        rects = self.obstacles.rects
        if rects.size:
            cdist = np.hypot((rects[:, 0] + rects[:, 2]) * 0.5 - x,
                             (rects[:, 1] + rects[:, 3]) * 0.5 - y)
            order = np.argsort(cdist)
            for start in range(0, order.size, chunk):
                idx = np.nonzero(alive)[0]
                if idx.size == 0:
                    return alive
                batch = rects[order[start:start + chunk]]
                blocked = crosses_rect_interior(
                    x, y, tx[idx][:, None], ty[idx][:, None],
                    batch[None, :, 0], batch[None, :, 1],
                    batch[None, :, 2], batch[None, :, 3],
                ).any(axis=1)
                self.visibility_tests += idx.size * batch.shape[0]
                alive[idx[blocked]] = False
        segs = self.obstacles.segs
        if segs.size:
            cdist = np.hypot((segs[:, 0] + segs[:, 2]) * 0.5 - x,
                             (segs[:, 1] + segs[:, 3]) * 0.5 - y)
            order = np.argsort(cdist)
            for start in range(0, order.size, chunk):
                idx = np.nonzero(alive)[0]
                if idx.size == 0:
                    return alive
                batch = segs[order[start:start + chunk]]
                blocked = proper_cross_segments(
                    x, y, tx[idx][:, None], ty[idx][:, None],
                    batch[None, :, 0], batch[None, :, 1],
                    batch[None, :, 2], batch[None, :, 3],
                ).any(axis=1)
                self.visibility_tests += idx.size * batch.shape[0]
                alive[idx[blocked]] = False
        for poly in self.obstacles.polys:
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                return alive
            arr = poly.as_array()
            blocked = crosses_convex_polygon(x, y, tx[idx], ty[idx], arr)
            self.visibility_tests += idx.size
            alive[idx[blocked]] = False
        return alive

    def _add_edges_to(self, node: int, row: Dict[int, float],
                      candidate_ids: List[int]) -> None:
        """Add visible ``candidate_ids`` to ``row`` (tested vs all obstacles)."""
        if not candidate_ids:
            return
        x, y = self._xy[node]
        targets = np.asarray([self._xy[i] for i in candidate_ids],
                             dtype=np.float64)
        mask = self._visible_from(x, y, targets)
        for i, visible in zip(candidate_ids, mask):
            if visible:
                tx, ty = self._xy[i]
                row[i] = math.hypot(x - tx, y - ty)
                if self._transient[i]:
                    self._mentions.setdefault(i, set()).add(node)

    # ----------------------------------------------------- adjacency (flat)
    def _prims_now(self) -> int:
        return (self.obstacles.rects.shape[0] + self.obstacles.segs.shape[0]
                + len(self.obstacles.polys))

    def _prim_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached primitive-bounds slabs for the batch kernel's prefilter."""
        rects = self.obstacles.rects
        segs = self.obstacles.segs
        key = (rects.shape[0], segs.shape[0])
        cached = self._bounds_cache
        if cached is None or (cached[0], cached[1]) != key:
            rb, sb = primitive_bounds(rects, segs)
            cached = (key[0], key[1], rb, sb)
            self._bounds_cache = cached
        return cached[2], cached[3]

    def _count_batch(self, edges: int, prims: int,
                     tally: Optional[dict] = None) -> None:
        self.batch_visibility_calls += 1
        if tally is not None:
            tested = tally["tested"]
            self.kernel_pruned_edges += tally["pruned"]
        else:
            tested = edges * prims
        self.batched_edges_tested += tested
        self.visibility_tests += tested

    def _count_bulk_push(self) -> None:
        self.heap_bulk_pushes += 1

    def _row_write(self, node: int, idx: np.ndarray, w: np.ndarray) -> None:
        """Place a row in the slab: in place when it fits, else appended."""
        span = self._indptr.get(node)
        n = idx.size
        if span is not None and n <= span[1] - span[0]:
            s = span[0]
        else:
            if self._pool_used + n > self._indices.size:
                cap = max(256, self._pool_used + n, 2 * self._indices.size)
                grown_i = np.empty(cap, dtype=np.int64)
                grown_i[:self._pool_used] = self._indices[:self._pool_used]
                grown_w = np.empty(cap, dtype=np.float64)
                grown_w[:self._pool_used] = self._weights[:self._pool_used]
                self._indices, self._weights = grown_i, grown_w
            s = self._pool_used
            self._pool_used += n
        self._indices[s:s + n] = idx
        self._weights[s:s + n] = w
        self._indptr[node] = (s, s + n)

    def _column(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(blocked(v -> p), weight(v, p))`` for every node slot v.

        One batched kernel call per transient instead of one per
        (row, transient) pair; orientation matches the scalar repair path
        (source = the row's owner, target = the transient).  Weights go
        through ``math.hypot`` exactly like materialized rows, so a
        transient edge read from the column is bit-identical to one the
        scalar engine computes.  Cached per obstacle watermark; dead slots
        compute junk that no live row ever looks up.
        """
        omark = (self.obstacles.rects.shape[0], self.obstacles.segs.shape[0],
                 len(self.obstacles.polys))
        n = len(self._xy)
        px, py = self._xy[p]
        hypot = math.hypot
        cached = self._cols.get(p)
        m = 0
        col = wcol = None
        if cached is not None and cached[2] == omark:
            col, wcol = cached[0], cached[1]
            if col.size >= n:
                return col, wcol
            # Still valid, just short: slots were added since the column
            # was cut (e.g. another bind's transients).  Extend by testing
            # only the new slots, not the whole graph again.
            m = col.size
        targets = np.empty((n - m, 2), dtype=np.float64)
        targets[:, 0] = px
        targets[:, 1] = py
        tally: dict = {}
        tail = blocked_batch(self._coords_np[m:n], targets,
                             self.obstacles.rects, self.obstacles.segs,
                             self.obstacles.polys,
                             bounds=self._prim_bounds(), tally=tally)
        self._count_batch(n - m, self._prims_now(), tally)
        wtail = np.empty(n - m, dtype=np.float64)
        for j in range(m, n):
            vx, vy = self._xy[j]
            wtail[j - m] = hypot(vx - px, vy - py)
        if m:
            col = np.concatenate([col, tail])
            wcol = np.concatenate([wcol, wtail])
        else:
            col, wcol = tail, wtail
        self._cols[p] = (col, wcol, omark)
        return col, wcol

    def _transient_block(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray]:
        """The live transients' columns stacked: ids/blocked/weights/any.

        ``blocked[v, j]`` / ``weights[v, j]`` describe the edge between slot
        ``v`` and the j-th bound transient; ``any_blocked[v]`` collapses the
        blocked row so readers with nothing to filter (the vast majority —
        most graph nodes see every bound endpoint) take a mask-free path.
        Rebuilt lazily whenever the graph changes (generation bump);
        between changes every row read shares the same stack.
        """
        cached = self._tblock
        if cached is not None and cached[0] == self._generation:
            return cached[1], cached[2], cached[3], cached[4]
        ts = self._live_transients
        n = len(self._xy)
        tarr = np.asarray(ts, dtype=np.int64)
        bm = np.empty((n, len(ts)), dtype=bool)
        wm = np.empty((n, len(ts)), dtype=np.float64)
        for j, t in enumerate(ts):
            col, wcol = self._column(t)
            bm[:, j] = col[:n]
            wm[:, j] = wcol[:n]
        anyb = bm.any(axis=1)
        self._tblock = (self._generation, tarr, bm, wm, anyb)
        return tarr, bm, wm, anyb

    def _materialize_row(self, node: int,
                         mark_now: Tuple[int, int, int, int]
                         ) -> Tuple[np.ndarray, np.ndarray]:
        x, y = self._xy[node]
        n = len(self._xy)
        # Rows hold *permanent* endpoints only; transient edges are appended
        # at read time from the shared visibility columns (row_arrays), so
        # bind/unbind churn never touches the slab.
        mask = self._alive_np[:n] & ~self._transient_np[:n]
        mask[node] = False
        cand = np.nonzero(mask)[0]
        if cand.size:
            sources = np.empty((cand.size, 2), dtype=np.float64)
            sources[:, 0] = x
            sources[:, 1] = y
            tally: dict = {}
            blocked = blocked_batch(sources, self._coords_np[cand],
                                    self.obstacles.rects, self.obstacles.segs,
                                    self.obstacles.polys,
                                    bounds=self._prim_bounds(), tally=tally)
            self._count_batch(cand.size, self._prims_now(), tally)
            vis = cand[~blocked]
        else:
            vis = cand
        idx = vis.astype(np.int64, copy=False)
        # Weights go through math.hypot, not np.hypot: the two differ in
        # the last ulp on ~0.5% of inputs, and engine parity is bit-exact.
        w = np.empty(idx.size, dtype=np.float64)
        xy = self._xy
        for j, i in enumerate(idx.tolist()):
            tx, ty = xy[i]
            w[j] = math.hypot(x - tx, y - ty)
        self._row_marks[node] = mark_now
        self._row_write(node, idx, w)
        s, e = self._indptr[node]
        return self._indices[s:e], self._weights[s:e]

    def _repair_row(self, node: int,
                    mark_now: Tuple[int, int, int, int]) -> None:
        n_rects, n_segs, n_polys, n_perm = self._row_marks[node]
        s, e = self._indptr[node]
        x, y = self._xy[node]
        xy = self._xy
        # Drop entries blocked by obstacles added since the row was cut.
        new_rects = self.obstacles.rects[n_rects:]
        new_segs = self.obstacles.segs[n_segs:]
        new_polys = self.obstacles.polys[n_polys:]
        if e > s and (new_rects.size or new_segs.size or new_polys):
            ids = self._indices[s:e]
            sources = np.empty((ids.size, 2), dtype=np.float64)
            sources[:, 0] = x
            sources[:, 1] = y
            rb, sb = self._prim_bounds()
            tally: dict = {}
            blocked = blocked_batch(sources, self._coords_np[ids],
                                    new_rects, new_segs, new_polys,
                                    bounds=(rb[n_rects:], sb[n_segs:]),
                                    tally=tally)
            self._count_batch(ids.size, new_rects.shape[0]
                              + new_segs.shape[0] + len(new_polys), tally)
            if blocked.any():
                keep = ~blocked
                k = int(keep.sum())
                self._indices[s:s + k] = ids[keep]
                self._weights[s:s + k] = self._weights[s:e][keep]
                e = s + k
                self._indptr[node] = (s, e)
        # Wire up permanent vertices added since the row was cut, in one
        # batched call.  Transients never enter the slab — row_arrays
        # appends them at read time from the shared visibility columns —
        # so per-query bind/unbind churn never triggers a repair at all.
        perm = [i for i in self._perm_ids[n_perm:] if i != node]
        if perm:
            add_ids: List[int] = []
            add_w: List[float] = []
            tgt = self._coords_np[np.asarray(perm, dtype=np.int64)]
            sources = np.empty((len(perm), 2), dtype=np.float64)
            sources[:, 0] = x
            sources[:, 1] = y
            tally = {}
            blocked = blocked_batch(sources, tgt, self.obstacles.rects,
                                    self.obstacles.segs,
                                    self.obstacles.polys,
                                    bounds=self._prim_bounds(), tally=tally)
            self._count_batch(len(perm), self._prims_now(), tally)
            for i, dead in zip(perm, blocked.tolist()):
                if not dead:
                    tx, ty = xy[i]
                    add_ids.append(i)
                    add_w.append(math.hypot(x - tx, y - ty))
            if add_ids:
                merged_idx = np.concatenate(
                    [self._indices[s:e], np.asarray(add_ids, dtype=np.int64)])
                merged_w = np.concatenate(
                    [self._weights[s:e], np.asarray(add_w, dtype=np.float64)])
                self._row_write(node, merged_idx, merged_w)
        self._row_marks[node] = mark_now

    def row_arrays(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """The flat adjacency row of ``node``: ``(ids, weights)``.

        The array engine's counterpart of :meth:`neighbors`: same lazy
        materialization, same two-step incremental repair, but each step
        is one batched kernel call instead of one per candidate edge, and
        the result feeds the array traversal without building a dict.

        The slab row covers permanent endpoints only and is keyed on a
        watermark that ignores transients, so steady-state query traffic
        (bind endpoints, route, unbind) never repairs a row.  Edges to the
        currently bound transients are appended here at read time from
        their shared visibility columns; when none are bound the returned
        arrays are zero-copy slab views.
        """
        epoch = self._struct_epoch
        span = self._indptr.get(node)
        if span is None:
            idx, w = self._materialize_row(node, self._array_mark())
            self._row_epochs[node] = epoch
        else:
            if self._row_epochs.get(node) != epoch:
                # Epoch moved since the row was cut; the count watermark
                # decides whether anything this row covers actually grew.
                mark_now = self._array_mark()
                if self._row_marks[node] != mark_now:
                    self._repair_row(node, mark_now)
                    span = self._indptr[node]
                self._row_epochs[node] = epoch
            s, e = span
            idx, w = self._indices[s:e], self._weights[s:e]
        if self._live_transients:
            tb = self._tblock
            if tb is not None and tb[0] == self._generation:
                _, tarr, bm, wm, anyb = tb
            else:
                tarr, bm, wm, anyb = self._transient_block()
            if not self._transient[node] and not anyb[node]:
                # Permanent reader, every bound endpoint visible: append
                # the whole stack without building a keep mask (the vast
                # majority of settles on an open corridor).
                return (np.concatenate([idx, tarr]),
                        np.concatenate([w, wm[node]]))
            keep = ~bm[node]
            if self._transient[node]:
                # Only a transient reader can appear in the transient id
                # list; permanent rows skip the self-exclusion pass.
                keep &= tarr != node
            if keep.all():
                add_i, add_w = tarr, wm[node]
            else:
                add_i, add_w = tarr[keep], wm[node][keep]
            if add_i.size:
                idx = np.concatenate([idx, add_i])
                w = np.concatenate([w, add_w])
        return idx, w

    def neighbors(self, node: int) -> Dict[int, float]:
        """The adjacency row of ``node``, computed/repaired lazily.

        A cached row records the obstacle and node counts it is current for.
        On access after growth, exactly two incremental fixes run: existing
        entries are retested against the *new* obstacles only, and sight
        lines to the *new* nodes only are added (tested against all
        obstacles).  Rows are therefore always current when returned.

        On the array engine the row lives in the flat slab; the dict view
        here is built on demand for the non-hot-path consumers (tests,
        the session surface, :func:`num_edges`).
        """
        if self.engine == ARRAY_ENGINE:
            idx, w = self.row_arrays(node)
            return dict(zip(idx.tolist(), w.tolist()))
        row = self._rows.get(node)
        mark_now = self._current_mark()
        if row is not None:
            n_rects, n_segs, n_polys, n_nodes = self._row_marks[node]
            if (n_rects, n_segs, n_polys, n_nodes) == mark_now:
                return row
            # Drop entries blocked by obstacles added since the row was cut.
            new_rects = self.obstacles.rects[n_rects:]
            new_segs = self.obstacles.segs[n_segs:]
            new_polys = self.obstacles.polys[n_polys:]
            if row and (new_rects.size or new_segs.size or new_polys):
                x, y = self._xy[node]
                ids = list(row.keys())
                arr = np.asarray([self._xy[i] for i in ids], dtype=np.float64)
                blocked = np.zeros(len(ids), dtype=bool)
                if new_rects.size:
                    blocked |= crosses_rect_interior(
                        x, y, arr[:, 0][:, None], arr[:, 1][:, None],
                        new_rects[None, :, 0], new_rects[None, :, 1],
                        new_rects[None, :, 2], new_rects[None, :, 3],
                    ).any(axis=1)
                if new_segs.size:
                    blocked |= proper_cross_segments(
                        x, y, arr[:, 0][:, None], arr[:, 1][:, None],
                        new_segs[None, :, 0], new_segs[None, :, 1],
                        new_segs[None, :, 2], new_segs[None, :, 3],
                    ).any(axis=1)
                for poly in new_polys:
                    blocked |= crosses_convex_polygon(
                        x, y, arr[:, 0], arr[:, 1], poly.as_array())
                self.visibility_tests += len(ids)
                for i, dead in zip(ids, blocked):
                    if dead:
                        del row[i]
            # Wire up nodes added since the row was cut.
            fresh = [i for i in range(n_nodes, len(self._xy))
                     if self._alive[i] and i != node]
            self._add_edges_to(node, row, fresh)
            self._row_marks[node] = mark_now
            return row
        row = {}
        self._rows[node] = row
        self._row_marks[node] = mark_now
        self._add_edges_to(node, row,
                           [i for i in self._alive_ids() if i != node])
        return row

    def num_edges(self, materialize: bool = False) -> int:
        """Count sight-line edges (cached rows only, unless ``materialize``)."""
        if materialize:
            for node in self._alive_ids():
                if self.engine == ARRAY_ENGINE:
                    self.row_arrays(node)
                else:
                    self.neighbors(node)
        seen = set()
        if self.engine == ARRAY_ENGINE:
            for v, (s, e) in self._indptr.items():
                if not self._alive[v]:
                    continue
                for n in self._indices[s:e].tolist():
                    seen.add((v, n) if v < n else (n, v))
            # Slab rows cover permanent endpoints only; fold in the bound
            # transients' edges from their visibility columns.
            for t in self._live_transients:
                col, _ = self._column(t)
                for v in self._alive_ids():
                    if v != t and not col[v]:
                        seen.add((v, t) if v < t else (t, v))
            return len(seen)
        for v, row in self._rows.items():
            if not self._alive[v]:
                continue
            for n in row:
                seen.add((min(v, n), max(v, n)))
        return len(seen)

    # ------------------------------------------------------ visible regions
    def visible_region_of(self, node: int) -> IntervalSet:
        """Cached ``VR_{node,q}``, narrowed lazily as obstacles arrive."""
        epoch = self._struct_epoch
        cached = self._vr_cache.get(node)
        if cached is not None and cached[2] == epoch:
            return cached[0]
        rects = self.obstacles.rects
        segs = self.obstacles.segs
        polys = self.obstacles.polys
        watermark_now = (rects.shape[0], segs.shape[0], len(polys))
        if cached is not None:
            vr, watermark, _ = cached
            if watermark != watermark_now:
                x, y = self._xy[node]
                vr = vr.subtract(shadow_set(x, y, self.qseg,
                                            rects[watermark[0]:],
                                            segs[watermark[1]:],
                                            polys[watermark[2]:]))
            self._vr_cache[node] = (vr, watermark_now, epoch)
            return vr
        x, y = self._xy[node]
        vr = visible_region(x, y, self.qseg, self.obstacles)
        self._vr_cache[node] = (vr, watermark_now, epoch)
        return vr

    # -------------------------------------------------------------- dijkstra
    def _segment_heuristic(self) -> np.ndarray:
        """Per-node Euclidean distance to the bound query segment.

        The admissible heuristic behind bounded-traversal pruning.  Values
        are produced by the very same scalar ``qseg.dist_point`` that CPLC's
        Euclidean prefilter calls, so the traversal's prune test and CPLC's
        ``dist + dist(v, q) >= bound`` skip agree bit for bit — a node the
        traversal declines to relax is guaranteed to be skipped (not
        trusted) downstream.  Extended lazily as nodes appear; dead slots
        keep stale values harmlessly (their coordinates never change).
        """
        q = self.qseg
        n = len(self._xy)
        if self._h_qseg is not q:
            self._h_qseg = q
            self._h_len = 0
        if self._h_len < n:
            if self._h_np.size < n:
                grown = np.empty(max(n, 2 * self._h_np.size, 64),
                                 dtype=np.float64)
                grown[:self._h_len] = self._h_np[:self._h_len]
                self._h_np = grown
            dp = q.dist_point
            xy = self._xy
            h = self._h_np
            for i in range(self._h_len, n):
                x, y = xy[i]
                h[i] = dp(x, y)
            self._h_len = n
        return self._h_np

    def _traversal(self, source: int,
                   prune_bound: float = math.inf) -> Traversal:
        """The memoized traversal for ``source``, rebuilt when stale.

        A traversal is valid exactly while the graph is unchanged since it
        started (generation match): node insertion can open shorter paths,
        obstacle insertion can cut edges, and transient removal can kill
        settled nodes — any of which falsifies the recorded tree.  A pruned
        traversal additionally only serves requests with an equal or
        *smaller* bound (it settles a superset of their safe set); a larger
        bound forces a rebuild.
        """
        if prune_bound < math.inf and self.qseg is None:
            prune_bound = math.inf  # no segment, no heuristic to prune with
        t = self._traversals.get(source)
        if t is not None and t.stamp == self._generation \
                and t.prune_bound >= prune_bound:
            self.dijkstra_replays += 1
            return t
        if len(self._traversals) >= _MAX_TRAVERSAL_MEMO:
            gen = self._generation
            self._traversals = {s: tr for s, tr in self._traversals.items()
                                if tr.stamp == gen}
            while len(self._traversals) >= _MAX_TRAVERSAL_MEMO:
                self._traversals.pop(next(iter(self._traversals)))
        heur = (self._segment_heuristic() if prune_bound < math.inf
                else None)
        if self.engine == ARRAY_ENGINE:
            t = ArrayTraversal(self.row_arrays, source, len(self._xy),
                               alive=self._alive_view,
                               prune_bound=prune_bound, heur=heur,
                               on_bulk_push=self._count_bulk_push,
                               stamp=self._generation)
            self.array_traversals += 1
        else:
            t = Traversal(self.neighbors, source,
                          skip=lambda n: not self._alive[n],
                          prune_bound=prune_bound, heur=heur,
                          stamp=self._generation)
        self._traversals[source] = t
        self.dijkstra_runs += 1
        return t

    def dijkstra_order(self, source: int, prune_bound: float = math.inf
                       ) -> Iterator[Tuple[float, int, Optional[int]]]:
        """Yield ``(dist, node, predecessor)`` in ascending settled order.

        This is the traversal CPLC consumes; the caller breaks out when
        Lemma 7's cutoff fires.  Predecessor is the node visited right before
        on the shortest path (``u`` of Lemma 5), ``None`` for the source.
        Only settled nodes ever compute their adjacency rows, and repeated
        traversals from one source over an unchanged graph replay the
        memoized shortest-path tree instead of restarting (the cost that
        used to make ``shortest_path`` re-run a full Dijkstra per call).

        ``prune_bound`` enables goal-directed relaxation pruning toward the
        bound query segment (see :class:`~repro.routing.dijkstra.Traversal`):
        yielded nodes with ``dist + dist(node, qseg) < prune_bound`` are
        exact — distance, predecessor and position — while anything beyond
        may arrive late, inflated, or not at all, so callers must discard
        contributions at or past the bound (CPLC's global-bound skip does).
        """
        t = self._traversal(source, prune_bound)
        return t.order(on_advance=self._count_settle)

    def settled_traversal(self, source: int, prune_bound: float = math.inf):
        """The raw resumable traversal behind :meth:`dijkstra_order`.

        Returns ``(traversal, on_settle)``: hot consumers (CPLC's main
        loop) walk ``traversal.settled`` / call ``traversal.advance()``
        directly — same entries in the same order as the generator, minus
        one generator resume per settled node — and must invoke
        ``on_settle(entry)`` once per *fresh* advance so the graph's
        ``nodes_settled`` counter stays identical to the generator path.
        """
        return self._traversal(source, prune_bound), self._count_settle

    def _count_settle(self, _entry: Tuple[float, int, Optional[int]]) -> None:
        self.nodes_settled += 1

    def shortest_distances(self, source: int, targets: Iterable[int],
                           cutoff: float = math.inf,
                           prune_bound: float = math.inf) -> Dict[int, float]:
        """Early-terminating Dijkstra: distances to ``targets`` (inf if cut off).

        ``cutoff`` additionally stops the traversal once settled distances
        exceed it; targets not yet settled report ``inf``.  The underlying
        traversal stays resumable, so a later call with a larger cutoff
        continues where this one stopped.

        ``prune_bound`` opts into goal-directed relaxation pruning (see
        :meth:`dijkstra_order`): only safe for targets *on* the query
        segment (IOR's S and E, whose heuristic is zero) — their reported
        distance is exact whenever it is below the bound, and any target
        cut off by pruning necessarily reports at or above it.
        """
        remaining = set(targets)
        out = {t: math.inf for t in remaining}
        # Consume the traversal directly rather than through the
        # dijkstra_order generator: this loop touches every settled entry
        # of every warm-corridor Dijkstra, and the generator resume per
        # entry profiled at several percent of the arm.  Replay-cursor
        # discipline matches _ReplayCore.order, including the re-check
        # after an exhausted advance (a concurrent consumer may have
        # settled the tail between the length check and the locked
        # advance).
        tr = self._traversal(source, prune_bound)
        settled = tr.settled
        i = 0
        while True:
            if i < len(settled):
                d, node, _pred = settled[i]
                i += 1
            else:
                if tr.advance() is None:
                    if i < len(settled):
                        continue
                    break
                self.nodes_settled += 1
                continue
            if d > cutoff:
                break
            if node in remaining:
                out[node] = d
                remaining.discard(node)
                if not remaining:
                    break
        return out

    def shortest_path(self, source: int, target: int) -> Tuple[float, List[int]]:
        """Distance and node path from ``source`` to ``target`` (inf, [] if none)."""
        preds: Dict[int, Optional[int]] = {}
        for d, node, pred in self.dijkstra_order(source):
            preds[node] = pred
            if node == target:
                path = [node]
                while preds[path[-1]] is not None:
                    path.append(preds[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return d, path
        return math.inf, []
