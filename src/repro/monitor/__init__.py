"""Continuous-query monitors: registered queries kept fresh under updates.

The paper's queries are *continuous* in the query parameter; this package
makes them continuous in *time* as well.  A client registers a typed query
(:class:`~repro.query.queries.ConnQuery` / ``CoknnQuery`` / ``OnnQuery`` /
``RangeQuery``) with a workspace's :class:`MonitorRegistry`; every update
applied through :meth:`Workspace.apply` (or the ``add_site`` /
``remove_site`` / ``add_obstacle`` / ``remove_obstacle`` shorthands) then
flows to each registered monitor, which repairs its standing result
*incrementally*:

1. an **affected-test** compares the update's footprint against the
   monitor's recorded influence region (the k-th-level distance envelope
   for segment queries, the k-th neighbor distance for point queries, the
   query radius for range queries) — updates that provably cannot change
   the answer are dismissed as no-ops without touching any index;
2. a segment monitor whose answer *may* change computes the affected
   split-point intervals piece by piece and re-runs the engine on those
   sub-segments only, splicing the fresh piecewise functions over the old
   ones (:meth:`~repro.core.distance_function.PiecewiseDistance.replace_span`);
3. only when the affected span covers most of the query (or the query is a
   point query, which costs one cheap cache-warm scan) does the monitor
   fall back to a full re-run.

Each maintenance step emits a :class:`MonitorEvent` carrying the action
taken and the **result delta** (changed intervals / added / removed
neighbors), delivered to the monitor's callback and kept on
``monitor.events``.
"""

from .monitor import (
    NO_OP,
    REPAIR,
    RERUN,
    Monitor,
    MonitorEvent,
    ResultDelta,
    diff_intervals,
    diff_neighbors,
    influence_radius,
)
from .registry import MaintenanceStats, MonitorRegistry

__all__ = [
    "MaintenanceStats",
    "Monitor",
    "MonitorEvent",
    "MonitorRegistry",
    "NO_OP",
    "REPAIR",
    "RERUN",
    "ResultDelta",
    "diff_intervals",
    "diff_neighbors",
    "influence_radius",
]
