"""The per-workspace monitor registry and its maintenance counters."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from ..query.queries import Query
from ..service.updates import Update
from .monitor import NO_OP, REPAIR, Monitor, MonitorEvent, monitor_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.workspace import Workspace


@dataclass
class MaintenanceStats:
    """Cumulative maintenance counters across every monitor of a registry."""

    updates: int = 0
    """Updates fanned out to monitors."""

    noops: int = 0
    """Monitor refreshes dismissed by the affected-test."""

    repairs: int = 0
    """Refreshes answered by span-local repair."""

    reruns: int = 0
    """Refreshes that re-ran the full query."""

    deltas: int = 0
    """Refreshes whose answer actually changed."""

    @property
    def noop_rate(self) -> float:
        """Fraction of monitor refreshes dismissed without any index work."""
        total = self.noops + self.repairs + self.reruns
        return self.noops / total if total else 0.0


class MonitorRegistry:
    """Registered continuous queries of one workspace.

    Obtained via :attr:`Workspace.monitors`; :meth:`register` runs the
    query once and keeps its result fresh under every subsequent
    :meth:`Workspace.apply` — the workspace calls :meth:`notify` for each
    applied update, which fans it out to every active monitor.
    """

    def __init__(self, workspace: "Workspace"):
        self._ws = workspace
        self._monitors: Dict[int, Monitor] = {}
        self._ids = itertools.count(1)
        self.stats = MaintenanceStats()
        self.repair_workers = 1
        """Worker threads for fanning one update out to dirty monitors.
        ``1`` (default) repairs serially in registration order.  With more
        workers, independent monitors repair concurrently against one
        snapshot of the freshly updated workspace: each repair takes its
        own read hold, every monitor's state is touched only by its own
        worker, and shared machinery (obstacle cache, routing backend)
        is crossed through the same locks parallel queries use.  Events
        and stats are collected in registration order either way."""

    def register(self, query: Query,
                 callback: Optional[Callable[[MonitorEvent], None]] = None
                 ) -> Monitor:
        """Register ``query`` for continuous maintenance.

        The query runs once immediately (through the workspace's planner
        and obstacle cache); the returned :class:`Monitor` exposes the
        standing ``result``, the event log, and the registration handle.

        Args:
            query: a ``ConnQuery`` / ``CoknnQuery`` / ``OnnQuery`` /
                ``RangeQuery`` description.
            callback: optional ``callable(event)`` invoked after each
                maintenance step, including no-ops.
        """
        monitor = monitor_for(self._ws, next(self._ids), query, callback)
        self._monitors[monitor.id] = monitor
        return monitor

    def unregister(self, monitor: Monitor | int) -> bool:
        """Stop maintaining a monitor; True when it was registered."""
        mid = monitor.id if isinstance(monitor, Monitor) else monitor
        found = self._monitors.pop(mid, None)
        if found is None:
            return False
        found.active = False
        return True

    def __len__(self) -> int:
        return len(self._monitors)

    def __iter__(self) -> Iterator[Monitor]:
        return iter(self._monitors.values())

    # ------------------------------------------------------------- fan-out
    def notify(self, update: Update) -> List[MonitorEvent]:
        """Fan one applied update out to every monitor (workspace hook).

        Runs *after* the update's write hold released: refreshes execute
        repair queries of their own, which enter as ordinary snapshot
        reads on the freshly published version.  With
        :attr:`repair_workers` > 1 the independent dirty monitors repair
        concurrently; see the attribute docstring.
        """
        self.stats.updates += 1
        if self.repair_workers > 1 and len(self._monitors) > 1:
            events = self._notify_parallel(update)
        else:
            events = []
            for monitor in list(self._monitors.values()):
                if not monitor.active:
                    # Unregistered mid-fan-out (by an earlier monitor's
                    # callback): skip the refresh and its callback entirely.
                    continue
                events.append(monitor.refresh(update))
        for event in events:
            if event.action == NO_OP:
                self.stats.noops += 1
            elif event.action == REPAIR:
                self.stats.repairs += 1
            else:
                self.stats.reruns += 1
            if not event.delta.empty:
                self.stats.deltas += 1
        return events

    def _notify_parallel(self, update: Update) -> List[MonitorEvent]:
        """Refresh every active monitor on a worker pool, one snapshot.

        Monitors are independent standing queries — no repair reads
        another monitor's state — so the only sharing is through the
        workspace's already-locked caches.  The whole fan-out runs under
        one read hold: every repair observes the same post-update version
        even while other writers queue.  Events come back in registration
        order; callbacks fire from worker threads and must not apply
        updates synchronously (an apply would wait on this fan-out's read
        hold, which waits on the callback — queue follow-up updates
        instead).
        """
        from concurrent.futures import ThreadPoolExecutor

        monitors = [m for m in self._monitors.values() if m.active]

        def refresh(monitor: Monitor) -> Optional[MonitorEvent]:
            # Best-effort parity with the serial path's mid-fan-out
            # unregistration guard: a monitor unregistered by another
            # monitor's callback while this fan-out runs is skipped
            # rather than refreshed after its unregistration.
            if not monitor.active:
                return None
            return monitor.refresh(update)

        with self._ws.read_lock():
            with ThreadPoolExecutor(
                    max_workers=min(self.repair_workers, len(monitors)),
                    thread_name_prefix="repro-repair") as pool:
                return [e for e in pool.map(refresh, monitors)
                        if e is not None]
