"""The per-workspace monitor registry and its maintenance counters."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from ..query.queries import Query
from ..service.updates import Update
from .monitor import NO_OP, REPAIR, Monitor, MonitorEvent, monitor_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.workspace import Workspace


@dataclass
class MaintenanceStats:
    """Cumulative maintenance counters across every monitor of a registry."""

    updates: int = 0
    """Updates fanned out to monitors."""

    noops: int = 0
    """Monitor refreshes dismissed by the affected-test."""

    repairs: int = 0
    """Refreshes answered by span-local repair."""

    reruns: int = 0
    """Refreshes that re-ran the full query."""

    deltas: int = 0
    """Refreshes whose answer actually changed."""

    @property
    def noop_rate(self) -> float:
        """Fraction of monitor refreshes dismissed without any index work."""
        total = self.noops + self.repairs + self.reruns
        return self.noops / total if total else 0.0


class MonitorRegistry:
    """Registered continuous queries of one workspace.

    Obtained via :attr:`Workspace.monitors`; :meth:`register` runs the
    query once and keeps its result fresh under every subsequent
    :meth:`Workspace.apply` — the workspace calls :meth:`notify` for each
    applied update, which fans it out to every active monitor.
    """

    def __init__(self, workspace: "Workspace"):
        self._ws = workspace
        self._monitors: Dict[int, Monitor] = {}
        self._ids = itertools.count(1)
        self.stats = MaintenanceStats()

    def register(self, query: Query,
                 callback: Optional[Callable[[MonitorEvent], None]] = None
                 ) -> Monitor:
        """Register ``query`` for continuous maintenance.

        The query runs once immediately (through the workspace's planner
        and obstacle cache); the returned :class:`Monitor` exposes the
        standing ``result``, the event log, and the registration handle.

        Args:
            query: a ``ConnQuery`` / ``CoknnQuery`` / ``OnnQuery`` /
                ``RangeQuery`` description.
            callback: optional ``callable(event)`` invoked after each
                maintenance step, including no-ops.
        """
        monitor = monitor_for(self._ws, next(self._ids), query, callback)
        self._monitors[monitor.id] = monitor
        return monitor

    def unregister(self, monitor: Monitor | int) -> bool:
        """Stop maintaining a monitor; True when it was registered."""
        mid = monitor.id if isinstance(monitor, Monitor) else monitor
        found = self._monitors.pop(mid, None)
        if found is None:
            return False
        found.active = False
        return True

    def __len__(self) -> int:
        return len(self._monitors)

    def __iter__(self) -> Iterator[Monitor]:
        return iter(self._monitors.values())

    # ------------------------------------------------------------- fan-out
    def notify(self, update: Update) -> List[MonitorEvent]:
        """Fan one applied update out to every monitor (workspace hook)."""
        self.stats.updates += 1
        events: List[MonitorEvent] = []
        for monitor in list(self._monitors.values()):
            if not monitor.active:
                # Unregistered mid-fan-out (by an earlier monitor's
                # callback): skip the refresh and its callback entirely.
                continue
            event = monitor.refresh(update)
            if event.action == NO_OP:
                self.stats.noops += 1
            elif event.action == REPAIR:
                self.stats.repairs += 1
            else:
                self.stats.reruns += 1
            if not event.delta.empty:
                self.stats.deltas += 1
            events.append(event)
        return events
