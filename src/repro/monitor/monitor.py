"""Monitor kinds, the affected-test, local repair, and result deltas.

One :class:`Monitor` wraps one registered query and its standing result.
The maintenance contract is *pointwise exactness*: after every update the
standing result equals what a fresh execution of the query on the mutated
dataset would return — the affected-test and span repair only change how
much work (and how much obstacle-tree I/O) it takes to get there.

Soundness of the affected-test.  Every query kind has an *influence
radius* ``R(t)``: the distance of the current k-th answer at parameter
``t`` (the query radius for range queries).  An obstructed path of length
``L`` starting at ``q(t)`` stays inside the Euclidean ball of radius ``L``
around ``q(t)``; therefore an update whose footprint keeps Euclidean
distance greater than ``R(t)`` from ``q(t)`` can neither cut any path that
backs the current answer (all of length at most ``R(t)``) nor open or
carry a path that would beat it.  Site removals are tested even more
tightly: only the spans where the removed payload is currently an owner of
some level can change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from ..core.engine import ConnResult
from ..core.stats import QueryStats
from ..geometry.predicates import EPS
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..query.queries import (
    CoknnQuery,
    OnnQuery,
    Query,
    RangeQuery,
    TrajectoryQuery,
)
from ..query.results import NeighborsResult
from ..service.updates import AddObstacle, RemoveSite, Update

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.workspace import Workspace

NO_OP = "no-op"
"""The affected-test proved the update cannot change this monitor's answer."""

REPAIR = "repair"
"""The engine re-ran on the affected sub-spans only; results were spliced."""

RERUN = "rerun"
"""The whole query re-ran (affected span too large, or a point query)."""


@dataclass(frozen=True)
class ResultDelta:
    """What changed in a monitor's answer after one update.

    ``intervals`` carries segment-monitor changes as
    ``(lo, hi, old_owners, new_owners)`` rows; ``added`` / ``removed`` /
    ``changed`` carry point/range-monitor changes as
    ``(payload, distance)`` pairs (``changed`` lists pairs whose distance
    moved while the payload stayed in the answer).
    """

    intervals: Tuple[Tuple[float, float, Tuple, Tuple], ...] = ()
    added: Tuple[Tuple[Any, float], ...] = ()
    removed: Tuple[Tuple[Any, float], ...] = ()
    changed: Tuple[Tuple[Any, float], ...] = ()

    @property
    def empty(self) -> bool:
        """True when the update left the answer bit-identical."""
        return not (self.intervals or self.added or self.removed
                    or self.changed)


EMPTY_DELTA = ResultDelta()


def influence_radius(query: Query, result) -> float:
    """The influence radius ``R`` of a standing answer (see module docs).

    An obstructed path of length ``L`` from a query location stays inside
    the Euclidean ball of radius ``L`` around it, so nothing at Euclidean
    distance greater than ``R`` from the query footprint can change (or be
    needed to verify) the answer.  This single bound backs both the
    monitors' affected-tests and the shard router's border-expansion
    containment check.  Infinite while any part of the answer lacks a
    known k-th path (anything could improve it).
    """
    if isinstance(query, TrajectoryQuery):
        return max(leg.levels[-1].max_endpoint_value()
                   for leg in result.legs)
    if isinstance(query, CoknnQuery):  # covers ConnQuery
        return result.levels[-1].max_endpoint_value()
    if isinstance(query, RangeQuery):
        return query.radius
    if isinstance(query, OnnQuery):
        rows = result.tuples()
        if len(rows) < query.k:
            return math.inf
        return rows[-1][1]
    raise TypeError(f"no influence radius for query kind {query.kind!r}")


@dataclass(frozen=True)
class MonitorEvent:
    """One maintenance step of one monitor: what was decided and what moved."""

    monitor: "Monitor"
    update: Update
    action: str
    """One of :data:`NO_OP`, :data:`REPAIR`, :data:`RERUN`."""
    spans: Tuple[Tuple[float, float], ...]
    """Repaired parameter spans (empty for no-op and full reruns)."""
    delta: ResultDelta
    workspace_version: int


def diff_intervals(old: List[Tuple[Tuple, Tuple[float, float]]],
                   new: List[Tuple[Tuple, Tuple[float, float]]]
                   ) -> Tuple[Tuple[float, float, Tuple, Tuple], ...]:
    """Changed regions between two owner-interval partitions of ``[0, L]``.

    Both inputs are ``knn_intervals()``-shaped: ``(owners, (lo, hi))`` rows
    partitioning the same parameter range.  Returns merged
    ``(lo, hi, old_owners, new_owners)`` rows covering exactly the
    parameters where the owner tuple differs.
    """
    cuts = sorted({lo for _o, (lo, _hi) in old} | {hi for _o, (_lo, hi) in old}
                  | {lo for _o, (lo, _hi) in new}
                  | {hi for _o, (_lo, hi) in new})
    out: List[Tuple[float, float, Tuple, Tuple]] = []

    def owners_at(rows, t):
        for owners, (lo, hi) in rows:
            if lo - EPS <= t <= hi + EPS:
                return owners
        return None

    for lo, hi in zip(cuts, cuts[1:]):
        if hi - lo <= EPS:
            continue
        mid = 0.5 * (lo + hi)
        a = owners_at(old, mid)
        b = owners_at(new, mid)
        if a == b:
            continue
        if out and out[-1][1] >= lo - EPS and out[-1][2] == a \
                and out[-1][3] == b:
            out[-1] = (out[-1][0], hi, a, b)
        else:
            out.append((lo, hi, a, b))
    return tuple(out)


class Monitor:
    """Base monitor: a registered query plus its standing result.

    Maintenance executions (span repairs and full re-runs) are planned
    with the workspace-shared obstructed-distance backend pinned
    (``backend="shared"``): a monitor's repair spans revisit the same
    neighborhood over and over, which is exactly the workload the
    persistent visibility graph amortizes — the obstacle skeleton and its
    sight-line tests survive across repair spans instead of being rebuilt
    per sub-query.

    Attributes:
        id: registry-assigned identity.
        query: the registered typed query description.
        result: the standing answer, always equal to a fresh execution on
            the current dataset.
        events: the most recent :class:`MonitorEvent` objects, oldest
            first, capped at :attr:`max_events` (long-running monitors see
            unbounded update streams; use ``callback`` to observe every
            event as it happens).
        callback: optional ``callable(event)`` invoked on each update.
    """

    max_events = 256
    """History bound for :attr:`events`; older events are dropped."""

    def __init__(self, workspace: "Workspace", mid: int, query: Query,
                 callback: Optional[Callable[[MonitorEvent], None]] = None):
        self._ws = workspace
        self.id = mid
        self.query = query
        self.callback = callback
        self.events: List[MonitorEvent] = []
        self.active = True
        self.result = workspace.execute(query)

    def _execute_shared(self, query: Query):
        """Run a maintenance (sub-)query on the workspace-shared backend.

        Workspaces explicitly forced onto per-query graphs
        (``PlannerOptions(backend="per-query")``) keep their policy; any
        other policy (including ``auto``) pins maintenance onto the shared
        graph, whose skeleton repair spans revisit again and again.
        """
        from ..routing.backends import PER_QUERY_VG

        override = (None if self._ws.planner.backend in
                    ("per-query", PER_QUERY_VG) else "shared")
        return self._ws.execute(self._ws.plan(query, backend=override))

    # Subclass responsibilities -------------------------------------------
    def _refresh(self, update: Update) -> Tuple[str, Tuple[Tuple[float,
                                                                 float], ...],
                                                ResultDelta]:
        raise NotImplementedError

    # ---------------------------------------------------------------- driver
    def refresh(self, update: Update) -> MonitorEvent:
        """Repair the standing result for one applied update."""
        action, spans, delta = self._refresh(update)
        event = MonitorEvent(self, update, action, spans, delta,
                             self._ws.version)
        self.events.append(event)
        if len(self.events) > self.max_events:
            del self.events[:len(self.events) - self.max_events]
        if self.callback is not None:
            self.callback(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(id={self.id}, "
                f"query={self.query.describe()})")


class SegmentMonitor(Monitor):
    """Monitor of a CONN/COkNN query: interval-local incremental repair."""

    #: Affected fraction of the segment beyond which a full re-run is
    #: cheaper than span-wise repair plus splicing.
    rerun_fraction = 0.6

    @property
    def _qseg(self) -> Segment:
        return self.query.segment

    def _influence(self) -> float:
        """Max k-th-level distance over the segment (inf while any part of
        the segment lacks a known k-th path)."""
        return influence_radius(self.query, self.result)

    def _affected_spans(self, update: Update,
                        footprint: Rect) -> List[Tuple[float, float]]:
        """Conservative superset of the parameter spans the update touches."""
        qseg = self._qseg
        spans: List[Tuple[float, float]] = []
        if isinstance(update, RemoveSite):
            # Removal only matters where the payload currently owns a level.
            for level in self.result.levels:
                for p in level.pieces:
                    if p.owner == update.payload:
                        spans.append((p.lo, p.hi))
            spans.sort()
        elif isinstance(update, AddObstacle):
            # An inserted obstacle only lengthens paths, so it must cut a
            # path backing some *known* level value: test every level's
            # finite pieces and skip unreachable ones outright (their
            # infinite value cannot get worse).
            for level in self.result.levels:
                for p in level.pieces:
                    if p.cp is None:
                        continue
                    a = qseg.point_at(p.lo)
                    b = qseg.point_at(p.hi)
                    d = footprint.mindist_segment(a.x, a.y, b.x, b.y)
                    if d <= p.max_value(qseg) + EPS:
                        spans.append((p.lo, p.hi))
            spans.sort()
        else:
            # Site insert or obstacle removal: both can *shorten* the k-th
            # answer, so the k-th level bounds the reach (an unreachable
            # piece is always fair game — anything could improve it).
            kth = self.result.levels[-1]
            for p in kth.pieces:
                a = qseg.point_at(p.lo)
                b = qseg.point_at(p.hi)
                d = footprint.mindist_segment(a.x, a.y, b.x, b.y)
                if d <= p.max_value(qseg) + EPS:
                    spans.append((p.lo, p.hi))
        return _merge_spans(spans, gap=max(1e-9, 1e-9 * qseg.length))

    def _repair(self, spans: List[Tuple[float, float]]
                ) -> List[Tuple[float, float]]:
        """Re-run the engine on each span and splice the fresh levels in.

        Returns:
            The spans actually recomputed (tiny ones are widened to a
            non-degenerate sub-segment first).
        """
        qseg = self._qseg
        levels = list(self.result.levels)
        stats = QueryStats()
        repaired: List[Tuple[float, float]] = []
        min_span = max(1e-6, 1e-6 * qseg.length)
        # Span boundaries are piece boundaries, and piece boundaries often
        # sit exactly on obstacle-crossing parameters — where the distance
        # function is discontinuous and a sub-query endpoint placed *on*
        # the obstacle could tunnel through it (each leg of a path bending
        # there only grazes the obstacle, so no single visibility test
        # rejects the concatenation).  Padding moves the sub-segment's
        # endpoints strictly into the neighboring pieces' free space;
        # recomputing the extra sliver is exact, so splicing it is free.
        edge_pad = 1e-7 * max(qseg.length, 1.0)
        for lo, hi in spans:
            lo = max(0.0, lo - edge_pad)
            hi = min(qseg.length, hi + edge_pad)
            if hi - lo < min_span:
                pad = 0.5 * (min_span - (hi - lo))
                lo = max(0.0, lo - pad)
                hi = min(qseg.length, hi + pad)
            repaired.append((lo, hi))
            a = qseg.point_at(lo)
            b = qseg.point_at(hi)
            sub = self._execute_shared(
                CoknnQuery(Segment(a.x, a.y, b.x, b.y), self.query.k,
                           config=self.query.config))
            levels = [old.replace_span(lo, hi, fresh)
                      for old, fresh in zip(levels, sub.levels)]
            stats.merge(sub.stats)
        result = ConnResult(qseg, self.query.k, levels, stats)
        result.query = self.query
        self.result = result
        return repaired

    def _refresh(self, update: Update):
        footprint = update.footprint()
        qseg = self._qseg
        quick = footprint.mindist_segment(qseg.ax, qseg.ay, qseg.bx, qseg.by)
        if quick > self._influence() + EPS:
            return NO_OP, (), EMPTY_DELTA
        spans = self._affected_spans(update, footprint)
        if not spans:
            return NO_OP, (), EMPTY_DELTA
        old_intervals = self.result.knn_intervals()
        covered = sum(hi - lo for lo, hi in spans)
        if covered >= self.rerun_fraction * qseg.length:
            self.result = self._execute_shared(self.query)
            action, spans = RERUN, ()
        else:
            action, spans = REPAIR, tuple(self._repair(spans))
        delta = ResultDelta(intervals=diff_intervals(
            old_intervals, self.result.knn_intervals()))
        return action, spans, delta


class PointMonitor(Monitor):
    """Monitor of a snapshot point query (ONN or obstructed range).

    Point queries are atomic — there is no sub-span to repair — so the
    increment is all in the affected-test: a dismissed update costs
    nothing, an accepted one costs a single re-execution served largely
    from the workspace's obstacle cache.
    """

    def _point(self):
        return self.query.point

    def _influence(self) -> float:
        return influence_radius(self.query, self.result)

    def _refresh(self, update: Update):
        old = self.result.tuples()
        if isinstance(update, RemoveSite):
            if not any(payload == update.payload for payload, _d in old):
                return NO_OP, (), EMPTY_DELTA
        else:
            x, y = self._point()
            d = update.footprint().mindist_segment(x, y, x, y)
            if d > self._influence() + EPS:
                return NO_OP, (), EMPTY_DELTA
        self.result = self._execute_shared(self.query)
        return RERUN, (), diff_neighbors(old, self.result.tuples())


def _merge_spans(spans: List[Tuple[float, float]],
                 gap: float) -> List[Tuple[float, float]]:
    """Coalesce sorted, possibly overlapping spans separated by <= ``gap``."""
    out: List[Tuple[float, float]] = []
    for lo, hi in spans:
        if out and lo <= out[-1][1] + gap:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def diff_neighbors(old: List[Tuple[Any, float]],
                   new: List[Tuple[Any, float]]) -> ResultDelta:
    """Delta between two ``(payload, distance)`` answer lists."""
    old_by = {payload: dist for payload, dist in old}
    new_by = {payload: dist for payload, dist in new}
    added = tuple((p, d) for p, d in new if p not in old_by)
    removed = tuple((p, d) for p, d in old if p not in new_by)
    changed = tuple((p, d) for p, d in new
                    if p in old_by and abs(old_by[p] - d) > 1e-9)
    return ResultDelta(added=added, removed=removed, changed=changed)


def monitor_for(workspace: "Workspace", mid: int, query: Query,
                callback: Optional[Callable[[MonitorEvent], None]]
                ) -> Monitor:
    """Instantiate the right monitor kind for a typed query description."""
    if isinstance(query, CoknnQuery):  # covers ConnQuery
        return SegmentMonitor(workspace, mid, query, callback)
    if isinstance(query, (OnnQuery, RangeQuery)):
        return PointMonitor(workspace, mid, query, callback)
    raise ValueError(
        f"no monitor for query kind {query.kind!r}: register a ConnQuery, "
        "CoknnQuery, OnnQuery or RangeQuery")


# NeighborsResult is what PointMonitor stores in ``result``; re-exported so
# callers annotating monitor results need not import the query package too.
__all__ = [
    "EMPTY_DELTA",
    "Monitor",
    "MonitorEvent",
    "NeighborsResult",
    "NO_OP",
    "PointMonitor",
    "REPAIR",
    "RERUN",
    "ResultDelta",
    "SegmentMonitor",
    "diff_intervals",
    "diff_neighbors",
    "influence_radius",
    "monitor_for",
]
