"""Aggregation and table formatting for the paper's performance metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from ..core.stats import QueryStats


@dataclass
class AggregateStats:
    """Mean per-query metrics over a batch of queries (one plot point)."""

    queries: int = 0
    npe: float = 0.0
    noe: float = 0.0
    svg_size: float = 0.0
    logical_reads: float = 0.0
    page_faults: float = 0.0
    io_time_ms: float = 0.0
    cpu_time_ms: float = 0.0
    total_time_ms: float = 0.0
    split_solves: float = 0.0
    lemma1_prunes: float = 0.0
    lemma6_prunes: float = 0.0
    lemma7_cutoffs: float = 0.0
    nodes_expanded: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    cache_served: float = 0.0
    obstacle_reads: float = 0.0

    @classmethod
    def of(cls, stats: Iterable[QueryStats]) -> "AggregateStats":
        stats = list(stats)
        agg = cls(queries=len(stats))
        if not stats:
            return agg
        n = float(len(stats))
        agg.npe = sum(s.npe for s in stats) / n
        agg.noe = sum(s.noe for s in stats) / n
        agg.svg_size = sum(s.svg_size for s in stats) / n
        agg.logical_reads = sum(s.io.logical_reads for s in stats) / n
        agg.page_faults = sum(s.io.page_faults for s in stats) / n
        agg.io_time_ms = sum(s.io_time_ms for s in stats) / n
        agg.cpu_time_ms = sum(s.cpu_time_ms for s in stats) / n
        agg.total_time_ms = sum(s.total_time_ms for s in stats) / n
        agg.split_solves = sum(s.split_solves for s in stats) / n
        agg.lemma1_prunes = sum(s.lemma1_prunes for s in stats) / n
        agg.lemma6_prunes = sum(s.lemma6_prunes for s in stats) / n
        agg.lemma7_cutoffs = sum(s.lemma7_cutoffs for s in stats) / n
        agg.nodes_expanded = sum(s.nodes_expanded for s in stats) / n
        agg.cache_hits = sum(s.cache_hits for s in stats) / n
        agg.cache_misses = sum(s.cache_misses for s in stats) / n
        agg.cache_served = sum(s.cache_served for s in stats) / n
        agg.obstacle_reads = sum(s.obstacle_reads for s in stats) / n
        return agg


@dataclass
class Row:
    """One table row: a parameter value plus its aggregate metrics."""

    label: str
    agg: AggregateStats
    extra: dict = field(default_factory=dict)


def format_table(title: str, param_name: str, rows: Sequence[Row],
                 columns: Sequence[str] = ("io_time_ms", "cpu_time_ms",
                                           "total_time_ms", "npe", "noe",
                                           "svg_size", "page_faults")) -> str:
    """Render rows as a fixed-width text table (the paper's figures as text)."""
    headers = [param_name, *columns, *sorted({k for r in rows for k in r.extra})]
    widths = [max(len(h), 10) for h in headers]
    lines = [title, "-" * (sum(widths) + 2 * len(widths))]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        cells: List[str] = [row.label]
        for col in columns:
            v = getattr(row.agg, col)
            cells.append(f"{v:.1f}" if isinstance(v, float) else str(v))
        for key in headers[1 + len(columns):]:
            v = row.extra.get(key, "")
            cells.append(f"{v:.1f}" if isinstance(v, float) else str(v))
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
