"""Experiment drivers regenerating every figure of the paper's evaluation.

Figures 9-13 of the paper (Section 5.2) are each a sweep of one parameter of
Table 2 with the others at their defaults:

* Figure 9  — query length ``ql``  (CL, k=5): time/NPE/NOE + |SVG| vs FULL
* Figure 10 — ``k``                (CL, ql=4.5%)
* Figure 11 — ``|P|/|O|``          (UL and ZL, k=5, ql=4.5%)
* Figure 12 — LRU buffer size      (CL and UL, k=5, ql=4.5%)
* Figure 13 — 1T vs 2T             (across ql, k, |P|/|O|)

Run from the command line::

    python -m repro.bench.experiments --figure 9 --scale small
    python -m repro.bench.experiments --all --scale tiny

``--scale`` trades fidelity for runtime: ``paper`` uses the original
cardinalities (|CA| = 60,344, |LA| = 131,461 — hours in pure Python),
``default`` is 10x smaller, ``small``/``tiny`` are for CI and the pytest
benchmarks.  Curve shapes, not absolute times, are the reproduction target
(EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import random
from typing import Dict, List, Sequence, Tuple

from ..core import DEFAULT_CONFIG, ConnConfig, coknn, coknn_single_tree
from ..core.conn_1t import build_unified_tree
from ..core.stats import QueryStats
from ..datasets import (
    CA_SIZE,
    LA_SIZE,
    california_like_points,
    la_street_obstacles,
    reject_inside_obstacles,
    uniform_points,
    zipf_points,
)
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..index.buffer import LRUBuffer
from ..index.rstar import RStarTree
from ..obstacles.obstacle import Obstacle
from .metrics import AggregateStats, Row, format_table
from .workloads import query_workload

PARAM_GRID: Dict[str, Sequence[float]] = {
    # The paper's Table 2; defaults in PARAM_DEFAULTS.
    "ql": (1.5, 3.0, 4.5, 6.0, 7.5),          # % of data space side
    "k": (1, 3, 5, 7, 9),
    "ratio": (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0),   # |P| / |O|
    "buffer": (0, 1, 2, 4, 8, 16, 32),        # % of tree size
}

PARAM_DEFAULTS: Dict[str, float] = {"ql": 4.5, "k": 5, "ratio": 0.5, "buffer": 0}

SCALES: Dict[str, float] = {
    "paper": 1.0,      # original cardinalities (very slow in pure Python)
    "default": 0.1,
    "small": 0.02,
    "tiny": 0.005,
}

QUERIES_PER_SCALE: Dict[str, int] = {
    "paper": 100,      # as in the paper
    "default": 10,
    "small": 6,
    "tiny": 3,
}

PAGE_SIZE = 4096


# ----------------------------------------------------------------- datasets
_dataset_cache: Dict[tuple, tuple] = {}


def make_dataset(combo: str, scale: str, ratio: float | None = None,
                 seed: int = 0) -> Tuple[List[Tuple[int, Tuple[float, float]]],
                                         List[Obstacle]]:
    """Points and obstacles for a dataset combination of Section 5.1.

    Args:
        combo: ``CL`` (CA-like, LA-like), ``UL`` (uniform, LA-like) or ``ZL``
            (zipf, LA-like).
        scale: key of :data:`SCALES`.
        ratio: |P|/|O| for UL/ZL (defaults to the paper's bold value).
    """
    if ratio is None:
        ratio = PARAM_DEFAULTS["ratio"]
    key = (combo, scale, round(ratio, 4), seed)
    if key in _dataset_cache:
        return _dataset_cache[key]
    factor = SCALES[scale]
    rng = random.Random(10_000 + seed)
    n_obs = max(20, round(LA_SIZE * factor))
    obstacles = la_street_obstacles(n_obs, rng)
    if combo == "CL":
        n_pts = max(10, round(CA_SIZE * factor))
        raw = california_like_points(n_pts, rng)
    elif combo == "UL":
        n_pts = max(10, round(n_obs * ratio))
        raw = uniform_points(n_pts, rng)
    elif combo == "ZL":
        n_pts = max(10, round(n_obs * ratio))
        raw = zipf_points(n_pts, rng)
    else:
        raise ValueError(f"unknown dataset combination {combo!r}")
    pts = reject_inside_obstacles(raw, obstacles, rng)
    points = list(enumerate(pts))
    _dataset_cache[key] = (points, obstacles)
    return points, obstacles


def build_trees(points, obstacles,
                page_size: int = PAGE_SIZE) -> Tuple[RStarTree, RStarTree]:
    """Bulk-load the 2T layout: one R*-tree for P, one for O."""
    data_tree = RStarTree.bulk_load(
        ((pid, Rect.point(x, y)) for pid, (x, y) in points), page_size=page_size)
    obstacle_tree = RStarTree.bulk_load(
        ((o, o.mbr()) for o in obstacles), page_size=page_size)
    return data_tree, obstacle_tree


# ------------------------------------------------------------------- runner
def run_batch(points, obstacles, queries: Sequence[Segment], k: int,
              mode: str = "2T", buffer_pct: float = 0.0,
              warmup: int = 0,
              config: ConnConfig = DEFAULT_CONFIG) -> AggregateStats:
    """Answer a query batch and average the paper's metrics.

    Args:
        mode: ``2T`` (separate trees) or ``1T`` (unified tree).
        buffer_pct: LRU buffer capacity as % of each tree's page count.
        warmup: leading queries excluded from the reported averages (used by
            the buffer experiment to fill the pool first).
    """
    if mode == "2T":
        data_tree, obstacle_tree = build_trees(points, obstacles)
        trees = [data_tree, obstacle_tree]
    elif mode == "1T":
        unified = build_unified_tree(points, obstacles, page_size=PAGE_SIZE)
        trees = [unified]
    else:
        raise ValueError(f"unknown mode {mode!r}")
    if buffer_pct > 0:
        for tree in trees:
            capacity = max(1, round(tree.num_pages * buffer_pct / 100.0))
            tree.attach_buffer(LRUBuffer(capacity))
    collected: List[QueryStats] = []
    for i, q in enumerate(queries):
        if mode == "2T":
            result = coknn(data_tree, obstacle_tree, q, k=k, config=config)
        else:
            result = coknn_single_tree(unified, q, k=k, config=config)
        if i >= warmup:
            collected.append(result.stats)
    return AggregateStats.of(collected)


def _queries_for(obstacles, count: int, ql: float, seed: int = 1) -> List[Segment]:
    return query_workload(random.Random(20_000 + seed), count, ql, obstacles)


# ------------------------------------------------------------------ figures
def figure9(scale: str = "small", queries: int | None = None,
            config: ConnConfig = DEFAULT_CONFIG) -> List[Row]:
    """Figure 9: COkNN performance and |SVG| vs query length (CL, k=5)."""
    queries = queries if queries is not None else QUERIES_PER_SCALE[scale]
    points, obstacles = make_dataset("CL", scale)
    full = 4 * len(obstacles)
    rows: List[Row] = []
    for ql in PARAM_GRID["ql"]:
        batch = _queries_for(obstacles, queries, ql)
        agg = run_batch(points, obstacles, batch, k=int(PARAM_DEFAULTS["k"]),
                        config=config)
        rows.append(Row(label=f"{ql:g}%", agg=agg, extra={"full_svg": full}))
    return rows


def figure10(scale: str = "small", queries: int | None = None,
             config: ConnConfig = DEFAULT_CONFIG) -> List[Row]:
    """Figure 10: COkNN performance and |SVG| vs k (CL, ql = 4.5 %)."""
    queries = queries if queries is not None else QUERIES_PER_SCALE[scale]
    points, obstacles = make_dataset("CL", scale)
    batch = _queries_for(obstacles, queries, PARAM_DEFAULTS["ql"])
    full = 4 * len(obstacles)
    rows: List[Row] = []
    for k in PARAM_GRID["k"]:
        agg = run_batch(points, obstacles, batch, k=int(k), config=config)
        rows.append(Row(label=str(int(k)), agg=agg, extra={"full_svg": full}))
    return rows


def figure11(scale: str = "small", queries: int | None = None,
             combos: Sequence[str] = ("UL", "ZL"),
             config: ConnConfig = DEFAULT_CONFIG) -> Dict[str, List[Row]]:
    """Figure 11: COkNN performance vs |P|/|O| (UL and ZL, k=5, ql=4.5%)."""
    queries = queries if queries is not None else QUERIES_PER_SCALE[scale]
    out: Dict[str, List[Row]] = {}
    for combo in combos:
        rows: List[Row] = []
        for ratio in PARAM_GRID["ratio"]:
            points, obstacles = make_dataset(combo, scale, ratio=ratio)
            batch = _queries_for(obstacles, queries, PARAM_DEFAULTS["ql"])
            agg = run_batch(points, obstacles, batch,
                            k=int(PARAM_DEFAULTS["k"]), config=config)
            rows.append(Row(label=f"{ratio:g}", agg=agg,
                            extra={"full_svg": 4 * len(obstacles)}))
        out[combo] = rows
    return out


def figure12(scale: str = "small", queries: int | None = None,
             combos: Sequence[str] = ("CL", "UL"),
             config: ConnConfig = DEFAULT_CONFIG) -> Dict[str, List[Row]]:
    """Figure 12: COkNN performance vs LRU buffer size (CL and UL).

    As in the paper, the first half of the workload warms the buffer and only
    the second half is reported.
    """
    queries = queries if queries is not None else QUERIES_PER_SCALE[scale]
    out: Dict[str, List[Row]] = {}
    for combo in combos:
        points, obstacles = make_dataset(combo, scale)
        batch = _queries_for(obstacles, queries * 2, PARAM_DEFAULTS["ql"])
        rows: List[Row] = []
        for bs in PARAM_GRID["buffer"]:
            agg = run_batch(points, obstacles, batch,
                            k=int(PARAM_DEFAULTS["k"]),
                            buffer_pct=float(bs), warmup=queries,
                            config=config)
            rows.append(Row(label=f"{bs:g}%", agg=agg))
        out[combo] = rows
    return out


def figure13(scale: str = "small", queries: int | None = None,
             config: ConnConfig = DEFAULT_CONFIG) -> Dict[str, List[Row]]:
    """Figure 13: 1T vs 2T total query time across ql, k and |P|/|O|."""
    queries = queries if queries is not None else QUERIES_PER_SCALE[scale]
    out: Dict[str, List[Row]] = {}
    for combo in ("CL", "UL"):
        points, obstacles = make_dataset(combo, scale)
        rows: List[Row] = []
        for ql in PARAM_GRID["ql"]:
            batch = _queries_for(obstacles, queries, ql)
            agg2 = run_batch(points, obstacles, batch,
                             k=int(PARAM_DEFAULTS["k"]), mode="2T",
                             config=config)
            agg1 = run_batch(points, obstacles, batch,
                             k=int(PARAM_DEFAULTS["k"]), mode="1T",
                             config=config)
            rows.append(Row(label=f"ql={ql:g}%", agg=agg2,
                            extra={"time_1T_ms": agg1.total_time_ms,
                                   "time_2T_ms": agg2.total_time_ms}))
        for k in PARAM_GRID["k"]:
            batch = _queries_for(obstacles, queries, PARAM_DEFAULTS["ql"])
            agg2 = run_batch(points, obstacles, batch, k=int(k), mode="2T",
                             config=config)
            agg1 = run_batch(points, obstacles, batch, k=int(k), mode="1T",
                             config=config)
            rows.append(Row(label=f"k={int(k)}", agg=agg2,
                            extra={"time_1T_ms": agg1.total_time_ms,
                                   "time_2T_ms": agg2.total_time_ms}))
        out[combo] = rows
    for combo in ("UL", "ZL"):
        rows = []
        for ratio in PARAM_GRID["ratio"]:
            points, obstacles = make_dataset(combo, scale, ratio=ratio)
            batch = _queries_for(obstacles, queries, PARAM_DEFAULTS["ql"])
            agg2 = run_batch(points, obstacles, batch,
                             k=int(PARAM_DEFAULTS["k"]), mode="2T",
                             config=config)
            agg1 = run_batch(points, obstacles, batch,
                             k=int(PARAM_DEFAULTS["k"]), mode="1T",
                             config=config)
            rows.append(Row(label=f"|P|/|O|={ratio:g}", agg=agg2,
                            extra={"time_1T_ms": agg1.total_time_ms,
                                   "time_2T_ms": agg2.total_time_ms}))
        out[f"{combo}-ratio"] = rows
    return out


def ablation(scale: str = "small", queries: int | None = None) -> List[Row]:
    """Pruning-rule ablation on CL defaults (this library's addition)."""
    queries = queries if queries is not None else QUERIES_PER_SCALE[scale]
    points, obstacles = make_dataset("CL", scale)
    batch = _queries_for(obstacles, queries, PARAM_DEFAULTS["ql"])
    variants = [
        ("default", DEFAULT_CONFIG),
        ("paper (+lemma6)", ConnConfig.paper_faithful()),
        ("no lemma1", ConnConfig(use_lemma1=False)),
        ("no lemma5", ConnConfig(use_lemma5=False)),
        ("no lemma7", ConnConfig(use_lemma7=False)),
        ("no rlmax", ConnConfig(use_rlmax=False)),
        ("no coverage check", ConnConfig(validate_coverage=False)),
    ]
    rows: List[Row] = []
    for label, cfg in variants:
        agg = run_batch(points, obstacles, batch, k=1, config=cfg)
        rows.append(Row(label=label, agg=agg))
    return rows


# ---------------------------------------------------------------------- CLI
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation figures as tables.")
    parser.add_argument("--figure", type=int, choices=(9, 10, 11, 12, 13),
                        action="append",
                        help="figure number (repeatable)")
    parser.add_argument("--ablation", action="store_true",
                        help="run the pruning ablation study")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="small")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per configuration (default per scale)")
    args = parser.parse_args(argv)

    figures = set(args.figure or [])
    if args.all:
        figures = {9, 10, 11, 12, 13}
    if not figures and not args.ablation:
        figures = {9}

    if 9 in figures:
        rows = figure9(args.scale, args.queries)
        print(format_table("Figure 9: COkNN vs query length (CL, k=5)",
                           "ql", rows))
        print()
    if 10 in figures:
        rows = figure10(args.scale, args.queries)
        print(format_table("Figure 10: COkNN vs k (CL, ql=4.5%)", "k", rows))
        print()
    if 11 in figures:
        for combo, rows in figure11(args.scale, args.queries).items():
            print(format_table(
                f"Figure 11: COkNN vs |P|/|O| ({combo}, k=5, ql=4.5%)",
                "|P|/|O|", rows))
            print()
    if 12 in figures:
        for combo, rows in figure12(args.scale, args.queries).items():
            print(format_table(
                f"Figure 12: COkNN vs buffer size ({combo}, k=5, ql=4.5%)",
                "buffer", rows))
            print()
    if 13 in figures:
        for combo, rows in figure13(args.scale, args.queries).items():
            print(format_table(f"Figure 13: 1T vs 2T ({combo})", "config",
                               rows,
                               columns=("total_time_ms", "page_faults",
                                        "cpu_time_ms")))
            print()
    if args.ablation or args.all:
        rows = ablation(args.scale, args.queries)
        print(format_table("Ablation: pruning rules (CL, k=1, ql=4.5%)",
                           "variant", rows,
                           columns=("total_time_ms", "npe", "noe",
                                    "split_solves", "nodes_expanded")))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
