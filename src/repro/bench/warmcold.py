"""Warm-vs-cold service benchmarks: the cross-query obstacle cache at work.

Not a paper figure — the paper evaluates isolated queries.  These drivers
measure what the service layer adds on top: a batch of correlated queries
(see :func:`~repro.bench.workloads.clustered_query_workload`) answered

* **cold** — a fresh :class:`~repro.service.Workspace` per query, i.e. the
  classic free-function path, paying full obstacle retrieval every time;
* **warm** — one shared workspace, optionally with ``overfetch`` so a miss
  widens the coverage capsule beyond the round's need;
* **warm+prefetch** — one shared workspace whose cache is pre-warmed for
  the workload's bounding region, after which queries inside the region
  never read the obstacle tree.

All three variants return identical query results (asserted by the test
suite); only the I/O schedule differs.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from ..core.config import DEFAULT_CONFIG, ConnConfig
from ..core.stats import QueryStats
from ..geometry.rectangle import Rect
from ..geometry.segment import Segment
from ..service.workspace import Workspace
from .metrics import AggregateStats, Row


def workload_bbox(queries: Sequence[Segment]) -> Rect:
    """Bounding rectangle of a query batch (the region worth prefetching)."""
    boxes = [q.bbox() for q in queries]
    return Rect(min(b[0] for b in boxes), min(b[1] for b in boxes),
                max(b[2] for b in boxes), max(b[3] for b in boxes))


def run_batch_cold(points, obstacles, queries: Sequence[Segment], k: int = 1,
                   config: ConnConfig = DEFAULT_CONFIG
                   ) -> Tuple[AggregateStats, float]:
    """Fresh workspace per query: every query pays full obstacle retrieval.

    Returns:
        ``(aggregate, wall_seconds)``.
    """
    base = Workspace.from_points(points, obstacles, config=config)
    collected: List[QueryStats] = []
    started = time.perf_counter()
    for q in queries:
        ws = Workspace.from_trees(base.data_tree, base.obstacle_tree,
                                  config=config)
        collected.append(ws.coknn(q, k=k).stats)
    wall = time.perf_counter() - started
    return AggregateStats.of(collected), wall


def run_batch_warm(points, obstacles, queries: Sequence[Segment], k: int = 1,
                   config: ConnConfig = DEFAULT_CONFIG,
                   overfetch: float = 1.0, prefetch_margin: float | None = None
                   ) -> Tuple[AggregateStats, float, Workspace]:
    """One shared workspace for the whole batch.

    Args:
        overfetch: cache scan-depth multiplier (1.0 = cold I/O pattern).
        prefetch_margin: when not ``None``, prefetch the workload's bounding
            box grown by this margin before the first query.

    Returns:
        ``(aggregate, wall_seconds, workspace)`` — the workspace is returned
        so callers can report ``workspace.cache_stats``.
    """
    ws = Workspace.from_points(points, obstacles, config=config,
                               overfetch=overfetch)
    collected: List[QueryStats] = []
    started = time.perf_counter()
    if prefetch_margin is not None:
        ws.prefetch(workload_bbox(queries), margin=prefetch_margin)
    for q in queries:
        collected.append(ws.coknn(q, k=k).stats)
    wall = time.perf_counter() - started
    return AggregateStats.of(collected), wall, ws


def warm_cold_rows(points, obstacles, queries: Sequence[Segment], k: int = 1,
                   config: ConnConfig = DEFAULT_CONFIG,
                   overfetch: float = 2.0,
                   prefetch_margin: float | None = None) -> List[Row]:
    """The four variants as table rows (cold / warm / warm xN / +prefetch).

    ``prefetch_margin`` defaults to the longest query's length, a cheap
    upper-bound proxy for the retrieval radius of well-separated data.
    """
    if prefetch_margin is None:
        prefetch_margin = max(q.length for q in queries)
    rows: List[Row] = []
    agg, wall = run_batch_cold(points, obstacles, queries, k, config)
    rows.append(Row(label="cold", agg=agg, extra={"wall_s": wall}))
    agg, wall, ws = run_batch_warm(points, obstacles, queries, k, config)
    rows.append(Row(label="warm", agg=agg,
                    extra={"wall_s": wall,
                           "hit_rate": ws.cache_stats.hit_rate}))
    agg, wall, ws = run_batch_warm(points, obstacles, queries, k, config,
                                   overfetch=overfetch)
    rows.append(Row(label=f"warm x{overfetch:g}", agg=agg,
                    extra={"wall_s": wall,
                           "hit_rate": ws.cache_stats.hit_rate}))
    agg, wall, ws = run_batch_warm(points, obstacles, queries, k, config,
                                   overfetch=overfetch,
                                   prefetch_margin=prefetch_margin)
    rows.append(Row(label="warm+prefetch", agg=agg,
                    extra={"wall_s": wall,
                           "hit_rate": ws.cache_stats.hit_rate}))
    return rows
