"""Query workload generation (Section 5.1).

"The starting point and the orientation (in [0, 2pi)) of the query line
segment are randomly generated, while its length is controlled by the
parameter ql" — expressed as a percentage of the data space side.  Queries
are rejected (and redrawn) when they would start inside or cut through an
obstacle's interior, since a query position inside an obstacle has no
defined obstructed neighbor.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from ..geometry.predicates import segment_crosses_rect_interior
from ..geometry.segment import Segment
from ..datasets.synthetic import SPACE, Bounds, ObstacleGrid
from ..obstacles.obstacle import Obstacle


def _segment_clear(seg: Segment, grid: ObstacleGrid | None) -> bool:
    if grid is None:
        return True
    if grid.inside_any(seg.ax, seg.ay) or grid.inside_any(seg.bx, seg.by):
        return False
    xlo, ylo, xhi, yhi = (min(seg.ax, seg.bx), min(seg.ay, seg.by),
                          max(seg.ax, seg.bx), max(seg.ay, seg.by))
    for o in grid.candidates_near(xlo, ylo, xhi, yhi):
        r = o.rect
        if segment_crosses_rect_interior(seg.ax, seg.ay, seg.bx, seg.by,
                                         r.xlo, r.ylo, r.xhi, r.yhi):
            return False
    return True


def random_query_segment(rng: random.Random, ql_percent: float,
                         grid: ObstacleGrid | None = None,
                         bounds: Bounds = SPACE,
                         max_tries: int = 500) -> Segment:
    """One query segment of length ``ql_percent`` % of the space side.

    Falls back to the last candidate when no obstacle-free placement is
    found within ``max_tries`` (dense obstacle fields).
    """
    xlo, ylo, xhi, yhi = bounds
    side = min(xhi - xlo, yhi - ylo)
    length = side * ql_percent / 100.0
    seg = None
    for _ in range(max_tries):
        theta = rng.uniform(0.0, 2.0 * math.pi)
        sx = rng.uniform(xlo, xhi)
        sy = rng.uniform(ylo, yhi)
        ex = sx + length * math.cos(theta)
        ey = sy + length * math.sin(theta)
        if not (xlo <= ex <= xhi and ylo <= ey <= yhi):
            continue
        seg = Segment(sx, sy, ex, ey)
        if _segment_clear(seg, grid):
            return seg
    if seg is None:  # pragma: no cover - only for absurd ql values
        raise ValueError(f"cannot place a query of length {length} in {bounds}")
    return seg


def query_workload(rng: random.Random, count: int, ql_percent: float,
                   obstacles: Sequence[Obstacle] = (),
                   bounds: Bounds = SPACE) -> List[Segment]:
    """A reproducible batch of query segments avoiding obstacle interiors."""
    grid = ObstacleGrid(obstacles, bounds) if obstacles else None
    return [random_query_segment(rng, ql_percent, grid, bounds)
            for _ in range(count)]


def clustered_query_workload(rng: random.Random, count: int,
                             ql_percent: float,
                             obstacles: Sequence[Obstacle] = (),
                             bounds: Bounds = SPACE,
                             spread_percent: float = 2.0,
                             max_tries: int = 200) -> List[Segment]:
    """Correlated queries: jittered copies of one anchor segment.

    Models the service layer's target workload — a moving or repeatedly
    re-evaluated query (continuous monitoring, trajectory re-planning) whose
    successive placements land near each other, so their obstacle footprints
    overlap heavily.  Each query is the anchor translated by up to
    ``spread_percent`` % of the space side and slightly rotated; placements
    cutting through an obstacle interior are redrawn.
    """
    grid = ObstacleGrid(obstacles, bounds) if obstacles else None
    anchor = random_query_segment(rng, ql_percent, grid, bounds)
    xlo, ylo, xhi, yhi = bounds
    side = min(xhi - xlo, yhi - ylo)
    spread = side * spread_percent / 100.0
    length = anchor.length
    base_theta = math.atan2(anchor.by - anchor.ay, anchor.bx - anchor.ax)
    out: List[Segment] = []
    while len(out) < count:
        seg = anchor
        for _ in range(max_tries):
            sx = anchor.ax + rng.uniform(-spread, spread)
            sy = anchor.ay + rng.uniform(-spread, spread)
            theta = base_theta + rng.uniform(-0.2, 0.2)
            ex = sx + length * math.cos(theta)
            ey = sy + length * math.sin(theta)
            if not (xlo <= sx <= xhi and ylo <= sy <= yhi and
                    xlo <= ex <= xhi and ylo <= ey <= yhi):
                continue
            cand = Segment(sx, sy, ex, ey)
            if _segment_clear(cand, grid):
                seg = cand
                break
        out.append(seg)
    return out
