"""Benchmark harness: metrics, workloads, and per-figure experiment drivers."""

from .metrics import AggregateStats, Row, format_table
from .warmcold import (
    run_batch_cold,
    run_batch_warm,
    warm_cold_rows,
    workload_bbox,
)
from .workloads import (
    clustered_query_workload,
    query_workload,
    random_query_segment,
)

__all__ = [
    "AggregateStats",
    "Row",
    "clustered_query_workload",
    "format_table",
    "query_workload",
    "random_query_segment",
    "run_batch_cold",
    "run_batch_warm",
    "warm_cold_rows",
    "workload_bbox",
]
