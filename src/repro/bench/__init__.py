"""Benchmark harness: metrics, workloads, and per-figure experiment drivers."""

from .metrics import AggregateStats, Row, format_table
from .workloads import query_workload, random_query_segment

__all__ = [
    "AggregateStats",
    "Row",
    "format_table",
    "query_workload",
    "random_query_segment",
]
