"""Global visibility graph baseline (Section 2.4, the "FULL" yardstick).

The classic main-memory approach: materialize the visibility graph over
*every* obstacle vertex up front — ``O(n^2)`` space — and answer queries on
it.  The paper plots its size (``FULL = 4 |O|`` vertices for rectangular
obstacles) against the local graph's |SVG| in Figure 9(b) to show how little
of the graph CONN actually touches.

Building the full adjacency is quadratic and only sensible for small
obstacle sets; :func:`full_vertex_count` (all Figure 9(b) needs) is O(|O|).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence, Tuple

import numpy as np

from ..geometry.segment import Segment
from ..obstacles.obstacle import Obstacle, ObstacleSet
from ..obstacles.obstructed import _dijkstra, build_full_graph
from .naive import brute_distance_function


def full_vertex_count(obstacles: Iterable[Obstacle]) -> int:
    """Vertices of the global visibility graph (4/rect + 2/segment)."""
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    return obs.vertex_count()


class GlobalVisibilityGraph:
    """Fully materialized visibility graph over an obstacle set.

    Intended for small inputs (tests, the FULL baseline bench); raises when
    asked to materialize an unreasonably large graph.
    """

    def __init__(self, obstacles: Iterable[Obstacle], max_vertices: int = 4000):
        self.obstacles = (obstacles if isinstance(obstacles, ObstacleSet)
                          else ObstacleSet(obstacles))
        n = self.obstacles.vertex_count()
        if n > max_vertices:
            raise ValueError(
                f"global visibility graph with {n} vertices exceeds the "
                f"max_vertices={max_vertices} guard; use the local graph instead")
        self.adjacency = build_full_graph([], self.obstacles)

    @property
    def num_vertices(self) -> int:
        return self.obstacles.vertex_count()

    def num_edges(self) -> int:
        return sum(len(d) for d in self.adjacency) // 2

    def distance(self, a: Tuple[float, float], b: Tuple[float, float]) -> float:
        """Obstructed distance via a throwaway extension of the graph."""
        adj = build_full_graph([a, b], self.obstacles)
        dist, _ = _dijkstra(adj, 0)
        return dist[1]

    def conn(self, points: Sequence[Tuple[Any, Tuple[float, float]]],
             qseg: Segment, ts: np.ndarray
             ) -> Tuple[List[Any], np.ndarray]:
        """Sampled CONN over all points using the global graph's obstacles."""
        best = np.full(len(ts), math.inf)
        owners: List[Any] = [None] * len(ts)
        for payload, xy in points:
            vals = brute_distance_function(xy, self.obstacles, qseg, ts)
            improved = vals < best - 1e-9
            best = np.where(improved, vals, best)
            for i in np.nonzero(improved)[0]:
                owners[i] = payload
        return owners, best
