"""Global visibility graph baseline (Section 2.4, the "FULL" yardstick).

The classic main-memory approach: materialize the visibility graph over
*every* obstacle vertex up front — ``O(n^2)`` space — and answer queries on
it.  The paper plots its size (``FULL = 4 |O|`` vertices for rectangular
obstacles) against the local graph's |SVG| in Figure 9(b) to show how little
of the graph CONN actually touches.

Building the full adjacency is quadratic and only sensible for small
obstacle sets; :func:`full_vertex_count` (all Figure 9(b) needs) is O(|O|).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence, Tuple

import numpy as np

from ..geometry.segment import Segment
from ..obstacles.obstacle import Obstacle, ObstacleSet
from ..obstacles.obstructed import build_full_graph
from ..obstacles.visgraph import LocalVisibilityGraph
from .naive import brute_distance_function


def full_vertex_count(obstacles: Iterable[Obstacle]) -> int:
    """Vertices of the global visibility graph (4/rect + 2/segment)."""
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    return obs.vertex_count()


class GlobalVisibilityGraph:
    """Fully materialized visibility graph over an obstacle set.

    Intended for small inputs (tests, the FULL baseline bench); raises when
    asked to materialize an unreasonably large graph.

    Since the routing refactor this baseline runs on the same substrate as
    the engine: one persistent unanchored
    :class:`~repro.obstacles.visgraph.LocalVisibilityGraph` holds every
    obstacle vertex, :meth:`distance` attaches the pair as transient
    endpoints the way backend sessions do, and the traversal is the
    library-wide resumable Dijkstra — instead of the historical private
    copy this module used to carry.
    """

    def __init__(self, obstacles: Iterable[Obstacle], max_vertices: int = 4000):
        self.obstacles = (obstacles if isinstance(obstacles, ObstacleSet)
                          else ObstacleSet(obstacles))
        n = self.obstacles.vertex_count()
        if n > max_vertices:
            raise ValueError(
                f"global visibility graph with {n} vertices exceeds the "
                f"max_vertices={max_vertices} guard; use the local graph instead")
        self._graph = LocalVisibilityGraph(obstacles=list(self.obstacles))
        self._adjacency: List[dict] | None = None

    @property
    def adjacency(self) -> List[dict]:
        """The reference full adjacency (independent sight-line predicates).

        Materialized on first access and cached (the obstacle set is
        immutable), so repeated reads stay as cheap as the historical
        eager attribute.
        """
        if self._adjacency is None:
            self._adjacency = build_full_graph([], self.obstacles)
        return self._adjacency

    @property
    def num_vertices(self) -> int:
        return self.obstacles.vertex_count()

    def num_edges(self) -> int:
        return self._graph.num_edges(materialize=True)

    def distance(self, a: Tuple[float, float], b: Tuple[float, float]) -> float:
        """Obstructed distance via transient endpoints on the shared graph."""
        g = self._graph
        g.bind(Segment(a[0], a[1], b[0], b[1]))
        try:
            return g.shortest_distances(g.S, (g.E,))[g.E]
        finally:
            g.unbind()
            # Each call leaves two dead endpoint slots behind; compact so
            # tight evaluation loops stay O(skeleton) in memory.
            if g.dead_slots > max(64, g.num_nodes):
                g.compact()

    def conn(self, points: Sequence[Tuple[Any, Tuple[float, float]]],
             qseg: Segment, ts: np.ndarray
             ) -> Tuple[List[Any], np.ndarray]:
        """Sampled CONN over all points using the global graph's obstacles."""
        best = np.full(len(ts), math.inf)
        owners: List[Any] = [None] * len(ts)
        for payload, xy in points:
            vals = brute_distance_function(xy, self.obstacles, qseg, ts)
            improved = vals < best - 1e-9
            best = np.where(improved, vals, best)
            for i in np.nonzero(improved)[0]:
                owners[i] = payload
        return owners, best
