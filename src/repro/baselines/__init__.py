"""Baselines: Euclidean CNN, naive sampled CONN, global visibility graph."""

from .cnn import cknn_euclidean, cnn_euclidean
from .global_vg import GlobalVisibilityGraph, full_vertex_count
from .naive import brute_distance_function, naive_coknn, naive_conn, naive_onn

__all__ = [
    "GlobalVisibilityGraph",
    "brute_distance_function",
    "cknn_euclidean",
    "cnn_euclidean",
    "full_vertex_count",
    "naive_coknn",
    "naive_conn",
    "naive_onn",
]
