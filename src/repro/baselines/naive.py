"""Brute-force oracles for CONN semantics.

These implementations share no code with the query engine beyond the
elementary geometry: full visibility graph, no R-trees, no pruning, no
interval algebra.  They are the ground truth the test suite checks the fast
algorithms against, and the "naive approach" the paper's introduction
dismisses (ONN at many sampled positions of ``q``).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence, Tuple

import numpy as np

from ..geometry.segment import Segment
from ..geometry.vectorized import visibility_mask
from ..obstacles.obstacle import Obstacle, ObstacleSet
from ..obstacles.obstructed import _dijkstra, build_full_graph


def brute_distance_function(point: Tuple[float, float],
                            obstacles: Iterable[Obstacle],
                            qseg: Segment, ts: np.ndarray) -> np.ndarray:
    """Exact obstructed distance from ``point`` to ``q(t)`` for each ``t``.

    Builds the full visibility graph over *all* obstacle vertices, runs one
    Dijkstra from the point, then for every sample takes the best
    "graph node -> straight visible hop" completion.
    """
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    adj = build_full_graph([point], obs)
    dist, _pred = _dijkstra(adj, 0)
    coords: List[Tuple[float, float]] = [tuple(map(float, point))]
    for o in obs:
        for vx, vy in o.vertices():
            coords.append((vx, vy))

    ts = np.asarray(ts, dtype=np.float64)
    ln = qseg.length
    ux = (qseg.bx - qseg.ax) / ln
    uy = (qseg.by - qseg.ay) / ln
    qx = qseg.ax + ts * ux
    qy = qseg.ay + ts * uy
    targets = np.column_stack([qx, qy])
    out = np.full(ts.shape, math.inf)
    polys = [poly.as_array() for poly in obs.polys]
    for i, (nx, ny) in enumerate(coords):
        if math.isinf(dist[i]):
            continue
        vis = visibility_mask(nx, ny, targets, obs.rects, obs.segs, polys)
        if not vis.any():
            continue
        vals = dist[i] + np.hypot(qx[vis] - nx, qy[vis] - ny)
        out[vis] = np.minimum(out[vis], vals)
    return out


def naive_conn(points: Sequence[Tuple[Any, Tuple[float, float]]],
               obstacles: Iterable[Obstacle], qseg: Segment,
               ts: np.ndarray) -> Tuple[List[Any], np.ndarray]:
    """Sampled CONN ground truth.

    Returns:
        ``(owners, dists)``: for each sample parameter, the data point with
        the smallest exact obstructed distance (``None`` if unreachable) and
        that distance.
    """
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    ts = np.asarray(ts, dtype=np.float64)
    best = np.full(ts.shape, math.inf)
    owners: List[Any] = [None] * len(ts)
    for payload, xy in points:
        vals = brute_distance_function(xy, obs, qseg, ts)
        improved = vals < best - 1e-9
        best = np.where(improved, vals, best)
        for i in np.nonzero(improved)[0]:
            owners[i] = payload
    return owners, best


def naive_coknn(points: Sequence[Tuple[Any, Tuple[float, float]]],
                obstacles: Iterable[Obstacle], qseg: Segment,
                ts: np.ndarray, k: int) -> List[List[Tuple[Any, float]]]:
    """Sampled COkNN ground truth: k best ``(payload, dist)`` per sample."""
    obs = obstacles if isinstance(obstacles, ObstacleSet) else ObstacleSet(obstacles)
    ts = np.asarray(ts, dtype=np.float64)
    per_point = [(payload, brute_distance_function(xy, obs, qseg, ts))
                 for payload, xy in points]
    out: List[List[Tuple[Any, float]]] = []
    for i in range(len(ts)):
        ranked = sorted(((vals[i], payload) for payload, vals in per_point))
        out.append([(payload, float(d)) for d, payload in ranked[:k]
                    if math.isfinite(d)])
    return out


def naive_onn(points: Sequence[Tuple[Any, Tuple[float, float]]],
              obstacles: Iterable[Obstacle],
              query_point: Tuple[float, float], k: int = 1
              ) -> List[Tuple[Any, float]]:
    """Snapshot ONN ground truth at a single query point."""
    qseg = Segment(query_point[0], query_point[1],
                   query_point[0] + 1.0, query_point[1])
    result = naive_coknn(points, obstacles, qseg, np.array([0.0]), k)
    return result[0]
