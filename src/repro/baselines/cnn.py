"""Euclidean continuous (k-)nearest-neighbor baseline (no obstacles).

The classic CNN query of Tao, Papadias & Shen (VLDB 2002) that Figure 1(a)
of the paper illustrates: one best-first traversal of the data R*-tree in
ascending ``mindist`` to the query segment, maintaining the exact minimum
envelope of the candidates' Euclidean distance functions.  Reuses the CONN
engine's envelope machinery with every candidate being its own control point
at base 0 — in an obstacle-free world the control point list of a point is
just the point itself over all of ``q``.

Serves two purposes: the Figure-1-style CNN-vs-CONN comparisons in the
examples, and the degenerate-case check ``CONN(O = {}) == CNN``.
"""

from __future__ import annotations

import math
import time

from ..geometry.interval import IntervalSet
from ..geometry.predicates import EPS
from ..geometry.segment import Segment
from ..index.nearest import IncrementalNearest
from ..index.rstar import RStarTree
from ..core.config import DEFAULT_CONFIG, ConnConfig
from ..core.distance_function import PiecewiseDistance
from ..core.engine import ConnResult, KEnvelope
from ..core.stats import QueryStats


def cknn_euclidean(data_tree: RStarTree, query: Segment, k: int = 1,
                   config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """Continuous Euclidean k-NN along ``query``.

    Returns the same :class:`~repro.core.engine.ConnResult` shape as
    :func:`~repro.core.conn.coknn`, so downstream code can compare the two
    directly (split points, tuples, distance functions).
    """
    if query.is_degenerate():
        raise ValueError("query segment is degenerate")
    stats = QueryStats()
    snapshot = data_tree.tracker.stats.snapshot()
    started = time.perf_counter()
    env = KEnvelope(query, k)
    scan = IncrementalNearest(
        data_tree,
        lambda rect: rect.mindist_segment(query.ax, query.ay, query.bx, query.by))
    full = IntervalSet.full(0.0, query.length)
    while True:
        key = scan.peek_key()
        if math.isinf(key):
            break
        if config.use_rlmax and key > env.rlmax() + EPS:
            break
        _d, payload, rect = scan.pop()
        stats.npe += 1
        cx, cy = rect.center()
        candidate = PiecewiseDistance.from_region(query, full, (cx, cy), 0.0,
                                                  payload)
        env.insert(candidate, config, stats)
    stats.cpu_time_s += time.perf_counter() - started
    delta = data_tree.tracker.stats.delta(snapshot)
    stats.io.logical_reads += delta.logical_reads
    stats.io.page_faults += delta.page_faults
    return ConnResult(query, k, env.levels, stats)


def cnn_euclidean(data_tree: RStarTree, query: Segment,
                  config: ConnConfig = DEFAULT_CONFIG) -> ConnResult:
    """Continuous Euclidean NN (k = 1) along ``query``."""
    return cknn_euclidean(data_tree, query, k=1, config=config)
